// Heuristic comparison across the heterogeneity/consistency grid —
// Braun-et-al-style makespan comparison of all ten heuristics, plus the
// non-makespan metrics the paper's technique targets.
//
// Usage: heuristic_comparison [tasks] [machines] [trials] [seed]
//        (defaults: 32 8 10 1)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "report/table.hpp"
#include "sched/metrics.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace hcsched;
  const auto tasks =
      static_cast<std::size_t>(argc > 1 ? std::atoll(argv[1]) : 32);
  const auto machines =
      static_cast<std::size_t>(argc > 2 ? std::atoll(argv[2]) : 8);
  const auto trials =
      static_cast<std::size_t>(argc > 3 ? std::atoll(argv[3]) : 10);
  const auto seed =
      static_cast<std::uint64_t>(argc > 4 ? std::atoll(argv[4]) : 1);

  const auto heuristics_set = heuristics::all_heuristics();

  for (const etc::Consistency consistency :
       {etc::Consistency::kInconsistent, etc::Consistency::kConsistent}) {
    for (const auto& [cell, v_task, v_machine] :
         {std::tuple{"HiHi", 0.9, 0.9}, std::tuple{"LoLo", 0.3, 0.3}}) {
      // Mean makespan per heuristic, normalized by the per-trial best so
      // heuristics are comparable across random instances.
      std::map<std::string, sim::RunningStats> norm_makespan;
      std::map<std::string, sim::RunningStats> mean_machine_ct;

      for (std::size_t trial = 0; trial < trials; ++trial) {
        rng::Rng rng = rng::Rng(seed).split(trial);
        etc::CvbParams params;
        params.num_tasks = tasks;
        params.num_machines = machines;
        params.v_task = v_task;
        params.v_machine = v_machine;
        const etc::EtcMatrix matrix = etc::shape_consistency(
            etc::CvbEtcGenerator(params).generate(rng), consistency);
        const sched::Problem problem = sched::Problem::full(matrix);

        std::map<std::string, double> spans;
        std::map<std::string, double> means;
        double best = 0.0;
        for (const auto& h : heuristics_set) {
          rng::TieBreaker ties;
          const sched::Schedule s = h->map(problem, ties);
          spans[std::string(h->name())] = s.makespan();
          means[std::string(h->name())] = sched::mean_completion(s);
          if (best == 0.0 || s.makespan() < best) best = s.makespan();
        }
        for (const auto& [hname, span] : spans) {
          norm_makespan[hname].add(span / best);
          mean_machine_ct[hname].add(means[hname] / best);
        }
      }

      report::TextTable table({"heuristic", "makespan / best", "+/- 95% CI",
                               "mean machine CT / best"});
      for (const auto& h : heuristics_set) {
        const auto& ms = norm_makespan[std::string(h->name())];
        const auto& mc = mean_machine_ct[std::string(h->name())];
        table.add_row({std::string(h->name()),
                       report::TextTable::num(ms.mean(), 3),
                       report::TextTable::num(ms.ci95_half_width(), 3),
                       report::TextTable::num(mc.mean(), 3)});
      }
      std::printf(
          "=== %s %s — %zu tasks x %zu machines, %zu trials ===\n%s\n",
          etc::to_string(consistency), cell, tasks, machines, trials,
          table.to_string().c_str());
    }
  }
  std::printf(
      "Reading: 1.0 in column two means the heuristic produced the best "
      "makespan of the ten on every instance. MET degrades badly on "
      "consistent matrices (every task chases the same machine) — the "
      "classic Braun et al. observation.\n");
  return 0;
}
