// Quickstart: the library in ~60 lines.
//
//   1. Build (or load) an ETC matrix.
//   2. Map the tasks with a heuristic.
//   3. Run the paper's iterative technique.
//   4. Inspect per-machine finishing times before/after.
//
// Usage: quickstart [heuristic-name]   (default: Sufferage)
#include <cstdio>

#include "core/iterative.hpp"
#include "heuristics/registry.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

namespace {
inline std::string concat_label(char prefix, long long v) {
  std::string out(1, prefix);
  out += std::to_string(v);
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace hcsched;

  // 1. An ETC matrix: entry (t, m) is task t's estimated time on machine m.
  const etc::EtcMatrix matrix = etc::EtcMatrix::from_rows({
      {4, 9, 3},
      {7, 2, 8},
      {6, 6, 6},
      {2, 11, 5},
      {8, 3, 9},
      {5, 7, 4},
  });
  const sched::Problem problem = sched::Problem::full(matrix);

  // 2. Pick a heuristic by name and produce the original mapping.
  const char* name = argc > 1 ? argv[1] : "Sufferage";
  const auto heuristic = heuristics::make_heuristic(name);
  rng::TieBreaker ties;  // deterministic tie-breaking
  const sched::Schedule original = heuristic->map(problem, ties);
  std::printf("Original %s mapping (makespan %s on machine m%d):\n%s\n",
              std::string(heuristic->name()).c_str(),
              report::TextTable::num(original.makespan()).c_str(),
              original.makespan_machine(),
              report::render_gantt(original).c_str());

  // 3. The paper's iterative technique: repeatedly remove the makespan
  //    machine (freezing its finishing time) and re-map the rest.
  rng::TieBreaker iter_ties;
  const core::IterativeResult result =
      core::IterativeMinimizer{}.run(*heuristic, problem, iter_ties);

  // 4. Compare per-machine finishing times.
  report::TextTable table({"machine", "original CT", "final CT", "change"});
  const auto before = result.original_finishing_times();
  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto [machine, after] = result.final_finishing_times[i];
    const double delta = after - before[i];
    table.add_row({concat_label('m', machine),
                   report::TextTable::num(before[i]),
                   report::TextTable::num(after),
                   delta < 0   ? "improved"
                   : delta > 0 ? "worsened"
                               : "unchanged"});
  }
  std::printf("After the iterative technique (%zu iterations):\n%s",
              result.iterations.size(), table.to_string().c_str());
  std::printf("Effective makespan: %s -> %s%s\n",
              report::TextTable::num(result.original().makespan).c_str(),
              report::TextTable::num(result.final_makespan()).c_str(),
              result.makespan_increased() ? "  (increased!)" : "");
  return 0;
}
