// Witness hunt: search for small ETC matrices on which a heuristic's
// makespan INCREASES under the iterative technique — the counterexamples
// the paper constructs by hand in §3.5-3.7, found automatically.
//
// Usage: witness_hunt [heuristic] [tasks] [machines] [ties] [max-trials]
//        ties: det | random            (defaults: Sufferage 9 3 det 200000)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/witness.hpp"
#include "heuristics/registry.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace hcsched;
  const char* name = argc > 1 ? argv[1] : "Sufferage";
  core::WitnessSpec spec;
  spec.num_tasks =
      static_cast<std::size_t>(argc > 2 ? std::atoll(argv[2]) : 9);
  spec.num_machines =
      static_cast<std::size_t>(argc > 3 ? std::atoll(argv[3]) : 3);
  spec.policy = (argc > 4 && std::strcmp(argv[4], "random") == 0)
                    ? rng::TiePolicy::kRandom
                    : rng::TiePolicy::kDeterministic;
  const auto max_trials =
      static_cast<std::size_t>(argc > 5 ? std::atoll(argv[5]) : 200000);
  spec.half_integers = true;

  const auto heuristic = heuristics::make_heuristic(name);
  std::printf("Hunting a makespan-increase witness for %s (%zu tasks x %zu "
              "machines, %s ties, up to %zu matrices)...\n",
              std::string(heuristic->name()).c_str(), spec.num_tasks,
              spec.num_machines,
              spec.policy == rng::TiePolicy::kRandom ? "random"
                                                     : "deterministic",
              max_trials);
  if ((std::string(heuristic->name()) == "MET" ||
       std::string(heuristic->name()) == "MCT" ||
       std::string(heuristic->name()) == "Min-Min") &&
      spec.policy == rng::TiePolicy::kDeterministic) {
    std::printf("(Note: the paper PROVES none exists for %s with "
                "deterministic ties — expect the hunt to come up dry.)\n",
                std::string(heuristic->name()).c_str());
  }

  rng::Rng rng(20070326);
  const auto witness =
      core::find_makespan_increase_witness(*heuristic, spec, rng, max_trials);
  if (!witness) {
    std::printf("No witness found in %zu matrices.\n", max_trials);
    return 1;
  }

  std::printf("Witness found after %zu matrices: makespan %s -> %s\n\n",
              witness->trials_used,
              report::TextTable::num(witness->original_makespan).c_str(),
              report::TextTable::num(witness->final_makespan).c_str());

  const auto& m = *witness->matrix;
  report::TextTable etc_table;
  std::vector<std::string> header = {"task"};
  for (std::size_t j = 0; j < m.num_machines(); ++j) {
    header.push_back(std::string("m") + std::to_string(j));
  }
  etc_table.set_header(std::move(header));
  for (std::size_t t = 0; t < m.num_tasks(); ++t) {
    std::vector<std::string> row = {std::string("t") + std::to_string(t)};
    for (std::size_t j = 0; j < m.num_machines(); ++j) {
      row.push_back(report::TextTable::num(
          m.at(static_cast<int>(t), static_cast<int>(j))));
    }
    etc_table.add_row(std::move(row));
  }
  std::printf("ETC matrix:\n%s\n", etc_table.to_string().c_str());

  std::printf("Original mapping:\n%s\n",
              report::render_gantt(witness->result.original().schedule)
                  .c_str());
  if (witness->result.iterations.size() > 1) {
    std::printf("First iterative mapping:\n%s\n",
                report::render_gantt(witness->result.iterations[1].schedule)
                    .c_str());
  }
  return 0;
}
