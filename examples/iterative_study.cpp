// Iterative-technique study — the paper's research question as a CLI tool:
// "can the iterative procedure reduce the finishing times of some machines
// compared to the original mapping?" (paper §1-2).
//
// Runs the Monte-Carlo study over a chosen heuristic set and prints the
// per-heuristic improvement/worsening profile, using every core of the
// machine through the sim::ThreadPool.
//
// Usage: iterative_study [trials] [tasks] [machines] [ties] [seed]
//        ties: det | random            (defaults: 50 24 6 det 7)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "report/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hcsched;
  sim::StudyParams params;
  params.trials = static_cast<std::size_t>(argc > 1 ? std::atoll(argv[1]) : 50);
  params.cvb.num_tasks =
      static_cast<std::size_t>(argc > 2 ? std::atoll(argv[2]) : 24);
  params.cvb.num_machines =
      static_cast<std::size_t>(argc > 3 ? std::atoll(argv[3]) : 6);
  params.tie_policy = (argc > 4 && std::strcmp(argv[4], "random") == 0)
                          ? rng::TiePolicy::kRandom
                          : rng::TiePolicy::kDeterministic;
  params.seed = static_cast<std::uint64_t>(argc > 5 ? std::atoll(argv[5]) : 7);
  params.heuristics = {"MET",       "MCT", "Min-Min", "Genitor", "SWA",
                       "Sufferage", "KPB"};

  sim::ThreadPool pool;
  std::printf(
      "Iterative-technique study: %zu trials, %zu tasks x %zu machines, "
      "%s ties, %zu worker thread(s)\n\n",
      params.trials, params.cvb.num_tasks, params.cvb.num_machines,
      params.tie_policy == rng::TiePolicy::kRandom ? "random"
                                                   : "deterministic",
      pool.size());

  const auto rows = sim::run_iterative_study(params, pool);
  report::TextTable table({"heuristic", "improved", "unchanged", "worsened",
                           "mean dCT/CT", "95% CI", "makespan increases"});
  for (const auto& row : rows) {
    table.add_row(
        {row.heuristic, std::to_string(row.machines_improved),
         std::to_string(row.machines_unchanged),
         std::to_string(row.machines_worsened),
         report::TextTable::num(row.finish_delta.mean() * 100.0, 2) + "%",
         report::TextTable::num(row.finish_delta.ci95_half_width() * 100.0,
                                2) +
             "%",
         std::to_string(row.makespan_increases) + "/" +
             std::to_string(row.trials)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Per-machine counts cover the non-makespan machines of each trial's "
      "original mapping (the makespan machine's finishing time is frozen by "
      "the technique's definition).\n"
      "The paper's conclusions to look for: MET/MCT/Min-Min rows all "
      "unchanged under deterministic ties; Genitor never increases the "
      "makespan; SWA/KPB/Sufferage can improve machines AND can increase "
      "the makespan.\n");
  return 0;
}
