// Production pipeline — the paper's motivating scenario (§1).
//
// A production environment maps a known batch of tasks off-line. After
// execution starts, tasks that were not initially considered keep arriving;
// each is dispatched to the machine that becomes available soonest.
// Minimizing the finishing times of *all* machines (not just makespan)
// therefore lets late work start earlier.
//
// This example runs the batch mapping with and without the iterative
// technique and measures how much sooner a stream of late-arriving tasks
// completes. It doubles as the observability demo: a JSONL trace sink
// records every iteration (pass a path as the third argument) and the run
// report summarizes the iterative trajectory plus operation counters.
//
// Usage: production_pipeline [heuristic] [seed] [trace.jsonl]
//        (default: Sufferage 1, no trace file)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/iterative.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"

namespace {

using namespace hcsched;

/// Greedy online dispatch of late tasks given per-machine availability
/// times: each task goes to the machine minimizing ready + ETC. Returns the
/// completion time of the late batch (max over its tasks).
double dispatch_late_tasks(const etc::EtcMatrix& late,
                           std::vector<double> ready) {
  double batch_completion = 0.0;
  for (std::size_t t = 0; t < late.num_tasks(); ++t) {
    std::size_t best = 0;
    double best_ct = ready[0] + late.at(static_cast<int>(t), 0);
    for (std::size_t m = 1; m < ready.size(); ++m) {
      const double ct =
          ready[m] + late.at(static_cast<int>(t), static_cast<int>(m));
      if (ct < best_ct) {
        best_ct = ct;
        best = m;
      }
    }
    ready[best] = best_ct;
    if (best_ct > batch_completion) batch_completion = best_ct;
  }
  return batch_completion;
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "Sufferage";
  const auto seed =
      static_cast<std::uint64_t>(argc > 2 ? std::atoll(argv[2]) : 1);

  // Optional JSONL trace of every heuristic call and iteration.
  std::optional<obs::ScopedSink> trace_scope;
  if (argc > 3) {
    trace_scope.emplace(std::make_shared<obs::JsonlSink>(std::string(argv[3])));
    std::printf("tracing to %s (instrumentation %s)\n", argv[3],
                obs::kTraceCompiledIn ? "compiled in" : "compiled OUT");
  }
  obs::counters::reset();  // scope the run report's counters to this run

  // Off-line batch: 32 tasks on 8 machines; late stream: 12 more tasks.
  rng::Rng rng(seed);
  etc::CvbParams batch_params;
  batch_params.num_tasks = 32;
  batch_params.num_machines = 8;
  batch_params.mean_task_time = 100.0;
  const etc::EtcMatrix batch =
      etc::CvbEtcGenerator(batch_params).generate(rng);
  etc::CvbParams late_params = batch_params;
  late_params.num_tasks = 12;
  const etc::EtcMatrix late = etc::CvbEtcGenerator(late_params).generate(rng);

  const sched::Problem problem = sched::Problem::full(batch);
  const auto heuristic = heuristics::make_heuristic(name);

  // Plan A: original mapping only.
  rng::TieBreaker t1;
  const sched::Schedule original = heuristic->map(problem, t1);
  std::vector<double> ready_original = original.completion_times_by_slot();

  // Plan B: iterative technique.
  rng::TieBreaker t2;
  const auto result = core::IterativeMinimizer{}.run(*heuristic, problem, t2);
  std::vector<double> ready_iterative;
  for (const auto& [machine, finish] : result.final_finishing_times) {
    (void)machine;
    ready_iterative.push_back(finish);
  }

  const double late_original = dispatch_late_tasks(late, ready_original);
  const double late_iterative = dispatch_late_tasks(late, ready_iterative);

  report::TextTable table(
      {"plan", "batch makespan", "mean machine CT", "late batch done at"});
  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  table.add_row({"original mapping only",
                 report::TextTable::num(original.makespan(), 2),
                 report::TextTable::num(mean(ready_original), 2),
                 report::TextTable::num(late_original, 2)});
  table.add_row({"iterative technique",
                 report::TextTable::num(result.final_makespan(), 2),
                 report::TextTable::num(mean(ready_iterative), 2),
                 report::TextTable::num(late_iterative, 2)});
  std::printf("Production scenario with %s (seed %llu):\n%s",
              std::string(heuristic->name()).c_str(),
              static_cast<unsigned long long>(seed),
              table.to_string().c_str());
  const double gain = late_original - late_iterative;
  std::printf(
      "Late 12-task batch finishes %s %s with the iterative technique.\n"
      "(The paper shows this is heuristic-dependent: for MET/MCT/Min-Min "
      "with deterministic ties nothing changes, and for SWA/KPB/Sufferage "
      "it can go either way.)\n",
      report::TextTable::num(gain < 0 ? -gain : gain, 2).c_str(),
      gain > 0   ? "earlier"
      : gain < 0 ? "later"
                 : "at the same time");

  // Full run report for plan B: per-iteration trajectory + counters.
  std::printf("\n%s",
              obs::to_text(obs::build_run_report(heuristic->name(), result))
                  .c_str());
  return 0;
}
