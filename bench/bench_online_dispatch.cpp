// EXT-8: the paper's §1 motivation, measured end-to-end. An off-line batch
// is mapped (original vs iterative technique); the resulting per-machine
// availability vectors seed an online dispatcher that handles a stream of
// late-arriving tasks with each immediate-mode policy of Maheswaran et al.
// [14]. Reports the late stream's mean flow time under both availability
// vectors, plus policy throughput benchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/iterative.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "report/table.hpp"
#include "sim/batch_online.hpp"
#include "sim/online.hpp"
#include "sim/stats.hpp"

namespace {

using hcsched::core::IterativeMinimizer;
using hcsched::report::TextTable;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sim::OnlineConfig;
using hcsched::sim::OnlineDispatcher;
using hcsched::sim::OnlinePolicy;

void print_online_study() {
  constexpr std::size_t kTrials = 15;
  TextTable table({"online policy", "mean flow (original avail)",
                   "mean flow (iterative avail)", "mean delta"});
  for (OnlinePolicy policy :
       {OnlinePolicy::kMct, OnlinePolicy::kMet, OnlinePolicy::kOlb,
        OnlinePolicy::kKpb, OnlinePolicy::kSwa}) {
    hcsched::sim::RunningStats flow_orig;
    hcsched::sim::RunningStats flow_iter;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      Rng rng = Rng(4242).split(trial);
      hcsched::etc::CvbParams params;
      params.num_tasks = 32;
      params.num_machines = 8;
      params.mean_task_time = 100.0;
      const auto batch =
          hcsched::etc::CvbEtcGenerator(params).generate(rng);
      const Problem problem = Problem::full(batch);
      const auto sufferage = hcsched::heuristics::make_heuristic("Sufferage");

      TieBreaker t1;
      const auto original = sufferage->map(problem, t1);
      TieBreaker t2;
      const auto iterative =
          IterativeMinimizer{}.run(*sufferage, problem, t2);

      std::vector<double> avail_orig = original.completion_times_by_slot();
      std::vector<double> avail_iter;
      for (const auto& [m, t] : iterative.final_finishing_times) {
        (void)m;
        avail_iter.push_back(t);
      }

      const auto stream = hcsched::sim::make_arrival_stream(
          24, 20.0, batch.num_tasks(), rng);
      const OnlineDispatcher dispatcher(OnlineConfig{.policy = policy});
      TieBreaker t3;
      TieBreaker t4;
      flow_orig.add(
          dispatcher.run(batch, stream, avail_orig, t3).mean_flow_time());
      flow_iter.add(
          dispatcher.run(batch, stream, avail_iter, t4).mean_flow_time());
    }
    table.add_row(
        {hcsched::sim::to_string(policy),
         TextTable::num(flow_orig.mean(), 1),
         TextTable::num(flow_iter.mean(), 1),
         TextTable::num(flow_iter.mean() - flow_orig.mean(), 1)});
  }
  std::printf(
      "=== EXT-8 online dispatch after the batch (Sufferage batch mapping, "
      "%zu trials, 24 late tasks, 8 machines) ===\n%s"
      "Negative delta = the iterative technique made machines available "
      "earlier for the late stream — the paper's §1 motivation. The sign is "
      "heuristic- and instance-dependent, exactly as the paper warns.\n\n",
      kTrials, table.to_string().c_str());
}

void print_batch_vs_immediate() {
  // Ref [14]'s central comparison: batch mode vs immediate mode under the
  // same arrival stream. Batch mode should win at high arrival rates
  // (short mean gap), where remapping a queue beats myopic dispatch.
  constexpr std::size_t kTrials = 10;
  hcsched::report::TextTable table(
      {"mean gap", "immediate MCT flow", "batch Min-Min flow",
       "batch Sufferage flow"});
  for (double gap : {2.0, 5.0, 15.0}) {
    hcsched::sim::RunningStats immediate;
    hcsched::sim::RunningStats batch_minmin;
    hcsched::sim::RunningStats batch_sufferage;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      Rng rng = Rng(909).split(trial);
      hcsched::etc::CvbParams params;
      params.num_tasks = 20;
      params.num_machines = 6;
      params.mean_task_time = 30.0;
      const auto matrix =
          hcsched::etc::CvbEtcGenerator(params).generate(rng);
      const auto stream =
          hcsched::sim::make_arrival_stream(60, gap, 20, rng);
      const std::vector<double> idle(6, 0.0);

      const OnlineDispatcher imm(OnlineConfig{.policy = OnlinePolicy::kMct});
      TieBreaker t1;
      immediate.add(imm.run(matrix, stream, idle, t1).mean_flow_time());

      const hcsched::sim::BatchOnlineDispatcher bm(
          hcsched::sim::BatchOnlineConfig{
              .policy = hcsched::sim::BatchPolicy::kMinMin,
              .interval = gap * 4.0});
      TieBreaker t2;
      batch_minmin.add(bm.run(matrix, stream, idle, t2).mean_flow_time());

      const hcsched::sim::BatchOnlineDispatcher bs(
          hcsched::sim::BatchOnlineConfig{
              .policy = hcsched::sim::BatchPolicy::kSufferage,
              .interval = gap * 4.0});
      TieBreaker t3;
      batch_sufferage.add(
          bs.run(matrix, stream, idle, t3).mean_flow_time());
    }
    table.add_row({TextTable::num(gap, 1),
                   TextTable::num(immediate.mean(), 1),
                   TextTable::num(batch_minmin.mean(), 1),
                   TextTable::num(batch_sufferage.mean(), 1)});
  }
  std::printf(
      "=== EXT-8b batch vs immediate mode (ref [14]'s comparison; 60 "
      "arrivals, 6 machines, %zu trials) ===\n%s\n",
      kTrials, table.to_string().c_str());
}

void BM_OnlinePolicy(benchmark::State& state, OnlinePolicy policy) {
  Rng rng(7);
  hcsched::etc::CvbParams params;
  params.num_tasks = 64;
  params.num_machines = 16;
  const auto matrix = hcsched::etc::CvbEtcGenerator(params).generate(rng);
  const auto stream =
      hcsched::sim::make_arrival_stream(512, 10.0, 64, rng);
  const OnlineDispatcher dispatcher(OnlineConfig{.policy = policy});
  const std::vector<double> ready(16, 0.0);
  for (auto _ : state) {
    TieBreaker ties;
    benchmark::DoNotOptimize(dispatcher.run(matrix, stream, ready, ties));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}

}  // namespace

int main(int argc, char** argv) {
  print_online_study();
  print_batch_vs_immediate();
  benchmark::RegisterBenchmark("dispatch_512/MCT", BM_OnlinePolicy,
                               OnlinePolicy::kMct);
  benchmark::RegisterBenchmark("dispatch_512/KPB", BM_OnlinePolicy,
                               OnlinePolicy::kKpb);
  benchmark::RegisterBenchmark("dispatch_512/SWA", BM_OnlinePolicy,
                               OnlinePolicy::kSwa);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
