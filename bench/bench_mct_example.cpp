// Regenerates paper Tables 4-6 and Figures 6-7: the MCT worked example in
// which random tie-breaking increases the makespan from 4 to 5 under the
// iterative technique (paper §3.3).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  static const auto example = hcsched::core::mct_example();
  return hcsched::bench::run_example_main(argc, argv, example);
}
