// EXT-10: does the iterative technique's benefit survive ETC estimation
// error? Mappings are made against estimated ETCs; finishing times are then
// realized under perturbed actual times. Reports, per noise level: the mean
// realized change of non-makespan finishing times (iterative vs original)
// and the robustness radius of both mappings.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/iterative.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "report/table.hpp"
#include "sim/robustness.hpp"
#include "sim/stats.hpp"

namespace {

using hcsched::core::IterativeMinimizer;
using hcsched::report::TextTable;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sim::perturb;
using hcsched::sim::PerturbationModel;
using hcsched::sim::realized_completions;
using hcsched::sim::robustness_radius;

void print_robustness_study() {
  constexpr std::size_t kTrials = 20;
  TextTable table({"ETC noise", "estimated mean dCT", "realized mean dCT",
                   "orig radius", "iter radius"});
  for (double noise : {0.0, 0.1, 0.25, 0.5}) {
    hcsched::sim::RunningStats estimated_delta;
    hcsched::sim::RunningStats realized_delta;
    hcsched::sim::RunningStats orig_radius;
    hcsched::sim::RunningStats iter_radius;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      Rng rng = Rng(321).split(trial);
      hcsched::etc::CvbParams params;
      params.num_tasks = 24;
      params.num_machines = 6;
      const auto estimated =
          hcsched::etc::CvbEtcGenerator(params).generate(rng);
      const Problem problem = Problem::full(estimated);
      const auto sufferage = hcsched::heuristics::make_heuristic("Sufferage");

      TieBreaker t1;
      const auto result = IterativeMinimizer{}.run(*sufferage, problem, t1);
      const auto& original = result.original().schedule;

      // The iterative technique's final mapping per machine is scattered
      // across iterations; realize each machine's finishing time from the
      // iteration at which it was frozen.
      const auto actual = perturb(
          estimated, PerturbationModel{.noise = noise, .floor = 0.05}, rng);

      const auto orig_estimated = result.original_finishing_times();
      const auto orig_realized = realized_completions(original, actual);
      double est_sum = 0.0;
      double real_sum = 0.0;
      std::size_t counted = 0;
      for (std::size_t i = 0; i < result.final_finishing_times.size(); ++i) {
        const auto machine = result.final_finishing_times[i].first;
        if (machine == result.original().makespan_machine) continue;
        // Find the iteration that froze this machine and realize it there.
        for (const auto& it : result.iterations) {
          const bool last = (&it == &result.iterations.back());
          if (it.makespan_machine == machine ||
              (last && it.problem().has_machine(machine))) {
            const auto realized = realized_completions(it.schedule, actual);
            const std::size_t slot = it.problem().slot_of(machine);
            real_sum += realized[slot] - orig_realized[i];
            est_sum += result.final_finishing_times[i].second -
                       orig_estimated[i];
            ++counted;
            break;
          }
        }
      }
      if (counted > 0) {
        estimated_delta.add(est_sum / static_cast<double>(counted));
        realized_delta.add(real_sum / static_cast<double>(counted));
      }
      const double tau = result.original().makespan * 1.2;
      orig_radius.add(robustness_radius(original, tau));
      // Radius of the terminal iteration's mapping (survivor machines).
      iter_radius.add(
          robustness_radius(result.iterations.back().schedule, tau));
    }
    table.add_row({TextTable::num(noise, 2),
                   TextTable::num(estimated_delta.mean(), 2),
                   TextTable::num(realized_delta.mean(), 2),
                   TextTable::num(orig_radius.mean(), 3),
                   TextTable::num(iter_radius.mean(), 3)});
  }
  std::printf(
      "=== EXT-10 robustness to ETC estimation error (Sufferage, 24x6, %zu "
      "trials; dCT = mean change of non-makespan finishing times, negative "
      "is better) ===\n%s"
      "Reading: the estimated-dCT column is noise-independent (the mapping "
      "decision is made before execution); the realized column shows the "
      "benefit degrading gracefully as actual times diverge from "
      "estimates.\n\n",
      kTrials, table.to_string().c_str());
}

void BM_Perturb(benchmark::State& state) {
  Rng rng(5);
  hcsched::etc::CvbParams params;
  params.num_tasks = 128;
  params.num_machines = 16;
  const auto estimated =
      hcsched::etc::CvbEtcGenerator(params).generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        perturb(estimated, PerturbationModel{.noise = 0.2}, rng));
  }
  state.SetItemsProcessed(state.iterations() * 128 * 16);
}

}  // namespace

BENCHMARK(BM_Perturb);

int main(int argc, char** argv) {
  print_robustness_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
