#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "heuristics/registry.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

namespace hcsched::bench {

namespace {

using report::TextTable;

void print_etc_table(const core::PaperExample& example) {
  const auto& m = *example.matrix;
  std::vector<std::string> header = {"task"};
  for (std::size_t j = 0; j < m.num_machines(); ++j) {
    header.push_back(std::string("m") + std::to_string(j));
  }
  TextTable table(std::move(header));
  for (std::size_t t = 0; t < m.num_tasks(); ++t) {
    std::vector<std::string> row = {std::string("t") + std::to_string(t)};
    for (std::size_t j = 0; j < m.num_machines(); ++j) {
      row.push_back(TextTable::num(
          m.at(static_cast<int>(t), static_cast<int>(j))));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
}

void print_mapping_table(const sched::Schedule& schedule) {
  const auto& problem = schedule.problem();
  std::vector<std::string> header = {"step", "task", "machine"};
  for (sched::MachineId m : problem.machines()) {
    header.push_back(std::string("m") + std::to_string(m) + " CT");
  }
  TextTable table(std::move(header));
  std::vector<double> running = problem.initial_ready_times();
  std::size_t step = 0;
  for (const sched::Assignment& a : schedule.assignment_order()) {
    running[problem.slot_of(a.machine)] = a.finish;
    std::vector<std::string> row = {std::to_string(++step),
                                    std::string("t") + std::to_string(a.task),
                                    std::string("m") + std::to_string(a.machine)};
    for (double ct : running) row.push_back(TextTable::num(ct));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
}

void print_ct_comparison(const core::PaperExample& example,
                         const core::IterativeResult& result) {
  TextTable table({"machine", "paper orig CT", "measured orig CT",
                   "paper final CT", "measured final CT"});
  const auto& original = result.original().schedule;
  for (std::size_t m = 0; m < example.matrix->num_machines(); ++m) {
    const auto id = static_cast<sched::MachineId>(m);
    table.add_row({std::string("m") + std::to_string(m),
                   TextTable::num(example.expected_original_ct[m]),
                   TextTable::num(original.completion_time(id)),
                   TextTable::num(example.expected_final_ct[m]),
                   TextTable::num(result.final_finish_of(id))});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("makespan: paper %s -> %s, measured %s -> %s\n",
              TextTable::num(example.expected_original_makespan).c_str(),
              TextTable::num(example.expected_final_makespan).c_str(),
              TextTable::num(result.original().makespan).c_str(),
              TextTable::num(result.final_makespan()).c_str());
}

/// Attaches the per-benchmark-iteration operation counts (ETC cells
/// evaluated, tie-break decisions, heuristic invocations) to the benchmark's
/// user counters, so timing rows carry their work alongside their latency.
/// All zeros when the library is built with HCSCHED_TRACE=0.
void attach_counter_deltas(benchmark::State& state,
                           const obs::counters::Snapshot& before) {
  const auto delta = obs::counters::snapshot().delta_since(before);
  const auto per_iter = [&state](std::uint64_t total) {
    return benchmark::Counter(
        static_cast<double>(total) /
        static_cast<double>(std::max<std::int64_t>(1, state.iterations())));
  };
  state.counters["etc_cells"] =
      per_iter(delta[obs::Counter::kEtcCellEvaluations]);
  state.counters["tie_decisions"] = per_iter(delta[obs::Counter::kTieDecisions]);
  state.counters["heuristic_calls"] =
      per_iter(delta[obs::Counter::kHeuristicInvocations]);
}

}  // namespace

void print_counter_snapshot(const obs::counters::Snapshot& delta) {
  if (!obs::kTraceCompiledIn) {
    std::printf("-- operation counters: compiled out (HCSCHED_TRACE=0) --\n");
    return;
  }
  TextTable table({"counter", "value"});
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    table.add_row({std::string(obs::to_string(c)),
                   std::to_string(delta[c])});
  }
  std::printf("-- operation counters (reproduction section) --\n%s",
              table.to_string().c_str());
}

bool print_example_reproduction(const core::PaperExample& example) {
  std::printf("=== %s example — %s / %s ===\n", example.heuristic.c_str(),
              example.table_refs.c_str(), example.figure_refs.c_str());
  std::printf("%s\n\n", example.notes.c_str());

  std::printf("-- ETC matrix (reconstruction, %s) --\n",
              example.table_refs.c_str());
  print_etc_table(example);

  const auto result = core::run_paper_example(example);

  std::printf("\n-- Original mapping (%s) --\n", example.table_refs.c_str());
  print_mapping_table(result.original().schedule);
  std::printf("%s", report::render_gantt(result.original().schedule).c_str());

  if (result.iterations.size() > 1) {
    std::printf("\n-- First iterative mapping --\n");
    print_mapping_table(result.iterations[1].schedule);
    std::printf("%s",
                report::render_gantt(result.iterations[1].schedule).c_str());
  }

  std::printf("\n-- Paper vs measured (%s) --\n", example.table_refs.c_str());
  print_ct_comparison(example, result);

  const bool ok = core::example_matches(example, result) &&
                  result.makespan_increased();
  std::printf("reproduction check: %s\n\n", ok ? "PASS" : "FAIL");
  return ok;
}

void register_example_benchmarks(const core::PaperExample& example) {
  const auto* ex = &example;
  benchmark::RegisterBenchmark(
      (example.id + "/heuristic_map").c_str(),
      [ex](benchmark::State& state) {
        const auto heuristic = heuristics::make_heuristic(ex->heuristic);
        const sched::Problem problem = sched::Problem::full(*ex->matrix);
        const auto before = obs::counters::snapshot();
        for (auto _ : state) {
          rng::TieBreaker ties;
          benchmark::DoNotOptimize(heuristic->map(problem, ties));
        }
        attach_counter_deltas(state, before);
      });
  benchmark::RegisterBenchmark(
      (example.id + "/iterative_run").c_str(),
      [ex](benchmark::State& state) {
        const auto heuristic = heuristics::make_heuristic(ex->heuristic);
        const sched::Problem problem = sched::Problem::full(*ex->matrix);
        const core::IterativeMinimizer minimizer{
            core::IterativeOptions{.use_seeding = false}};
        const auto before = obs::counters::snapshot();
        for (auto _ : state) {
          rng::TieBreaker ties(std::vector<std::size_t>(ex->tie_script));
          benchmark::DoNotOptimize(minimizer.run(*heuristic, problem, ties));
        }
        attach_counter_deltas(state, before);
      });
}

int run_example_main(int argc, char** argv,
                     const core::PaperExample& example) {
  const auto before = obs::counters::snapshot();
  const bool ok = print_example_reproduction(example);
  print_counter_snapshot(obs::counters::snapshot().delta_since(before));
  std::printf("\n");
  register_example_benchmarks(example);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}

}  // namespace hcsched::bench
