// Regenerates paper Tables 4, 7-8 and Figures 9-10: the MET worked example
// (same ETC matrix as the MCT example) in which random tie-breaking
// increases the makespan from 4 to 5 (paper §3.4).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  static const auto example = hcsched::core::met_example();
  return hcsched::bench::run_example_main(argc, argv, example);
}
