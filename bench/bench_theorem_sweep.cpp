// Theorem sweep (paper §3.2-3.4): verifies at scale that Min-Min, MCT and
// MET mappings are invariant under the iterative technique with
// deterministic ties — and that SWA/KPB/Sufferage are not — then times the
// verification itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/theorems.hpp"
#include "core/witness.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "report/table.hpp"

namespace {

using hcsched::core::verify_theorem;
using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::rng::Rng;
using hcsched::sched::Problem;

constexpr std::size_t kMatricesPerHeuristic = 400;

hcsched::etc::EtcMatrix tie_rich(Rng& rng, std::size_t tasks,
                                 std::size_t machines) {
  hcsched::etc::EtcMatrix m(tasks, machines);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t j = 0; j < machines; ++j) {
      m.at(static_cast<int>(t), static_cast<int>(j)) =
          static_cast<double>(rng.between(1, 6));
    }
  }
  return m;
}

void print_sweep_table() {
  hcsched::report::TextTable table(
      {"heuristic", "matrices", "invariant", "violations",
       "paper theorem says"});
  for (const char* name :
       {"Min-Min", "MCT", "MET", "SWA", "KPB", "Sufferage"}) {
    const auto heuristic = hcsched::heuristics::make_heuristic(name);
    Rng rng(12345);
    std::size_t invariant = 0;
    for (std::size_t i = 0; i < kMatricesPerHeuristic; ++i) {
      const auto m = tie_rich(rng, 12, 4);
      if (verify_theorem(*heuristic, Problem::full(m)).holds) ++invariant;
    }
    const bool theorem_holds =
        std::string(name) == "Min-Min" || std::string(name) == "MCT" ||
        std::string(name) == "MET";
    table.add_row({name, std::to_string(kMatricesPerHeuristic),
                   std::to_string(invariant),
                   std::to_string(kMatricesPerHeuristic - invariant),
                   theorem_holds ? "always invariant" : "may change"});
  }
  std::printf(
      "=== Theorem sweep (paper §3.2-3.4): mapping invariance under "
      "deterministic ties, %zu tie-rich 12x4 matrices each ===\n%s\n",
      kMatricesPerHeuristic, table.to_string().c_str());
}

void BM_VerifyTheorem(benchmark::State& state, const char* name) {
  const auto heuristic = hcsched::heuristics::make_heuristic(name);
  Rng rng(7);
  const auto m = tie_rich(rng, 12, 4);
  const Problem problem = Problem::full(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_theorem(*heuristic, problem));
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_sweep_table();
  benchmark::RegisterBenchmark("verify_theorem/MinMin", BM_VerifyTheorem,
                               "Min-Min");
  benchmark::RegisterBenchmark("verify_theorem/MCT", BM_VerifyTheorem, "MCT");
  benchmark::RegisterBenchmark("verify_theorem/MET", BM_VerifyTheorem, "MET");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
