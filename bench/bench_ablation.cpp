// EXT-7: ablations of the design choices DESIGN.md calls out.
//
//  (a) SWA low threshold: the paper's value is OCR-damaged; DESIGN.md §4
//      claims any low in (4/13, 0.49) reproduces the Table 10/11 traces.
//      Swept here so the claim is machine-checked.
//  (b) KPB k: sensitivity of the paper's Table 12-14 example to k, showing
//      the subset-size cliff (k below 34% of 3 machines behaves like MET in
//      the original mapping too; k = 100% is MCT and cannot increase).
//  (c) The §5 seeding proposal: wrapping SWA/KPB/Sufferage in
//      heuristics::Seeded drives their makespan-increase rate to exactly 0.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/paper_examples.hpp"
#include "core/witness.hpp"
#include "heuristics/kpb.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/seeded.hpp"
#include "heuristics/sufferage.hpp"
#include "heuristics/swa.hpp"
#include "report/table.hpp"

namespace {

using hcsched::core::IterativeMinimizer;
using hcsched::core::IterativeOptions;
using hcsched::report::TextTable;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;

void print_swa_threshold_sweep() {
  const auto example = hcsched::core::swa_example();
  const Problem problem = Problem::full(*example.matrix);
  TextTable table({"low threshold", "original CTs", "final CTs",
                   "makespan", "reproduces paper"});
  const IterativeMinimizer minimizer{
      IterativeOptions{.use_seeding = false}};
  for (double low : {0.20, 0.30, 4.0 / 13.0 + 0.01, 0.35, 0.40, 0.48}) {
    hcsched::heuristics::Swa swa(low, 0.49);
    TieBreaker ties;
    const auto result = minimizer.run(swa, problem, ties);
    std::string orig;
    std::string fin;
    for (std::size_t m = 0; m < 3; ++m) {
      if (m != 0) {
        orig += ", ";
        fin += ", ";
      }
      orig += TextTable::num(result.original().schedule.completion_time(
          static_cast<int>(m)));
      fin += TextTable::num(result.final_finish_of(static_cast<int>(m)));
    }
    const bool reproduces =
        result.final_finish_of(1) == 4.0 &&
        result.final_finish_of(2) == 6.5 && result.original().makespan == 6.0;
    table.add_row({TextTable::num(low, 4), orig, fin,
                   TextTable::num(result.original().makespan) + " -> " +
                       TextTable::num(result.final_makespan()),
                   reproduces ? "yes" : "no"});
  }
  std::printf(
      "=== EXT-7a SWA low-threshold ablation on the Table 9 matrix "
      "(high = 0.49) ===\n%s"
      "DESIGN.md claim: every low in (4/13 = 0.3077, 0.49) reproduces the "
      "paper's 6 -> 6.5 trace; values at or below 4/13 change the first "
      "iterative mapping.\n\n",
      table.to_string().c_str());
}

void print_kpb_percent_sweep() {
  const auto example = hcsched::core::kpb_example();
  const Problem problem = Problem::full(*example.matrix);
  TextTable table({"k (%)", "orig subset", "iter subset", "makespan",
                   "increased"});
  const IterativeMinimizer minimizer{
      IterativeOptions{.use_seeding = false}};
  for (double k : {34.0, 50.0, 70.0, 90.0, 100.0}) {
    hcsched::heuristics::Kpb kpb(k);
    TieBreaker ties;
    const auto result = minimizer.run(kpb, problem, ties);
    table.add_row({TextTable::num(k),
                   std::to_string(kpb.subset_size(3)) + "/3",
                   std::to_string(kpb.subset_size(2)) + "/2",
                   TextTable::num(result.original().makespan) + " -> " +
                       TextTable::num(result.final_makespan()),
                   result.makespan_increased() ? "yes" : "no"});
  }
  std::printf(
      "=== EXT-7b KPB k ablation on the Table 12 matrix ===\n%s"
      "The paper's phenomenon needs the subset-size cliff: at k = 100%% "
      "(MCT) the theorem applies and no increase is possible.\n\n",
      table.to_string().c_str());
}

void print_seeded_wrapper_study() {
  TextTable table(
      {"heuristic", "bare increase rate", "Seeded<> increase rate"});
  constexpr std::size_t kTrials = 1500;
  for (const char* name : {"SWA", "KPB", "Sufferage"}) {
    hcsched::core::WitnessSpec spec;
    spec.num_tasks = 6;
    spec.num_machines = 3;
    spec.half_integers = true;

    const auto bare = hcsched::heuristics::make_heuristic(name);
    Rng r1(9);
    const double bare_rate =
        hcsched::core::makespan_increase_rate(*bare, spec, r1, kTrials);

    // The Seeded wrapper needs seeding enabled in the iterative runner, so
    // measure its rate directly.
    const auto wrapped = hcsched::heuristics::make_seeded(name);
    Rng r2(9);
    std::size_t hits = 0;
    const IterativeMinimizer minimizer{
        IterativeOptions{.use_seeding = true}};
    for (std::size_t i = 0; i < kTrials; ++i) {
      const auto matrix = hcsched::core::sample_matrix(spec, r2);
      TieBreaker ties;
      const auto result =
          minimizer.run(*wrapped, Problem::full(matrix), ties);
      if (result.makespan_increased()) ++hits;
    }
    table.add_row({name,
                   TextTable::num(bare_rate * 100.0, 2) + "%",
                   TextTable::num(100.0 * static_cast<double>(hits) /
                                      static_cast<double>(kTrials),
                                  2) +
                       "%"});
  }
  std::printf(
      "=== EXT-7c the paper's §5 proposal: Seeded<> wrapper (%zu matrices "
      "per cell) ===\n%s"
      "Paper §5: seeding \"would guarantee that a heuristic can never "
      "increase makespan from one iteration to the next\" — the wrapped "
      "column must be exactly 0%%.\n\n",
      kTrials, table.to_string().c_str());
}

void print_sufferage_requeue_ablation() {
  // EXT-7d: DESIGN.md documents that displaced Sufferage tasks re-enter
  // the next pass in original task order (Figure 17 leaves it open). Check
  // the makespan-increase phenomenon is insensitive to that choice.
  TextTable table({"requeue order", "increase rate (3000 matrices)"});
  for (const auto& [label, order] :
       {std::pair{"original task order",
                  hcsched::heuristics::SufferageRequeue::kOriginalOrder},
        std::pair{"encounter order",
                  hcsched::heuristics::SufferageRequeue::kEncounterOrder}}) {
    const hcsched::heuristics::Sufferage sufferage(order);
    hcsched::core::WitnessSpec spec;
    spec.num_tasks = 6;
    spec.num_machines = 3;
    spec.half_integers = true;
    Rng rng(11);
    const double rate =
        hcsched::core::makespan_increase_rate(sufferage, spec, rng, 3000);
    table.add_row({label, TextTable::num(rate * 100.0, 2) + "%"});
  }
  std::printf(
      "=== EXT-7d Sufferage requeue-order ablation ===\n%s"
      "Both orders exhibit the paper's deterministic-tie makespan increase "
      "at a similar (low) rate.\n\n",
      table.to_string().c_str());
}

void BM_SeededOverhead(benchmark::State& state) {
  const auto wrapped = hcsched::heuristics::make_seeded("Sufferage");
  const auto example = hcsched::core::sufferage_example();
  const Problem problem = Problem::full(*example.matrix);
  const IterativeMinimizer minimizer{IterativeOptions{.use_seeding = true}};
  for (auto _ : state) {
    TieBreaker ties;
    benchmark::DoNotOptimize(minimizer.run(*wrapped, problem, ties));
  }
}

}  // namespace

BENCHMARK(BM_SeededOverhead);

int main(int argc, char** argv) {
  print_swa_threshold_sweep();
  print_kpb_percent_sweep();
  print_seeded_wrapper_study();
  print_sufferage_requeue_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
