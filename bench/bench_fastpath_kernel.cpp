// Reference vs fast-path kernel for every fastpath-covered heuristic over
// the m x t grid from docs/FASTPATH.md (m in {8, 32, 128}, t in {128, 512,
// 2048}).
//
// Two sections:
//  * A manual timing sweep that cross-checks schedule equivalence per cell,
//    prints a comparison table, and writes BENCH_fastpath.json (path
//    overridable with --json-out <path>) — the machine-readable record the
//    ISSUE acceptance bars (>= 2x Min-Min, >= 5x Sufferage at t=2048,
//    m=128) are checked against. The heuristic rows are derived from the
//    fastpath dispatch table (fastpath.hpp kernel_table()), so a new kernel
//    lands in the baseline — and in tools/bench_check's required-row set —
//    the moment it is registered.
//  * The usual google-benchmark registration of both paths, for
//    --benchmark_filter-style exploration.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "etc/cvb_generator.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "obs/json.hpp"
#include "rng/rng.hpp"
#include "rng/tie_break.hpp"

namespace {

namespace fastpath = hcsched::heuristics::fastpath;
using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::etc::EtcMatrix;
using hcsched::obs::JsonValue;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

constexpr std::size_t kMachines[] = {8, 32, 128};
constexpr std::size_t kTasks[] = {128, 512, 2048};

EtcMatrix make_matrix(std::size_t tasks, std::size_t machines) {
  hcsched::rng::Rng rng(tasks * 131 + machines);
  CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return CvbEtcGenerator(p).generate(rng);
}

Schedule run_path(const fastpath::KernelInfo& info, const Problem& problem,
                  bool use_fastpath) {
  TieBreaker ties;
  return use_fastpath ? info.fast(problem, ties)
                      : info.reference(problem, ties);
}

/// Best-of-reps wall time of one path on one problem, in nanoseconds.
/// Minimum (not mean) because scheduling noise only ever adds time.
std::uint64_t time_path_ns(const fastpath::KernelInfo& info,
                           const Problem& problem, bool use_fastpath,
                           int reps) {
  std::uint64_t best = ~std::uint64_t{0};
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    Schedule s = run_path(info, problem, use_fastpath);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(s);
    best = std::min(best, static_cast<std::uint64_t>(
                              std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(stop - start)
                                  .count()));
  }
  return best;
}

/// The manual sweep: every grid cell for every dispatch-table kernel,
/// equivalence cross-checked, table printed, JSON written. Returns false if
/// any cell diverged (the JSON still records it).
bool run_sweep(const std::string& json_path) {
  bool all_equivalent = true;
  JsonValue::Array cells;
  std::printf(
      "%-10s %6s %9s | %12s %12s %8s\n", "heur", "tasks", "machines",
      "reference_ms", "fastpath_ms", "speedup");
  for (const fastpath::KernelInfo& info : fastpath::kernel_table()) {
    for (const std::size_t tasks : kTasks) {
      for (const std::size_t machines : kMachines) {
        const EtcMatrix matrix = make_matrix(tasks, machines);
        const Problem problem = Problem::full(matrix);
        const Schedule ref = run_path(info, problem, /*use_fastpath=*/false);
        const Schedule fast = run_path(info, problem, /*use_fastpath=*/true);
        const bool equivalent =
            ref.same_mapping(fast) &&
            ref.completion_times_by_slot() == fast.completion_times_by_slot();
        all_equivalent = all_equivalent && equivalent;
        // Warm runs above already touched every cache line; fewer reps at
        // the big sizes keep the sweep bounded.
        const int reps = tasks >= 2048 ? 3 : 5;
        const std::uint64_t ref_ns =
            time_path_ns(info, problem, false, reps);
        const std::uint64_t fast_ns =
            time_path_ns(info, problem, true, reps);
        const double speedup = fast_ns == 0
                                   ? 0.0
                                   : static_cast<double>(ref_ns) /
                                         static_cast<double>(fast_ns);
        std::printf("%-10s %6zu %9zu | %12.3f %12.3f %7.2fx%s\n", info.name,
                    tasks, machines, static_cast<double>(ref_ns) / 1e6,
                    static_cast<double>(fast_ns) / 1e6, speedup,
                    equivalent ? "" : "  DIVERGED");
        JsonValue::Object cell;
        cell.emplace_back("heuristic", JsonValue(info.name));
        cell.emplace_back("tasks", JsonValue(tasks));
        cell.emplace_back("machines", JsonValue(machines));
        cell.emplace_back("reference_ns", JsonValue(ref_ns));
        cell.emplace_back("fastpath_ns", JsonValue(fast_ns));
        cell.emplace_back("speedup", JsonValue(speedup));
        cell.emplace_back("equivalent", JsonValue(equivalent));
        cells.emplace_back(std::move(cell));
      }
    }
  }
  JsonValue::Object doc;
  doc.emplace_back("bench", JsonValue("fastpath_kernel"));
  doc.emplace_back("tie_policy", JsonValue("deterministic"));
  doc.emplace_back("timing", JsonValue("best of 3-5 runs, steady_clock"));
  doc.emplace_back("all_equivalent", JsonValue(all_equivalent));
  doc.emplace_back("cells", JsonValue(std::move(cells)));
  std::ofstream out(json_path);
  out << JsonValue(std::move(doc)).dump(2) << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return all_equivalent;
}

void BM_Kernel(benchmark::State& state, const fastpath::KernelInfo* info,
               bool use_fastpath) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  const EtcMatrix matrix = make_matrix(tasks, machines);
  const Problem problem = Problem::full(matrix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_path(*info, problem, use_fastpath));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks));
}

void register_benchmarks() {
  for (const fastpath::KernelInfo& info : fastpath::kernel_table()) {
    for (const bool use_fastpath : {false, true}) {
      const std::string label = std::string(info.name) +
                                (use_fastpath ? "/fastpath" : "/reference");
      auto* bench = benchmark::RegisterBenchmark(label.c_str(), BM_Kernel,
                                                 &info, use_fastpath);
      for (const std::size_t tasks : kTasks) {
        for (const std::size_t machines : kMachines) {
          bench->Args(
              {static_cast<long>(tasks), static_cast<long>(machines)});
        }
      }
      bench->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fastpath.json";
  // Strip --json-out before google-benchmark sees (and rejects) it.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  const bool equivalent = run_sweep(json_path);
  register_benchmarks();
  benchmark::Initialize(&out_argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return equivalent ? 0 : 1;
}
