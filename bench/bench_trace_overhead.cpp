// Measures the cost of the observability layer on the hot iterative loop.
//
// Four configurations of the same Min-Min iterative run:
//   * baseline      — no sink installed: every HCSCHED_TRACE_EVENT site is
//                     one relaxed atomic load and a not-taken branch,
//   * null_sink     — events are built and routed but discarded, isolating
//                     payload-construction cost,
//   * ring_sink     — events land in the bounded in-memory buffer,
//   * jsonl_sink    — events are serialized to a JSON line (into a string
//                     stream, so no disk in the loop).
//
// Micro-cases isolate the span and metric primitives the study pipeline
// leans on since the profiling layer landed:
//   * span_enter_exit       — one HCSCHED_SPAN open/close, no sink / ring
//                             sink (the per-iteration span cost),
//   * metric_counter_add    — one HCSCHED_METRIC_COUNT hit (cached-static
//                             lookup plus a relaxed fetch_add),
//   * metric_histogram_rec  — one HCSCHED_METRIC_OBSERVE (bucket index plus
//                             three relaxed fetch_adds).
//
// Build the library with -DHCSCHED_TRACE=0 (the `trace-off` preset) and
// re-run to verify the compile-time kill switch: every row collapses onto
// its baseline — the macro sites compile to `do { } while (0)`, so the
// span/metric micro-cases measure an empty loop body.
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "core/iterative.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rng/rng.hpp"

namespace {

using namespace hcsched;

etc::EtcMatrix make_matrix(std::size_t tasks, std::size_t machines) {
  etc::CvbParams params;
  params.num_tasks = tasks;
  params.num_machines = machines;
  rng::Rng rng(2024);
  return etc::CvbEtcGenerator(params).generate(rng);
}

void run_iterative(benchmark::State& state,
                   std::shared_ptr<obs::TraceSink> sink) {
  const etc::EtcMatrix matrix =
      make_matrix(static_cast<std::size_t>(state.range(0)), 8);
  const sched::Problem problem = sched::Problem::full(matrix);
  const auto heuristic = heuristics::make_heuristic("Min-Min");
  const core::IterativeMinimizer minimizer;

  std::optional<obs::ScopedSink> scope;
  if (sink) scope.emplace(std::move(sink));
  for (auto _ : state) {
    rng::TieBreaker ties;
    benchmark::DoNotOptimize(minimizer.run(*heuristic, problem, ties));
  }
  state.SetLabel(obs::kTraceCompiledIn ? "trace compiled in"
                                       : "trace compiled out");
}

void BM_Baseline(benchmark::State& state) { run_iterative(state, nullptr); }

void BM_NullSink(benchmark::State& state) {
  run_iterative(state, std::make_shared<obs::NullSink>());
}

void BM_RingSink(benchmark::State& state) {
  run_iterative(state, std::make_shared<obs::RingBufferSink>(4096));
}

void BM_JsonlSink(benchmark::State& state) {
  auto stream = std::make_shared<std::ostringstream>();
  // Keep the stream alive alongside the sink; reset it each iteration batch
  // is unnecessary — we only measure serialization cost, not growth.
  class OwningJsonl final : public obs::TraceSink {
   public:
    explicit OwningJsonl(std::shared_ptr<std::ostringstream> s)
        : stream_(std::move(s)), inner_(*stream_) {}
    void consume(const obs::TraceEvent& event) override {
      inner_.consume(event);
    }
    void flush() override { inner_.flush(); }

   private:
    std::shared_ptr<std::ostringstream> stream_;
    obs::JsonlSink inner_;
  };
  run_iterative(state, std::make_shared<OwningJsonl>(std::move(stream)));
}

// --- span / metric primitive micro-costs ---------------------------------

void BM_SpanEnterExitNoSink(benchmark::State& state) {
  // No sink installed: the span constructor takes the not-recording early
  // exit (one atomic load), allocating no IDs and reading no clock. Under
  // trace-off this is an empty loop body — the zero-overhead pin.
  for (auto _ : state) {
    HCSCHED_SPAN(span, "bench.probe");
    benchmark::DoNotOptimize(&span);
  }
  state.SetLabel(obs::kTraceCompiledIn ? "trace compiled in"
                                       : "trace compiled out");
}

void BM_SpanEnterExitRingSink(benchmark::State& state) {
  const obs::ScopedSink scope(std::make_shared<obs::RingBufferSink>(4096));
  for (auto _ : state) {
    HCSCHED_SPAN(span, "bench.probe");
    benchmark::DoNotOptimize(&span);
  }
  state.SetLabel(obs::kTraceCompiledIn ? "trace compiled in"
                                       : "trace compiled out");
}

void BM_MetricCounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    HCSCHED_METRIC_COUNT("hcsched_bench_probe_total", "", 1);
  }
  state.SetLabel(obs::kTraceCompiledIn ? "trace compiled in"
                                       : "trace compiled out");
}

void BM_MetricHistogramRecord(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    HCSCHED_METRIC_OBSERVE("hcsched_bench_probe_ns", "", ++v);
  }
  state.SetLabel(obs::kTraceCompiledIn ? "trace compiled in"
                                       : "trace compiled out");
}

BENCHMARK(BM_Baseline)->Arg(64)->Arg(256);
BENCHMARK(BM_NullSink)->Arg(64)->Arg(256);
BENCHMARK(BM_RingSink)->Arg(64)->Arg(256);
BENCHMARK(BM_JsonlSink)->Arg(64)->Arg(256);
BENCHMARK(BM_SpanEnterExitNoSink);
BENCHMARK(BM_SpanEnterExitRingSink);
BENCHMARK(BM_MetricCounterAdd);
BENCHMARK(BM_MetricHistogramRecord);

}  // namespace

BENCHMARK_MAIN();
