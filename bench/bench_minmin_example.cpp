// Regenerates paper Tables 1-3 and Figures 3-4: the Min-Min worked example
// in which random tie-breaking increases the makespan from 5 to 6 under the
// iterative technique (paper §3.2).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  static const auto example = hcsched::core::minmin_example();
  return hcsched::bench::run_example_main(argc, argv, example);
}
