// EXT-4: cost model of the iterative technique. A full run is |M| - 1
// re-mappings on shrinking instances, so its cost relative to one mapping
// grows roughly linearly in the machine count (sub-linearly in practice as
// the task set shrinks). Measured for a cheap (MCT) and an expensive
// (Min-Min) heuristic.
#include <benchmark/benchmark.h>

#include "core/iterative.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "rng/rng.hpp"

namespace {

using hcsched::core::IterativeMinimizer;
using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::etc::EtcMatrix;
using hcsched::sched::Problem;

EtcMatrix make_matrix(std::size_t tasks, std::size_t machines) {
  hcsched::rng::Rng rng(tasks * 7 + machines * 3);
  CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return CvbEtcGenerator(p).generate(rng);
}

void BM_IterativeRun(benchmark::State& state, const char* name) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  const std::size_t tasks = machines * 16;  // fixed tasks-per-machine ratio
  const auto heuristic = hcsched::heuristics::make_heuristic(name);
  const EtcMatrix matrix = make_matrix(tasks, machines);
  const Problem problem = Problem::full(matrix);
  const IterativeMinimizer minimizer;
  for (auto _ : state) {
    hcsched::rng::TieBreaker ties;
    benchmark::DoNotOptimize(minimizer.run(*heuristic, problem, ties));
  }
  state.SetComplexityN(static_cast<std::int64_t>(machines));
}

void BM_SingleMap(benchmark::State& state, const char* name) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  const std::size_t tasks = machines * 16;
  const auto heuristic = hcsched::heuristics::make_heuristic(name);
  const EtcMatrix matrix = make_matrix(tasks, machines);
  const Problem problem = Problem::full(matrix);
  for (auto _ : state) {
    hcsched::rng::TieBreaker ties;
    benchmark::DoNotOptimize(heuristic->map(problem, ties));
  }
  state.SetComplexityN(static_cast<std::int64_t>(machines));
}

void register_pair(const char* name, std::initializer_list<long> sizes) {
  auto* a = benchmark::RegisterBenchmark(
      (std::string("iterative_run/") + name).c_str(), BM_IterativeRun, name);
  auto* b = benchmark::RegisterBenchmark(
      (std::string("single_map/") + name).c_str(), BM_SingleMap, name);
  for (long n : sizes) {
    a->Arg(n);
    b->Arg(n);
  }
  a->Unit(benchmark::kMicrosecond)->Complexity();
  b->Unit(benchmark::kMicrosecond)->Complexity();
}

}  // namespace

int main(int argc, char** argv) {
  register_pair("MCT", {4, 8, 16, 32});
  register_pair("Min-Min", {4, 8, 16});
  register_pair("Sufferage", {4, 8, 16});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
