// EXT-6: witness-search characterization — how hard is it to find an ETC
// matrix on which a heuristic's makespan increases under the iterative
// technique? Reports trials-to-first-witness per heuristic and benches the
// screening throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/witness.hpp"
#include "etc/etc_io.hpp"
#include "heuristics/registry.hpp"
#include "report/table.hpp"

namespace {

using hcsched::core::find_makespan_increase_witness;
using hcsched::core::WitnessSpec;
using hcsched::report::TextTable;
using hcsched::rng::Rng;
using hcsched::rng::TiePolicy;

void print_witness_table() {
  TextTable table({"heuristic", "tie policy", "trials to witness",
                   "makespan before -> after"});
  struct Cell {
    const char* name;
    TiePolicy policy;
  };
  for (const Cell& cell :
       {Cell{"SWA", TiePolicy::kDeterministic},
        Cell{"KPB", TiePolicy::kDeterministic},
        Cell{"Sufferage", TiePolicy::kDeterministic},
        Cell{"Min-Min", TiePolicy::kRandom}, Cell{"MCT", TiePolicy::kRandom},
        Cell{"MET", TiePolicy::kRandom}}) {
    const auto heuristic = hcsched::heuristics::make_heuristic(cell.name);
    WitnessSpec spec;
    spec.num_tasks = 6;
    spec.num_machines = 3;
    spec.half_integers = true;
    spec.policy = cell.policy;
    Rng rng(42);
    const auto witness =
        find_makespan_increase_witness(*heuristic, spec, rng, 500000);
    if (witness) {
      table.add_row(
          {cell.name,
           cell.policy == TiePolicy::kDeterministic ? "deterministic"
                                                    : "random",
           std::to_string(witness->trials_used),
           TextTable::num(witness->original_makespan) + " -> " +
               TextTable::num(witness->final_makespan)});
    } else {
      table.add_row({cell.name,
                     cell.policy == TiePolicy::kDeterministic
                         ? "deterministic"
                         : "random",
                     "none in 500k", "-"});
    }
  }
  std::printf(
      "=== EXT-6 witness search (6 tasks x 3 machines, half-integer ETCs) "
      "===\n%s\n"
      "One found witness matrix (SWA, deterministic):\n",
      table.to_string().c_str());

  // Print one witness in full so the phenomenon is inspectable.
  const auto swa = hcsched::heuristics::make_heuristic("SWA");
  WitnessSpec spec;
  spec.num_tasks = 6;
  spec.num_machines = 3;
  spec.half_integers = true;
  Rng rng(42);
  if (const auto w = find_makespan_increase_witness(*swa, spec, rng)) {
    std::printf("%s\n", hcsched::etc::to_csv(*w->matrix).c_str());
  }
}

void BM_WitnessScreening(benchmark::State& state, const char* name) {
  const auto heuristic = hcsched::heuristics::make_heuristic(name);
  WitnessSpec spec;
  spec.num_tasks = 6;
  spec.num_machines = 3;
  Rng rng(1);
  for (auto _ : state) {
    const auto m = hcsched::core::sample_matrix(spec, rng);
    benchmark::DoNotOptimize(
        hcsched::core::try_matrix(*heuristic, m, spec, rng));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  print_witness_table();
  benchmark::RegisterBenchmark("screen_matrix/SWA", BM_WitnessScreening,
                               "SWA");
  benchmark::RegisterBenchmark("screen_matrix/KPB", BM_WitnessScreening,
                               "KPB");
  benchmark::RegisterBenchmark("screen_matrix/Sufferage",
                               BM_WitnessScreening, "Sufferage");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
