// Shared machinery for the paper-example bench binaries: prints the
// reproduced tables (ETC matrix, per-iteration allocations, completion
// times) and figures (ASCII Gantt charts), compares against the paper's
// reported values, then hands control to google-benchmark for the timing
// section.
#pragma once

#include <benchmark/benchmark.h>

#include "core/paper_examples.hpp"
#include "obs/counters.hpp"

namespace hcsched::bench {

/// Prints a table of operation-counter values (one row per counter). Pass a
/// delta from counters::Snapshot::delta_since to scope it to one section.
void print_counter_snapshot(const obs::counters::Snapshot& delta);

/// Prints the full reproduction of one worked example:
///  * the reconstructed ETC matrix (paper's "Table N: ETC matrix ..."),
///  * the original mapping table + Gantt figure,
///  * the first iterative mapping table + Gantt figure,
///  * paper-reported vs measured completion times and makespans.
/// Returns false (and prints FAIL) if the measured values disagree with the
/// example's locked expectations.
bool print_example_reproduction(const core::PaperExample& example);

/// Registers the standard timing benchmarks for an example: the single
/// heuristic mapping and the full iterative run. `example` must outlive the
/// benchmark run (pass a function-local static).
void register_example_benchmarks(const core::PaperExample& example);

/// Shared main body: print reproduction, then run google-benchmark.
int run_example_main(int argc, char** argv, const core::PaperExample& example);

}  // namespace hcsched::bench
