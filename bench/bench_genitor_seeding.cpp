// EXT-5 / paper §3.1: Genitor under the iterative technique. With seeding
// (the paper's protocol) the effective makespan never increases; without
// seeding each iteration restarts cold and can do worse. Also reports the
// ablation the paper's §5 suggests — "implementing a form of seeding
// similar to Genitor's to other heuristics would guarantee no increase".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/iterative.hpp"
#include "core/theorems.hpp"
#include "etc/cvb_generator.hpp"
#include "ga/genitor.hpp"
#include "report/table.hpp"
#include "rng/rng.hpp"

namespace {

using hcsched::core::IterativeMinimizer;
using hcsched::core::IterativeOptions;
using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::etc::EtcMatrix;
using hcsched::ga::Genitor;
using hcsched::ga::GenitorConfig;
using hcsched::report::TextTable;
using hcsched::sched::Problem;

EtcMatrix make_matrix(std::uint64_t seed) {
  hcsched::rng::Rng rng(seed);
  CvbParams p;
  p.num_tasks = 24;
  p.num_machines = 6;
  return CvbEtcGenerator(p).generate(rng);
}

GenitorConfig study_config() {
  GenitorConfig cfg;
  cfg.population_size = 60;
  cfg.total_steps = 800;
  return cfg;
}

void print_seeding_study() {
  constexpr std::uint64_t kTrials = 20;
  const Genitor genitor(study_config());
  std::size_t seeded_increases = 0;
  std::size_t unseeded_increases = 0;
  double seeded_final_mean = 0.0;
  double unseeded_final_mean = 0.0;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    const EtcMatrix m = make_matrix(seed);
    const Problem problem = Problem::full(m);
    hcsched::rng::TieBreaker t1;
    const auto seeded =
        IterativeMinimizer{IterativeOptions{.use_seeding = true}}.run(
            genitor, problem, t1);
    hcsched::rng::TieBreaker t2;
    const auto unseeded =
        IterativeMinimizer{IterativeOptions{.use_seeding = false}}.run(
            genitor, problem, t2);
    if (seeded.makespan_increased()) ++seeded_increases;
    if (unseeded.makespan_increased()) ++unseeded_increases;
    seeded_final_mean += seeded.final_makespan() / seeded.original().makespan;
    unseeded_final_mean +=
        unseeded.final_makespan() / unseeded.original().makespan;
  }
  TextTable table({"protocol", "makespan increases", "trials",
                   "mean final/original makespan"});
  table.add_row({"seeded (paper §3.1)", std::to_string(seeded_increases),
                 std::to_string(kTrials),
                 TextTable::num(seeded_final_mean / kTrials, 4)});
  table.add_row({"unseeded (ablation)", std::to_string(unseeded_increases),
                 std::to_string(kTrials),
                 TextTable::num(unseeded_final_mean / kTrials, 4)});
  std::printf(
      "=== EXT-5 Genitor seeding ablation (24 tasks x 6 machines, %llu "
      "trials) ===\n%s\n"
      "Paper claim: the seeded protocol can never increase the makespan "
      "(elitism preserves the seeded mapping), so its row must show 0.\n\n",
      static_cast<unsigned long long>(kTrials), table.to_string().c_str());
}

void BM_GenitorMap(benchmark::State& state) {
  GenitorConfig cfg = study_config();
  cfg.total_steps = static_cast<std::size_t>(state.range(0));
  const Genitor genitor(cfg);
  const EtcMatrix m = make_matrix(99);
  const Problem problem = Problem::full(m);
  for (auto _ : state) {
    hcsched::rng::TieBreaker ties;
    benchmark::DoNotOptimize(genitor.map(problem, ties));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_GenitorMap)->Arg(200)->Arg(800)->Arg(3200)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  print_seeding_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
