// EXT-1: Monte-Carlo characterization of the iterative technique (the
// study the paper motivates but evaluates only analytically). For every
// heuristic and heterogeneity/consistency cell: how many non-makespan
// machines improved / stayed / worsened, the mean relative finishing-time
// change, and how often the effective makespan increased.
//
// Besides the printed tables, the run writes BENCH_iterative.json (path
// overridable with --json-out <path>) in the same shape as
// BENCH_fastpath.json — the machine-readable record the checked-in
// baseline at the repo root is refreshed from.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/cancel.hpp"
#include "obs/json.hpp"
#include "report/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace {

using hcsched::obs::JsonValue;
using hcsched::report::TextTable;
using hcsched::sim::StudyParams;
using hcsched::sim::ThreadPool;

StudyParams base_params() {
  StudyParams params;
  params.heuristics = {"MET",       "MCT", "Min-Min", "Genitor", "SWA",
                       "Sufferage", "KPB"};
  params.cvb.num_tasks = 24;
  params.cvb.num_machines = 6;
  params.cvb.mean_task_time = 1000.0;
  params.trials = 25;
  params.seed = 20070326;  // IPDPS 2007
  return params;
}

void print_study(const std::string& json_path) {
  ThreadPool pool;
  const StudyParams base = base_params();

  // Condensed sweep: the four heterogeneity cells on inconsistent matrices
  // plus one consistent cell (full 12-cell grid via --full if needed).
  std::vector<hcsched::sim::SweepPoint> points;
  for (const auto& p : hcsched::sim::standard_sweep()) {
    if (p.consistency == hcsched::etc::Consistency::kInconsistent ||
        p.label == "consistent HiHi") {
      points.push_back(p);
    }
  }

  // One point per run_sweep call so each cell gets its own wall time; the
  // study itself is deterministic, only wall_ms varies between runs.
  JsonValue::Array cells;
  for (const auto& point : points) {
    const auto start = std::chrono::steady_clock::now();
    const auto results = hcsched::sim::run_sweep(base, {point}, pool);
    const auto stop = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    const auto& cell = results.front();

    TextTable table({"heuristic", "improved", "unchanged", "worsened",
                     "mean dCT/CT", "makespan increases", "trials"});
    JsonValue::Array rows;
    for (const auto& row : cell.rows) {
      table.add_row(
          {row.heuristic, std::to_string(row.machines_improved),
           std::to_string(row.machines_unchanged),
           std::to_string(row.machines_worsened),
           TextTable::num(row.finish_delta.mean() * 100.0, 2) + "%",
           std::to_string(row.makespan_increases),
           std::to_string(row.trials)});
      JsonValue::Object json_row;
      json_row.emplace_back("heuristic", JsonValue(row.heuristic));
      json_row.emplace_back("improved", JsonValue(row.machines_improved));
      json_row.emplace_back("unchanged", JsonValue(row.machines_unchanged));
      json_row.emplace_back("worsened", JsonValue(row.machines_worsened));
      json_row.emplace_back("mean_finish_delta",
                            JsonValue(row.finish_delta.mean()));
      json_row.emplace_back("makespan_increases",
                            JsonValue(row.makespan_increases));
      json_row.emplace_back("trials", JsonValue(row.trials));
      rows.emplace_back(std::move(json_row));
    }
    std::printf("=== EXT-1 iterative study — %s (24 tasks x 6 machines, "
                "deterministic ties) ===\n%s\n",
                cell.point.label.c_str(), table.to_string().c_str());

    JsonValue::Object json_cell;
    json_cell.emplace_back("point", JsonValue(cell.point.label));
    json_cell.emplace_back("tasks", JsonValue(base.cvb.num_tasks));
    json_cell.emplace_back("machines", JsonValue(base.cvb.num_machines));
    json_cell.emplace_back("trials", JsonValue(base.trials));
    json_cell.emplace_back("wall_ms", JsonValue(wall_ms));
    json_cell.emplace_back("rows", JsonValue(std::move(rows)));
    cells.emplace_back(std::move(json_cell));
  }
  std::printf(
      "Reading: MET/MCT/Min-Min rows are all-unchanged (the paper's "
      "theorems); Genitor never increases makespan (seeded elitism); "
      "SWA/KPB/Sufferage both improve and worsen machines and can increase "
      "the makespan — the paper's §5 conclusion.\n\n");

  JsonValue::Object doc;
  doc.emplace_back("bench", JsonValue("iterative_study"));
  doc.emplace_back("tie_policy", JsonValue("deterministic"));
  doc.emplace_back("timing", JsonValue("single pass per cell, steady_clock"));
  doc.emplace_back("seed", JsonValue(base.seed));
  doc.emplace_back("cells", JsonValue(std::move(cells)));
  std::ofstream out(json_path);
  out << JsonValue(std::move(doc)).dump(2) << "\n";
  std::printf("wrote %s\n", json_path.c_str());
}

void BM_StudyCell(benchmark::State& state) {
  ThreadPool pool;
  StudyParams params = base_params();
  params.trials = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hcsched::sim::run_iterative_study(params, pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.trials));
}

void BM_StudyCellIdleRobustness(benchmark::State& state) {
  // Same study as BM_StudyCell, but through the robustness surface: a
  // never-cancelled token threaded down to every chunk while the fault
  // sites stay disarmed. The disabled machinery costs one relaxed atomic
  // load per site and one thread-local read per cancellation poll, so this
  // must benchmark indistinguishably from BM_StudyCell — compare the two
  // to pin the overhead.
  ThreadPool pool;
  StudyParams params = base_params();
  params.trials = static_cast<std::size_t>(state.range(0));
  const hcsched::core::CancelToken token;
  hcsched::sim::StudyHooks hooks;
  hooks.cancel = &token;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hcsched::sim::run_iterative_study_report(params, pool, hooks));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.trials));
}

}  // namespace

BENCHMARK(BM_StudyCell)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StudyCellIdleRobustness)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::string json_path = "BENCH_iterative.json";
  // Strip --json-out before google-benchmark sees (and rejects) it.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  print_study(json_path);
  benchmark::Initialize(&out_argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
