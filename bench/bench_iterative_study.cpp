// EXT-1: Monte-Carlo characterization of the iterative technique (the
// study the paper motivates but evaluates only analytically). For every
// heuristic and heterogeneity/consistency cell: how many non-makespan
// machines improved / stayed / worsened, the mean relative finishing-time
// change, and how often the effective makespan increased.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/cancel.hpp"
#include "report/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace {

using hcsched::report::TextTable;
using hcsched::sim::StudyParams;
using hcsched::sim::ThreadPool;

StudyParams base_params() {
  StudyParams params;
  params.heuristics = {"MET",       "MCT", "Min-Min", "Genitor", "SWA",
                       "Sufferage", "KPB"};
  params.cvb.num_tasks = 24;
  params.cvb.num_machines = 6;
  params.cvb.mean_task_time = 1000.0;
  params.trials = 25;
  params.seed = 20070326;  // IPDPS 2007
  return params;
}

void print_study() {
  ThreadPool pool;
  const StudyParams base = base_params();

  // Condensed sweep: the four heterogeneity cells on inconsistent matrices
  // plus one consistent cell (full 12-cell grid via --full if needed).
  std::vector<hcsched::sim::SweepPoint> points;
  for (const auto& p : hcsched::sim::standard_sweep()) {
    if (p.consistency == hcsched::etc::Consistency::kInconsistent ||
        p.label == "consistent HiHi") {
      points.push_back(p);
    }
  }

  const auto results = hcsched::sim::run_sweep(base, points, pool);
  for (const auto& cell : results) {
    TextTable table({"heuristic", "improved", "unchanged", "worsened",
                     "mean dCT/CT", "makespan increases", "trials"});
    for (const auto& row : cell.rows) {
      table.add_row(
          {row.heuristic, std::to_string(row.machines_improved),
           std::to_string(row.machines_unchanged),
           std::to_string(row.machines_worsened),
           TextTable::num(row.finish_delta.mean() * 100.0, 2) + "%",
           std::to_string(row.makespan_increases),
           std::to_string(row.trials)});
    }
    std::printf("=== EXT-1 iterative study — %s (24 tasks x 6 machines, "
                "deterministic ties) ===\n%s\n",
                cell.point.label.c_str(), table.to_string().c_str());
  }
  std::printf(
      "Reading: MET/MCT/Min-Min rows are all-unchanged (the paper's "
      "theorems); Genitor never increases makespan (seeded elitism); "
      "SWA/KPB/Sufferage both improve and worsen machines and can increase "
      "the makespan — the paper's §5 conclusion.\n\n");
}

void BM_StudyCell(benchmark::State& state) {
  ThreadPool pool;
  StudyParams params = base_params();
  params.trials = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hcsched::sim::run_iterative_study(params, pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.trials));
}

void BM_StudyCellIdleRobustness(benchmark::State& state) {
  // Same study as BM_StudyCell, but through the robustness surface: a
  // never-cancelled token threaded down to every chunk while the fault
  // sites stay disarmed. The disabled machinery costs one relaxed atomic
  // load per site and one thread-local read per cancellation poll, so this
  // must benchmark indistinguishably from BM_StudyCell — compare the two
  // to pin the overhead.
  ThreadPool pool;
  StudyParams params = base_params();
  params.trials = static_cast<std::size_t>(state.range(0));
  const hcsched::core::CancelToken token;
  hcsched::sim::StudyHooks hooks;
  hooks.cancel = &token;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hcsched::sim::run_iterative_study_report(params, pool, hooks));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.trials));
}

}  // namespace

BENCHMARK(BM_StudyCell)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StudyCellIdleRobustness)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
