// EXT-2: how often does the iterative technique *increase* the effective
// makespan? Measured over small tie-rich random matrices, separately for
// deterministic ties (where the paper proves SWA/KPB/Sufferage can increase
// and Min-Min/MCT/MET cannot) and random ties (where all greedy heuristics
// can).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/witness.hpp"
#include "heuristics/registry.hpp"
#include "report/table.hpp"

namespace {

using hcsched::core::makespan_increase_rate;
using hcsched::core::WitnessSpec;
using hcsched::report::TextTable;
using hcsched::rng::Rng;
using hcsched::rng::TiePolicy;

constexpr std::size_t kTrials = 3000;

void print_rates() {
  TextTable table({"heuristic", "deterministic ties", "random ties",
                   "paper's claim (deterministic)"});
  struct RowSpec {
    const char* name;
    const char* claim;
  };
  for (const RowSpec& spec : {RowSpec{"MET", "never (theorem)"},
                              RowSpec{"MCT", "never (theorem)"},
                              RowSpec{"Min-Min", "never (theorem)"},
                              RowSpec{"SWA", "can increase"},
                              RowSpec{"KPB", "can increase"},
                              RowSpec{"Sufferage", "can increase"}}) {
    const auto heuristic = hcsched::heuristics::make_heuristic(spec.name);
    WitnessSpec ws;
    ws.num_tasks = 6;
    ws.num_machines = 3;
    ws.max_etc = 6;
    ws.half_integers = true;

    ws.policy = TiePolicy::kDeterministic;
    Rng det_rng(1);
    const double det = makespan_increase_rate(*heuristic, ws, det_rng,
                                              kTrials);
    ws.policy = TiePolicy::kRandom;
    Rng rnd_rng(2);
    const double rnd = makespan_increase_rate(*heuristic, ws, rnd_rng,
                                              kTrials);
    table.add_row({spec.name, TextTable::num(det * 100.0, 2) + "%",
                   TextTable::num(rnd * 100.0, 2) + "%", spec.claim});
  }
  std::printf(
      "=== EXT-2 makespan-increase frequency (6 tasks x 3 machines, "
      "half-integer ETCs in [1, 6], %zu matrices per cell) ===\n%s\n"
      "Expected shape: zero in the deterministic column for MET/MCT/Min-Min "
      "(the paper's theorems), nonzero for SWA/KPB/Sufferage (the paper's "
      "counterexamples) and nonzero for everything under random ties.\n\n",
      kTrials, table.to_string().c_str());
}

void BM_IncreaseRate(benchmark::State& state, const char* name) {
  const auto heuristic = hcsched::heuristics::make_heuristic(name);
  WitnessSpec ws;
  ws.num_tasks = 6;
  ws.num_machines = 3;
  for (auto _ : state) {
    Rng rng(static_cast<std::uint64_t>(state.iterations()));
    benchmark::DoNotOptimize(
        makespan_increase_rate(*heuristic, ws, rng, 100));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}

}  // namespace

int main(int argc, char** argv) {
  print_rates();
  benchmark::RegisterBenchmark("increase_rate_100/SWA", BM_IncreaseRate,
                               "SWA");
  benchmark::RegisterBenchmark("increase_rate_100/Sufferage",
                               BM_IncreaseRate, "Sufferage");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
