// EXT-11: local-search baselines (Levine-style descent + restarts) measured
// by optimality gap against the exact/bound reference from core/bound.hpp.
// Prints a per-class comparison against the two-phase greedy heuristics,
// writes BENCH_localsearch.json (path overridable with --json-out <path>) —
// the machine-readable record bench_check --localsearch validates in CI —
// and registers latency benchmarks for the search itself.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/bound.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "obs/json.hpp"
#include "report/table.hpp"
#include "rng/rng.hpp"
#include "sim/stats.hpp"

namespace {

using hcsched::core::gap_pct;
using hcsched::core::gap_reference;
using hcsched::core::GapReference;
using hcsched::etc::Consistency;
using hcsched::obs::JsonValue;
using hcsched::report::TextTable;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;

constexpr std::uint64_t kSeed = 20070326;
constexpr std::size_t kTrials = 20;
constexpr std::size_t kTasks = 10;
constexpr std::size_t kMachines = 4;

// The local-search family plus the two-phase greedy baselines it is
// measured against — the required-row set of bench_check --localsearch.
constexpr const char* kHeuristics[] = {"Local-Search", "Local-Search-FI",
                                       "Min-Min", "Max-Min", "Duplex"};
constexpr Consistency kClasses[] = {Consistency::kInconsistent,
                                    Consistency::kSemiConsistent,
                                    Consistency::kConsistent};

// Returned by value: Problem is a view over an EtcMatrix, so callers hold
// the matrix for the Problem's lifetime.
hcsched::etc::EtcMatrix make_matrix(std::uint64_t trial,
                                    Consistency consistency) {
  Rng rng = Rng(kSeed).split(trial);
  hcsched::etc::CvbParams params;
  params.num_tasks = kTasks;
  params.num_machines = kMachines;
  return hcsched::etc::shape_consistency(
      hcsched::etc::CvbEtcGenerator(params).generate(rng), consistency);
}

void run_sweep(const std::string& json_path) {
  JsonValue::Array cells;
  TextTable table({"class", "heuristic", "mean gap", "worst gap",
                   "exact refs"});
  for (const Consistency consistency : kClasses) {
    std::vector<hcsched::sim::RunningStats> gaps(std::size(kHeuristics));
    std::size_t exact_refs = 0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const hcsched::etc::EtcMatrix matrix = make_matrix(trial, consistency);
      const Problem problem = Problem::full(matrix);
      const GapReference reference = gap_reference(problem);
      if (reference.exact) ++exact_refs;
      for (std::size_t h = 0; h < std::size(kHeuristics); ++h) {
        const auto heuristic =
            hcsched::heuristics::make_heuristic(kHeuristics[h]);
        TieBreaker ties;
        gaps[h].add(gap_pct(heuristic->map(problem, ties).makespan(),
                            reference));
      }
    }
    for (std::size_t h = 0; h < std::size(kHeuristics); ++h) {
      table.add_row({hcsched::etc::to_string(consistency), kHeuristics[h],
                     TextTable::num(gaps[h].mean() * 100.0, 3) + "%",
                     TextTable::num(gaps[h].max() * 100.0, 3) + "%",
                     std::to_string(exact_refs) + "/" +
                         std::to_string(kTrials)});
      JsonValue::Object cell;
      cell.emplace_back("heuristic", JsonValue(kHeuristics[h]));
      cell.emplace_back("tasks", JsonValue(kTasks));
      cell.emplace_back("machines", JsonValue(kMachines));
      cell.emplace_back("consistency",
                        JsonValue(hcsched::etc::to_string(consistency)));
      cell.emplace_back("trials", JsonValue(kTrials));
      cell.emplace_back("mean_gap_pct", JsonValue(gaps[h].mean() * 100.0));
      cell.emplace_back("worst_gap_pct", JsonValue(gaps[h].max() * 100.0));
      cell.emplace_back("exact_refs", JsonValue(exact_refs));
      cells.emplace_back(std::move(cell));
    }
  }
  std::printf(
      "=== EXT-11 local-search gaps (%zu tasks x %zu machines, %zu trials "
      "per class, BnB references) ===\n%s"
      "Expected shape (Levine, arXiv 1312.6246): the descent family at or "
      "below the best two-phase greedy gap on most cells.\n\n",
      kTasks, kMachines, kTrials, table.to_string().c_str());
  JsonValue::Object doc;
  doc.emplace_back("bench", JsonValue("localsearch_gap"));
  doc.emplace_back("tie_policy", JsonValue("deterministic"));
  doc.emplace_back("seed", JsonValue(kSeed));
  doc.emplace_back("cells", JsonValue(std::move(cells)));
  std::ofstream out(json_path);
  out << JsonValue(std::move(doc)).dump(2) << "\n";
  std::printf("wrote %s\n", json_path.c_str());
}

void BM_LocalSearch(benchmark::State& state, const char* name) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  Rng rng(tasks);
  hcsched::etc::CvbParams params;
  params.num_tasks = tasks;
  params.num_machines = 8;
  const hcsched::etc::EtcMatrix matrix =
      hcsched::etc::CvbEtcGenerator(params).generate(rng);
  const Problem problem = Problem::full(matrix);
  const auto heuristic = hcsched::heuristics::make_heuristic(name);
  for (auto _ : state) {
    TieBreaker ties;
    benchmark::DoNotOptimize(heuristic->map(problem, ties).makespan());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks));
}

void register_benchmarks() {
  for (const char* name : {"Local-Search", "Local-Search-FI", "Min-Min"}) {
    benchmark::RegisterBenchmark(name, BM_LocalSearch, name)
        ->Arg(32)
        ->Arg(64)
        ->Arg(128)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_localsearch.json";
  // Strip --json-out before google-benchmark sees (and rejects) it.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  run_sweep(json_path);
  register_benchmarks();
  benchmark::Initialize(&out_argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
