// Regenerates paper Tables 12-14 and Figures 15-16: the K-Percent Best
// (k = 70%) worked example in which the makespan increases from 6 to 7 even
// with deterministic tie-breaking, because the k-percent machine subset
// degenerates to a single machine once the makespan machine is removed
// (paper §3.6). Also prints the per-step machine subsets (Table 13's "K-%"
// column).
#include <cstdio>

#include "bench_common.hpp"
#include "heuristics/kpb.hpp"
#include "report/table.hpp"

namespace {

void print_kpb_subsets(const hcsched::core::PaperExample& example) {
  using hcsched::report::TextTable;
  hcsched::heuristics::Kpb kpb(70.0);

  auto print_for = [&kpb](const hcsched::sched::Problem& problem,
                          const char* title) {
    hcsched::rng::TieBreaker ties;
    std::vector<hcsched::heuristics::KpbStep> trace;
    kpb.map_traced(problem, ties, &trace);
    TextTable table({"task", "subset (K-% best)", "machine", "CT"});
    const auto label = [](char prefix, long long v) {
      std::string out(1, prefix);
      out += std::to_string(v);
      return out;
    };
    for (const auto& step : trace) {
      std::string subset;
      for (auto m : step.subset) {
        if (!subset.empty()) subset += ", ";
        subset += 'm';
        subset += std::to_string(m);
      }
      table.add_row({label('t', step.task), subset,
                     label('m', step.machine),
                     TextTable::num(step.completion)});
    }
    std::printf("%s\n%s", title, table.to_string().c_str());
  };

  print_for(hcsched::sched::Problem::full(*example.matrix),
            "-- Table 13 detail: per-task subsets, original mapping --");
  // First iterative problem: m0 and its task t0 removed.
  print_for(hcsched::sched::Problem(*example.matrix, {1, 2, 3, 4}, {1, 2}),
            "-- Table 14 detail: per-task subsets, first iterative mapping "
            "(subset degenerates to one machine) --");
}

}  // namespace

int main(int argc, char** argv) {
  static const auto example = hcsched::core::kpb_example();
  const bool ok = hcsched::bench::print_example_reproduction(example);
  print_kpb_subsets(example);
  hcsched::bench::register_example_benchmarks(example);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
