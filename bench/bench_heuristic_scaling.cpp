// EXT-3: wall-clock scaling of every heuristic in the number of tasks
// (fixed 16 machines). Min-Min/Max-Min/Duplex/Sufferage are O(T^2 M);
// MET/MCT/OLB/KPB/SWA are O(T M); Genitor is dominated by its step budget.
#include <benchmark/benchmark.h>

#include <memory>

#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "rng/rng.hpp"

namespace {

using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::etc::EtcMatrix;
using hcsched::sched::Problem;

EtcMatrix make_matrix(std::size_t tasks, std::size_t machines) {
  hcsched::rng::Rng rng(tasks * 131 + machines);
  CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return CvbEtcGenerator(p).generate(rng);
}

void BM_Heuristic(benchmark::State& state, const char* name) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto heuristic = hcsched::heuristics::make_heuristic(name);
  const EtcMatrix matrix = make_matrix(tasks, 16);
  const Problem problem = Problem::full(matrix);
  for (auto _ : state) {
    hcsched::rng::TieBreaker ties;
    benchmark::DoNotOptimize(heuristic->map(problem, ties));
  }
  state.SetComplexityN(static_cast<std::int64_t>(tasks));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks));
}

void register_scaling(const char* name, std::initializer_list<long> sizes) {
  auto* bench = benchmark::RegisterBenchmark(
      (std::string("map/") + name).c_str(), BM_Heuristic, name);
  for (long n : sizes) bench->Arg(n);
  bench->Unit(benchmark::kMicrosecond)->Complexity();
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"MET", "MCT", "OLB", "KPB", "SWA"}) {
    register_scaling(name, {64, 256, 1024, 4096});
  }
  for (const char* name : {"Min-Min", "Max-Min", "Duplex", "Sufferage"}) {
    register_scaling(name, {64, 256, 1024});
  }
  register_scaling("Genitor", {64, 256});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
