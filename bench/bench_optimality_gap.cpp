// EXT-9: optimality gap of every heuristic on small instances — the
// comparison Braun et al. ran against A*, here against an exact
// branch-and-bound. Reports mean makespan / optimal per heuristic over
// random CVB instances, plus solver benchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/optimal.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "report/table.hpp"
#include "rng/rng.hpp"
#include "sim/stats.hpp"

namespace {

using hcsched::core::solve_optimal;
using hcsched::report::TextTable;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;

void print_gap_table() {
  constexpr std::size_t kTrials = 30;
  constexpr std::size_t kTasks = 12;
  constexpr std::size_t kMachines = 4;

  const auto heuristic_set = hcsched::heuristics::extended_heuristics();
  std::vector<hcsched::sim::RunningStats> gap(heuristic_set.size());
  std::size_t proven = 0;

  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    Rng rng = Rng(13).split(trial);
    hcsched::etc::CvbParams params;
    params.num_tasks = kTasks;
    params.num_machines = kMachines;
    const auto matrix = hcsched::etc::CvbEtcGenerator(params).generate(rng);
    const Problem problem = Problem::full(matrix);
    const auto optimal = solve_optimal(problem);
    if (!optimal.proven_optimal) continue;
    ++proven;
    for (std::size_t h = 0; h < heuristic_set.size(); ++h) {
      TieBreaker ties;
      gap[h].add(heuristic_set[h]->map(problem, ties).makespan() /
                 optimal.makespan);
    }
  }

  TextTable table({"heuristic", "mean makespan/optimal", "worst", "best"});
  for (std::size_t h = 0; h < heuristic_set.size(); ++h) {
    table.add_row({std::string(heuristic_set[h]->name()),
                   TextTable::num(gap[h].mean(), 4),
                   TextTable::num(gap[h].max(), 4),
                   TextTable::num(gap[h].min(), 4)});
  }
  std::printf(
      "=== EXT-9 optimality gap (%zu tasks x %zu machines, %zu/%zu "
      "instances solved to proven optimality) ===\n%s"
      "Expected shape (Braun et al.): GA-family and Duplex/Min-Min within a "
      "few percent of optimal; MET and OLB far behind on inconsistent "
      "matrices.\n\n",
      kTasks, kMachines, proven, kTrials, table.to_string().c_str());
}

void BM_SolveOptimal(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  Rng rng(tasks);
  hcsched::etc::CvbParams params;
  params.num_tasks = tasks;
  params.num_machines = 4;
  const auto matrix = hcsched::etc::CvbEtcGenerator(params).generate(rng);
  const Problem problem = Problem::full(matrix);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const auto result = solve_optimal(problem);
    nodes = result.nodes_explored;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

}  // namespace

BENCHMARK(BM_SolveOptimal)->Arg(8)->Arg(10)->Arg(12)->Arg(14)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_gap_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
