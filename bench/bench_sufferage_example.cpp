// Regenerates paper Tables 15-17 and Figures 18-19: the Sufferage worked
// example in which the makespan increases even with deterministic
// tie-breaking (paper §3.7). The paper's 9x3 ETC matrix did not survive
// transcription; the matrix here is a same-shape witness found by the
// core/witness search (see DESIGN.md §4). Prints the pass-by-pass commit
// trace that Tables 16/17 report (pass number, minimum CT, sufferage value,
// machine).
#include <cstdio>

#include "bench_common.hpp"
#include "heuristics/sufferage.hpp"
#include "report/table.hpp"

namespace {
inline std::string concat_label(char prefix, long long v) {
  std::string out(1, prefix);
  out += std::to_string(v);
  return out;
}
}  // namespace

namespace {

void print_sufferage_trace(const hcsched::core::PaperExample& example) {
  using hcsched::report::TextTable;
  hcsched::heuristics::Sufferage sufferage;

  auto print_for = [&sufferage](const hcsched::sched::Problem& problem,
                                const char* title) {
    hcsched::rng::TieBreaker ties;
    std::vector<hcsched::heuristics::SufferageStep> trace;
    sufferage.map_traced(problem, ties, &trace);
    TextTable table({"pass", "task", "min CT", "sufferage", "machine"});
    for (const auto& step : trace) {
      table.add_row({std::to_string(step.pass),
                     concat_label('t', step.task),
                     TextTable::num(step.min_ct),
                     TextTable::num(step.sufferage),
                     concat_label('m', step.machine)});
    }
    std::printf("%s\n%s", title, table.to_string().c_str());
  };

  print_for(hcsched::sched::Problem::full(*example.matrix),
            "-- Table 16 detail: pass-by-pass trace, original mapping --");

  // First iterative problem: remove the original makespan machine and its
  // tasks (computed, since the witness matrix decides them).
  const auto result = hcsched::core::run_paper_example(example);
  const auto span_machine = result.original().makespan_machine;
  const auto dropped = result.original().schedule.tasks_on(span_machine);
  const auto next = hcsched::sched::Problem::full(*example.matrix)
                        .without_machine(span_machine, dropped);
  print_for(next,
            "-- Table 17 detail: pass-by-pass trace, first iterative "
            "mapping --");
}

}  // namespace

int main(int argc, char** argv) {
  static const auto example = hcsched::core::sufferage_example();
  const bool ok = hcsched::bench::print_example_reproduction(example);
  print_sufferage_trace(example);
  hcsched::bench::register_example_benchmarks(example);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
