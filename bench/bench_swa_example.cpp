// Regenerates paper Tables 9-11 and Figures 11-12: the Switching Algorithm
// worked example in which the makespan increases from 6 to 6.5 even with
// deterministic tie-breaking, because removing the makespan machine changes
// the balance-index trajectory (paper §3.5). Prints the BI / heuristic
// columns of Tables 10 and 11.
#include <cstdio>

#include "bench_common.hpp"
#include "heuristics/swa.hpp"
#include "report/table.hpp"

namespace {
inline std::string concat_label(char prefix, long long v) {
  std::string out(1, prefix);
  out += std::to_string(v);
  return out;
}
}  // namespace

namespace {

void print_swa_trace(const hcsched::core::PaperExample& example) {
  using hcsched::report::TextTable;
  hcsched::heuristics::Swa swa;  // low 0.35, high 0.49 (DESIGN.md §4)

  auto print_for = [&swa](const hcsched::sched::Problem& problem,
                          const char* title) {
    hcsched::rng::TieBreaker ties;
    std::vector<hcsched::heuristics::SwaStep> trace;
    swa.map_traced(problem, ties, &trace);
    TextTable table({"task", "BI", "heuristic", "machine", "CT"});
    for (const auto& step : trace) {
      table.add_row({concat_label('t', step.task),
                     step.balance_index.has_value()
                         ? TextTable::num(*step.balance_index)
                         : std::string("x"),
                     hcsched::heuristics::to_string(step.mode),
                     concat_label('m', step.machine),
                     TextTable::num(step.completion)});
    }
    std::printf("%s\n%s", title, table.to_string().c_str());
  };

  print_for(hcsched::sched::Problem::full(*example.matrix),
            "-- Table 10 detail: BI trace, original mapping "
            "(paper: x, 0, 0, 1/3, 2/3; MCT x4 then MET) --");
  print_for(hcsched::sched::Problem(*example.matrix, {1, 2, 3, 4}, {1, 2}),
            "-- Table 11 detail: BI trace, first iterative mapping "
            "(paper: x, 0, 1/2, 4/13; MCT, MCT, MET, MCT) --");
}

}  // namespace

int main(int argc, char** argv) {
  static const auto example = hcsched::core::swa_example();
  const bool ok = hcsched::bench::print_example_reproduction(example);
  print_swa_trace(example);
  hcsched::bench::register_example_benchmarks(example);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
