// Fixture narrowing in the ETC layer: re-assignment (not just init) of a
// float variable from a double expression must be flagged — line 8 is
// pinned by the ctest grep. The cast and audited forms are silent.

namespace fixture::etc_narrow {
inline float accumulate(double sample) {
  float acc = 0.0f;
  acc = sample;
  (void)acc;
  // Re-assignment through an explicit cast is silent:
  acc = static_cast<float>(sample);
  // Audited escape (silent):
  // lint:allow(narrowing)
  acc = sample;
  return acc;
}
}  // namespace fixture::etc_narrow

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
