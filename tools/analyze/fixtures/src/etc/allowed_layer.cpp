// Fixture layering escape: the same etc -> sim include as bad_layer.cpp
// but carrying the audited line-level allow — must stay silent.

// lint:allow(layering)
#include "sim/online.hpp"

namespace fixture::etc_layer_ok {
inline int marker() { return 2; }
}  // namespace fixture::etc_layer_ok

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
