// Fixture layering back-edge: the etc layer sits below sim in the DAG, so
// an etc -> sim include is a violation. The include on line 6 (pinned by
// the ctest grep) must be flagged; allowed_layer.cpp carries the audited
// escape for the same edge.

#include "sim/online.hpp"

namespace fixture::etc_layer {
inline int marker() { return 1; }
}  // namespace fixture::etc_layer

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
