// Fixture include cycle (allow): the other half of cyc_c <-> cyc_d; the
// escape on cyc_c suppresses the whole cycle.
#pragma once
#include "sched/cyc_c.hpp"
namespace fixture {
struct CycD {
  CycC* peer = nullptr;
};
}  // namespace fixture
