// Fixture include cycle (detect): cyc_a <-> cyc_b. The cycle is reported
// exactly once, anchored at this lexicographically-first member.
#pragma once
#include "sched/cyc_b.hpp"
namespace fixture {
struct CycA {
  CycB* peer = nullptr;
};
}  // namespace fixture
