// Fixture include cycle (detect): the other half of cyc_a <-> cyc_b.
#pragma once
#include "sched/cyc_a.hpp"
namespace fixture {
struct CycB {
  CycA* peer = nullptr;
};
}  // namespace fixture
