// Fixture include cycle (allow): cyc_c <-> cyc_d is the same shape as the
// cyc_a pair but suppressed by the file-level escape — must stay silent.
// hcsched-lint: allow(include-cycle)
#pragma once
#include "sched/cyc_d.hpp"
namespace fixture {
struct CycC {
  CycD* peer = nullptr;
};
}  // namespace fixture
