// Fixture: allow escapes are comment-position-aware. The marker inside
// the string literal on line 11 must NOT suppress the missing-memory-order
// finding on line 12 (the old regex linter matched raw line text, so it
// did); the genuine trailing comment on line 16 must suppress.
#include <atomic>

namespace fixture::escapes {

inline int probe(std::atomic<int>& flag) {
  // A string mentioning the escape is just data — line 12 is flagged:
  const char* note = "lint:allow(memory-order)";
  int a = flag.load();
  (void)note;
  // A real comment escape suppresses — line 16 is silent:

  int b = flag.load();  // lint:allow(memory-order)
  return a + b;
}

}  // namespace fixture::escapes

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
