// Fixture unused direct include: helper_decl.hpp provides helper_value()
// but nothing in this file uses it — the include on line 5 (pinned by the
// ctest grep) must be flagged. unused_inc_ok.cpp carries the escape.

#include "report/helper_decl.hpp"

namespace fixture {
inline int standalone() { return 7; }
}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
