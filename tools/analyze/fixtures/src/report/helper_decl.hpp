// Fixture helper for the unused-include pair: declares helper_value().
#pragma once
namespace fixture {
int helper_value();
}  // namespace fixture
