// Fixture unused-include escape: the same unused include as unused_inc.cpp
// but carrying the audited line-level allow — must stay silent.

// lint:allow(unused-include)
#include "report/helper_decl.hpp"

namespace fixture {
inline int standalone_ok() { return 8; }
}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
