// Fixture for dead-symbol: report_orphan is referenced by nothing (must
// be flagged); audited_orphan carries the line-level allowance (must
// pass).
namespace fixture {

int report_orphan() { return 1; }

// lint:allow(dead-symbol) — audited: kept as a stable extension point
int audited_orphan() { return 2; }

}  // namespace fixture
