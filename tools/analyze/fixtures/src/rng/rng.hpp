// Stub for the tools layering fixture; declarations only.
#pragma once

namespace fixture::rng {

int next_seed();

}  // namespace fixture::rng
