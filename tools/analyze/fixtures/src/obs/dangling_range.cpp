// Fixture range-for-temporary (the PR 6 dangling-temporary bug shape).
//
// load_doc()/snapshot_json() return by value; items()/at()/as_array()
// return references into their receiver. A range-for whose range
// expression is a reference into such a temporary reads freed memory in
// the loop body — lines 21 and 26 (pinned by the ctest greps) must be
// flagged; the hoisted/lifetime-extended forms and the audited escape
// below must stay silent.
#include <vector>

namespace fixture {

struct Doc {
  const std::vector<int>& items() const { return data_; }
  std::vector<int> data_;
};

Doc load_doc();

int consume() {
  for (int v : load_doc().items()) {
    (void)v;
  }
  // The PR 6 stats-path shape: a reference chain off a by-value JSON
  // snapshot (at()/as_array() return references into the temporary).
  for (const auto& node : snapshot_json().at("roots").as_array()) {
    (void)node;
  }
  // Hoisting the owning value into a local is the fix (silent):
  const Doc doc = load_doc();
  for (int v : doc.items()) {
    (void)v;
  }
  // Iterating the temporary itself is lifetime-extended (silent):
  for (int v : load_doc().data_) {
    (void)v;
  }
  // Audited escape (silent):
  // lint:allow(range-for-temporary)
  for (int v : load_doc().items()) {
    (void)v;
  }
  return 0;
}

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
