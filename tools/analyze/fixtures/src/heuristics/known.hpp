// Fixture heuristic that IS registered (must not be flagged).
#pragma once
