// Fixture framework base header: exempt from heuristic-registry by name.
#pragma once
