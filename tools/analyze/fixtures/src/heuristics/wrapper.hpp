// Fixture wrapper heuristic: unregistered by design, suppressed via the
// allow comment (must not be flagged).
// hcsched-lint: allow(heuristic-registry)
#pragma once
