// Not registered with registry.cpp on purpose: headers in subdirectories of
// src/heuristics/ are support code, and the heuristic-registry rule must
// skip them (only the fastpath-differential rule applies here — satisfied
// by the allow below, standing in for a file that is not a kernel).
// hcsched-lint: allow(fastpath-differential)
#pragma once
namespace fixture {
inline int subdir_support_marker() { return 3; }
}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
