// Fixture narrowing-in-kernel: line 9 is an implicit double->float init
// and line 12 an implicit size_t->int one (both pinned by ctest greps);
// the static_cast and audited forms below must stay silent.
#include <vector>

namespace fixture::kernel {

inline float half_sum(double lhs, double rhs, const std::vector<int>& v) {
  float approx = lhs + rhs;
  double scaled = approx * 2.0;
  (void)scaled;
  int count = v.size();
  (void)count;
  // Explicit casts document the narrowing (silent):
  float approx_ok = static_cast<float>(lhs + rhs);
  int count_ok = static_cast<int>(v.size());
  (void)count_ok;
  // Audited escape (silent):
  // lint:allow(narrowing)
  float approx_allowed = lhs + rhs;
  (void)approx_allowed;
  float literal_ok = 0.5f;
  double wide = lhs;
  (void)wide;
  return approx + approx_ok + approx_allowed + literal_ok;
}

}  // namespace fixture::kernel

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
