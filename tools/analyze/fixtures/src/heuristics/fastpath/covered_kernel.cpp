// Covered kernel file: tests/test_fastpath_differential.cpp names this
// file's stem, so the fastpath-differential rule must stay silent.
namespace fixture {
int covered_kernel_marker() { return 2; }
}  // namespace fixture
