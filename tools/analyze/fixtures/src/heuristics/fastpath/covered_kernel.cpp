// Covered kernel file: tests/test_fastpath_differential.cpp names this
// file's stem, so the fastpath-differential rule must stay silent.
namespace fixture {
int covered_kernel_marker() { return 2; }
}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
