// Fixture narrowing-in-kernel, vectorized-scan flavor: line 10 folds a
// lane minimum (double) into a float and line 13 truncates a lane index
// (std::size_t) to int — both pinned by ctest greps; the static_cast and
// audited forms below must stay silent.
#include <cstddef>

namespace fixture::minscan {

inline float merge_lanes(double lane_min, std::size_t lane_count) {
  float folded = lane_min;
  (void)folded;
  std::size_t stride = lane_count * 4;
  int slot = stride;
  (void)slot;
  float folded_ok = static_cast<float>(lane_min);
  int slot_ok = static_cast<int>(stride);
  (void)slot_ok;
  // Audited escape (silent):
  // lint:allow(narrowing)
  int slot_allowed = stride;
  (void)slot_allowed;
  return folded + folded_ok;
}

}  // namespace fixture::minscan

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
