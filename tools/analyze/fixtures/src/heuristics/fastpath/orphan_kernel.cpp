// Deliberate fastpath-differential violation: a kernel file whose stem is
// named by no tests/test_fastpath*.cpp suite.
namespace fixture {
int orphan_kernel_marker() { return 1; }
}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
