// Fixture for transitive-nondeterminism: a deterministic-layer function
// whose call chain reaches sim/fault ambient entropy (must be flagged at
// the offending call) and the audited line-level allowance (must pass).
#include "sim/fault/jitter.hpp"

namespace fixture {

int tainted_choice() { return fault::jitter(); }

// lint:allow(taint) — audited: the replay harness records the jitter stream
int audited_choice() { return fault::jitter(); }

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
