// Fixture heuristic missing from registry.cpp — heuristic-registry must
// flag this file.
#pragma once
