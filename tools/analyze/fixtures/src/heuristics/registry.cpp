// Fixture registry: includes `known.hpp` but not `rogue.hpp`, so the
// heuristic-registry rule must flag exactly the rogue header.
#include "heuristics/registry.hpp"

#include "heuristics/known.hpp"
