// Stub for the bench layering fixture; declarations only. The relative
// path matches the real tree so the file-exact component entry
// (ga/genitor) applies.
#pragma once

namespace fixture::ga {

int seed_population();

}  // namespace fixture::ga
