// Fixture with raw span construction and a raw metrics-registry call
// OUTSIDE any #if HCSCHED_TRACE region (trace-guard must flag both) plus
// guarded variants that must pass. The metric names used here are listed
// in the fixture docs/OBSERVABILITY.md so only trace-guard fires.
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace fixture {

void bad_span() {
  obs::ScopedSpan span("fixture.raw");
}

void bad_metric() {
  obs::metrics::counter("hcsched_fixture_raw_total").add(1);
}

#if HCSCHED_TRACE
void good_span() {
  obs::ScopedSpan span("fixture.guarded");
}

void good_metric() {
  obs::metrics::gauge("hcsched_fixture_gauge").set(1);
}
#endif

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
