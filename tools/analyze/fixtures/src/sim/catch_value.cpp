// Fixture catch-by-value: a by-value catch (line 9, pinned by the ctest
// grep) slices and copies on the unwind path; reference catches, the
// catch-all form, and the audited escape below must stay silent.
#include <stdexcept>

namespace fixture::catches {

inline int run(int x) {
  try { } catch (std::runtime_error err) {
    (void)err;
  }

  try {
  } catch (const std::exception& err) {
    (void)err;
  }
  try {
  } catch (...) {
  }
  // Audited escape (silent):
  // lint:allow(catch-by-value)
  try { } catch (std::runtime_error err2) { (void)err2; }
  return x;
}

}  // namespace fixture::catches

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
