// Fixture for blocking-under-lock: stream I/O under a held MutexLock both
// directly and through a helper call (must be flagged), the audited
// line-level allowance, and the CondVar wait-on-held idiom (must pass).
#include <cstdint>
#include <cstdio>

#include "core/thread_annotations.hpp"

namespace fixture {

struct Journal {
  void direct_bad() {
    const core::MutexLock lock(mu_);
    std::fopen("journal.log", "a");
  }
  void write_side() { std::fopen("side.log", "a"); }
  void transitive_bad() {
    const core::MutexLock lock(mu_);
    write_side();
  }
  void audited() {
    const core::MutexLock lock(mu_);
    // Audited: this sink is the serialization point for the stream.
    std::fopen("audited.log", "a");  // lint:allow(blocking-under-lock)
  }
  void condvar_idiom() {
    const core::MutexLock lock(mu_);
    cv_.wait(mu_);
  }
  core::Mutex mu_;
  core::CondVar cv_;
  std::uint64_t entries HCSCHED_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
