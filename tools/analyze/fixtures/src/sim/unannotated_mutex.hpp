// Fixture for lock-annotation-coverage: a mutex member with no GUARDED_BY
// field (must be flagged), an annotated pair (must pass), and an audited
// member escaped with the line-level allowance. Fixtures are scanned, not
// compiled, so the core::Mutex spelling matches real in-namespace usage.
#pragma once

#include <cstdint>
#include <mutex>

#include "core/thread_annotations.hpp"

namespace fixture {

struct Bad {
  std::mutex lock_;
  std::uint64_t value = 0;
};

struct Good {
  core::Mutex mutex_;
  std::uint64_t value HCSCHED_GUARDED_BY(mutex_) = 0;
};

struct Audited {
  // A real module would document the external locking contract here.
  std::mutex scratch_;  // lint:allow(lock-annotation)
};

}  // namespace fixture
