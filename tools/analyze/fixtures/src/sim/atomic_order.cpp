// Fixture for explicit-memory-order: one atomic call relying on the
// seq_cst default (must be flagged), one audited call escaped with the
// line-level allowance, and two explicit calls — single-line and wrapped
// across a continuation line — that must pass.
#include <atomic>

namespace fixture {

std::atomic<int> counter{0};

int bad() { return counter.fetch_add(1); }

// lint:allow(memory-order) — audited: fixture stand-in for a seq_cst site
int audited() { return counter.fetch_add(1); }

int good() { return counter.load(std::memory_order_relaxed); }

int wrapped() {
  return counter.fetch_add(1,
                           std::memory_order_relaxed);
}

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
