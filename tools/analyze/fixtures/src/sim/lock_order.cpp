// Fixture for lock-order-cycle: Pair acquires a_ then b_ in one method
// and b_ then a_ in another (must be flagged with the witness pair),
// Chain builds the same inversion through annotated callees (must be
// flagged), and Audited reverses order on an audited line (must pass).
#include <cstdint>

#include "core/thread_annotations.hpp"

namespace fixture {

struct Pair {
  void ab() {
    const core::MutexLock first(a_);
    const core::MutexLock second(b_);
  }
  void ba() {
    const core::MutexLock first(b_);
    const core::MutexLock second(a_);
  }
  core::Mutex a_;
  core::Mutex b_;
  std::uint64_t hits HCSCHED_GUARDED_BY(a_) = 0;
  std::uint64_t misses HCSCHED_GUARDED_BY(b_) = 0;
};

struct Chain {
  void outer() {
    const core::MutexLock guard(first_);
    grab_second();
  }
  void grab_second() HCSCHED_ACQUIRE(second_) {}
  void inverse() {
    const core::MutexLock guard(second_);
    grab_first();
  }
  void grab_first() HCSCHED_ACQUIRE(first_) {}
  core::Mutex first_;
  core::Mutex second_;
  std::uint64_t depth HCSCHED_GUARDED_BY(first_) = 0;
  std::uint64_t width HCSCHED_GUARDED_BY(second_) = 0;
};

struct Audited {
  void forward() {
    const core::MutexLock first(one_);
    const core::MutexLock second(two_);
  }
  void reversed() {
    const core::MutexLock first(two_);
    // Audited: shutdown path, runs strictly single-threaded.
    const core::MutexLock second(one_);  // lint:allow(lock-order)
  }
  core::Mutex one_;
  core::Mutex two_;
  std::uint64_t opened HCSCHED_GUARDED_BY(one_) = 0;
  std::uint64_t closed HCSCHED_GUARDED_BY(two_) = 0;
};

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
