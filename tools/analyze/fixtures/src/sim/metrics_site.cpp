// Fixture for metric-docs: an undocumented metric name must be flagged; a
// documented name and an audited lint:allow(metric-docs) line must pass.
// The HCSCHED_METRIC_* macros are self-guarding, so trace-guard stays
// silent here.
#include "obs/metrics.hpp"

namespace fixture {

void sites() {
  HCSCHED_METRIC_COUNT("hcsched_undocumented_total", "Not in the docs", 1);
  HCSCHED_METRIC_COUNT("hcsched_documented_total", "In the docs", 1);
  // lint:allow(metric-docs)
  HCSCHED_METRIC_OBSERVE("hcsched_audited_ns", "Suppressed by audit", 7);
}

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
