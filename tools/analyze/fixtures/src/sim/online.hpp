// Fixture stub: the include target for the layering fixtures in src/etc/.
// Declares nothing on purpose, so the unused-include heuristic skips edges
// into it and the layering rule is exercised in isolation.
#pragma once
