// Fixture with one raw counter call OUTSIDE any #if HCSCHED_TRACE region
// (trace-guard must flag it) and one properly guarded call (must pass).
#include "obs/counters.hpp"

namespace fixture {

void bad() {
  obs::counters::add(obs::Counter::kPoolTasksSubmitted);
}

#if HCSCHED_TRACE
void good() {
  obs::counters::add(obs::Counter::kPoolTasksCompleted);
}
#endif

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
