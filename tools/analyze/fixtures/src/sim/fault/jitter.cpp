// sim/fault implementation of the banned source: ambient entropy is legal
// in the sim layer; the taint propagates to deterministic callers through
// the cross-TU call graph.
#include <cstdlib>

#include "sim/fault/jitter.hpp"

namespace fixture::fault {

int jitter() { return std::rand(); }

}  // namespace fixture::fault

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
