// Fixture pinning that include-hygiene descends into nested
// subdirectories: a parent-relative include two levels below src/ must be
// flagged exactly like one at the top level (the heuristic-registry rule,
// by contrast, stops at the first nesting level — see subdir_support.hpp).
#include "../thread_pool.hpp"

namespace fixture::nested {

inline int depth() { return 2; }

}  // namespace fixture::nested

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
