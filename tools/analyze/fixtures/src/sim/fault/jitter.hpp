// Support header for the transitive-nondeterminism fixture: sim/fault may
// use ambient entropy (it sits outside the deterministic contract), so
// jitter() is legal HERE but banned transitively from deterministic
// layers.
#pragma once

namespace fixture::fault {

int jitter();

}  // namespace fixture::fault
