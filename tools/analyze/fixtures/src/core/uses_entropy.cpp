// Fixture for no-nondeterminism-in-core: ambient entropy inside src/core/
// (must be flagged), an audited line-level allowance, and lookalike
// identifiers the word-boundary check must NOT flag.
#include <ctime>
#include <random>

namespace fixture {

unsigned bad() {
  std::random_device entropy;
  return entropy();
}

// lint:allow(nondeterminism) — audited: fixture stand-in for a sim-layer shim
long audited() { return std::time(nullptr); }

int completion_time(int machine);
int my_rand(int x);
int lookalikes() { return completion_time(0) + my_rand(1); }

}  // namespace fixture

// Fixture functions are intentionally exercised by nothing.
// hcsched-lint: allow(dead-symbol)
