#include "core/pipeline.hpp"

namespace fixture {

int Engine::run() { return step(1) + helper(2); }

int Engine::step(int x) { return helper(x); }

int helper(int x) { return x; }

}  // namespace fixture

// The dump, not the findings, is under test here.
// hcsched-lint: allow(dead-symbol)
