// Mini-tree for the golden call-graph dump: an out-of-line member chain
// and a free helper. The dump, not the findings, is under test.
#pragma once

namespace fixture {

struct Engine {
  int run();
  int step(int x);
};

int helper(int x);

}  // namespace fixture
