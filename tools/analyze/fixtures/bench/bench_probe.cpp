// Fixture for bench layering escapes: GA internals are reachable through
// the declared driver surface (registry closure), and an audited reach
// into tooling internals uses the line-level allowance (both must pass;
// the raw reach in bad_bench.cpp must be flagged).
#include "analyze/lexer.hpp"  // lint:allow(layering) — audited: lexer microbench
#include "ga/genitor.hpp"

int main() { return fixture::ga::seed_population() + analyze::token_count(); }
