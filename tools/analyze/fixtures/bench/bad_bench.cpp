// Bench reaching tooling internals without an audit (must be flagged).
#include "analyze/lexer.hpp"

int main() { return analyze::token_count(); }
