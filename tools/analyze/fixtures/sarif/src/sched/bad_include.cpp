// SARIF golden fixture: exactly one include-hygiene finding (line 4) and
// one catch-by-value finding (line 7), so the golden stays small and
// deterministic.
#include "src/sched/schedule.hpp"

inline void f() {
  try { } catch (int e) { (void)e; }
}
