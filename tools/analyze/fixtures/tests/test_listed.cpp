// Fixture test that IS listed in CMakeLists.txt (must not be flagged).
int listed() { return 0; }
