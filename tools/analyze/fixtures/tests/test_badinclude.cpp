// Fixture with the two include-hygiene violations: a src/-prefixed include
// and a parent-relative include. Listed in CMakeLists? No — but the file
// opts out of test-registration to keep each fixture focused on one rule.
// hcsched-lint: allow(test-registration)
#include "src/core/check.hpp"
#include "../src/sched/schedule.hpp"

int bad_includes() { return 0; }
