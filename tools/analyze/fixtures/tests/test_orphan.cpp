// Fixture test missing from CMakeLists.txt — test-registration must flag
// this file: it would silently never run.
int orphan() { return 0; }
