// Fixture differential suite: names covered_kernel, narrow_kernel and
// narrow_minscan so the fastpath-differential rule treats those files as
// tested.
//
// covers: covered_kernel.cpp narrow_kernel.cpp narrow_minscan.cpp
int main() { return 0; }
