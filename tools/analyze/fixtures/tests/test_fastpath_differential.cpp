// Fixture differential suite: names covered_kernel and narrow_kernel so
// the fastpath-differential rule treats those files as tested.
//
// covers: covered_kernel.cpp narrow_kernel.cpp
int main() { return 0; }
