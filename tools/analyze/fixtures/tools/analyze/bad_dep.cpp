// Fixture for tools layering: the analyzer component is dependency-free
// by design, so this reach into src/rng must be flagged.
#include "rng/rng.hpp"

int probe() { return fixture::rng::next_seed(); }
