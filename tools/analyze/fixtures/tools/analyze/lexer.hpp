// Stub analyzer header for the bench escape fixture; declarations only.
#pragma once

namespace analyze {

int token_count();

}  // namespace analyze
