#include "analyze/lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace analyze {
namespace {

/// Cursor over the source with transparent backslash-newline splicing and
/// CRLF/CR normalization. `get()`/`peek()` present the spliced character
/// stream ([lex.phases] phases 1–2) while `line`/`col` track the physical
/// position, so tokens can report where they really sit in the file.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool eof() const { return skip_splices(pos_) >= src_.size(); }

  /// Peek the idx-th spliced character ahead (0 = next).
  char peek(std::size_t idx = 0) const {
    std::size_t p = skip_splices(pos_);
    for (std::size_t i = 0; i < idx; ++i) {
      if (p >= src_.size()) return '\0';
      p = skip_splices(advance_raw(p));
    }
    return p < src_.size() ? normalized(p) : '\0';
  }

  char get() {
    sync_to_next();  // consume pending splices, tracking line/col
    const char c = normalized(pos_);
    bump_position(pos_);
    pos_ = advance_raw(pos_);
    return c;
  }

  // Raw (unspliced) access for raw-string bodies, which are exempt from
  // phase-2 splicing: a backslash-newline inside R"(...)" is two real
  // characters.
  bool raw_eof() const { return pos_ >= src_.size(); }
  char raw_peek(std::size_t idx = 0) const {
    std::size_t p = pos_;
    for (std::size_t i = 0; i < idx; ++i) {
      if (p >= src_.size()) return '\0';
      p = advance_raw(p);
    }
    return p < src_.size() ? normalized(p) : '\0';
  }
  char raw_get() {
    const char c = normalized(pos_);
    bump_position(pos_);
    pos_ = advance_raw(pos_);
    return c;
  }

  std::size_t line() const { return line_; }
  std::size_t col() const { return col_; }

  /// Physical position of the next spliced character (where the next token
  /// would start). Splices between here and that character advance the
  /// physical position without producing characters.
  void sync_to_next() {
    while (pos_ < src_.size() && is_splice(pos_)) {
      // consume the backslash and the newline it hides
      bump_position(pos_);
      pos_ = advance_raw(pos_);  // backslash
      bump_position(pos_);
      pos_ = advance_raw(pos_);  // newline
    }
  }

 private:
  bool is_splice(std::size_t p) const {
    if (p >= src_.size() || src_[p] != '\\') return false;
    const std::size_t n = p + 1;
    if (n >= src_.size()) return false;
    return src_[n] == '\n' || src_[n] == '\r';
  }

  std::size_t skip_splices(std::size_t p) const {
    while (p < src_.size() && is_splice(p)) {
      p = advance_raw(p);  // backslash
      p = advance_raw(p);  // newline (CRLF advances both bytes)
    }
    return p;
  }

  /// One raw character forward; a CRLF pair counts as one newline.
  std::size_t advance_raw(std::size_t p) const {
    if (p >= src_.size()) return p;
    if (src_[p] == '\r' && p + 1 < src_.size() && src_[p + 1] == '\n') {
      return p + 2;
    }
    return p + 1;
  }

  char normalized(std::size_t p) const {
    return src_[p] == '\r' ? '\n' : src_[p];
  }

  void bump_position(std::size_t p) {
    if (normalized(p) == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return c >= '0' && c <= '9'; }

// Multi-character punctuators, longest first for maximal munch.
constexpr std::array<std::string_view, 25> kPuncts = {
    "<<=", ">>=", "->*", "...", "<=>", "::", "->", ".*", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  "##",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : cur_(src) {}

  std::vector<Token> run() {
    while (!cur_.eof()) {
      cur_.sync_to_next();
      const char c = cur_.peek();
      if (c == '\n') {
        at_line_start_ = true;
        in_directive_ = false;
        cur_.get();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\f' || c == '\v') {
        cur_.get();
        continue;
      }
      start_line_ = cur_.line();
      start_col_ = cur_.col();
      if (c == '/' && cur_.peek(1) == '/') {
        lex_line_comment();
      } else if (c == '/' && cur_.peek(1) == '*') {
        lex_block_comment();
      } else if (at_line_start_ && c == '#') {
        lex_directive_intro();
      } else if (in_directive_ && expect_header_name_ &&
                 (c == '"' || c == '<')) {
        lex_header_name(c);
      } else if (is_raw_string_ahead()) {
        lex_raw_string();
      } else if (is_string_prefix_ahead()) {
        lex_string_or_char();
      } else if (c == '"') {
        lex_quoted('"', Tok::String);
      } else if (c == '\'') {
        lex_quoted('\'', Tok::Char);
      } else if (is_ident_start(c)) {
        lex_identifier();
      } else if (is_digit(c) || (c == '.' && is_digit(cur_.peek(1)))) {
        lex_number();
      } else {
        lex_punct();
      }
      if (c != '#') at_line_start_ = false;
    }
    return std::move(tokens_);
  }

 private:
  void emit(Tok kind, std::string text) {
    tokens_.push_back(Token{kind, std::move(text), start_line_, start_col_,
                            cur_.line(), cur_.col()});
  }

  void lex_line_comment() {
    std::string text;
    // A spliced newline continues the comment onto the next physical line
    // (real C++ behavior); the spliced stream handles that for free.
    while (!cur_.eof() && cur_.peek() != '\n') text += cur_.get();
    emit(Tok::Comment, std::move(text));
  }

  void lex_block_comment() {
    std::string text;
    text += cur_.get();  // '/'
    text += cur_.get();  // '*'
    // Block comments do not nest: the first */ ends the comment even after
    // an interior /* (the lexer golden tests pin this).
    while (!cur_.eof()) {
      const char c = cur_.get();
      text += c;
      if (c == '*' && cur_.peek() == '/') {
        text += cur_.get();
        break;
      }
    }
    emit(Tok::Comment, std::move(text));
  }

  void lex_directive_intro() {
    std::string text;
    text += cur_.get();  // '#'
    while (!cur_.eof() &&
           (cur_.peek() == ' ' || cur_.peek() == '\t')) {
      cur_.get();  // `#  include` is legal; normalize to "#include"
    }
    while (!cur_.eof() && is_ident_char(cur_.peek())) text += cur_.get();
    in_directive_ = true;
    expect_header_name_ = (text == "#include" || text == "#include_next");
    emit(Tok::Directive, std::move(text));
  }

  void lex_header_name(char open) {
    const char close = open == '<' ? '>' : '"';
    std::string text;
    text += cur_.get();
    while (!cur_.eof() && cur_.peek() != '\n') {
      const char c = cur_.get();
      text += c;
      if (c == close) break;
    }
    expect_header_name_ = false;
    emit(Tok::HeaderName, std::move(text));
  }

  /// R"..., optionally behind an encoding prefix (u8R", LR", ...).
  bool is_raw_string_ahead() const {
    std::size_t i = encoding_prefix_length();
    return cur_.peek(i) == 'R' && cur_.peek(i + 1) == '"';
  }

  /// "..." or '...' behind an encoding prefix (L"x", u8'c', ...).
  bool is_string_prefix_ahead() const {
    const std::size_t i = encoding_prefix_length();
    if (i == 0) return false;
    return cur_.peek(i) == '"' || cur_.peek(i) == '\'';
  }

  std::size_t encoding_prefix_length() const {
    const char c = cur_.peek();
    if (c == 'u' && cur_.peek(1) == '8') return 2;
    if (c == 'u' || c == 'U' || c == 'L') return 1;
    return 0;
  }

  void lex_raw_string() {
    std::string text;
    while (cur_.peek() != '"') text += cur_.get();  // prefix + 'R'
    text += cur_.get();                             // '"'
    std::string delim;
    while (!cur_.raw_eof() && cur_.raw_peek() != '(') {
      delim += cur_.raw_get();
    }
    text += delim;
    if (!cur_.raw_eof()) text += cur_.raw_get();  // '('
    const std::string closer = ")" + delim + "\"";
    std::string body;
    while (!cur_.raw_eof()) {
      body += cur_.raw_get();
      if (body.size() >= closer.size() &&
          body.compare(body.size() - closer.size(), closer.size(), closer) ==
              0) {
        break;
      }
    }
    text += body;
    emit(Tok::String, std::move(text));
  }

  void lex_string_or_char() {
    std::string prefix;
    for (std::size_t i = encoding_prefix_length(); i > 0; --i) {
      prefix += cur_.get();
    }
    const char quote = cur_.peek();
    lex_quoted(quote, quote == '"' ? Tok::String : Tok::Char,
               std::move(prefix));
  }

  void lex_quoted(char quote, Tok kind, std::string prefix = {}) {
    std::string text = std::move(prefix);
    text += cur_.get();  // opening quote
    while (!cur_.eof() && cur_.peek() != '\n') {
      const char c = cur_.get();
      text += c;
      if (c == '\\' && !cur_.eof()) {
        text += cur_.get();  // escaped char, including \" and \'
        continue;
      }
      if (c == quote) break;
    }
    emit(kind, std::move(text));
  }

  void lex_identifier() {
    std::string text;
    while (!cur_.eof() && is_ident_char(cur_.peek())) text += cur_.get();
    emit(Tok::Identifier, std::move(text));
  }

  void lex_number() {
    // pp-number: digits, identifier chars, ' separators between digit-ish
    // characters, and sign characters directly after an exponent marker.
    std::string text;
    text += cur_.get();
    while (!cur_.eof()) {
      const char c = cur_.peek();
      if (is_ident_char(c) || c == '.') {
        text += cur_.get();
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (cur_.peek() == '+' || cur_.peek() == '-')) {
          text += cur_.get();
        }
        continue;
      }
      if (c == '\'' && is_ident_char(cur_.peek(1))) {
        text += cur_.get();
        continue;
      }
      break;
    }
    emit(Tok::Number, std::move(text));
  }

  void lex_punct() {
    for (const std::string_view p : kPuncts) {
      bool match = true;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (cur_.peek(i) != p[i]) {
          match = false;
          break;
        }
      }
      // `...` must win over `..`+`.`; `<=>` over `<=`; the table is sorted
      // longest-first so the first hit is the maximal munch.
      if (match) {
        std::string text;
        for (std::size_t i = 0; i < p.size(); ++i) text += cur_.get();
        emit(Tok::Punct, std::move(text));
        return;
      }
    }
    std::string text(1, cur_.get());
    emit(Tok::Punct, std::move(text));
  }

  Cursor cur_;
  std::vector<Token> tokens_;
  bool at_line_start_ = true;
  bool in_directive_ = false;
  bool expect_header_name_ = false;
  std::size_t start_line_ = 1;
  std::size_t start_col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace analyze
