#include "analyze/symbols.hpp"

#include <cctype>
#include <set>

#include "analyze/model.hpp"

namespace analyze {
namespace {

bool is_word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// Full keyword set: keywords never name a function, never count as a
// liveness reference, and terminate qualified-id runs.
bool is_keyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "alignas",  "alignof",  "auto",     "bool",      "break",
      "case",     "catch",    "char",     "class",     "co_await",
      "co_return","co_yield", "const",    "consteval", "constexpr",
      "constinit","continue", "decltype", "default",   "delete",
      "do",       "double",   "else",     "enum",      "explicit",
      "extern",   "false",    "float",    "for",       "friend",
      "goto",     "if",       "inline",   "int",       "long",
      "mutable",  "namespace","new",      "noexcept",  "nullptr",
      "operator", "private",  "protected","public",    "register",
      "requires", "return",   "short",    "signed",    "sizeof",
      "static",   "struct",   "switch",   "template",  "this",
      "throw",    "true",     "try",      "typedef",   "typeid",
      "typename", "union",    "unsigned", "using",     "virtual",
      "void",     "volatile", "while",
  };
  return kw.count(t) != 0;
}

std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          std::string_view open, std::string_view close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::Punct && toks[i].text == open) ++depth;
    if (toks[i].kind == Tok::Punct && toks[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

/// The banned nondeterminism sources, shared with the token-level
/// no-nondeterminism-in-core rule: identifier-level equivalents of its
/// substring list, so cached records agree with what that rule reports.
struct TaintSpec {
  const char* ident;
  const char* token;   // spelled as the local rule spells it
  bool needs_call;     // only taints when followed by '('
};
constexpr TaintSpec kTaintSpecs[] = {
    {"rand", "rand(", true},
    {"srand", "srand(", true},
    {"time", "time(", true},
    {"random_device", "std::random_device", false},
    {"system_clock", "std::chrono::system_clock", false},
    {"unordered_map", "std::unordered_map", false},
    {"unordered_set", "std::unordered_set", false},
};

/// Recognizer state machine over the shared token stream. One instance
/// per file; appends FunctionRecords (plus the file-scope record) to the
/// summary.
class SymbolIndexer {
 public:
  SymbolIndexer(const FileContext& ctx, FileSummary& out)
      : ctx_(ctx), out_(out) {}

  void run() {
    build_tokens();
    const std::size_t n = toks_.size();
    std::size_t i = 0;
    while (i < n) {
      if (in_fn_) {
        i = body_token(i);
        continue;
      }
      const Token& t = toks_[i];
      if (t.kind == Tok::Punct) {
        if (t.text == "{") {
          ++depth_;
          scopes_.push_back({Scope::kBlock, "", depth_});
          ++i;
          continue;
        }
        if (t.text == "}") {
          if (depth_ > 0) --depth_;
          pop_scopes();
          ++i;
          continue;
        }
        if (t.text == ";") {
          pending_template_ = false;  // `template<...> void f(...);`
          ++i;
          continue;
        }
        if (t.text == "~" && i + 1 < n &&
            toks_[i + 1].kind == Tok::Identifier) {
          const std::size_t ni = try_function(i);
          if (ni != i) {
            i = ni;
            continue;
          }
        }
        ++i;
        continue;
      }
      if (t.kind != Tok::Identifier) {
        ++i;
        continue;
      }
      if (t.text == "template") {
        i = handle_template(i);
        continue;
      }
      if (t.text == "namespace") {
        i = handle_namespace(i);
        continue;
      }
      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          !(i > 0 && toks_[i - 1].kind == Tok::Identifier &&
            toks_[i - 1].text == "enum")) {
        const std::size_t ni = handle_class(i);
        if (ni != i) {
          i = ni;
          continue;
        }
      }
      // `operator` is a keyword but also opens a free operator definition
      // (`bool operator==(...) {`), so it alone is allowed through.
      if (!is_keyword(t.text) || t.text == "operator") {
        const std::size_t ni = try_function(i);
        if (ni != i) {
          i = ni;
          continue;
        }
        if (!is_keyword(t.text)) file_scope_.refs.insert(t.text);
      }
      ++i;
    }
    if (in_fn_) close_function();
    file_scope_.file_scope = true;
    out_.functions.push_back(std::move(file_scope_));
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kBlock };
    Kind kind;
    std::string name;
    int depth;  // brace depth owned by this scope's '{'
  };
  struct Held {
    int depth;  // brace depth the guard was constructed at
    std::string mutex;
  };

  const FileContext& ctx_;
  FileSummary& out_;
  std::vector<Token> toks_;
  FunctionRecord file_scope_;
  std::vector<Scope> scopes_;
  std::vector<Held> held_;
  FunctionRecord fn_;
  std::string class_ctx_;
  bool in_fn_ = false;
  bool pending_template_ = false;
  int depth_ = 0;
  int body_depth_ = 0;

  const std::string& tok(std::size_t i) const { return toks_[i].text; }
  bool tok_is(std::size_t i, std::string_view s) const {
    return i < toks_.size() && toks_[i].kind == Tok::Punct &&
           toks_[i].text == s;
  }

  /// Drop tokens on preprocessor-directive logical lines (a #define body
  /// would unbalance brace tracking); their identifiers become file-scope
  /// references so macro-expanded helpers stay live.
  void build_tokens() {
    std::set<std::size_t> directive_lines;
    for (const Token& t : ctx_.tokens) {
      if (t.kind != Tok::Directive) continue;
      std::size_t ln = t.line;
      for (;;) {
        directive_lines.insert(ln);
        if (ln > ctx_.code_lines.size()) break;
        const std::string& s = ctx_.code_lines[ln - 1];
        const std::size_t e = s.find_last_not_of(" \t");
        if (e == std::string::npos || s[e] != '\\') break;
        ++ln;
      }
    }
    for (const Token& t : ctx_.tokens) {
      if (directive_lines.count(t.line)) {
        if (t.kind == Tok::Identifier && !is_keyword(t.text)) {
          file_scope_.refs.insert(t.text);
        }
        continue;
      }
      toks_.push_back(t);
    }
  }

  void pop_scopes() {
    while (!scopes_.empty() && scopes_.back().depth > depth_) {
      scopes_.pop_back();
    }
  }

  /// Member-naming idiom: a bare trailing-underscore identifier inside a
  /// member function denotes a data member — qualify it with the class so
  /// same-named mutexes of different classes stay distinct lock nodes.
  std::string qualify(const std::string& expr) const {
    if (expr.empty() || class_ctx_.empty()) return expr;
    for (char c : expr) {
      if (!is_word_char(c)) return expr;
    }
    if (expr.back() != '_') return expr;
    return class_ctx_ + "::" + expr;
  }

  std::vector<std::string> held_names() const {
    std::vector<std::string> v;
    v.reserve(held_.size());
    for (const Held& h : held_) v.push_back(h.mutex);
    return v;
  }

  std::size_t handle_template(std::size_t i) {
    std::size_t j = i + 1;
    if (tok_is(j, "<")) j = skip_balanced(toks_, j, "<", ">");
    pending_template_ = true;
    return j;
  }

  std::size_t handle_namespace(std::size_t i) {
    const std::size_t n = toks_.size();
    std::size_t j = i + 1;
    std::string nm;
    while (j < n && toks_[j].kind == Tok::Identifier) {
      if (!nm.empty()) nm += "::";
      nm += toks_[j].text;
      ++j;
      if (tok_is(j, "::")) {
        ++j;
        continue;
      }
      break;
    }
    if (tok_is(j, "{")) {
      ++depth_;
      scopes_.push_back({Scope::kNamespace, nm, depth_});
      return j + 1;
    }
    if (tok_is(j, "=")) {  // namespace alias
      while (j < n && !tok_is(j, ";")) ++j;
      return j < n ? j + 1 : n;
    }
    return i + 1;  // `using namespace ...;` etc. — rescan normally
  }

  std::size_t handle_class(std::size_t i) {
    const std::size_t n = toks_.size();
    std::size_t j = i + 1;
    // Skip [[attributes]], alignas(...), and capability macros like
    // HCSCHED_CAPABILITY("mutex") between the keyword and the name.
    for (;;) {
      if (j + 1 < n && tok_is(j, "[") && tok_is(j + 1, "[")) {
        j = skip_balanced(toks_, j, "[", "]");
        if (tok_is(j, "]")) ++j;
        continue;
      }
      if (j < n && toks_[j].kind == Tok::Identifier &&
          (toks_[j].text.rfind("HCSCHED_", 0) == 0 ||
           toks_[j].text == "alignas")) {
        ++j;
        if (tok_is(j, "(")) j = skip_balanced(toks_, j, "(", ")");
        continue;
      }
      break;
    }
    std::string nm;
    if (j < n && toks_[j].kind == Tok::Identifier &&
        !is_keyword(toks_[j].text)) {
      nm = toks_[j].text;
      ++j;
    }
    // Scan the (optional) final specifier / base clause to the body brace.
    while (j < n) {
      if (tok_is(j, "{")) {
        ++depth_;
        scopes_.push_back({Scope::kClass, nm, depth_});
        pending_template_ = false;
        return j + 1;
      }
      if (tok_is(j, ";") || tok_is(j, "(") || tok_is(j, "=") ||
          tok_is(j, ")") || tok_is(j, ">")) {
        return i + 1;  // forward declaration / type mention — rescan
      }
      if (toks_[j].kind == Tok::Identifier && !is_keyword(toks_[j].text)) {
        file_scope_.refs.insert(toks_[j].text);  // base classes
      }
      ++j;
    }
    return i + 1;
  }

  /// Attempt to parse a function definition whose declarator starts at
  /// toks_[i] (an identifier, or `~` for an inline destructor). Returns i
  /// unchanged when the shape does not match; on success consumes through
  /// the body's opening '{' and enters body mode.
  std::size_t try_function(std::size_t i) {
    const std::size_t n = toks_.size();
    std::size_t j = i;
    std::string name;
    std::vector<std::string> quals;
    bool is_op = false;
    bool special = false;

    if (tok_is(j, "~")) {
      if (j + 1 >= n || toks_[j + 1].kind != Tok::Identifier) return i;
      name = "~" + toks_[j + 1].text;
      special = true;
      j += 2;
    } else {
      for (;;) {
        if (j >= n) return i;
        if (toks_[j].kind == Tok::Identifier &&
            toks_[j].text == "operator") {
          std::size_t k = j + 1;
          if (tok_is(k, "(") && tok_is(k + 1, ")")) {
            name = "operator()";
            k += 2;
          } else if (tok_is(k, "[") && tok_is(k + 1, "]")) {
            name = "operator[]";
            k += 2;
          } else if (k < n && toks_[k].kind == Tok::Punct) {
            name = "operator";
            while (k < n && toks_[k].kind == Tok::Punct &&
                   toks_[k].text != "(") {
              name += toks_[k].text;
              ++k;
            }
          } else if (k < n && toks_[k].kind == Tok::Identifier) {
            name = "operator ";  // conversion / operator new
            while (k < n && !tok_is(k, "(")) {
              name += toks_[k].text;
              ++k;
            }
          } else {
            return i;
          }
          is_op = true;
          j = k;
          break;
        }
        if (toks_[j].kind != Tok::Identifier || is_keyword(toks_[j].text)) {
          return i;
        }
        const std::string id = toks_[j].text;
        ++j;
        std::size_t after_tpl = j;
        if (tok_is(j, "<")) {
          after_tpl = skip_balanced(toks_, j, "<", ">");
        }
        if (tok_is(after_tpl, "::")) {
          quals.push_back(id);
          j = after_tpl + 1;
          if (tok_is(j, "~")) {  // out-of-line destructor Foo::~Foo
            if (j + 1 >= n || toks_[j + 1].kind != Tok::Identifier) {
              return i;
            }
            name = "~" + toks_[j + 1].text;
            special = true;
            j += 2;
            break;
          }
          continue;
        }
        name = id;
        j = after_tpl;  // allow an explicit specialization name<...>(
        break;
      }
    }

    if (!tok_is(j, "(")) return i;
    const std::size_t params_open = j;
    j = skip_balanced(toks_, j, "(", ")");
    if (j >= n) return i;

    // Modifier run: cv/ref qualifiers, noexcept(...), trailing return,
    // thread-safety annotation macros (whose ACQUIRE/REQUIRES arguments we
    // keep), then '{' (definition), ';' (declaration — not stored),
    // '= default/delete/0;', or ':' (constructor initializer list).
    std::vector<std::string> acq;
    std::vector<std::string> req;
    for (;;) {
      if (j >= n) return i;
      const Token& m = toks_[j];
      if (m.kind == Tok::Identifier) {
        if (is_keyword(m.text) && m.text != "const" &&
            m.text != "noexcept" && m.text != "mutable" &&
            m.text != "throw" && m.text != "requires" &&
            m.text != "volatile") {
          return i;  // e.g. `return foo(x)` leaking in — not a declarator
        }
        const std::string mt = m.text;
        ++j;
        if (tok_is(j, "(")) {
          const std::size_t args_open = j;
          j = skip_balanced(toks_, j, "(", ")");
          if (mt.rfind("HCSCHED_", 0) == 0) {
            std::vector<std::string> args =
                split_args(args_open, j > 0 ? j : args_open);
            if (mt.find("ACQUIRE") != std::string::npos) {
              acq.insert(acq.end(), args.begin(), args.end());
            } else if (mt.find("REQUIRES") != std::string::npos) {
              req.insert(req.end(), args.begin(), args.end());
            }
          }
        }
        continue;
      }
      if (m.kind == Tok::Punct &&
          (m.text == "&" || m.text == "&&")) {  // ref-qualifier
        ++j;
        continue;
      }
      if (m.kind == Tok::Punct && m.text == "->") {  // trailing return
        ++j;
        while (j < n) {
          if (toks_[j].kind == Tok::Identifier) {
            ++j;
            continue;
          }
          if (tok_is(j, "<")) {
            j = skip_balanced(toks_, j, "<", ">");
            continue;
          }
          if (tok_is(j, "::") || tok_is(j, "*") || tok_is(j, "&")) {
            ++j;
            continue;
          }
          break;
        }
        continue;
      }
      break;
    }
    if (j >= n) return i;

    if (tok_is(j, ":")) {
      // Constructor initializer list: `name(...)` or `name{...}` items
      // separated by commas; the first '{' not directly after an item
      // name opens the body.
      ++j;
      for (;;) {
        bool saw_name = false;
        while (j < n &&
               (toks_[j].kind == Tok::Identifier || tok_is(j, "::"))) {
          saw_name = toks_[j].kind == Tok::Identifier || saw_name;
          ++j;
          if (tok_is(j, "<")) j = skip_balanced(toks_, j, "<", ">");
        }
        if (j >= n) return i;
        if (tok_is(j, "(")) {
          j = skip_balanced(toks_, j, "(", ")");
        } else if (tok_is(j, "{") && saw_name) {
          j = skip_balanced(toks_, j, "{", "}");
        } else if (tok_is(j, "{")) {
          break;  // the body
        } else {
          return i;
        }
        if (tok_is(j, ",")) {
          ++j;
          continue;
        }
        break;
      }
    }
    if (!tok_is(j, "{")) return i;

    // Definition confirmed — build the record.
    FunctionRecord fn;
    fn.name = name;
    fn.line = toks_[i].line;
    fn.is_definition = true;
    fn.is_operator = is_op;
    fn.is_template = pending_template_;
    pending_template_ = false;
    std::string q;
    for (const Scope& s : scopes_) {
      if (s.kind != Scope::kBlock && !s.name.empty()) q += s.name + "::";
    }
    for (const std::string& s : quals) q += s + "::";
    q += name;
    fn.qualified = q;

    class_ctx_.clear();
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass && !it->name.empty()) {
        class_ctx_ = it->name;
        break;
      }
    }
    if (class_ctx_.empty() && !quals.empty()) {
      const std::string& lq = quals.back();
      if (!lq.empty() &&
          std::isupper(static_cast<unsigned char>(lq[0])) != 0) {
        class_ctx_ = lq;
      }
    }
    fn.is_member = !class_ctx_.empty();
    fn.is_special =
        special || (!class_ctx_.empty() && name == class_ctx_);
    fn.allow_dead = ctx_.line_allowed(fn.line, "dead-symbol");
    for (const std::string& a : acq) fn.annot_acquires.push_back(qualify(a));
    for (const std::string& a : req) fn.annot_requires.push_back(qualify(a));
    for (std::size_t k = i; k < j; ++k) {
      if (toks_[k].kind == Tok::Identifier && !is_keyword(toks_[k].text)) {
        fn.refs.insert(toks_[k].text);
      }
    }
    (void)params_open;

    fn_ = std::move(fn);
    in_fn_ = true;
    ++depth_;  // the body '{'
    body_depth_ = depth_;
    held_.clear();
    for (const std::string& r : fn_.annot_requires) {
      held_.push_back({body_depth_, r});
    }
    return j + 1;
  }

  void close_function() {
    in_fn_ = false;
    held_.clear();
    out_.functions.push_back(std::move(fn_));
    fn_ = FunctionRecord{};
    class_ctx_.clear();
  }

  std::size_t body_token(std::size_t i) {
    const Token& t = toks_[i];
    if (t.kind == Tok::Punct) {
      if (t.text == "{") {
        ++depth_;
        return i + 1;
      }
      if (t.text == "}") {
        if (depth_ > 0) --depth_;
        while (!held_.empty() && held_.back().depth > depth_) {
          held_.pop_back();
        }
        if (depth_ < body_depth_) close_function();
        return i + 1;
      }
      return i + 1;
    }
    if (t.kind != Tok::Identifier || is_keyword(t.text)) return i + 1;
    fn_.refs.insert(t.text);
    if (t.text == "MutexLock" || t.text == "lock_guard" ||
        t.text == "unique_lock" || t.text == "scoped_lock") {
      return handle_guard(i);
    }
    check_taint(i);
    check_block_and_call(i);
    return i + 1;
  }

  bool prev_member(std::size_t i) const {
    return i > 0 && toks_[i - 1].kind == Tok::Punct &&
           (toks_[i - 1].text == "." || toks_[i - 1].text == "->");
  }

  /// Split a parenthesized/braced argument list (toks_[open] is the
  /// opening punct) into depth-0 comma-separated argument spellings.
  std::vector<std::string> split_args(std::size_t open, std::size_t end) {
    std::vector<std::string> args;
    std::string cur;
    int d = 0;
    for (std::size_t m = open; m < end && m < toks_.size(); ++m) {
      const Token& a = toks_[m];
      if (a.kind == Tok::Punct) {
        if (a.text == "(" || a.text == "{" || a.text == "[") {
          if (d > 0) cur += a.text;
          ++d;
          continue;
        }
        if (a.text == ")" || a.text == "}" || a.text == "]") {
          --d;
          if (d == 0) break;
          cur += a.text;
          continue;
        }
        if (a.text == "," && d == 1) {
          if (!cur.empty()) args.push_back(cur);
          cur.clear();
          continue;
        }
      }
      if (d >= 1) cur += a.text;
    }
    if (!cur.empty()) args.push_back(cur);
    return args;
  }

  /// RAII lock-guard construction: record the acquisition (with the locks
  /// already held) and push every guarded mutex onto the held stack until
  /// the enclosing block closes.
  std::size_t handle_guard(std::size_t i) {
    const std::size_t n = toks_.size();
    std::size_t j = i + 1;
    if (tok_is(j, "<")) j = skip_balanced(toks_, j, "<", ">");
    if (j >= n || toks_[j].kind != Tok::Identifier) return i + 1;
    fn_.refs.insert(toks_[j].text);
    const std::size_t open = j + 1;
    if (!tok_is(open, "(") && !tok_is(open, "{")) return i + 1;
    const std::size_t end =
        tok_is(open, "(") ? skip_balanced(toks_, open, "(", ")")
                          : skip_balanced(toks_, open, "{", "}");
    for (const std::string& arg : split_args(open, end)) {
      LockSite ls;
      ls.mutex = qualify(arg);
      ls.line = toks_[i].line;
      ls.held = held_names();
      ls.allowed = ctx_.line_allowed(ls.line, "lock-order");
      held_.push_back({depth_, ls.mutex});
      fn_.locks.push_back(std::move(ls));
    }
    for (std::size_t k = open; k < end && k < n; ++k) {
      if (toks_[k].kind == Tok::Identifier && !is_keyword(toks_[k].text)) {
        fn_.refs.insert(toks_[k].text);
      }
    }
    return end;
  }

  void check_taint(std::size_t i) {
    const Token& t = toks_[i];
    if (ctx_.line_allowed(t.line, "no-nondeterminism-in-core") ||
        ctx_.line_allowed(t.line, "taint")) {
      return;
    }
    for (const TaintSpec& spec : kTaintSpecs) {
      if (t.text != spec.ident) continue;
      if (spec.needs_call && (!tok_is(i + 1, "(") || prev_member(i))) {
        continue;
      }
      fn_.taints.push_back({spec.token, t.line});
      return;
    }
  }

  void add_block(const std::string& what, std::size_t line,
                 bool wait_on_held = false) {
    BlockSite bs;
    bs.what = what;
    bs.line = line;
    bs.held = held_names();
    bs.allowed = ctx_.line_allowed(line, "blocking-under-lock");
    bs.wait_on_held = wait_on_held;
    fn_.blocks.push_back(std::move(bs));
  }

  void check_block_and_call(std::size_t i) {
    const Token& t = toks_[i];
    if (!tok_is(i + 1, "(")) {
      // Blocking by construction: a file stream object opened here.
      if (t.text == "ofstream" || t.text == "ifstream" ||
          t.text == "fstream") {
        add_block("stream-io", t.line);
      }
      return;
    }
    const bool member = prev_member(i);
    if (t.text == "wait" && member) {
      const std::size_t end = skip_balanced(toks_, i + 1, "(", ")");
      const std::vector<std::string> args = split_args(i + 1, end);
      bool on_held = false;
      if (!args.empty()) {
        const std::string arg = qualify(args.front());
        for (const Held& h : held_) {
          if (h.mutex == arg) on_held = true;
        }
      }
      add_block("CondVar::wait", t.line, on_held);
    } else if (t.text == "submit") {
      add_block("ThreadPool::submit", t.line);
    } else if (t.text == "parallel_for_chunks") {
      add_block("parallel_for_chunks", t.line);
    } else if (t.text == "fopen" || t.text == "getline") {
      add_block("stream-io", t.line);
    } else if ((t.text == "open" || t.text == "flush") && member) {
      add_block("stream-io", t.line);
    }

    CallSite cs;
    cs.name = t.text;
    cs.line = t.line;
    std::size_t q = i;
    std::vector<std::string> quals;
    while (q >= 2 && toks_[q - 1].kind == Tok::Punct &&
           toks_[q - 1].text == "::" &&
           toks_[q - 2].kind == Tok::Identifier) {
      quals.insert(quals.begin(), toks_[q - 2].text);
      q -= 2;
    }
    for (std::size_t k = 0; k < quals.size(); ++k) {
      if (k != 0) cs.qualifier += "::";
      cs.qualifier += quals[k];
    }
    cs.member = member || prev_member(q);
    cs.held = held_names();
    cs.allow_blocking = ctx_.line_allowed(t.line, "blocking-under-lock");
    cs.allow_taint = ctx_.line_allowed(t.line, "taint");
    cs.allow_lock = ctx_.line_allowed(t.line, "lock-order");
    fn_.calls.push_back(std::move(cs));
  }
};

}  // namespace

void index_symbols(const std::string& relative, const FileContext& ctx,
                   FileSummary& out) {
  (void)relative;
  SymbolIndexer(ctx, out).run();
}

}  // namespace analyze
