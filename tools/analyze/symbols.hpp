// Symbol indexer for hcsched_analyze: a declaration/definition recognizer
// over the shared token stream — NOT a C++ parser. It recognizes the
// repo's own idioms (free functions, inline and out-of-line members,
// operator overloads, constructors/destructors, namespaces, template
// heads) and digests each function *definition* into a FunctionRecord of
// interprocedural facts:
//
//   * call sites, each with the set of core::MutexLock locks held there;
//   * lock acquisitions (core::MutexLock / std::lock_guard / unique_lock /
//     scoped_lock) with the locks already held when taken;
//   * blocking-primitive hits (CondVar::wait, ThreadPool::submit /
//     parallel_for_chunks, stream I/O) with the held set;
//   * nondeterminism taint sources (the banned-token list of the
//     no-nondeterminism-in-core rule, detected at token level);
//   * the set of identifiers referenced in the body (liveness edges for
//     the dead-symbol rule: function pointers, factory tables, lambdas).
//
// Records are pure per-file facts — they carry no cross-file resolution —
// so they live in the FileSummary and round-trip through the incremental
// cache; a warm cache hit skips the indexing pass entirely. The cross-TU
// joins (call graph, lock graph, taint/liveness fixpoints) happen in
// callgraph.cpp over the cached records.
//
// Approximations, by design (see docs/STATIC_ANALYSIS.md):
//   * lambdas are attributed to their enclosing function — a call made
//     inside a lambda passed to parallel_for_chunks is a call made by the
//     function that built the lambda;
//   * tokens on preprocessor-directive lines (macro definitions) never
//     open scopes or functions; their identifiers are attributed to the
//     file-scope record so macro-expanded helpers stay live;
//   * member mutexes spelled as a bare identifier are qualified with the
//     enclosing class ("ThreadPool::queue_mutex_"), keeping same-named
//     mutexes of different classes distinct in the lock graph.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace analyze {

struct FileContext;
struct FileSummary;

/// One call site inside a function body (or at file scope).
struct CallSite {
  std::string name;       // last identifier of the callee expression
  std::string qualifier;  // "::"-joined qualifiers before the name, if any
  std::size_t line = 0;
  bool member = false;  // preceded by '.' or '->'
  std::vector<std::string> held;  // locks held here, outermost first
  bool allow_blocking = false;    // lint:allow(blocking-under-lock)
  bool allow_taint = false;       // lint:allow(taint)
  bool allow_lock = false;        // lint:allow(lock-order)
};

/// One lock acquisition (RAII guard construction).
struct LockSite {
  std::string mutex;  // normalized expression, class-qualified members
  std::size_t line = 0;
  std::vector<std::string> held;  // locks already held when taken
  bool allowed = false;           // lint:allow(lock-order)
};

/// One direct blocking-primitive hit.
struct BlockSite {
  std::string what;  // "CondVar::wait", "ThreadPool::submit", "stream-io"…
  std::size_t line = 0;
  std::vector<std::string> held;
  bool allowed = false;       // lint:allow(blocking-under-lock)
  bool wait_on_held = false;  // cv.wait(m) with m the held lock: the
                              // condition-variable idiom, never flagged
};

/// One nondeterminism source hit (same ban list as the token rule).
struct TaintSite {
  std::string token;  // e.g. "rand(", "std::chrono::system_clock"
  std::size_t line = 0;
};

struct FunctionRecord {
  std::string name;       // unqualified; "operator==", "~Foo", class name
                          // for constructors; "" for the file-scope record
  std::string qualified;  // namespace::Class::name as spelled
  std::size_t line = 0;   // line of the name token (0 for file scope)
  bool is_definition = false;  // has a body (only definitions are stored,
                               // plus the one file-scope record per file)
  bool is_member = false;
  bool is_template = false;
  bool is_operator = false;
  bool is_special = false;    // constructor or destructor
  bool file_scope = false;    // the per-file pseudo-record: file-scope
                              // identifiers, static initializers, macro
                              // bodies — always a liveness root
  bool allow_dead = false;    // lint:allow(dead-symbol) on the definition
  std::vector<std::string> annot_acquires;  // HCSCHED_ACQUIRE(...) args
  std::vector<std::string> annot_requires;  // HCSCHED_REQUIRES(...) args
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
  std::vector<BlockSite> blocks;
  std::vector<TaintSite> taints;
  std::set<std::string> refs;  // body + signature identifiers (liveness)
};

/// Index every function definition in the file (appends to out.functions,
/// including the trailing file-scope record). Invoked by analyze_file;
/// cache hits skip it.
void index_symbols(const std::string& relative, const FileContext& ctx,
                   FileSummary& out);

}  // namespace analyze
