// Analysis rules for hcsched_analyze.
//
// run_local_rules: everything decidable from one file. The five ported
// line-oriented rules (trace-guard, include-hygiene, explicit-memory-order,
// no-nondeterminism-in-core, lock-annotation-coverage) scan the scrubbed
// code lines — comments blanked, string contents blanked — which is what
// makes them string/comment-aware while keeping the exact line pinning the
// fixtures rely on. The two new local rules (narrowing-in-kernel,
// catch-by-value) work on the token stream directly.
//
// run_global_rules: rules needing more than one file — registry coverage,
// fastpath differential coverage, test registration, metric docs (the docs
// file can change without the source changing, so this never comes from
// the cache), range-for-temporary (consults the repo-wide return-kind
// map), and the include-graph rules from graph.cpp.
#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "analyze/callgraph.hpp"
#include "analyze/model.hpp"

namespace analyze {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view trim_left(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

bool is_identifier_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

std::string stem_of(std::string_view relative) {
  const std::size_t slash = relative.rfind('/');
  std::string_view name =
      slash == std::string_view::npos ? relative : relative.substr(slash + 1);
  const std::size_t dot = name.rfind('.');
  return std::string(dot == std::string_view::npos ? name
                                                   : name.substr(0, dot));
}

std::string filename_of(std::string_view relative) {
  const std::size_t slash = relative.rfind('/');
  return std::string(slash == std::string_view::npos
                         ? relative
                         : relative.substr(slash + 1));
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// ------------------------------------------------------ ported local rules

void check_trace_guard(const std::string& relative, const FileContext& ctx,
                       FileSummary& out) {
  // Raw observability entry points that -DHCSCHED_TRACE=0 must compile out.
  constexpr std::string_view kRawCalls[] = {
      "obs::counters::add(",      "counters::add(",
      "obs::Tracer::emit(",       "Tracer::emit(",
      "record_heuristic_call(",   "record_queue_depth(",
      "pool_wait_histogram(",     "pool_run_histogram(",
      "obs::ScopedSpan",          "metrics::counter(",
      "metrics::gauge(",          "metrics::histogram(",
  };
  if (!starts_with(relative, "src/")) return;
  if (starts_with(relative, "src/obs/")) return;  // the implementation
  if (out.file_allows.count("trace-guard")) return;
  // Track preprocessor conditional nesting; a line is guarded when any
  // enclosing conditional mentions HCSCHED_TRACE.
  std::vector<bool> guard_stack;
  std::size_t guarded_depth = 0;
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = trim_left(ctx.code_lines[i]);
    if (starts_with(line, "#if")) {  // #if / #ifdef / #ifndef
      const bool guards = line.find("HCSCHED_TRACE") != std::string::npos;
      guard_stack.push_back(guards);
      if (guards) ++guarded_depth;
      continue;
    }
    if (starts_with(line, "#endif")) {
      if (!guard_stack.empty()) {
        if (guard_stack.back()) --guarded_depth;
        guard_stack.pop_back();
      }
      continue;
    }
    if (guarded_depth > 0) continue;
    for (const std::string_view call : kRawCalls) {
      if (ctx.code_lines[i].find(call) != std::string::npos) {
        out.findings.push_back(Finding{
            relative, i + 1, "trace-guard",
            "raw call '" + std::string(call) +
                "...' outside an #if HCSCHED_TRACE region; use "
                "HCSCHED_COUNT/HCSCHED_TRACE_EVENT or guard the block"});
        break;
      }
    }
  }
}

void check_include_hygiene(const std::string& relative,
                           const FileContext& ctx, FileSummary& out) {
  // Applies at EVERY nesting depth (src/sim/fault/, fastpath/, ...), and —
  // unlike the regex linter — only to real #include directives: the same
  // text inside a string literal or comment is scrubbed away.
  if (out.file_allows.count("include-hygiene")) return;
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = trim_left(ctx.code_lines[i]);
    if (!starts_with(line, "#include")) continue;
    if (line.find("#include \"src/") != std::string_view::npos) {
      out.findings.push_back(Finding{
          relative, i + 1, "include-hygiene",
          "include paths are relative to src/ — drop the 'src/' prefix"});
    } else if (line.find("#include \"../") != std::string_view::npos) {
      out.findings.push_back(Finding{
          relative, i + 1, "include-hygiene",
          "parent-relative include; use a src/-relative path instead"});
    }
  }
}

void check_explicit_memory_order(const std::string& relative,
                                 const FileContext& ctx, FileSummary& out) {
  // Atomic member operations that accept a std::memory_order argument.
  // Matched only when preceded by '.' or '>' (i.e. `x.load(`, `p->store(`)
  // so free functions like `load_etc(` never trip the rule. `exchange(`
  // cannot match inside `compare_exchange_*(` — the longer names continue
  // with `_weak`/`_strong`, not `(`.
  constexpr std::string_view kAtomicOps[] = {
      "load(",
      "store(",
      "exchange(",
      "fetch_add(",
      "fetch_sub(",
      "fetch_and(",
      "fetch_or(",
      "fetch_xor(",
      "compare_exchange_weak(",
      "compare_exchange_strong(",
  };
  // An atomic call may wrap; gather up to this many continuation lines when
  // balancing the parentheses of the call.
  constexpr std::size_t kMaxContinuationLines = 10;
  if (!starts_with(relative, "src/")) return;
  if (out.file_allows.count("explicit-memory-order")) return;
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string& line = ctx.code_lines[i];
    bool flagged = false;  // at most one finding per line
    for (const std::string_view op : kAtomicOps) {
      for (std::size_t pos = line.find(op); pos != std::string::npos;
           pos = line.find(op, pos + 1)) {
        if (pos == 0) continue;
        const char before = line[pos - 1];
        if (before != '.' && before != '>') continue;
        // Collect the call text from the opening '(' to its matching ')',
        // spilling across continuation lines for wrapped calls.
        std::string call_text;
        int depth = 0;
        bool closed = false;
        std::size_t row = i;
        std::size_t col = pos + op.size() - 1;  // the '(' in the token
        while (row < ctx.code_lines.size() &&
               row < i + 1 + kMaxContinuationLines && !closed) {
          const std::string& scan = ctx.code_lines[row];
          for (; col < scan.size(); ++col) {
            const char c = scan[col];
            call_text += c;
            if (c == '(') ++depth;
            if (c == ')' && --depth == 0) {
              closed = true;
              break;
            }
          }
          ++row;
          col = 0;
        }
        if (call_text.find("memory_order") != std::string::npos) continue;
        if (ctx.line_allowed(i + 1, "memory-order")) continue;
        out.findings.push_back(Finding{
            relative, i + 1, "explicit-memory-order",
            "atomic '" + std::string(op) +
                "...)' without an explicit std::memory_order — name the "
                "ordering (and justify it in a comment), or audit the "
                "site and mark it '// lint:allow(memory-order)'"});
        flagged = true;
        break;
      }
      if (flagged) break;
    }
  }
}

void check_no_nondeterminism_in_core(const std::string& relative,
                                     const FileContext& ctx,
                                     FileSummary& out) {
  // Layers whose outputs must be a pure function of (problem, seed). The
  // sim layer may use wall clocks and ambient entropy; these may not.
  constexpr std::string_view kDeterministicDirs[] = {
      "src/core/",
      "src/heuristics/",
      "src/etc/",
      "src/ga/",
  };
  struct Banned {
    std::string_view token;
    bool word_boundary;  // previous char must not be an identifier char
    std::string_view why;
  };
  constexpr Banned kBanned[] = {
      {"std::random_device", false,
       "ambient entropy; thread seeded randomness through core/rng.hpp"},
      {"std::chrono::system_clock", false,
       "wall-clock time; use steady_clock in sim/ or pass timestamps in"},
      {"std::unordered_map", false,
       "iteration order is implementation-defined; use std::map (or sort)"},
      {"std::unordered_set", false,
       "iteration order is implementation-defined; use std::set (or sort)"},
      {"srand(", true, "global RNG reseed; use core/rng.hpp streams"},
      {"rand(", true, "C global RNG; use core/rng.hpp streams"},
      {"time(", true, "wall-clock time; pass timestamps in from the caller"},
  };
  bool in_scope = false;
  for (const std::string_view dir : kDeterministicDirs) {
    if (starts_with(relative, dir)) in_scope = true;
  }
  if (!in_scope) return;
  if (out.file_allows.count("no-nondeterminism-in-core")) return;
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string& line = ctx.code_lines[i];
    for (const Banned& ban : kBanned) {
      const std::size_t pos = line.find(ban.token);
      if (pos == std::string::npos) continue;
      // `rand(` must not fire inside `srand(`; `time(` must not fire
      // inside `completion_time(` — the boundary check rejects a preceding
      // identifier character. (A preceding ':' stays in scope so
      // `std::rand(`/`std::time(` are still caught.)
      if (ban.word_boundary && pos > 0 &&
          is_identifier_char(line[pos - 1])) {
        continue;
      }
      if (ctx.line_allowed(i + 1, "nondeterminism")) continue;
      std::string message = "'";
      message += ban.token;
      message += "' in a deterministic layer: ";
      message += ban.why;
      message += " (or mark the audited line '// lint:allow("
                 "nondeterminism)')";
      out.findings.push_back(Finding{relative, i + 1,
                                     "no-nondeterminism-in-core",
                                     std::move(message)});
      break;  // one finding per line
    }
  }
}

void check_lock_annotation_coverage(const std::string& relative,
                                    const FileContext& ctx,
                                    FileSummary& out) {
  // Type tokens that declare a mutex member/variable when they open a
  // declaration line. References/pointers (`Mutex&`, `std::mutex*`) are
  // aliases to a capability owned elsewhere and are not declarations.
  constexpr std::string_view kMutexTypes[] = {
      "std::mutex ",
      "core::Mutex ",
      "Mutex ",
  };
  if (!starts_with(relative, "src/")) return;
  if (out.file_allows.count("lock-annotation-coverage")) return;
  std::string file_text;
  for (const std::string& line : ctx.code_lines) {
    file_text += line;
    file_text += '\n';
  }
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    std::string_view line = trim_left(ctx.code_lines[i]);
    if (starts_with(line, "mutable ")) {
      line.remove_prefix(sizeof("mutable ") - 1);
    }
    for (const std::string_view type : kMutexTypes) {
      if (!starts_with(line, type)) continue;
      std::string_view rest = trim_left(line.substr(type.size()));
      std::size_t len = 0;
      while (len < rest.size() && is_identifier_char(rest[len])) ++len;
      if (len == 0) continue;  // not a named declaration
      const std::string name(rest.substr(0, len));
      // GUARDED_BY(name) with a closing paren pins the exact mutex name;
      // the bare substring also matches HCSCHED_PT_GUARDED_BY. Scanning
      // scrubbed lines means an annotation mentioned only in a comment no
      // longer satisfies the rule.
      const std::string needle = "GUARDED_BY(" + name + ")";
      if (file_text.find(needle) != std::string::npos) break;
      if (ctx.line_allowed(i + 1, "lock-annotation")) break;
      out.findings.push_back(Finding{
          relative, i + 1, "lock-annotation-coverage",
          "mutex '" + name +
              "' has no GUARDED_BY/PT_GUARDED_BY field naming it — "
              "annotate what it protects (core/thread_annotations.hpp), "
              "or mark the audited line '// lint:allow("
              "lock-annotation)'"});
      break;
    }
  }
}

// --------------------------------------------------------- new local rules

bool tok_is(const Token& t, std::string_view text) { return t.text == text; }

bool is_keyword_name(const std::string& t) {
  static const std::set<std::string> kw = {
      "auto",   "bool",     "break",  "case",   "catch",  "class",
      "const",  "continue", "default","delete", "do",     "double",
      "else",   "enum",     "false",  "float",  "for",    "if",
      "int",    "long",     "new",    "return", "short",  "sizeof",
      "struct", "switch",   "this",   "throw",  "true",   "union",
      "unsigned","void",    "while",
  };
  return kw.count(t) != 0;
}

/// narrowing-in-kernel: implicit double->float and size_t->int in the hot
/// kernels (src/heuristics/fastpath/) and the ETC matrix layer (src/etc/),
/// where silent precision/width loss corrupts schedule math. A
/// static_cast<> in the initializer documents intent and silences the rule.
void check_narrowing_in_kernel(const std::string& relative,
                               const FileContext& ctx, FileSummary& out) {
  if (!starts_with(relative, "src/heuristics/fastpath/") &&
      !starts_with(relative, "src/etc/")) {
    return;
  }
  if (out.file_allows.count("narrowing-in-kernel")) return;
  const std::vector<Token>& toks = ctx.tokens;
  std::map<std::string, std::string> var_type;  // name -> tracked type

  // Does toks[i..] spell a tracked type? Returns the type and its length.
  auto type_at = [&toks](std::size_t i, std::size_t* len) -> std::string {
    if (toks[i].kind != Tok::Identifier) return {};
    const std::string& t = toks[i].text;
    if (t == "double" || t == "float" || t == "int") {
      *len = 1;
      return t;
    }
    if (t == "size_t") {
      *len = 1;
      return "size_t";
    }
    if (t == "std" && i + 2 < toks.size() && tok_is(toks[i + 1], "::") &&
        tok_is(toks[i + 2], "size_t")) {
      *len = 3;
      return "size_t";
    }
    return {};
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    std::size_t tlen = 0;
    const std::string ty = type_at(i, &tlen);
    std::size_t eq = 0;  // index of the '=' starting the initializer
    std::string target;
    std::size_t report_line = 0;
    if (!ty.empty()) {
      const std::size_t j = i + tlen;
      if (j < toks.size() && toks[j].kind == Tok::Identifier &&
          !is_keyword_name(toks[j].text)) {
        var_type[toks[j].text] = ty;
        if (j + 1 < toks.size() && tok_is(toks[j + 1], "=")) {
          eq = j + 1;
          target = ty;
          report_line = toks[i].line;
        }
      }
    } else if (toks[i].kind == Tok::Identifier && i + 1 < toks.size() &&
               tok_is(toks[i + 1], "=") && var_type.count(toks[i].text)) {
      // Plain re-assignment; only at statement start so `a == b` pieces and
      // defaulted parameters stay out of scope.
      if (i == 0 || (toks[i - 1].kind == Tok::Punct &&
                     (toks[i - 1].text == ";" || toks[i - 1].text == "{" ||
                      toks[i - 1].text == "}"))) {
        eq = i + 1;
        target = var_type[toks[i].text];
        report_line = toks[i].line;
      }
    }
    if (eq == 0 || (target != "float" && target != "int")) continue;

    bool cast = false;
    std::string narrow_from;
    int depth = 0;
    for (std::size_t k = eq + 1; k < toks.size(); ++k) {
      const Token& e = toks[k];
      if (e.kind == Tok::Punct) {
        if (e.text == "(" || e.text == "[" || e.text == "{") {
          ++depth;
        } else if (e.text == ")" || e.text == "]" || e.text == "}") {
          if (depth == 0) break;
          --depth;
        } else if (depth == 0 && (e.text == ";" || e.text == ",")) {
          break;
        }
        continue;
      }
      if (e.kind == Tok::Identifier) {
        if (e.text == "static_cast") cast = true;
        const auto it = var_type.find(e.text);
        if (it != var_type.end()) {
          if (target == "float" && it->second == "double") {
            narrow_from = "double variable '" + e.text + "'";
          }
          if (target == "int" && it->second == "size_t") {
            narrow_from = "std::size_t variable '" + e.text + "'";
          }
        }
        if (target == "int" && k >= 1 && toks[k - 1].kind == Tok::Punct &&
            (toks[k - 1].text == "." || toks[k - 1].text == "->") &&
            (e.text == "size" || e.text == "capacity" ||
             e.text == "length") &&
            k + 1 < toks.size() && tok_is(toks[k + 1], "(")) {
          narrow_from = "'." + e.text + "()' (std::size_t)";
        }
      }
      if (e.kind == Tok::Number && target == "float") {
        const std::string& n = e.text;
        const bool hex = n.rfind("0x", 0) == 0 || n.rfind("0X", 0) == 0;
        const bool fp =
            n.find('.') != std::string::npos ||
            (!hex && (n.find('e') != std::string::npos ||
                      n.find('E') != std::string::npos)) ||
            (hex && (n.find('p') != std::string::npos ||
                     n.find('P') != std::string::npos));
        const bool suffixed =
            !n.empty() && (n.back() == 'f' || n.back() == 'F');
        if (fp && !suffixed) narrow_from = "double literal " + n;
      }
    }
    if (cast || narrow_from.empty()) continue;
    if (ctx.line_allowed(report_line, "narrowing")) continue;
    out.findings.push_back(Finding{
        relative, report_line, "narrowing-in-kernel",
        "implicit narrowing to " +
            std::string(target == "float" ? "float" : "int") + " from " +
            narrow_from +
            " in a numeric kernel — spell the intent with static_cast<" +
            target + ">(...), or mark the audited line "
            "'// lint:allow(narrowing)'"});
  }
}

/// catch-by-value: catching exceptions by value slices derived types and
/// copies on the unwind path. `catch (...)` and reference/pointer catches
/// are fine; anything else is flagged.
void check_catch_by_value(const std::string& relative, const FileContext& ctx,
                          FileSummary& out) {
  if (!starts_with(relative, "src/") && !starts_with(relative, "tools/")) {
    return;
  }
  if (out.file_allows.count("catch-by-value")) return;
  const std::vector<Token>& toks = ctx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Identifier || toks[i].text != "catch") continue;
    if (!tok_is(toks[i + 1], "(")) continue;
    bool by_value = true;
    int depth = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != Tok::Punct) continue;
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
      if (toks[j].text == "..." || toks[j].text == "&" ||
          toks[j].text == "&&" || toks[j].text == "*") {
        by_value = false;
      }
    }
    if (!by_value) continue;
    if (ctx.line_allowed(toks[i].line, "catch-by-value")) continue;
    out.findings.push_back(Finding{
        relative, toks[i].line, "catch-by-value",
        "exception caught by value (slices derived types, copies on the "
        "unwind path) — catch by const reference, or mark the audited "
        "line '// lint:allow(catch-by-value)'"});
  }
}

// ------------------------------------------------------------ global rules

void check_heuristic_registry(const std::vector<FileSummary>& files,
                              std::vector<Finding>& out) {
  const FileSummary* registry = nullptr;
  for (const FileSummary& f : files) {
    if (f.relative == "src/heuristics/registry.cpp") registry = &f;
  }
  if (registry == nullptr) return;  // tree has no registry to check against
  std::set<std::string> registered;
  for (const IncludeInfo& inc : registry->includes) {
    if (!inc.angle) registered.insert(inc.path);
  }
  for (const FileSummary& f : files) {
    if (!starts_with(f.relative, "src/heuristics/")) continue;
    if (!ends_with(f.relative, ".hpp")) continue;
    // Only headers directly in src/heuristics/ declare registrable
    // heuristics; nested subdirectories (e.g. fastpath/) are support code
    // covered by the fastpath-differential rule.
    const std::string_view below =
        std::string_view(f.relative).substr(sizeof("src/heuristics/") - 1);
    if (below.find('/') != std::string_view::npos) continue;
    const std::string stem = stem_of(f.relative);
    if (stem == "heuristic" || stem == "registry") continue;  // framework
    if (f.file_allows.count("heuristic-registry")) continue;
    if (!registered.count("heuristics/" + stem + ".hpp")) {
      out.push_back(Finding{
          f.relative, 0, "heuristic-registry",
          "header is not included by src/heuristics/registry.cpp; register "
          "the heuristic (or mark the file '// hcsched-lint: "
          "allow(heuristic-registry)' if it is a wrapper)"});
    }
  }
}

void check_fastpath_differential(const std::vector<FileSummary>& files,
                                 std::vector<Finding>& out) {
  // A kernel file counts as covered when any tests/test_fastpath*.cpp
  // names its stem (idiomatically in a leading "// covers: ..." comment,
  // but any mention — code, comment, or string — qualifies; the summaries
  // carry the full word set for exactly these files).
  std::set<std::string> mentioned;
  for (const FileSummary& f : files) {
    mentioned.insert(f.mentions.begin(), f.mentions.end());
  }
  for (const FileSummary& f : files) {
    if (!starts_with(f.relative, "src/heuristics/fastpath/")) continue;
    if (f.file_allows.count("fastpath-differential")) continue;
    if (!mentioned.count(stem_of(f.relative))) {
      out.push_back(Finding{
          f.relative, 0, "fastpath-differential",
          "kernel file is not named by any tests/test_fastpath*.cpp "
          "differential suite; add coverage (or mark the file "
          "'// hcsched-lint: allow(fastpath-differential)' if it is not a "
          "kernel)"});
    }
  }
}

void check_test_registration(const std::filesystem::path& root,
                             const std::vector<FileSummary>& files,
                             std::vector<Finding>& out) {
  const std::filesystem::path cmake_lists = root / "tests" / "CMakeLists.txt";
  std::ifstream in(cmake_lists);
  if (!in) return;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string cmake_text = buffer.str();
  for (const FileSummary& f : files) {
    if (!starts_with(f.relative, "tests/")) continue;
    const std::string name = filename_of(f.relative);
    if (name.rfind("test_", 0) != 0 || !ends_with(name, ".cpp")) continue;
    if (f.file_allows.count("test-registration")) continue;
    if (cmake_text.find(name) == std::string::npos) {
      out.push_back(Finding{
          f.relative, 0, "test-registration",
          "test file is not listed in tests/CMakeLists.txt and will never "
          "run"});
    }
  }
}

void check_metric_docs(const std::filesystem::path& root,
                       const std::vector<FileSummary>& files,
                       std::vector<Finding>& out) {
  // Sites come from the token stream (identifier + '(' + string literal),
  // so a registration spelled inside a comment or string never counts.
  // Global rather than cached-local: docs/OBSERVABILITY.md can change
  // without any source file changing.
  std::string docs_text;
  {
    std::ifstream in(root / "docs" / "OBSERVABILITY.md");
    std::stringstream buffer;
    buffer << in.rdbuf();
    docs_text = buffer.str();  // empty when the docs file is absent
  }
  for (const FileSummary& f : files) {
    if (!starts_with(f.relative, "src/")) continue;
    if (f.file_allows.count("metric-docs")) continue;
    std::size_t last_line = 0;  // one finding per line
    for (const MetricSite& site : f.metric_sites) {
      if (site.line == last_line) continue;
      if (docs_text.find(site.name) != std::string::npos) continue;
      if (site.allowed) continue;
      out.push_back(Finding{
          f.relative, site.line, "metric-docs",
          "metric '" + site.name +
              "' is not documented in docs/OBSERVABILITY.md — add it to "
              "the metrics table (or mark the audited line "
              "'// lint:allow(metric-docs)')"});
      last_line = site.line;
    }
  }
}

/// range-for-temporary: the PR 6 bug shape. The range expression is a
/// postfix chain; track whether it ends as a reference into a temporary
/// that dies before the loop body runs. Return kinds of named calls come
/// from the repo-wide declaration map; unknown member calls conservatively
/// count as reference-returning (the dangerous direction), unknown base
/// calls as value-returning (a fresh temporary).
void check_range_for_temporary(const std::vector<FileSummary>& files,
                               std::vector<Finding>& out) {
  std::map<std::string, int> rets;
  for (const FileSummary& f : files) {
    for (const auto& [name, bits] : f.ret_kinds) rets[name] |= bits;
  }
  // Well-known std members that return by value, so chains like
  // `name().substr(1)` do not false-positive.
  for (const char* value_ret : {"substr", "str", "string", "to_string",
                                "stem", "extension", "filename", "clone"}) {
    rets.emplace(value_ret, kRetValue);
  }
  enum State { kLvalue, kTemp, kRefIntoTemp };
  for (const FileSummary& f : files) {
    if (!starts_with(f.relative, "src/")) continue;
    if (f.file_allows.count("range-for-temporary")) continue;
    for (const RangeForChain& chain : f.range_fors) {
      if (chain.complex || chain.allowed || chain.steps.empty()) continue;
      State st = kLvalue;
      std::string last_call;
      const RangeForStep& base = chain.steps.front();
      if (base.op == 'f') {
        const auto it = rets.find(base.name);
        const bool ref = it != rets.end() && (it->second & kRetRef) != 0;
        st = ref ? kLvalue : kTemp;
        last_call = base.name;
      }
      for (std::size_t s = 1; s < chain.steps.size(); ++s) {
        const RangeForStep& step = chain.steps[s];
        if (step.op == 'm') continue;  // member subobject: lifetime
                                       // extension keeps a temp alive
        bool ref = true;  // '[' indexing and unknown member calls
        if (step.op == 'c') {
          const auto it = rets.find(step.name);
          if (it != rets.end() && it->second == kRetValue) ref = false;
          last_call = step.name;
        }
        if (!ref) {
          st = kTemp;  // fresh temporary; the old one lives long enough
        } else if (st != kLvalue) {
          st = kRefIntoTemp;
        }
      }
      if (st != kRefIntoTemp) continue;
      out.push_back(Finding{
          f.relative, chain.line, "range-for-temporary",
          "range expression binds a reference into a temporary (the chain "
          "through '" + last_call +
              "(...)' dereferences a by-value result); the temporary is "
              "destroyed before the loop body runs — hoist the owning "
              "value into a named local, or mark the audited line "
              "'// lint:allow(range-for-temporary)'"});
    }
  }
}

}  // namespace

void run_local_rules(const std::string& relative, const FileContext& ctx,
                     FileSummary& out) {
  check_trace_guard(relative, ctx, out);
  check_include_hygiene(relative, ctx, out);
  check_explicit_memory_order(relative, ctx, out);
  check_no_nondeterminism_in_core(relative, ctx, out);
  check_lock_annotation_coverage(relative, ctx, out);
  check_narrowing_in_kernel(relative, ctx, out);
  check_catch_by_value(relative, ctx, out);
}

std::vector<Finding> run_global_rules(
    const std::filesystem::path& root,
    const std::vector<FileSummary>& summaries) {
  std::vector<Finding> out;
  check_heuristic_registry(summaries, out);
  check_fastpath_differential(summaries, out);
  check_test_registration(root, summaries, out);
  check_metric_docs(root, summaries, out);
  check_range_for_temporary(summaries, out);
  run_graph_rules(summaries, out);
  run_callgraph_rules(summaries, out);
  return out;
}

}  // namespace analyze
