// Include-graph rules: layering DAG enforcement, include-cycle detection,
// and unused-direct-include detection over src/, tools/, and bench/.
//
// Layering is enforced on *components*, not raw directories, because the
// real tree is finer-grained than the directory layout: src/core/ holds
// both the bottom layer (check/cancel/thread_annotations — depended on by
// everything) and the top-level algorithm driver (iterative/optimal — which
// legitimately calls down into heuristics and the thread pool). The
// component map below assigns every src/ file to a component; the declared
// direct-dependency table is closed transitively and an include edge is
// legal iff it stays inside a component or follows the closure.
// docs/STATIC_ANALYSIS.md mirrors this table — update both together.
//
// The observability instrumentation headers (obs/trace.hpp, counters.hpp,
// metrics.hpp, span.hpp) are includable from ANY component: with
// -DHCSCHED_TRACE=0 they compile to no-ops, so they behave like
// annotations, not a layer dependency.
#include <algorithm>
#include <map>

#include "analyze/model.hpp"

namespace analyze {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string stem_of(std::string_view relative) {
  const std::size_t slash = relative.rfind('/');
  std::string_view name =
      slash == std::string_view::npos ? relative : relative.substr(slash + 1);
  const std::size_t dot = name.rfind('.');
  return std::string(dot == std::string_view::npos ? name
                                                   : name.substr(0, dot));
}

// File-exact component assignments, consulted before the prefix map.
constexpr std::pair<std::string_view, std::string_view> kFileComponents[] = {
    {"src/core/check.hpp", "core/base"},
    {"src/core/check.cpp", "core/base"},
    {"src/core/cancel.hpp", "core/base"},
    {"src/core/cancel.cpp", "core/base"},
    {"src/core/thread_annotations.hpp", "core/base"},
    {"src/obs/report.hpp", "obs/report"},
    {"src/obs/report.cpp", "obs/report"},
    {"src/ga/genitor.hpp", "ga/genitor"},
    {"src/ga/genitor.cpp", "ga/genitor"},
    {"src/heuristics/registry.hpp", "heuristics/registry"},
    {"src/heuristics/registry.cpp", "heuristics/registry"},
    {"src/sim/thread_pool.hpp", "sim/pool"},
    {"src/sim/thread_pool.cpp", "sim/pool"},
    {"tools/hcsched_cli.cpp", "tools/cli"},
};

// Prefix assignments, first match wins (longer prefixes listed first).
constexpr std::pair<std::string_view, std::string_view> kPrefixComponents[] =
    {
        {"src/sim/fault/", "sim/fault"},
        {"src/core/", "core/algo"},
        {"src/obs/", "obs"},
        {"src/rng/", "rng"},
        {"src/etc/", "etc"},
        {"src/sched/", "sched"},
        {"src/ga/", "ga"},
        {"src/heuristics/localsearch/", "heuristics/localsearch"},
        {"src/heuristics/", "heuristics"},
        {"src/sim/", "sim"},
        {"src/report/", "report"},
        {"tools/analyze/", "tools/analyze"},
        {"tools/lint/", "tools/lint"},
        {"tools/fuzz/", "tools/fuzz"},
        {"tools/bench_check/", "tools/bench_check"},
        {"bench/", "bench"},
};

// Declared DIRECT dependencies; the legality check uses the transitive
// closure. Kept intentionally explicit: adding an arrow here is a reviewed
// architecture decision, not a side effect of an include sneaking in.
const std::map<std::string, std::vector<std::string>>& component_deps() {
  static const std::map<std::string, std::vector<std::string>> deps = {
      {"core/base", {}},
      {"rng", {"core/base"}},
      {"obs", {"core/base", "rng"}},
      {"sim/fault", {"core/base", "rng"}},
      {"etc", {"core/base", "rng"}},
      {"sched", {"core/base", "etc"}},
      {"ga", {"core/base", "rng", "sched"}},
      {"heuristics",
       {"core/base", "rng", "etc", "sched", "ga", "sim/fault"}},
      {"ga/genitor", {"core/base", "ga", "heuristics"}},
      {"heuristics/localsearch", {"core/base", "ga", "heuristics"}},
      {"heuristics/registry",
       {"core/base", "heuristics", "heuristics/localsearch", "ga/genitor"}},
      {"sim/pool", {"core/base", "sim/fault"}},
      {"core/algo",
       {"core/base", "rng", "etc", "sched", "heuristics",
        "heuristics/registry", "sim/pool"}},
      {"sim",
       {"core/base", "core/algo", "rng", "etc", "sched", "ga", "heuristics",
        "heuristics/registry", "sim/fault", "sim/pool", "obs"}},
      {"obs/report",
       {"core/base", "core/algo", "rng", "etc", "sched", "obs", "report"}},
      {"report", {"core/base", "etc", "sched"}},
      // Drivers and harnesses above src/. The analyzer is dependency-free
      // by design (it must build before anything else is sane); lint is a
      // thin shim over it. Benches may use the full study/driver surface
      // but NOT GA/search internals — a bench poking those marks the
      // audited include '// lint:allow(layering)'.
      {"tools/analyze", {}},
      {"tools/lint", {"tools/analyze"}},
      {"tools/fuzz", {"core/base", "rng", "etc", "sched", "heuristics"}},
      {"tools/bench_check",
       {"core/base", "rng", "etc", "sched", "heuristics", "obs"}},
      {"tools/cli",
       {"core/base", "core/algo", "rng", "etc", "sched", "heuristics",
        "heuristics/registry", "obs", "obs/report", "report", "sim",
        "sim/fault"}},
      {"bench",
       {"core/base", "core/algo", "rng", "etc", "sched", "heuristics",
        "heuristics/registry", "obs", "report", "sim", "sim/fault"}},
  };
  return deps;
}

// Instrumentation headers includable from any component (no-ops under
// -DHCSCHED_TRACE=0).
bool instrumentation_exempt(std::string_view target_relative) {
  return target_relative == "src/obs/trace.hpp" ||
         target_relative == "src/obs/counters.hpp" ||
         target_relative == "src/obs/metrics.hpp" ||
         target_relative == "src/obs/span.hpp";
}

std::string component_of(std::string_view relative) {
  for (const auto& [file, comp] : kFileComponents) {
    if (relative == file) return std::string(comp);
  }
  for (const auto& [prefix, comp] : kPrefixComponents) {
    if (starts_with(relative, prefix)) return std::string(comp);
  }
  return {};
}

/// Transitive closure of component_deps(); closure[c] contains every
/// component c may (directly or indirectly) depend on.
const std::map<std::string, std::set<std::string>>& component_closure() {
  static const std::map<std::string, std::set<std::string>> closure = [] {
    std::map<std::string, std::set<std::string>> out;
    const auto& deps = component_deps();
    // Simple fixpoint; the table is tiny.
    for (const auto& [c, direct] : deps) {
      out[c].insert(direct.begin(), direct.end());
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (auto& [c, reach] : out) {
        std::set<std::string> add;
        for (const std::string& d : reach) {
          const auto it = out.find(d);
          if (it == out.end()) continue;
          for (const std::string& dd : it->second) {
            if (!reach.count(dd)) add.insert(dd);
          }
        }
        if (!add.empty()) {
          reach.insert(add.begin(), add.end());
          changed = true;
        }
      }
    }
    return out;
  }();
  return closure;
}

struct Edge {
  const FileSummary* from;
  const IncludeInfo* include;
  std::string target;  // resolved relative path of the included file
};

/// A file participates in the include-graph rules iff it lives in a
/// layered tree (tests/ stays out: test TUs include whatever they probe).
bool in_layered_tree(std::string_view relative) {
  return starts_with(relative, "src/") || starts_with(relative, "tools/") ||
         starts_with(relative, "bench/");
}

/// Resolve a quoted include spelling against the scanned tree. src/ spells
/// src/-relative paths, tools spell component-root-relative paths
/// ("analyze/model.hpp"), benches spell bench-local ("bench_common.hpp")
/// and src/-relative paths.
std::string resolve_target(
    const std::string& path,
    const std::map<std::string, const FileSummary*>& by_relative) {
  static constexpr std::string_view kPrefixes[] = {"", "src/", "tools/",
                                                   "bench/"};
  for (std::string_view p : kPrefixes) {
    std::string candidate = std::string(p) + path;
    if (by_relative.count(candidate)) return candidate;
  }
  return {};
}

/// Quoted project includes that resolve to a scanned file in a layered
/// tree.
std::vector<Edge> resolved_edges(
    const std::vector<FileSummary>& summaries,
    const std::map<std::string, const FileSummary*>& by_relative) {
  std::vector<Edge> edges;
  for (const FileSummary& f : summaries) {
    if (!in_layered_tree(f.relative)) continue;
    for (const IncludeInfo& inc : f.includes) {
      if (inc.angle) continue;
      const std::string target = resolve_target(inc.path, by_relative);
      if (!target.empty()) {
        edges.push_back(Edge{&f, &inc, target});
      }
    }
  }
  return edges;
}

void check_layering(const std::vector<FileSummary>& summaries,
                    const std::vector<Edge>& edges,
                    std::vector<Finding>& out) {
  for (const FileSummary& f : summaries) {
    if (!in_layered_tree(f.relative)) continue;
    if (component_of(f.relative).empty() &&
        !f.file_allows.count("layering")) {
      out.push_back(Finding{
          f.relative, 0, "layering",
          "file is in a layered tree (src/, tools/, bench/) but assigned "
          "to no layering component; extend the component map in "
          "tools/analyze/graph.cpp (and the table in "
          "docs/STATIC_ANALYSIS.md)"});
    }
  }
  const auto& closure = component_closure();
  for (const Edge& e : edges) {
    const std::string from = component_of(e.from->relative);
    const std::string to = component_of(e.target);
    if (from.empty() || to.empty() || from == to) continue;
    if (instrumentation_exempt(e.target)) continue;
    const auto it = closure.find(from);
    if (it != closure.end() && it->second.count(to)) continue;
    if (e.include->allows.count("layering")) continue;
    if (e.from->file_allows.count("layering")) continue;
    out.push_back(Finding{
        e.from->relative, e.include->line, "layering",
        "include crosses the layering DAG: component '" + from +
            "' may not depend on '" + to +
            "' (docs/STATIC_ANALYSIS.md has the allowed-edge table); move "
            "the code, add a reviewed edge, or mark the audited line "
            "'// lint:allow(layering)'"});
  }
}

void check_include_cycles(
    const std::map<std::string, const FileSummary*>& by_relative,
    const std::vector<Edge>& edges, std::vector<Finding>& out) {
  // Adjacency over src/ files, deterministic order.
  std::map<std::string, std::vector<std::string>> adj;
  for (const Edge& e : edges) {
    adj[e.from->relative].push_back(e.target);
  }
  for (auto& [node, next] : adj) {
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
  }
  // Iterative DFS with colors; on hitting a gray node, unwind the stack to
  // recover the cycle. Each cycle is reported once, anchored at its
  // lexicographically first member.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::set<std::vector<std::string>> reported;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto it = adj.find(node);
      if (it == adj.end() || idx >= it->second.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const std::string next = it->second[idx++];
      if (color[next] == 1) {
        // Gray: the stack from `next` to the top is a cycle.
        std::vector<std::string> cycle;
        bool in_cycle = false;
        for (const auto& [n, i] : stack) {
          (void)i;
          if (n == next) in_cycle = true;
          if (in_cycle) cycle.push_back(n);
        }
        std::vector<std::string> key = cycle;
        std::sort(key.begin(), key.end());
        if (reported.insert(key).second) {
          bool allowed = false;
          for (const std::string& member : cycle) {
            const auto m = by_relative.find(member);
            if (m != by_relative.end() &&
                m->second->file_allows.count("include-cycle")) {
              allowed = true;
            }
          }
          if (!allowed) {
            // Rotate so the anchor file leads the printed path.
            const auto first =
                std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), first, cycle.end());
            std::string path;
            for (const std::string& member : cycle) {
              path += member;
              path += " -> ";
            }
            path += cycle.front();
            out.push_back(Finding{
                cycle.front(), 0, "include-cycle",
                "include cycle: " + path +
                    " — break the cycle with a forward declaration or an "
                    "interface header"});
          }
        }
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.emplace_back(next, 0);
      }
    }
  }
}

void check_unused_includes(
    const std::map<std::string, const FileSummary*>& by_relative,
    const std::vector<Edge>& edges, std::vector<Finding>& out) {
  // "Provides" semantics: an include is used when the includer uses any
  // name declared by the header OR by anything the header transitively
  // includes. Direct-only intersection would flag load-bearing umbrella
  // includes (e.g. a header whose nested include re-exports `Schedule`
  // into the includer's namespace via a using-declaration).
  std::map<std::string, std::set<std::string>> provides_memo;
  auto provides = [&](const std::string& rel) -> const std::set<std::string>& {
    const auto hit = provides_memo.find(rel);
    if (hit != provides_memo.end()) return hit->second;
    std::set<std::string> names;
    std::set<std::string> visited;
    std::vector<std::string> work{rel};
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      if (!visited.insert(cur).second) continue;
      const auto it = by_relative.find(cur);
      if (it == by_relative.end()) continue;
      names.insert(it->second->declared.begin(),
                   it->second->declared.end());
      for (const IncludeInfo& inc : it->second->includes) {
        if (inc.angle) continue;
        const std::string t = resolve_target(inc.path, by_relative);
        if (!t.empty()) work.push_back(t);
      }
    }
    return provides_memo.emplace(rel, std::move(names)).first->second;
  };
  for (const Edge& e : edges) {
    if (e.from->file_allows.count("unused-include")) continue;
    if (e.include->allows.count("unused-include")) continue;
    // A source file's own header re-exports its interface; never flagged.
    if (stem_of(e.from->relative) == stem_of(e.target)) continue;
    const std::set<std::string>& names = provides(e.target);
    // A header providing nothing we can see (macro-only shims, fixture
    // stubs) is out of scope for this heuristic.
    if (names.empty()) continue;
    bool used = false;
    for (const std::string& name : names) {
      if (e.from->idents.count(name)) {
        used = true;
        break;
      }
    }
    if (used) continue;
    out.push_back(Finding{
        e.from->relative, e.include->line, "unused-include",
        "no name provided by '" + e.include->path +
            "' (directly or transitively) is used in this file — drop "
            "the include (or mark the audited line "
            "'// lint:allow(unused-include)')"});
  }
}

}  // namespace

bool layering_table_valid(std::string* error) {
  const auto& deps = component_deps();
  // Every declared dependency must itself be a component.
  for (const auto& [c, direct] : deps) {
    for (const std::string& d : direct) {
      if (!deps.count(d)) {
        if (error) *error = "component '" + c + "' depends on unknown '" +
                            d + "'";
        return false;
      }
    }
  }
  // Kahn toposort: the table must be a DAG.
  std::map<std::string, std::size_t> indegree;
  for (const auto& [c, direct] : deps) {
    indegree[c];  // ensure present
    for (const std::string& d : direct) ++indegree[d];
  }
  std::vector<std::string> ready;
  for (const auto& [c, n] : indegree) {
    if (n == 0) ready.push_back(c);
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::string c = ready.back();
    ready.pop_back();
    ++seen;
    const auto it = deps.find(c);
    if (it == deps.end()) continue;
    for (const std::string& d : it->second) {
      if (--indegree[d] == 0) ready.push_back(d);
    }
  }
  if (seen != indegree.size()) {
    if (error) *error = "layering component table contains a cycle";
    return false;
  }
  return true;
}

void run_graph_rules(const std::vector<FileSummary>& summaries,
                     std::vector<Finding>& out) {
  std::map<std::string, const FileSummary*> by_relative;
  for (const FileSummary& f : summaries) by_relative[f.relative] = &f;
  const std::vector<Edge> edges = resolved_edges(summaries, by_relative);
  check_layering(summaries, edges, out);
  check_include_cycles(by_relative, edges, out);
  check_unused_includes(by_relative, edges, out);
}

}  // namespace analyze
