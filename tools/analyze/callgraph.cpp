#include "analyze/callgraph.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analyze/model.hpp"

namespace analyze {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// The deterministic layer the transitive-nondeterminism rule protects —
// same directories as the token-level no-nondeterminism-in-core rule.
bool in_deterministic_dir(std::string_view relative) {
  return starts_with(relative, "src/core/") ||
         starts_with(relative, "src/heuristics/") ||
         starts_with(relative, "src/etc/") ||
         starts_with(relative, "src/ga/");
}

// Taint barriers, mirroring the local rule's scope: src/rng/ exists
// precisely to fence randomness behind seeded, replayable interfaces, and
// src/obs/ is instrumentation whose output sits outside the determinism
// contract (compiled to no-ops under -DHCSCHED_TRACE=0, same exemption
// the layering rule grants its headers). Taint never propagates *out* of
// either.
bool taint_barrier(std::string_view relative) {
  return starts_with(relative, "src/rng/") ||
         starts_with(relative, "src/obs/");
}

// The annotation header's own ACQUIRE/REQUIRES arguments are parameter
// names ("mutex"), not real lock identities — contributing them to the
// lock graph would alias every caller's mutex into one node.
bool annotation_header(std::string_view relative) {
  return relative == "src/core/thread_annotations.hpp";
}

struct Def {
  const FileSummary* file;
  const FunctionRecord* rec;
};

struct ResolvedCall {
  const CallSite* call;
  std::vector<std::size_t> targets;  // indices into Index::defs
};

struct Index {
  std::vector<Def> defs;  // sorted by (file, line, qualified)
  std::vector<std::vector<ResolvedCall>> calls;     // per def
  std::vector<std::vector<std::size_t>> callees;    // per def, deduped
  std::vector<const FileSummary*> file_scopes;      // per-file pseudo-records
};

/// Member calls whose name collides with the STL container/string
/// vocabulary (`buffer_.size()`, `entries_.find(name)`) never resolve:
/// without receiver types, name matching would wire them to same-named
/// lock-acquiring methods of unrelated project classes and fabricate lock
/// cycles like RingBufferSink::size -> MetricsRegistry::size.
bool container_vocab(const std::string& name) {
  static const std::set<std::string> kVocab = {
      "size",     "empty",        "clear",  "find",    "count",
      "begin",    "end",          "rbegin", "rend",    "push_back",
      "pop_back", "push_front",   "pop_front",         "emplace",
      "emplace_back",             "insert", "erase",   "reserve",
      "resize",   "at",           "front",  "back",    "data",
      "c_str",    "substr",       "append", "assign",  "swap"};
  return kVocab.count(name) != 0;
}

/// Resolve an include spelling against the scanned tree: fixtures and
/// tools spell paths relative to the scan root or a component root, the
/// real tree spells src/-relative, tools/-relative, and bench-local paths.
const FileSummary* resolve_include(
    const std::string& path,
    const std::map<std::string, const FileSummary*>& by_rel) {
  static constexpr std::string_view kPrefixes[] = {
      "", "src/", "tools/", "bench/", "tests/"};
  for (std::string_view p : kPrefixes) {
    const auto it = by_rel.find(std::string(p) + path);
    if (it != by_rel.end()) return it->second;
  }
  return nullptr;
}

Index build_index(const std::vector<FileSummary>& summaries) {
  Index ix;
  std::map<std::string, const FileSummary*> by_rel;
  for (const FileSummary& f : summaries) by_rel[f.relative] = &f;

  for (const FileSummary& f : summaries) {
    for (const FunctionRecord& r : f.functions) {
      if (r.file_scope) {
        ix.file_scopes.push_back(&f);
      } else if (r.is_definition) {
        ix.defs.push_back(Def{&f, &r});
      }
    }
  }
  std::sort(ix.defs.begin(), ix.defs.end(),
            [](const Def& a, const Def& b) {
              return std::tie(a.file->relative, a.rec->line,
                              a.rec->qualified) <
                     std::tie(b.file->relative, b.rec->line,
                              b.rec->qualified);
            });

  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    by_name[ix.defs[i].rec->name].push_back(i);
  }

  // Transitive include closure per file (quoted includes only), memoized.
  std::map<const FileSummary*, std::set<const FileSummary*>> closures;
  auto closure =
      [&](const FileSummary* f) -> const std::set<const FileSummary*>& {
    const auto hit = closures.find(f);
    if (hit != closures.end()) return hit->second;
    std::set<const FileSummary*> seen;
    std::vector<const FileSummary*> work{f};
    while (!work.empty()) {
      const FileSummary* cur = work.back();
      work.pop_back();
      if (!seen.insert(cur).second) continue;
      for (const IncludeInfo& inc : cur->includes) {
        if (inc.angle) continue;
        if (const FileSummary* t = resolve_include(inc.path, by_rel)) {
          work.push_back(t);
        }
      }
    }
    return closures.emplace(f, std::move(seen)).first->second;
  };

  // Visible callable names per file: every name declared anywhere in the
  // include closure, plus names this file defines itself.
  std::map<const FileSummary*, std::set<std::string>> visible_memo;
  auto visible =
      [&](const FileSummary* f) -> const std::set<std::string>& {
    const auto hit = visible_memo.find(f);
    if (hit != visible_memo.end()) return hit->second;
    std::set<std::string> names;
    for (const FileSummary* g : closure(f)) {
      names.insert(g->declared.begin(), g->declared.end());
    }
    for (const FunctionRecord& r : f->functions) {
      if (!r.name.empty()) names.insert(r.name);
    }
    return visible_memo.emplace(f, std::move(names)).first->second;
  };

  ix.calls.resize(ix.defs.size());
  ix.callees.resize(ix.defs.size());
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    const Def& d = ix.defs[i];
    const std::set<std::string>& vis = visible(d.file);
    for (const CallSite& c : d.rec->calls) {
      if (c.member && c.qualifier.empty() && container_vocab(c.name)) {
        continue;
      }
      const auto cand = by_name.find(c.name);
      if (cand == by_name.end()) continue;
      if (!vis.count(c.name)) continue;
      std::vector<std::size_t> targets;
      if (!c.qualifier.empty()) {
        // An explicit qualifier must match — `std::to_string` does NOT
        // resolve to a project `TextTable::to_string`.
        const std::string suffix = c.qualifier + "::" + c.name;
        for (std::size_t t : cand->second) {
          const std::string& q = ix.defs[t].rec->qualified;
          if (q.size() >= suffix.size() &&
              q.compare(q.size() - suffix.size(), suffix.size(), suffix) ==
                  0) {
            targets.push_back(t);
          }
        }
      } else {
        targets = cand->second;
      }
      ix.calls[i].push_back(ResolvedCall{&c, targets});
      for (std::size_t t : targets) {
        if (t != i) ix.callees[i].push_back(t);
      }
    }
    std::sort(ix.callees[i].begin(), ix.callees[i].end());
    ix.callees[i].erase(
        std::unique(ix.callees[i].begin(), ix.callees[i].end()),
        ix.callees[i].end());
  }
  return ix;
}

std::string site_of(const Index& ix, std::size_t d) {
  return ix.defs[d].file->relative + ":" +
         std::to_string(ix.defs[d].rec->line);
}

bool file_allowed(const FileSummary& f, const char* rule,
                  const char* token) {
  return f.file_allows.count(rule) != 0 || f.file_allows.count(token) != 0;
}

// ------------------------------------------------------- lock-order-cycle

void check_lock_order(const Index& ix, std::vector<Finding>& out) {
  // Transitively acquirable mutexes per definition: direct guard
  // constructions, ACQUIRE annotations, then everything callees acquire.
  std::vector<std::set<std::string>> acq(ix.defs.size());
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    if (annotation_header(ix.defs[i].file->relative)) continue;
    for (const LockSite& l : ix.defs[i].rec->locks) {
      if (!l.allowed) acq[i].insert(l.mutex);
    }
    for (const std::string& a : ix.defs[i].rec->annot_acquires) {
      acq[i].insert(a);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < ix.defs.size(); ++i) {
      for (std::size_t t : ix.callees[i]) {
        for (const std::string& m : acq[t]) {
          if (acq[i].insert(m).second) changed = true;
        }
      }
    }
  }

  // Acquisition-order edges held -> acquired, first witness site wins.
  struct Witness {
    std::string file;
    std::size_t line;
  };
  std::map<std::string, std::map<std::string, Witness>> edges;
  auto add_edge = [&edges](const std::string& from, const std::string& to,
                           const std::string& file, std::size_t line) {
    if (from == to) return;
    auto& slot = edges[from];
    const auto it = slot.find(to);
    if (it == slot.end() || std::tie(file, line) <
                                std::tie(it->second.file, it->second.line)) {
      slot[to] = Witness{file, line};
    }
  };
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    const Def& d = ix.defs[i];
    if (annotation_header(d.file->relative)) continue;
    if (file_allowed(*d.file, "lock-order-cycle", "lock-order")) continue;
    for (const LockSite& l : d.rec->locks) {
      if (l.allowed) continue;
      for (const std::string& h : l.held) {
        add_edge(h, l.mutex, d.file->relative, l.line);
      }
    }
    for (const ResolvedCall& rc : ix.calls[i]) {
      if (rc.call->held.empty() || rc.call->allow_lock) continue;
      for (std::size_t t : rc.targets) {
        for (const std::string& m : acq[t]) {
          for (const std::string& h : rc.call->held) {
            add_edge(h, m, d.file->relative, rc.call->line);
          }
        }
      }
    }
  }

  // Cycle enumeration (iterative DFS, one report per node set, anchored
  // at the lexicographically first mutex).
  std::map<std::string, int> color;
  std::set<std::vector<std::string>> reported;
  for (const auto& [start, unused] : edges) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto it = edges.find(node);
      if (it == edges.end() || idx >= it->second.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      auto edge_it = it->second.begin();
      std::advance(edge_it, static_cast<std::ptrdiff_t>(idx++));
      const std::string& next = edge_it->first;
      if (color[next] == 1) {
        std::vector<std::string> cycle;
        bool in_cycle = false;
        for (const auto& [n, i2] : stack) {
          (void)i2;
          if (n == next) in_cycle = true;
          if (in_cycle) cycle.push_back(n);
        }
        std::vector<std::string> key = cycle;
        std::sort(key.begin(), key.end());
        if (reported.insert(key).second && cycle.size() > 1) {
          const auto first = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), first, cycle.end());
          std::string path;
          std::string detail;
          for (std::size_t k = 0; k < cycle.size(); ++k) {
            const std::string& from = cycle[k];
            const std::string& to = cycle[(k + 1) % cycle.size()];
            path += from + " -> ";
            const Witness& w = edges.at(from).at(to);
            if (!detail.empty()) detail += "; ";
            detail += "'" + to + "' acquired while holding '" + from +
                      "' at " + w.file + ":" + std::to_string(w.line);
          }
          path += cycle.front();
          const Witness& anchor = edges.at(cycle.front()).at(
              cycle.size() > 1 ? cycle[1] : cycle.front());
          out.push_back(Finding{
              anchor.file, anchor.line, "lock-order-cycle",
              "lock acquisition cycle " + path + " (" + detail +
                  ") — potential deadlock; enforce one global acquisition "
                  "order or mark an audited site "
                  "'// lint:allow(lock-order)'"});
        }
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.emplace_back(next, 0);
      }
    }
  }
}

// ---------------------------------------------------- blocking-under-lock

struct BlockInfo {
  bool blocks = false;
  std::string what;  // primitive name
  std::string site;  // file:line of the primitive
  std::vector<std::string> path;  // qualified names, this def downward
};

std::vector<BlockInfo> compute_blocking(const Index& ix) {
  std::vector<BlockInfo> info(ix.defs.size());
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    for (const BlockSite& b : ix.defs[i].rec->blocks) {
      if (b.allowed) continue;
      info[i].blocks = true;
      info[i].what = b.what;
      info[i].site =
          ix.defs[i].file->relative + ":" + std::to_string(b.line);
      info[i].path = {ix.defs[i].rec->qualified};
      break;
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < ix.defs.size(); ++i) {
      if (info[i].blocks) continue;
      for (std::size_t t : ix.callees[i]) {
        if (!info[t].blocks || info[t].path.size() >= 6) continue;
        info[i].blocks = true;
        info[i].what = info[t].what;
        info[i].site = info[t].site;
        info[i].path = info[t].path;
        info[i].path.insert(info[i].path.begin(),
                            ix.defs[i].rec->qualified);
        changed = true;
        break;
      }
    }
  }
  return info;
}

void check_blocking_under_lock(const Index& ix,
                               const std::vector<BlockInfo>& blocking,
                               std::vector<Finding>& out) {
  std::set<std::string> seen;  // file|line|message dedupe
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    const Def& d = ix.defs[i];
    if (file_allowed(*d.file, "blocking-under-lock", "blocking-under-lock"))
      continue;
    // The primitives' own implementations (CondVar::wait and friends)
    // necessarily "block while holding" — that is their contract.
    if (annotation_header(d.file->relative)) continue;
    // Lines where this function hits a primitive *directly*: the direct
    // check below owns them (including the cv.wait(held-mutex) idiom);
    // re-reporting the same line through name-resolution of `.wait(` /
    // `.flush(` would double up.
    std::set<std::size_t> direct_lines;
    for (const BlockSite& b : d.rec->blocks) direct_lines.insert(b.line);
    // Direct primitive under a live lock.
    for (const BlockSite& b : d.rec->blocks) {
      if (b.held.empty() || b.allowed || b.wait_on_held) continue;
      const std::string msg =
          "'" + b.what + "' while holding lock '" + b.held.back() +
          "' — blocking under a core::MutexLock stalls every contender; "
          "drop the lock first or mark the audited line "
          "'// lint:allow(blocking-under-lock)'";
      if (seen.insert(d.file->relative + "|" + std::to_string(b.line) +
                      "|" + msg)
              .second) {
        out.push_back(
            Finding{d.file->relative, b.line, "blocking-under-lock", msg});
      }
    }
    // Call that transitively reaches a primitive while a lock is live.
    for (const ResolvedCall& rc : ix.calls[i]) {
      if (rc.call->held.empty() || rc.call->allow_blocking) continue;
      if (direct_lines.count(rc.call->line)) continue;
      for (std::size_t t : rc.targets) {
        if (!blocking[t].blocks) continue;
        std::string via;
        for (const std::string& q : blocking[t].path) {
          if (!via.empty()) via += " -> ";
          via += q;
        }
        const std::string msg =
            "call reaches '" + blocking[t].what + "' (" + via + ", " +
            blocking[t].site + ") while holding lock '" +
            rc.call->held.back() +
            "' — drop the lock before blocking or mark the audited call "
            "'// lint:allow(blocking-under-lock)'";
        if (seen.insert(d.file->relative + "|" +
                        std::to_string(rc.call->line) + "|" + msg)
                .second) {
          out.push_back(Finding{d.file->relative, rc.call->line,
                                "blocking-under-lock", msg});
        }
        break;  // one report per call site
      }
    }
  }
}

// ------------------------------------------------ transitive-nondeterminism

struct TaintInfo {
  bool tainted = false;
  bool direct = false;   // has its own TaintSite (local rule's business)
  std::string token;
  std::string site;
  std::vector<std::string> path;
};

std::vector<TaintInfo> compute_taint(const Index& ix) {
  std::vector<TaintInfo> info(ix.defs.size());
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    if (ix.defs[i].rec->taints.empty()) continue;
    const TaintSite& t = ix.defs[i].rec->taints.front();
    info[i].tainted = true;
    info[i].direct = true;
    info[i].token = t.token;
    info[i].site = ix.defs[i].file->relative + ":" + std::to_string(t.line);
    info[i].path = {ix.defs[i].rec->qualified};
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < ix.defs.size(); ++i) {
      if (info[i].tainted) continue;
      for (std::size_t t : ix.callees[i]) {
        if (!info[t].tainted || info[t].path.size() >= 6) continue;
        if (taint_barrier(ix.defs[t].file->relative)) continue;
        info[i].tainted = true;
        info[i].token = info[t].token;
        info[i].site = info[t].site;
        info[i].path = info[t].path;
        info[i].path.insert(info[i].path.begin(),
                            ix.defs[i].rec->qualified);
        changed = true;
        break;
      }
    }
  }
  return info;
}

void check_transitive_nondeterminism(const Index& ix,
                                     const std::vector<TaintInfo>& taint,
                                     std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    const Def& d = ix.defs[i];
    if (!in_deterministic_dir(d.file->relative)) continue;
    if (taint[i].direct) continue;  // the token-level rule owns direct hits
    if (file_allowed(*d.file, "transitive-nondeterminism", "taint")) {
      continue;
    }
    // First call site (in source order) that reaches a tainted definition;
    // one finding per function keeps a tainted helper from spraying a
    // report onto every call line.
    bool reported = false;
    for (const ResolvedCall& rc : ix.calls[i]) {
      if (reported) break;
      if (rc.call->allow_taint) continue;
      for (std::size_t t : rc.targets) {
        if (!taint[t].tainted || taint_barrier(ix.defs[t].file->relative)) {
          continue;
        }
        std::string via = d.rec->qualified;
        for (const std::string& q : taint[t].path) via += " -> " + q;
        out.push_back(Finding{
            d.file->relative, rc.call->line, "transitive-nondeterminism",
            "call chain reaches banned nondeterminism source '" +
                taint[t].token + "' (" + via + "; source at " +
                taint[t].site +
                ") — the deterministic layer must stay replayable; route "
                "randomness through rng:: or mark the audited call "
                "'// lint:allow(taint)'"});
        reported = true;
        break;
      }
    }
  }
}

// -------------------------------------------------------------- dead-symbol

void check_dead_symbols(const Index& ix, std::vector<Finding>& out) {
  // Name-level liveness, deliberately unfiltered by visibility: a name
  // referenced anywhere live keeps every same-named definition alive
  // (over-approximate liveness = no false "dead" reports from overload
  // sets or virtual dispatch).
  auto is_root = [](const Def& d) {
    return !starts_with(d.file->relative, "src/") ||
           d.rec->name == "main" || d.rec->is_operator ||
           d.rec->is_special || d.rec->is_template || d.rec->allow_dead ||
           d.file->file_allows.count("dead-symbol") != 0;
  };
  std::set<std::string> live;
  std::vector<bool> absorbed(ix.defs.size(), false);
  for (const FileSummary* f : ix.file_scopes) {
    for (const FunctionRecord& r : f->functions) {
      if (r.file_scope) live.insert(r.refs.begin(), r.refs.end());
    }
  }
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    if (is_root(ix.defs[i])) {
      absorbed[i] = true;
      live.insert(ix.defs[i].rec->refs.begin(), ix.defs[i].rec->refs.end());
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < ix.defs.size(); ++i) {
      if (absorbed[i] || !live.count(ix.defs[i].rec->name)) continue;
      absorbed[i] = true;
      live.insert(ix.defs[i].rec->refs.begin(), ix.defs[i].rec->refs.end());
      changed = true;
    }
  }
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    const Def& d = ix.defs[i];
    if (is_root(d) || live.count(d.rec->name)) continue;
    out.push_back(Finding{
        d.file->relative, d.rec->line, "dead-symbol",
        "function '" + d.rec->qualified +
            "' is reachable from no CLI entry point, test, bench, or "
            "registry factory — delete it or mark the definition "
            "'// lint:allow(dead-symbol)'"});
  }
}

}  // namespace

void run_callgraph_rules(const std::vector<FileSummary>& summaries,
                         std::vector<Finding>& out) {
  const Index ix = build_index(summaries);
  check_lock_order(ix, out);
  check_blocking_under_lock(ix, compute_blocking(ix), out);
  check_transitive_nondeterminism(ix, compute_taint(ix), out);
  check_dead_symbols(ix, out);
}

std::string dump_callgraph(const std::vector<FileSummary>& summaries) {
  const Index ix = build_index(summaries);
  std::ostringstream out;
  out << "# hcsched_analyze call graph v1\n";
  for (std::size_t i = 0; i < ix.defs.size(); ++i) {
    out << ix.defs[i].rec->qualified << " " << site_of(ix, i) << "\n";
    for (std::size_t t : ix.callees[i]) {
      out << "  -> " << ix.defs[t].rec->qualified << " " << site_of(ix, t)
          << "\n";
    }
  }
  return out.str();
}

}  // namespace analyze
