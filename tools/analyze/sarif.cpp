// Minimal deterministic SARIF 2.1.0 writer. Only what GitHub code
// scanning needs to render findings as annotations: tool metadata, the
// rules referenced by results, and one result per finding with a physical
// location and a stable partial fingerprint. Determinism (sorted rules,
// sorted results, fixed version string, relative URIs) is pinned by the
// analyze_sarif_golden ctest.
#include <algorithm>
#include <map>
#include <sstream>

#include "analyze/engine.hpp"

namespace analyze {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

const std::map<std::string, std::string>& rule_descriptions() {
  static const std::map<std::string, std::string> desc = {
      {"heuristic-registry",
       "Every heuristic header directly under src/heuristics/ is included "
       "by src/heuristics/registry.cpp."},
      {"fastpath-differential",
       "Every kernel file under src/heuristics/fastpath/ is named by a "
       "tests/test_fastpath*.cpp differential suite."},
      {"trace-guard",
       "Raw observability calls outside src/obs/ sit in an #if "
       "HCSCHED_TRACE region or use the self-guarding macros."},
      {"test-registration",
       "Every tests/test_*.cpp is listed in tests/CMakeLists.txt."},
      {"include-hygiene",
       "Project includes are src/-relative: no \"src/\" prefix and no "
       "parent-relative paths."},
      {"explicit-memory-order",
       "Every std::atomic operation names an explicit std::memory_order."},
      {"no-nondeterminism-in-core",
       "Deterministic layers may not use ambient entropy, wall clocks, or "
       "iteration-order-unstable containers."},
      {"lock-annotation-coverage",
       "Every mutex member has a GUARDED_BY/PT_GUARDED_BY field naming "
       "it."},
      {"metric-docs",
       "Every literal metric name registered from src/ is documented in "
       "docs/OBSERVABILITY.md."},
      {"layering",
       "Includes follow the layering component DAG (see "
       "docs/STATIC_ANALYSIS.md)."},
      {"include-cycle", "The project include graph is acyclic."},
      {"unused-include",
       "A quoted direct include must provide at least one name the "
       "including file uses."},
      {"range-for-temporary",
       "A range-for range expression must not bind a reference into a "
       "temporary that dies before the loop body."},
      {"narrowing-in-kernel",
       "No implicit double->float or size_t->int narrowing in "
       "src/heuristics/fastpath/ or src/etc/."},
      {"catch-by-value", "Exceptions are caught by reference (or ...)."},
      {"lock-order-cycle",
       "The cross-TU lock acquisition graph (core::MutexLock nesting plus "
       "ACQUIRE/REQUIRES annotations) is acyclic."},
      {"blocking-under-lock",
       "No call chain reaches stream I/O, CondVar::wait, or "
       "ThreadPool::submit while a core::MutexLock is held."},
      {"transitive-nondeterminism",
       "No call chain from a deterministic layer reaches a banned "
       "nondeterminism source, even through other TUs."},
      {"dead-symbol",
       "Every src/ function is reachable from a CLI entry point, test, "
       "bench, or registry factory."},
  };
  return desc;
}

std::string fingerprint_hex(std::uint64_t fp) {
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[fp & 0xF];
    fp >>= 4;
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  // Rules referenced by the results, sorted; the result objects point at
  // them by index.
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  std::sort(rules.begin(), rules.end());
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) rule_index[rules[i]] = i;

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"hcsched_analyze\",\n"
      << "          \"version\": \"1.0.0\",\n"
      << "          \"informationUri\": "
         "\"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [";
  const auto& desc = rule_descriptions();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << ",";
    const auto d = desc.find(rules[i]);
    out << "\n            {\n"
        << "              \"id\": \"" << json_escape(rules[i]) << "\",\n"
        << "              \"shortDescription\": { \"text\": \""
        << json_escape(d == desc.end() ? rules[i] : d->second)
        << "\" }\n"
        << "            }";
  }
  if (!rules.empty()) out << "\n          ";
  out << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"columnKind\": \"utf16CodeUnits\",\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ",";
    out << "\n        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"ruleIndex\": " << rule_index[f.rule] << ",\n"
        << "          \"level\": \"warning\",\n"
        << "          \"message\": { \"text\": \"" << json_escape(f.message)
        << "\" },\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": { \"uri\": \""
        << json_escape(f.file) << "\" }";
    if (f.line != 0) {
      out << ",\n                \"region\": { \"startLine\": " << f.line
          << " }";
    }
    out << "\n              }\n"
        << "            }\n"
        << "          ],\n"
        << "          \"partialFingerprints\": {\n"
        << "            \"hcschedAnalyze/v1\": \""
        << fingerprint_hex(f.fingerprint) << "\"\n"
        << "          }\n"
        << "        }";
  }
  if (!findings.empty()) out << "\n      ";
  out << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace analyze
