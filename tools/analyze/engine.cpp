#include "analyze/engine.hpp"

#include "analyze/callgraph.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <tuple>

namespace fs = std::filesystem;

namespace analyze {
namespace {

// Bumping this string invalidates every cached summary — do so whenever
// the summary LAYOUT changes (new record tags, field reordering).
constexpr std::string_view kCacheVersion = "hcsched-analyze-cache-v3";

// Engine/rule-set stamp, stored on the cache's second line and checked on
// load: bump it whenever a rule or the lexer changes BEHAVIOR without
// changing the serialized layout, so an edited rule can never serve stale
// cached findings. (Content hashes only catch edits to the *scanned*
// files, not to the analyzer itself.)
constexpr std::string_view kEngineStamp = "engine-v10-symbol-index";

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == ".git" || name == "fixtures" || name.rfind("build", 0) == 0;
}

std::string to_relative(const fs::path& path, const fs::path& root) {
  std::string rel = path.lexically_relative(root).generic_string();
  return rel.empty() ? path.generic_string() : rel;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ------------------------------------------------- cache (de)serialization

std::string enc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r') {
      static const char* hex = "0123456789abcdef";
      out += '%';
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += hex[static_cast<unsigned char>(c) & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::string dec(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const auto nib = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = nib(s[i + 1]), lo = nib(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ' ') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

// Flag bits for the serialized function records ('S' / 'C' tags).
constexpr int kFnDefinition = 1;
constexpr int kFnMember = 2;
constexpr int kFnTemplate = 4;
constexpr int kFnOperator = 8;
constexpr int kFnSpecial = 16;
constexpr int kFnFileScope = 32;
constexpr int kFnAllowDead = 64;
constexpr int kCallMember = 1;
constexpr int kCallAllowBlocking = 2;
constexpr int kCallAllowTaint = 4;
constexpr int kCallAllowLock = 8;

// Empty-string placeholder for fixed positional fields (enc() never emits
// a bare "-" for a nonempty identifier-ish value).
std::string enc_or_dash(const std::string& s) {
  return s.empty() ? std::string("-") : enc(s);
}
std::string dec_or_dash(const std::string& s) {
  return s == "-" ? std::string() : dec(s);
}

void save_cache(const fs::path& path,
                const std::vector<FileSummary>& summaries) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return;  // best effort; the cache is an optimization only
  out << kCacheVersion << "\n";
  out << "engine " << kEngineStamp << "\n";
  for (const FileSummary& f : summaries) {
    out << "F " << std::hex << f.hash << std::dec << " " << enc(f.relative)
        << "\n";
    for (const std::string& a : f.file_allows) out << "A " << enc(a) << "\n";
    for (const IncludeInfo& inc : f.includes) {
      out << "I " << inc.line << " " << (inc.angle ? 1 : 0) << " "
          << enc(inc.path);
      for (const std::string& a : inc.allows) out << " " << enc(a);
      out << "\n";
    }
    for (const MetricSite& m : f.metric_sites) {
      out << "M " << m.line << " " << (m.allowed ? 1 : 0) << " "
          << enc(m.name) << "\n";
    }
    for (const RangeForChain& r : f.range_fors) {
      out << "R " << r.line << " " << (r.allowed ? 1 : 0) << " "
          << (r.complex ? 1 : 0);
      for (const RangeForStep& s : r.steps) {
        out << " " << s.op << enc(s.name);
      }
      out << "\n";
    }
    for (const auto& [name, bits] : f.ret_kinds) {
      out << "T " << bits << " " << enc(name) << "\n";
    }
    out << "D";
    for (const std::string& n : f.declared) out << " " << enc(n);
    out << "\nN";
    for (const std::string& n : f.idents) out << " " << enc(n);
    out << "\nW";
    for (const std::string& n : f.mentions) out << " " << enc(n);
    out << "\n";
    for (const FunctionRecord& fn : f.functions) {
      int flags = 0;
      if (fn.is_definition) flags |= kFnDefinition;
      if (fn.is_member) flags |= kFnMember;
      if (fn.is_template) flags |= kFnTemplate;
      if (fn.is_operator) flags |= kFnOperator;
      if (fn.is_special) flags |= kFnSpecial;
      if (fn.file_scope) flags |= kFnFileScope;
      if (fn.allow_dead) flags |= kFnAllowDead;
      out << "S " << fn.line << " " << flags << " " << enc_or_dash(fn.name)
          << " " << enc_or_dash(fn.qualified);
      for (const std::string& a : fn.annot_acquires) out << " a" << enc(a);
      for (const std::string& r : fn.annot_requires) out << " r" << enc(r);
      out << "\n";
      for (const CallSite& c : fn.calls) {
        int cf = 0;
        if (c.member) cf |= kCallMember;
        if (c.allow_blocking) cf |= kCallAllowBlocking;
        if (c.allow_taint) cf |= kCallAllowTaint;
        if (c.allow_lock) cf |= kCallAllowLock;
        out << "C " << c.line << " " << cf << " " << enc(c.name) << " "
            << enc_or_dash(c.qualifier);
        for (const std::string& h : c.held) out << " " << enc(h);
        out << "\n";
      }
      for (const LockSite& l : fn.locks) {
        out << "L " << l.line << " " << (l.allowed ? 1 : 0) << " "
            << enc(l.mutex);
        for (const std::string& h : l.held) out << " " << enc(h);
        out << "\n";
      }
      for (const BlockSite& b : fn.blocks) {
        out << "B " << b.line << " " << (b.allowed ? 1 : 0) << " "
            << (b.wait_on_held ? 1 : 0) << " " << enc(b.what);
        for (const std::string& h : b.held) out << " " << enc(h);
        out << "\n";
      }
      for (const TaintSite& t : fn.taints) {
        out << "X " << t.line << " " << enc(t.token) << "\n";
      }
      out << "G";
      for (const std::string& r : fn.refs) out << " " << enc(r);
      out << "\n";
    }
    for (const Finding& v : f.findings) {
      out << "V " << v.line << " " << enc(v.rule) << " " << enc(v.message)
          << "\n";
    }
    out << "E\n";
  }
}

std::map<std::string, FileSummary> load_cache(const fs::path& path) {
  std::map<std::string, FileSummary> cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line) || line != kCacheVersion) return cache;
  if (!std::getline(in, line) ||
      line != std::string("engine ") + std::string(kEngineStamp)) {
    return cache;  // analyzer changed behavior — discard everything
  }
  FileSummary cur;
  bool open = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> f = split_fields(line);
    const std::string& tag = f[0];
    if (tag == "F") {
      if (f.size() < 3) continue;
      cur = FileSummary{};
      cur.hash = std::stoull(f[1], nullptr, 16);
      cur.relative = dec(f[2]);
      open = true;
    } else if (!open) {
      continue;
    } else if (tag == "A" && f.size() >= 2) {
      cur.file_allows.insert(dec(f[1]));
    } else if (tag == "I" && f.size() >= 4) {
      IncludeInfo inc;
      inc.line = std::stoul(f[1]);
      inc.angle = f[2] == "1";
      inc.path = dec(f[3]);
      for (std::size_t i = 4; i < f.size(); ++i) {
        inc.allows.insert(dec(f[i]));
      }
      cur.includes.push_back(std::move(inc));
    } else if (tag == "M" && f.size() >= 4) {
      cur.metric_sites.push_back(
          MetricSite{dec(f[3]), std::stoul(f[1]), f[2] == "1"});
    } else if (tag == "R" && f.size() >= 4) {
      RangeForChain chain;
      chain.line = std::stoul(f[1]);
      chain.allowed = f[2] == "1";
      chain.complex = f[3] == "1";
      for (std::size_t i = 4; i < f.size(); ++i) {
        if (f[i].empty()) continue;
        chain.steps.push_back(
            RangeForStep{f[i][0], dec(f[i].substr(1))});
      }
      cur.range_fors.push_back(std::move(chain));
    } else if (tag == "T" && f.size() >= 3) {
      cur.ret_kinds[dec(f[2])] = std::stoi(f[1]);
    } else if (tag == "D") {
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (!f[i].empty()) cur.declared.insert(dec(f[i]));
      }
    } else if (tag == "N") {
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (!f[i].empty()) cur.idents.insert(dec(f[i]));
      }
    } else if (tag == "W") {
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (!f[i].empty()) cur.mentions.insert(dec(f[i]));
      }
    } else if (tag == "S" && f.size() >= 5) {
      FunctionRecord fn;
      fn.line = std::stoul(f[1]);
      const int flags = std::stoi(f[2]);
      fn.is_definition = (flags & kFnDefinition) != 0;
      fn.is_member = (flags & kFnMember) != 0;
      fn.is_template = (flags & kFnTemplate) != 0;
      fn.is_operator = (flags & kFnOperator) != 0;
      fn.is_special = (flags & kFnSpecial) != 0;
      fn.file_scope = (flags & kFnFileScope) != 0;
      fn.allow_dead = (flags & kFnAllowDead) != 0;
      fn.name = dec_or_dash(f[3]);
      fn.qualified = dec_or_dash(f[4]);
      for (std::size_t i = 5; i < f.size(); ++i) {
        if (f[i].size() < 2) continue;
        if (f[i][0] == 'a') fn.annot_acquires.push_back(dec(f[i].substr(1)));
        if (f[i][0] == 'r') fn.annot_requires.push_back(dec(f[i].substr(1)));
      }
      cur.functions.push_back(std::move(fn));
    } else if (tag == "C" && f.size() >= 5 && !cur.functions.empty()) {
      CallSite c;
      c.line = std::stoul(f[1]);
      const int cf = std::stoi(f[2]);
      c.member = (cf & kCallMember) != 0;
      c.allow_blocking = (cf & kCallAllowBlocking) != 0;
      c.allow_taint = (cf & kCallAllowTaint) != 0;
      c.allow_lock = (cf & kCallAllowLock) != 0;
      c.name = dec(f[3]);
      c.qualifier = dec_or_dash(f[4]);
      for (std::size_t i = 5; i < f.size(); ++i) {
        if (!f[i].empty()) c.held.push_back(dec(f[i]));
      }
      cur.functions.back().calls.push_back(std::move(c));
    } else if (tag == "L" && f.size() >= 4 && !cur.functions.empty()) {
      LockSite l;
      l.line = std::stoul(f[1]);
      l.allowed = f[2] == "1";
      l.mutex = dec(f[3]);
      for (std::size_t i = 4; i < f.size(); ++i) {
        if (!f[i].empty()) l.held.push_back(dec(f[i]));
      }
      cur.functions.back().locks.push_back(std::move(l));
    } else if (tag == "B" && f.size() >= 5 && !cur.functions.empty()) {
      BlockSite b;
      b.line = std::stoul(f[1]);
      b.allowed = f[2] == "1";
      b.wait_on_held = f[3] == "1";
      b.what = dec(f[4]);
      for (std::size_t i = 5; i < f.size(); ++i) {
        if (!f[i].empty()) b.held.push_back(dec(f[i]));
      }
      cur.functions.back().blocks.push_back(std::move(b));
    } else if (tag == "X" && f.size() >= 3 && !cur.functions.empty()) {
      cur.functions.back().taints.push_back(
          TaintSite{dec(f[2]), std::stoul(f[1])});
    } else if (tag == "G" && !cur.functions.empty()) {
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (!f[i].empty()) cur.functions.back().refs.insert(dec(f[i]));
      }
    } else if (tag == "V" && f.size() >= 4) {
      cur.findings.push_back(Finding{cur.relative, std::stoul(f[1]),
                                     dec(f[2]), dec(f[3])});
    } else if (tag == "E") {
      cache[cur.relative] = std::move(cur);
      open = false;
    }
  }
  return cache;
}

// ------------------------------------------------------- baseline handling

std::string fingerprint_hex(std::uint64_t fp) {
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[fp & 0xF];
    fp >>= 4;
  }
  return out;
}

/// Line-number-independent identity: FNV-1a of rule|file|message plus an
/// ordinal among identical triples, so baseline entries survive edits that
/// only shift lines.
void assign_fingerprints(std::vector<Finding>& findings) {
  std::map<std::string, int> ordinals;
  for (Finding& f : findings) {
    const std::string key = f.rule + "|" + f.file + "|" + f.message;
    const int ordinal = ordinals[key]++;
    f.fingerprint = fnv1a64(key + "|" + std::to_string(ordinal));
  }
}

std::set<std::string> load_baseline(const fs::path& path, bool* ok) {
  std::set<std::string> entries;
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    entries.insert(space == std::string::npos ? line
                                              : line.substr(0, space));
  }
  return entries;
}

bool write_baseline_file(const fs::path& path,
                         const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "# hcsched_analyze suppression baseline.\n"
      << "# One entry per accepted finding: <fingerprint> <rule> <file>.\n"
      << "# Fingerprints ignore line numbers, so entries survive unrelated "
         "edits.\n"
      << "# Regenerate with: hcsched_analyze --root . --write-baseline "
         "<this file>\n";
  for (const Finding& f : findings) {
    out << fingerprint_hex(f.fingerprint) << " " << f.rule << " " << f.file
        << "\n";
  }
  return true;
}

}  // namespace

int run(const Options& opts) {
  std::error_code ec;
  const fs::path root = fs::canonical(opts.root, ec);
  if (ec) {
    std::cerr << "hcsched_analyze: cannot open root: " << ec.message()
              << "\n";
    return 2;
  }
  std::string table_error;
  if (!layering_table_valid(&table_error)) {
    std::cerr << "hcsched_analyze: " << table_error << "\n";
    return 2;
  }

  // Collect *.hpp / *.cpp, sorted for deterministic output.
  std::vector<std::pair<std::string, fs::path>> sources;
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory()) {
      if (skip_directory(it->path())) it.disable_recursion_pending();
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    sources.emplace_back(to_relative(it->path(), root), it->path());
  }
  std::sort(sources.begin(), sources.end());

  std::map<std::string, FileSummary> cache;
  if (!opts.cache.empty()) cache = load_cache(opts.cache);

  std::vector<FileSummary> summaries;
  summaries.reserve(sources.size());
  std::size_t cache_hits = 0;
  for (const auto& [relative, path] : sources) {
    const std::string content = read_file(path);
    const auto cached = cache.find(relative);
    if (cached != cache.end() && cached->second.hash == fnv1a64(content)) {
      summaries.push_back(cached->second);
      ++cache_hits;
      continue;
    }
    summaries.push_back(analyze_file(relative, content));
  }
  if (!opts.cache.empty()) save_cache(opts.cache, summaries);

  if (opts.verbose) {
    std::cout << "hcsched_analyze: scanning " << summaries.size()
              << " source files under " << root.generic_string() << "\n";
    if (!opts.cache.empty()) {
      std::cout << "hcsched_analyze: cache hits " << cache_hits << "/"
                << summaries.size() << "\n";
    }
  }

  if (!opts.callgraph_out.empty()) {
    std::ofstream cg(opts.callgraph_out, std::ios::binary);
    if (!cg) {
      std::cerr << "hcsched_analyze: cannot write "
                << opts.callgraph_out.generic_string() << "\n";
      return 2;
    }
    cg << dump_callgraph(summaries);
  }

  std::vector<Finding> findings;
  for (const FileSummary& f : summaries) {
    findings.insert(findings.end(), f.findings.begin(), f.findings.end());
  }
  const std::vector<Finding> global = run_global_rules(root, summaries);
  findings.insert(findings.end(), global.begin(), global.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  assign_fingerprints(findings);

  if (!opts.write_baseline.empty() &&
      !write_baseline_file(opts.write_baseline, findings)) {
    std::cerr << "hcsched_analyze: cannot write baseline "
              << opts.write_baseline.generic_string() << "\n";
    return 2;
  }

  std::size_t suppressed = 0;
  if (!opts.baseline.empty()) {
    bool ok = false;
    const std::set<std::string> baseline = load_baseline(opts.baseline, &ok);
    if (!ok) {
      std::cerr << "hcsched_analyze: cannot read baseline "
                << opts.baseline.generic_string() << "\n";
      return 2;
    }
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding& f : findings) {
      if (baseline.count(fingerprint_hex(f.fingerprint))) {
        ++suppressed;
      } else {
        kept.push_back(std::move(f));
      }
    }
    findings = std::move(kept);
  }

  // Primary output stream.
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!opts.out.empty()) {
    out_file.open(opts.out, std::ios::binary);
    if (!out_file) {
      std::cerr << "hcsched_analyze: cannot write "
                << opts.out.generic_string() << "\n";
      return 2;
    }
    out = &out_file;
  }
  if (opts.format == "sarif") {
    *out << to_sarif(findings);
  } else {
    for (const Finding& f : findings) {
      *out << f.file;
      if (f.line != 0) *out << ':' << f.line;
      *out << ": [" << f.rule << "] " << f.message << "\n";
    }
    if (findings.empty()) {
      if (opts.verbose) *out << "hcsched_analyze: clean\n";
    } else {
      *out << "hcsched_analyze: " << findings.size() << " finding"
           << (findings.size() == 1 ? "" : "s") << "\n";
    }
    if (suppressed > 0 && opts.verbose) {
      *out << "hcsched_analyze: " << suppressed
           << " baseline-suppressed\n";
    }
  }
  if (!opts.sarif_out.empty()) {
    std::ofstream sarif(opts.sarif_out, std::ios::binary);
    if (!sarif) {
      std::cerr << "hcsched_analyze: cannot write "
                << opts.sarif_out.generic_string() << "\n";
      return 2;
    }
    sarif << to_sarif(findings);
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace analyze
