#include "analyze/engine.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <tuple>

namespace fs = std::filesystem;

namespace analyze {
namespace {

// Bumping this string invalidates every cached summary — do so whenever a
// rule, the lexer, or the summary layout changes behavior.
constexpr std::string_view kCacheVersion = "hcsched-analyze-cache-v2";

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == ".git" || name == "fixtures" || name.rfind("build", 0) == 0;
}

std::string to_relative(const fs::path& path, const fs::path& root) {
  std::string rel = path.lexically_relative(root).generic_string();
  return rel.empty() ? path.generic_string() : rel;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ------------------------------------------------- cache (de)serialization

std::string enc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r') {
      static const char* hex = "0123456789abcdef";
      out += '%';
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += hex[static_cast<unsigned char>(c) & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::string dec(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const auto nib = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = nib(s[i + 1]), lo = nib(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ' ') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

void save_cache(const fs::path& path,
                const std::vector<FileSummary>& summaries) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return;  // best effort; the cache is an optimization only
  out << kCacheVersion << "\n";
  for (const FileSummary& f : summaries) {
    out << "F " << std::hex << f.hash << std::dec << " " << enc(f.relative)
        << "\n";
    for (const std::string& a : f.file_allows) out << "A " << enc(a) << "\n";
    for (const IncludeInfo& inc : f.includes) {
      out << "I " << inc.line << " " << (inc.angle ? 1 : 0) << " "
          << enc(inc.path);
      for (const std::string& a : inc.allows) out << " " << enc(a);
      out << "\n";
    }
    for (const MetricSite& m : f.metric_sites) {
      out << "M " << m.line << " " << (m.allowed ? 1 : 0) << " "
          << enc(m.name) << "\n";
    }
    for (const RangeForChain& r : f.range_fors) {
      out << "R " << r.line << " " << (r.allowed ? 1 : 0) << " "
          << (r.complex ? 1 : 0);
      for (const RangeForStep& s : r.steps) {
        out << " " << s.op << enc(s.name);
      }
      out << "\n";
    }
    for (const auto& [name, bits] : f.ret_kinds) {
      out << "T " << bits << " " << enc(name) << "\n";
    }
    out << "D";
    for (const std::string& n : f.declared) out << " " << enc(n);
    out << "\nN";
    for (const std::string& n : f.idents) out << " " << enc(n);
    out << "\nW";
    for (const std::string& n : f.mentions) out << " " << enc(n);
    out << "\n";
    for (const Finding& v : f.findings) {
      out << "V " << v.line << " " << enc(v.rule) << " " << enc(v.message)
          << "\n";
    }
    out << "E\n";
  }
}

std::map<std::string, FileSummary> load_cache(const fs::path& path) {
  std::map<std::string, FileSummary> cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line) || line != kCacheVersion) return cache;
  FileSummary cur;
  bool open = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> f = split_fields(line);
    const std::string& tag = f[0];
    if (tag == "F") {
      if (f.size() < 3) continue;
      cur = FileSummary{};
      cur.hash = std::stoull(f[1], nullptr, 16);
      cur.relative = dec(f[2]);
      open = true;
    } else if (!open) {
      continue;
    } else if (tag == "A" && f.size() >= 2) {
      cur.file_allows.insert(dec(f[1]));
    } else if (tag == "I" && f.size() >= 4) {
      IncludeInfo inc;
      inc.line = std::stoul(f[1]);
      inc.angle = f[2] == "1";
      inc.path = dec(f[3]);
      for (std::size_t i = 4; i < f.size(); ++i) {
        inc.allows.insert(dec(f[i]));
      }
      cur.includes.push_back(std::move(inc));
    } else if (tag == "M" && f.size() >= 4) {
      cur.metric_sites.push_back(
          MetricSite{dec(f[3]), std::stoul(f[1]), f[2] == "1"});
    } else if (tag == "R" && f.size() >= 4) {
      RangeForChain chain;
      chain.line = std::stoul(f[1]);
      chain.allowed = f[2] == "1";
      chain.complex = f[3] == "1";
      for (std::size_t i = 4; i < f.size(); ++i) {
        if (f[i].empty()) continue;
        chain.steps.push_back(
            RangeForStep{f[i][0], dec(f[i].substr(1))});
      }
      cur.range_fors.push_back(std::move(chain));
    } else if (tag == "T" && f.size() >= 3) {
      cur.ret_kinds[dec(f[2])] = std::stoi(f[1]);
    } else if (tag == "D") {
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (!f[i].empty()) cur.declared.insert(dec(f[i]));
      }
    } else if (tag == "N") {
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (!f[i].empty()) cur.idents.insert(dec(f[i]));
      }
    } else if (tag == "W") {
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (!f[i].empty()) cur.mentions.insert(dec(f[i]));
      }
    } else if (tag == "V" && f.size() >= 4) {
      cur.findings.push_back(Finding{cur.relative, std::stoul(f[1]),
                                     dec(f[2]), dec(f[3])});
    } else if (tag == "E") {
      cache[cur.relative] = std::move(cur);
      open = false;
    }
  }
  return cache;
}

// ------------------------------------------------------- baseline handling

std::string fingerprint_hex(std::uint64_t fp) {
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[fp & 0xF];
    fp >>= 4;
  }
  return out;
}

/// Line-number-independent identity: FNV-1a of rule|file|message plus an
/// ordinal among identical triples, so baseline entries survive edits that
/// only shift lines.
void assign_fingerprints(std::vector<Finding>& findings) {
  std::map<std::string, int> ordinals;
  for (Finding& f : findings) {
    const std::string key = f.rule + "|" + f.file + "|" + f.message;
    const int ordinal = ordinals[key]++;
    f.fingerprint = fnv1a64(key + "|" + std::to_string(ordinal));
  }
}

std::set<std::string> load_baseline(const fs::path& path, bool* ok) {
  std::set<std::string> entries;
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    entries.insert(space == std::string::npos ? line
                                              : line.substr(0, space));
  }
  return entries;
}

bool write_baseline_file(const fs::path& path,
                         const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "# hcsched_analyze suppression baseline.\n"
      << "# One entry per accepted finding: <fingerprint> <rule> <file>.\n"
      << "# Fingerprints ignore line numbers, so entries survive unrelated "
         "edits.\n"
      << "# Regenerate with: hcsched_analyze --root . --write-baseline "
         "<this file>\n";
  for (const Finding& f : findings) {
    out << fingerprint_hex(f.fingerprint) << " " << f.rule << " " << f.file
        << "\n";
  }
  return true;
}

}  // namespace

int run(const Options& opts) {
  std::error_code ec;
  const fs::path root = fs::canonical(opts.root, ec);
  if (ec) {
    std::cerr << "hcsched_analyze: cannot open root: " << ec.message()
              << "\n";
    return 2;
  }
  std::string table_error;
  if (!layering_table_valid(&table_error)) {
    std::cerr << "hcsched_analyze: " << table_error << "\n";
    return 2;
  }

  // Collect *.hpp / *.cpp, sorted for deterministic output.
  std::vector<std::pair<std::string, fs::path>> sources;
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory()) {
      if (skip_directory(it->path())) it.disable_recursion_pending();
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    sources.emplace_back(to_relative(it->path(), root), it->path());
  }
  std::sort(sources.begin(), sources.end());

  std::map<std::string, FileSummary> cache;
  if (!opts.cache.empty()) cache = load_cache(opts.cache);

  std::vector<FileSummary> summaries;
  summaries.reserve(sources.size());
  std::size_t cache_hits = 0;
  for (const auto& [relative, path] : sources) {
    const std::string content = read_file(path);
    const auto cached = cache.find(relative);
    if (cached != cache.end() && cached->second.hash == fnv1a64(content)) {
      summaries.push_back(cached->second);
      ++cache_hits;
      continue;
    }
    summaries.push_back(analyze_file(relative, content));
  }
  if (!opts.cache.empty()) save_cache(opts.cache, summaries);

  if (opts.verbose) {
    std::cout << "hcsched_analyze: scanning " << summaries.size()
              << " source files under " << root.generic_string() << "\n";
    if (!opts.cache.empty()) {
      std::cout << "hcsched_analyze: cache hits " << cache_hits << "/"
                << summaries.size() << "\n";
    }
  }

  std::vector<Finding> findings;
  for (const FileSummary& f : summaries) {
    findings.insert(findings.end(), f.findings.begin(), f.findings.end());
  }
  const std::vector<Finding> global = run_global_rules(root, summaries);
  findings.insert(findings.end(), global.begin(), global.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  assign_fingerprints(findings);

  if (!opts.write_baseline.empty() &&
      !write_baseline_file(opts.write_baseline, findings)) {
    std::cerr << "hcsched_analyze: cannot write baseline "
              << opts.write_baseline.generic_string() << "\n";
    return 2;
  }

  std::size_t suppressed = 0;
  if (!opts.baseline.empty()) {
    bool ok = false;
    const std::set<std::string> baseline = load_baseline(opts.baseline, &ok);
    if (!ok) {
      std::cerr << "hcsched_analyze: cannot read baseline "
                << opts.baseline.generic_string() << "\n";
      return 2;
    }
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding& f : findings) {
      if (baseline.count(fingerprint_hex(f.fingerprint))) {
        ++suppressed;
      } else {
        kept.push_back(std::move(f));
      }
    }
    findings = std::move(kept);
  }

  // Primary output stream.
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!opts.out.empty()) {
    out_file.open(opts.out, std::ios::binary);
    if (!out_file) {
      std::cerr << "hcsched_analyze: cannot write "
                << opts.out.generic_string() << "\n";
      return 2;
    }
    out = &out_file;
  }
  if (opts.format == "sarif") {
    *out << to_sarif(findings);
  } else {
    for (const Finding& f : findings) {
      *out << f.file;
      if (f.line != 0) *out << ':' << f.line;
      *out << ": [" << f.rule << "] " << f.message << "\n";
    }
    if (findings.empty()) {
      if (opts.verbose) *out << "hcsched_analyze: clean\n";
    } else {
      *out << "hcsched_analyze: " << findings.size() << " finding"
           << (findings.size() == 1 ? "" : "s") << "\n";
    }
    if (suppressed > 0 && opts.verbose) {
      *out << "hcsched_analyze: " << suppressed
           << " baseline-suppressed\n";
    }
  }
  if (!opts.sarif_out.empty()) {
    std::ofstream sarif(opts.sarif_out, std::ios::binary);
    if (!sarif) {
      std::cerr << "hcsched_analyze: cannot write "
                << opts.sarif_out.generic_string() << "\n";
      return 2;
    }
    sarif << to_sarif(findings);
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace analyze
