// Data model shared by the hcsched_analyze engine, rules, cache and
// output writers.
//
// Per file the engine produces a FileSummary: everything the cross-file
// rules (include graph, layering, registry coverage, ...) need, plus the
// findings of the purely file-local rules. Summaries are what the
// file-hash-keyed incremental cache stores — a cache hit skips lexing and
// local analysis entirely, and the cross-file rules (always recomputed;
// they are cheap) run over summaries alone.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"
#include "analyze/symbols.hpp"

namespace analyze {

struct Finding {
  std::string file;   // path relative to the scanned root
  std::size_t line;   // 1-based; 0 = whole-file finding
  std::string rule;
  std::string message;
  // Stable identity for the suppression baseline: FNV-1a of
  // rule|file|message plus an ordinal among identical triples, so entries
  // survive unrelated edits that shift line numbers.
  std::uint64_t fingerprint = 0;
};

/// One #include directive, with the line-level allow escapes active on its
/// line (so the graph rules can honor them from a cached summary).
struct IncludeInfo {
  std::string path;  // as written between the delimiters
  std::size_t line = 0;
  bool angle = false;  // <...> (system) vs "..." (project)
  std::set<std::string> allows;
};

/// A metric-name registration site (metric-docs rule input).
struct MetricSite {
  std::string name;
  std::size_t line = 0;
  bool allowed = false;
};

/// One step of a range-for range expression's postfix chain.
/// op: 'b' base identifier (incl. this), 'f' base call f(...),
///     'c' member call .name(...), 'm' member access .name, 'i' index [..]
struct RangeForStep {
  char op = 'b';
  std::string name;
};

struct RangeForChain {
  std::size_t line = 0;
  bool allowed = false;
  bool complex = false;  // parser bailed out; rule skips the chain
  std::vector<RangeForStep> steps;
};

// Return-kind bits for the repo-wide method-name map the
// range-for-temporary rule consults.
constexpr int kRetValue = 1;
constexpr int kRetRef = 2;

struct FileSummary {
  std::string relative;  // '/'-separated, relative to the scanned root
  std::uint64_t hash = 0;

  std::vector<IncludeInfo> includes;
  std::set<std::string> idents;     // code identifiers + directive words
  std::set<std::string> declared;   // names this file declares (headers)
  std::set<std::string> mentions;   // only for tests/test_fastpath*.cpp:
                                    // every word incl. comments/strings
  std::map<std::string, int> ret_kinds;  // method name -> kRet* bits
  std::vector<MetricSite> metric_sites;
  std::vector<RangeForChain> range_fors;
  std::vector<FunctionRecord> functions;  // symbol index (symbols.cpp)
  std::set<std::string> file_allows;  // hcsched-lint: allow(<rule-id>)
  std::vector<Finding> findings;      // file-local rules only
};

/// Transient per-file state the local rules run on (never cached).
struct FileContext {
  std::vector<Token> tokens;    // code tokens, comments excluded
  std::vector<Token> comments;  // comment tokens, in order
  // Physical lines with comments fully blanked and string/char literal
  // contents blanked (delimiters kept; #include header-names preserved).
  // The ported line-oriented rules scan these, which is what makes them
  // string- and comment-aware.
  std::vector<std::string> code_lines;
  // Line -> unquoted string-literal values starting on that line.
  std::map<std::size_t, std::vector<std::string>> strings_by_line;
  // Line -> line-level allow tokens from comments covering that line.
  std::map<std::size_t, std::set<std::string>> line_allows;

  bool line_allowed(std::size_t line, const std::string& token) const {
    for (std::size_t l : {line, line > 1 ? line - 1 : line}) {
      auto it = line_allows.find(l);
      if (it != line_allows.end() && it->second.count(token)) return true;
    }
    return false;
  }
};

std::uint64_t fnv1a64(std::string_view data);

/// Lex `content` and run every file-local rule; returns the summary
/// (hash already filled from `content`).
FileSummary analyze_file(const std::string& relative,
                         const std::string& content);

/// File-local rules (implemented in rules.cpp, invoked by analyze_file).
void run_local_rules(const std::string& relative, const FileContext& ctx,
                     FileSummary& out);

/// Cross-file rules over all summaries (include graph: cycles, layering,
/// unused direct includes; registry/differential/test-registration/
/// metric-docs; range-for-temporary via the repo-wide return-kind map).
std::vector<Finding> run_global_rules(
    const std::filesystem::path& root,
    const std::vector<FileSummary>& summaries);

/// Include-graph rules (layering DAG, include-cycle, unused-include),
/// invoked by run_global_rules. Implemented in graph.cpp.
void run_graph_rules(const std::vector<FileSummary>& summaries,
                     std::vector<Finding>& out);

/// Self-check of the hardcoded layering component table (every declared
/// dependency exists, table is acyclic). The CLI calls this at startup and
/// exits 2 on a config error.
bool layering_table_valid(std::string* error);

}  // namespace analyze
