// Engine orchestration for hcsched_analyze: source collection, the
// file-hash-keyed incremental cache, baseline subtraction, and output.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "analyze/model.hpp"

namespace analyze {

struct Options {
  std::filesystem::path root;
  std::string format = "text";      // "text" | "sarif" (primary stream)
  std::filesystem::path out;        // primary output file; empty = stdout
  std::filesystem::path sarif_out;  // extra SARIF copy (any format mode)
  std::filesystem::path baseline;        // suppression baseline to apply
  std::filesystem::path write_baseline;  // emit all findings as a baseline
  std::filesystem::path cache;      // incremental cache file (read+write)
  std::filesystem::path callgraph_out;  // --dump-callgraph artifact
  bool verbose = false;
};

/// Render findings as a SARIF 2.1.0 document (deterministic: rules and
/// results ordered, stable tool version, relative URIs).
std::string to_sarif(const std::vector<Finding>& findings);

/// Full analysis run. Returns the process exit code: 0 clean, 1 findings
/// remain after baseline subtraction, 2 usage/IO/config error.
int run(const Options& opts);

}  // namespace analyze
