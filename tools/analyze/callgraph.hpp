// Cross-TU call graph + the four interprocedural rules, built on the
// per-file FunctionRecords from symbols.cpp (which round-trip through the
// incremental cache, so a warm run re-joins cached records without
// re-lexing anything).
//
// Resolution is name-based with a visibility filter: a call site resolves
// to the definitions of that name only when the name is declared somewhere
// in the calling file's transitive include closure (or defined in the
// calling file itself). Qualified calls (`sim::submit`, `Foo::bar`) narrow
// the candidate set to definitions whose qualified name matches. This is
// deliberately an over-approximation — good enough for deadlock/taint
// *reachability* and for liveness, with no C++ name lookup implemented.
//
// Rules (docs/STATIC_ANALYSIS.md has the worked examples):
//   lock-order-cycle          cycle in the lock acquisition graph
//   blocking-under-lock       I/O, CondVar::wait, or ThreadPool::submit
//                             reachable while a core::MutexLock is live
//   transitive-nondeterminism det-layer function whose call chain reaches
//                             a banned nondeterminism source
//   dead-symbol               src/ function reachable from no entry point,
//                             test, bench, or registry factory
#pragma once

#include <string>
#include <vector>

namespace analyze {

struct FileSummary;
struct Finding;

/// Run the interprocedural rules over all summaries (invoked from
/// run_global_rules; always recomputed — only per-file records are cached).
void run_callgraph_rules(const std::vector<FileSummary>& summaries,
                         std::vector<Finding>& out);

/// Deterministic textual dump of the resolved call graph, one definition
/// per line followed by its resolved callees — the `--dump-callgraph`
/// artifact CI uploads, golden-pinned over a fixture tree.
std::string dump_callgraph(const std::vector<FileSummary>& summaries);

}  // namespace analyze
