// Token-aware C++ lexer for hcsched_analyze (dependency-free).
//
// Produces the token stream every analysis rule shares, so no rule ever
// greps raw text through the middle of a string literal or comment again.
// The lexer understands the lexical shapes that defeated the regex linter:
//
//   * line comments and (non-nesting) block comments, emitted as Comment
//     tokens so suppression escapes can be required to sit in comments;
//   * string/char literals with escapes, encoding prefixes (L, u, U, u8),
//     and raw strings R"delim(...)delim" with custom delimiters — raw
//     string bodies are read unspliced, per [lex.phases];
//   * backslash-newline line continuations anywhere outside raw strings,
//     including inside string literals and // comments;
//   * CRLF and lone-CR newlines (normalized away from token text);
//   * pp-numbers with digit separators (1'000'000, 0xFF'FFp-3f);
//   * preprocessor directives: `#include` / `#define` / `#if...` lines are
//     introduced by a Directive token ("#include"), and the include target
//     lexes as a single HeaderName token ("path" or <path>);
//   * maximal-munch multi-character punctuation (::, ->, <=>, <<=, ...).
//
// Every token carries the physical (line, column) of its first character
// and the one-past-end position, so callers can map tokens back onto the
// original lines even across splices — the engine uses that to build
// comment/string-scrubbed "code lines" for the ported line-oriented rules.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace analyze {

enum class Tok {
  Identifier,  // identifiers and keywords (rules distinguish by text)
  Number,      // pp-number: integers, floats, digit separators, suffixes
  String,      // "..."-family including encoding prefixes and raw strings
  Char,        // '...'-family character literals
  Punct,       // operators and punctuators, maximal munch
  HeaderName,  // the "path" or <path> operand of an #include directive
  Directive,   // '#' plus the directive name, e.g. "#include", "#pragma"
  Comment,     // // and /* */ comments, full text including delimiters
};

struct Token {
  Tok kind;
  std::string text;       // spliced text (line continuations removed)
  std::size_t line;       // 1-based physical line of the first character
  std::size_t col;        // 1-based physical column of the first character
  std::size_t end_line;   // physical line of the last character
  std::size_t end_col;    // 1-based column one past the last character
};

/// Lex an entire translation unit. Never fails: unterminated literals or
/// comments produce a token running to end-of-input, and any byte that fits
/// no rule becomes a single-character Punct token.
std::vector<Token> lex(std::string_view source);

/// True for tokens that are comments (suppression escapes may only live
/// here — an allow-marker inside a string literal must not suppress).
inline bool is_comment(const Token& t) { return t.kind == Tok::Comment; }

}  // namespace analyze
