// hcsched_analyze — token-aware static analysis for the hcsched repo
// (dependency-free, ctest-registered). Supersedes the regex linter
// hcsched_lint: same conventions, real lexing.
//
// Rules (docs/STATIC_ANALYSIS.md has the full catalog and the layering
// component table):
//
//   ported from hcsched_lint, now string/comment-aware:
//     heuristic-registry, fastpath-differential, trace-guard,
//     test-registration, include-hygiene, explicit-memory-order,
//     no-nondeterminism-in-core, lock-annotation-coverage, metric-docs
//   include graph:
//     layering, include-cycle, unused-include
//   token-level:
//     range-for-temporary, narrowing-in-kernel, catch-by-value
//   interprocedural (symbol index + cross-TU call graph):
//     lock-order-cycle, blocking-under-lock, transitive-nondeterminism,
//     dead-symbol
//
// Escapes (comments only — an allow marker inside a string literal never
// suppresses anything):
//     // hcsched-lint: allow(<rule-id>)          whole file, one rule
//     // lint:allow(<token>)                     flagged line or line above
//
// Usage:
//   hcsched_analyze --root <dir> [--format text|sarif] [--out FILE]
//                   [--sarif-out FILE] [--baseline FILE]
//                   [--write-baseline FILE] [--cache FILE]
//                   [--dump-callgraph FILE] [--verbose]
//
// Exit code: 0 clean, 1 findings remain after baseline subtraction,
// 2 usage/IO/config errors.
#include <iostream>
#include <string_view>

#include "analyze/engine.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: hcsched_analyze --root <dir> [--format text|sarif]\n"
         "                       [--out FILE] [--sarif-out FILE]\n"
         "                       [--baseline FILE] [--write-baseline FILE]\n"
         "                       [--cache FILE] [--dump-callgraph FILE]\n"
         "                       [--verbose]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  analyze::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      opts.format = argv[++i];
      if (opts.format != "text" && opts.format != "sarif") return usage();
    } else if (arg == "--out" && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (arg == "--sarif-out" && i + 1 < argc) {
      opts.sarif_out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      opts.write_baseline = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      opts.cache = argv[++i];
    } else if (arg == "--dump-callgraph" && i + 1 < argc) {
      opts.callgraph_out = argv[++i];
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      return usage();
    }
  }
  if (opts.root.empty()) {
    std::cerr << "hcsched_analyze: --root is required\n";
    return 2;
  }
  return analyze::run(opts);
}
