#include "analyze/model.hpp"

#include <algorithm>
#include <array>

namespace analyze {
namespace {

bool is_word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// Keywords that can never be a declared name, and that block the
// "identifier before `(` / `=` is a declaration" classification when they
// appear as the *preceding* token (e.g. `return foo(x)` is a call).
const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kw = {
      "alignas",  "alignof",  "auto",     "bool",      "break",
      "case",     "catch",    "char",     "class",     "co_await",
      "co_return","co_yield", "const",    "consteval", "constexpr",
      "constinit","continue", "decltype", "default",   "delete",
      "do",       "double",   "else",     "enum",      "explicit",
      "extern",   "false",    "float",    "for",       "friend",
      "goto",     "if",       "inline",   "int",       "long",
      "mutable",  "namespace","new",      "noexcept",  "nullptr",
      "operator", "private",  "protected","public",    "register",
      "requires", "return",   "short",    "signed",    "sizeof",
      "static",   "struct",   "switch",   "template",  "this",
      "throw",    "true",     "try",      "typedef",   "typeid",
      "typename", "union",    "unsigned", "using",     "virtual",
      "void",     "volatile", "while",
  };
  return kw;
}

// Keywords that *can* legitimately precede a declared name's type (so a
// preceding one of these still classifies `name(` as a declaration).
bool is_type_keyword(const std::string& t) {
  static const std::set<std::string> types = {
      "bool", "char", "double", "float", "int", "long", "short", "signed",
      "unsigned", "void", "auto", "size_t",
  };
  return types.count(t) != 0;
}

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string line;
  for (char c : content) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(std::move(line));
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (!line.empty() || content.empty()) lines.push_back(std::move(line));
  return lines;
}

/// Blank [start_line,start_col) .. (end_line,end_col) in `lines`
/// (1-based positions, end exclusive), optionally keeping the first and
/// last character (string delimiters) visible.
void blank_span(std::vector<std::string>& lines, const Token& t,
                bool keep_delims) {
  for (std::size_t ln = t.line; ln <= t.end_line && ln <= lines.size();
       ++ln) {
    std::string& s = lines[ln - 1];
    const std::size_t from = (ln == t.line) ? t.col - 1 : 0;
    const std::size_t to =
        (ln == t.end_line) ? std::min(t.end_col - 1, s.size()) : s.size();
    for (std::size_t i = from; i < to && i < s.size(); ++i) s[i] = ' ';
  }
  if (keep_delims) {
    if (t.line <= lines.size() && t.col - 1 < lines[t.line - 1].size()) {
      lines[t.line - 1][t.col - 1] = '"';
    }
    if (t.end_line <= lines.size() && t.end_col >= 2 &&
        t.end_col - 2 < lines[t.end_line - 1].size()) {
      lines[t.end_line - 1][t.end_col - 2] = '"';
    }
  }
}

/// Inner text of a string/char literal token (prefix and delimiters
/// stripped; raw-string delimiters handled; escapes left as written).
std::string literal_value(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && text[i] != '"' && text[i] != '\'' &&
         text[i] != 'R') {
    ++i;  // encoding prefix
  }
  if (i < text.size() && text[i] == 'R') {
    const std::size_t quote = text.find('"', i);
    const std::size_t open = text.find('(', quote);
    if (quote == std::string::npos || open == std::string::npos) return {};
    const std::string delim = text.substr(quote + 1, open - quote - 1);
    const std::string closer = ")" + delim + "\"";
    const std::size_t close = text.rfind(closer);
    if (close == std::string::npos || close < open + 1) return {};
    return text.substr(open + 1, close - open - 1);
  }
  if (i >= text.size()) return {};
  const char q = text[i];
  std::size_t end = text.size();
  if (end >= 2 && text[end - 1] == q) --end;
  return text.substr(i + 1, end - i - 1);
}

void add_words(const std::string& text, std::set<std::string>& out) {
  std::string word;
  for (char c : text) {
    if (is_word_char(c)) {
      word += c;
    } else if (!word.empty()) {
      out.insert(word);
      word.clear();
    }
  }
  if (!word.empty()) out.insert(word);
}

/// Extract every `lint:allow(token)` / `hcsched-lint: allow(rule)` marker
/// from a comment's text.
void extract_allows(const Token& comment, FileContext& ctx,
                    FileSummary& out) {
  const std::string& text = comment.text;
  constexpr std::string_view kLine = "lint:allow(";
  constexpr std::string_view kFile = "hcsched-lint: allow(";
  for (std::size_t pos = text.find(kFile); pos != std::string::npos;
       pos = text.find(kFile, pos + 1)) {
    const std::size_t close = text.find(')', pos);
    if (close == std::string::npos) continue;
    out.file_allows.insert(
        text.substr(pos + kFile.size(), close - pos - kFile.size()));
  }
  for (std::size_t pos = text.find(kLine); pos != std::string::npos;
       pos = text.find(kLine, pos + 1)) {
    // Skip the tail of "hcsched-lint: allow(" (already handled above).
    if (pos >= 8 && text.compare(pos - 8, 8, "hcsched-") == 0) continue;
    const std::size_t close = text.find(')', pos);
    if (close == std::string::npos) continue;
    const std::string token =
        text.substr(pos + kLine.size(), close - pos - kLine.size());
    for (std::size_t ln = comment.line; ln <= comment.end_line; ++ln) {
      ctx.line_allows[ln].insert(token);
    }
  }
}

bool tok_is(const Token& t, std::string_view text) {
  return t.text == text;
}

std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t i,
                          std::string_view open, std::string_view close) {
  // toks[i] is `open`; returns index one past the matching `close`
  // (or toks.size() when unbalanced).
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::Punct && toks[i].text == open) ++depth;
    if (toks[i].kind == Tok::Punct && toks[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

/// Parse the postfix chain of a range-for range expression.
RangeForChain parse_chain(const std::vector<Token>& expr, std::size_t line) {
  RangeForChain chain;
  chain.line = line;
  std::size_t i = 0;
  auto bail = [&chain]() {
    chain.complex = true;
    return chain;
  };
  if (expr.empty() || expr[0].kind != Tok::Identifier) return bail();
  // Base: qualified-id, possibly a call.
  std::string base = expr[i++].text;
  while (i + 1 < expr.size() && tok_is(expr[i], "::") &&
         expr[i + 1].kind == Tok::Identifier) {
    base = expr[i + 1].text;
    i += 2;
  }
  if (i < expr.size() && tok_is(expr[i], "(")) {
    chain.steps.push_back({'f', base});
    i = skip_balanced(expr, i, "(", ")");
  } else {
    chain.steps.push_back({'b', base});
  }
  while (i < expr.size()) {
    if (tok_is(expr[i], ".") || tok_is(expr[i], "->")) {
      ++i;
      if (i >= expr.size() || expr[i].kind != Tok::Identifier) return bail();
      const std::string name = expr[i++].text;
      if (i < expr.size() && tok_is(expr[i], "<")) {
        // template member: skip the argument list, then expect a call
        std::size_t j = skip_balanced(expr, i, "<", ">");
        if (j >= expr.size() || !tok_is(expr[j], "(")) return bail();
        i = j;
      }
      if (i < expr.size() && tok_is(expr[i], "(")) {
        chain.steps.push_back({'c', name});
        i = skip_balanced(expr, i, "(", ")");
      } else {
        chain.steps.push_back({'m', name});
      }
    } else if (tok_is(expr[i], "[")) {
      chain.steps.push_back({'i', ""});
      i = skip_balanced(expr, i, "[", "]");
    } else {
      return bail();
    }
  }
  return chain;
}

void collect_range_fors(const FileContext& ctx, FileSummary& out) {
  const std::vector<Token>& toks = ctx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Identifier || toks[i].text != "for") continue;
    if (!tok_is(toks[i + 1], "(")) continue;
    const std::size_t end = skip_balanced(toks, i + 1, "(", ")");
    // Find the range-for ':' at paren depth 1; a ';' at depth 1 means a
    // classic for statement.
    std::size_t colon = 0;
    int depth = 0;
    bool classic = false;
    for (std::size_t j = i + 1; j < end; ++j) {
      if (toks[j].kind != Tok::Punct) continue;
      if (toks[j].text == "(" || toks[j].text == "[" ||
          toks[j].text == "{") {
        ++depth;
      } else if (toks[j].text == ")" || toks[j].text == "]" ||
                 toks[j].text == "}") {
        --depth;
      } else if (depth == 1 && toks[j].text == ";") {
        classic = true;
        break;
      } else if (depth == 1 && toks[j].text == ":" && colon == 0) {
        colon = j;
      }
    }
    if (classic || colon == 0 || end == toks.size()) continue;
    std::vector<Token> expr(toks.begin() + static_cast<std::ptrdiff_t>(colon) + 1,
                            toks.begin() + static_cast<std::ptrdiff_t>(end) - 1);
    RangeForChain chain = parse_chain(expr, toks[i].line);
    chain.allowed = ctx.line_allowed(toks[i].line, "range-for-temporary");
    out.range_fors.push_back(std::move(chain));
  }
}

void collect_declared_and_rets(const FileContext& ctx, FileSummary& out) {
  const std::vector<Token>& toks = ctx.tokens;
  const std::set<std::string>& kw = keyword_set();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::Directive && t.text == "#define") {
      if (i + 1 < toks.size() && toks[i + 1].kind == Tok::Identifier) {
        out.declared.insert(toks[i + 1].text);
      }
      continue;
    }
    if (t.kind != Tok::Identifier) continue;
    if (t.text == "class" || t.text == "struct" || t.text == "enum" ||
        t.text == "union") {
      std::size_t j = i + 1;
      if (j < toks.size() && (tok_is(toks[j], "class") ||
                              tok_is(toks[j], "struct"))) {
        ++j;  // enum class
      }
      while (j + 1 < toks.size() && tok_is(toks[j], "[") &&
             tok_is(toks[j + 1], "[")) {
        // skip [[attributes]]
        j = skip_balanced(toks, j, "[", "]");
        if (j < toks.size() && tok_is(toks[j], "]")) ++j;
      }
      if (j < toks.size() && toks[j].kind == Tok::Identifier &&
          !kw.count(toks[j].text)) {
        out.declared.insert(toks[j].text);
      }
      // Enumerators: names directly after '{' or ',' inside an enum body.
      if (t.text == "enum") {
        while (j < toks.size() && !tok_is(toks[j], "{") &&
               !tok_is(toks[j], ";")) {
          ++j;
        }
        if (j < toks.size() && tok_is(toks[j], "{")) {
          bool expect_name = true;
          int depth = 0;
          for (; j < toks.size(); ++j) {
            if (tok_is(toks[j], "{")) ++depth;
            if (tok_is(toks[j], "}") && --depth == 0) break;
            if (toks[j].kind == Tok::Identifier && expect_name &&
                depth == 1 && !kw.count(toks[j].text)) {
              out.declared.insert(toks[j].text);
              expect_name = false;
            }
            if (depth == 1 && tok_is(toks[j], ",")) expect_name = true;
          }
        }
      }
      continue;
    }
    if (t.text == "using" && i + 2 < toks.size() &&
        toks[i + 1].kind == Tok::Identifier && tok_is(toks[i + 2], "=")) {
      out.declared.insert(toks[i + 1].text);
      continue;
    }
    // Using-declaration `using a::b::Name;` re-exports Name from this
    // header (`using namespace` re-exports nothing nameable).
    if (t.text == "using" && i + 1 < toks.size() &&
        toks[i + 1].kind == Tok::Identifier &&
        toks[i + 1].text != "namespace") {
      std::size_t j = i + 1;
      std::size_t last_ident = j;
      while (j + 2 < toks.size() && tok_is(toks[j + 1], "::") &&
             toks[j + 2].kind == Tok::Identifier) {
        last_ident = j + 2;
        j += 2;
      }
      if (last_ident != i + 1 && j + 1 < toks.size() &&
          tok_is(toks[j + 1], ";")) {
        out.declared.insert(toks[last_ident].text);
      }
      continue;
    }
    if (t.text == "typedef") {
      std::size_t j = i + 1;
      std::size_t last_ident = 0;
      for (; j < toks.size() && !tok_is(toks[j], ";"); ++j) {
        if (toks[j].kind == Tok::Identifier) last_ident = j;
      }
      if (last_ident != 0) out.declared.insert(toks[last_ident].text);
      continue;
    }
    // Function / variable declaration: `<type-ish> name (` or
    // `<type-ish> name =`. Calls are excluded because their name is
    // preceded by punctuation or a statement keyword, not a type token.
    if (kw.count(t.text)) continue;
    if (i == 0 || i + 1 >= toks.size()) continue;
    const bool opens_call = tok_is(toks[i + 1], "(");
    const bool assigns = tok_is(toks[i + 1], "=");
    if (!opens_call && !assigns) continue;
    const Token& prev = toks[i - 1];
    const bool type_prev =
        (prev.kind == Tok::Identifier &&
         (!kw.count(prev.text) || is_type_keyword(prev.text))) ||
        (prev.kind == Tok::Punct &&
         (prev.text == ">" || prev.text == "&" || prev.text == "*" ||
          prev.text == "&&"));
    if (!type_prev) continue;
    out.declared.insert(t.text);
    if (!opens_call) continue;
    // Return-kind for the range-for-temporary rule: any '&' in the token
    // run that spells the return type means the callable yields a
    // reference.
    bool ref = false;
    for (std::size_t k = i; k-- > 0;) {
      const Token& b = toks[k];
      const bool type_token =
          (b.kind == Tok::Identifier &&
           (!kw.count(b.text) || is_type_keyword(b.text) ||
            b.text == "const" || b.text == "constexpr" ||
            b.text == "inline" || b.text == "static" ||
            b.text == "virtual" || b.text == "typename" ||
            b.text == "mutable" || b.text == "explicit")) ||
          (b.kind == Tok::Punct &&
           (b.text == "::" || b.text == "<" || b.text == ">" ||
            b.text == "&" || b.text == "*" || b.text == "&&" ||
            b.text == ","));
      if (!type_token) break;
      if (b.text == "&" || b.text == "&&") ref = true;
    }
    out.ret_kinds[t.text] |= ref ? kRetRef : kRetValue;
  }
}

void collect_metric_sites(const FileContext& ctx, FileSummary& out) {
  const std::vector<Token>& toks = ctx.tokens;
  static const std::set<std::string> kMacros = {
      "HCSCHED_METRIC_COUNT", "HCSCHED_METRIC_GAUGE_SET",
      "HCSCHED_METRIC_OBSERVE"};
  static const std::set<std::string> kAccessors = {"counter", "gauge",
                                                   "histogram"};
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Identifier) continue;
    bool site = false;
    if (kMacros.count(toks[i].text)) {
      site = true;
    } else if (kAccessors.count(toks[i].text) && i >= 2 &&
               tok_is(toks[i - 1], "::") &&
               toks[i - 2].kind == Tok::Identifier &&
               toks[i - 2].text == "metrics") {
      site = true;
    }
    if (!site || !tok_is(toks[i + 1], "(")) continue;
    if (toks[i + 2].kind != Tok::String) continue;  // non-literal name
    const std::string name = literal_value(toks[i + 2].text);
    if (name.empty()) continue;
    out.metric_sites.push_back(MetricSite{
        name, toks[i].line,
        ctx.line_allowed(toks[i].line, "metric-docs")});
  }
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

FileSummary analyze_file(const std::string& relative,
                         const std::string& content) {
  FileSummary out;
  out.relative = relative;
  out.hash = fnv1a64(content);

  FileContext ctx;
  std::vector<Token> all = lex(content);
  ctx.code_lines = split_lines(content);
  for (Token& t : all) {
    if (t.kind == Tok::Comment) {
      extract_allows(t, ctx, out);
      blank_span(ctx.code_lines, t, /*keep_delims=*/false);
      ctx.comments.push_back(std::move(t));
    } else {
      if (t.kind == Tok::String || t.kind == Tok::Char) {
        ctx.strings_by_line[t.line].push_back(literal_value(t.text));
        blank_span(ctx.code_lines, t, /*keep_delims=*/true);
      }
      ctx.tokens.push_back(std::move(t));
    }
  }

  // Includes (with the allow escapes active on their line).
  for (std::size_t i = 0; i + 1 < ctx.tokens.size(); ++i) {
    if (ctx.tokens[i].kind != Tok::Directive ||
        ctx.tokens[i].text != "#include") {
      continue;
    }
    if (ctx.tokens[i + 1].kind != Tok::HeaderName) continue;
    const std::string& raw = ctx.tokens[i + 1].text;
    if (raw.size() < 2) continue;
    IncludeInfo inc;
    inc.angle = raw.front() == '<';
    inc.path = raw.substr(1, raw.size() - 2);
    inc.line = ctx.tokens[i].line;
    for (std::size_t ln : {inc.line, inc.line > 1 ? inc.line - 1 : inc.line}) {
      auto it = ctx.line_allows.find(ln);
      if (it != ctx.line_allows.end()) {
        inc.allows.insert(it->second.begin(), it->second.end());
      }
    }
    out.includes.push_back(std::move(inc));
  }

  for (const Token& t : ctx.tokens) {
    if (t.kind == Tok::Identifier) out.idents.insert(t.text);
  }

  collect_declared_and_rets(ctx, out);
  collect_metric_sites(ctx, out);
  collect_range_fors(ctx, out);
  index_symbols(relative, ctx, out);

  // Full-text word set, kept only where a cross-file rule consumes it
  // (the fastpath-differential "any mention counts" contract).
  const std::size_t slash = relative.rfind('/');
  const std::string fname =
      slash == std::string::npos ? relative : relative.substr(slash + 1);
  if (relative.rfind("tests/", 0) == 0 &&
      fname.rfind("test_fastpath", 0) == 0) {
    out.mentions = out.idents;
    for (const Token& c : ctx.comments) add_words(c.text, out.mentions);
    for (const Token& t : ctx.tokens) {
      if (t.kind == Tok::String || t.kind == Tok::HeaderName) {
        add_words(t.text, out.mentions);
      }
    }
  }

  run_local_rules(relative, ctx, out);
  return out;
}

}  // namespace analyze
