// fastpath_fuzz — deterministic seed-sweep runner for the fast-path
// differential harness.
//
// Replays run_differential_case (the exact checks the unit suite in
// tests/test_fastpath_differential.cpp pins) over a contiguous seed range,
// deriving every case knob — size, consistency class, tie policy, subset
// shape — from the seed itself. The heuristic under test is a row of the
// fastpath dispatch table (fastpath.hpp kernel_table()): the sweep
// enumerates EVERY table row under every tie policy, plus subset cases and
// whole-minimizer iterative cases, so registering a new kernel widens the
// fuzz matrix without touching this file. CI runs a bounded smoke sweep on
// every push (ctest: fastpath_fuzz_smoke) and a wide sweep nightly by
// raising HCSCHED_FUZZ_SEEDS; a divergence prints a one-line repro that
// plugs straight back into the unit suite.
//
// Usage: fastpath_fuzz [--seeds N] [--base B] [--verbose]
//   --seeds N   number of seeds to sweep (default 256; cases per seed =
//               3 x kernel_table().size() + 4)
//   --base B    first seed of the range (default 1)
//   --verbose   print every case, not just failures
// Environment (flags win): HCSCHED_FUZZ_SEEDS, HCSCHED_FUZZ_SEED_BASE.
// Exit code: 0 when every case is equivalent, 1 on divergence, 2 on usage.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "etc/consistency.hpp"
#include "heuristics/fastpath/differential.hpp"
#include "rng/rng.hpp"
#include "rng/tie_break.hpp"

namespace {

namespace fastpath = hcsched::heuristics::fastpath;

/// Case variations per seed: every dispatch-table kernel under every tie
/// policy on the full problem, plus a deterministic and a random subset
/// case and a deterministic and a random iterative (whole-minimizer) case,
/// each on a table-derived kernel.
std::size_t cases_per_seed() {
  return 3 * fastpath::kernel_table().size() + 4;
}

fastpath::DifferentialCase derive_case(std::uint64_t seed,
                                       std::size_t variation) {
  // Size/shape knobs come from a generator seeded by the sweep seed, so the
  // sweep covers a spread of dimensions and CVB heterogeneity no fixed grid
  // would; the case seed stays equal to the sweep seed for repro lines.
  hcsched::rng::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const auto table = fastpath::kernel_table();
  fastpath::DifferentialCase c;
  c.seed = seed;
  c.tasks = 4 + static_cast<std::size_t>(rng.below(93));    // 4..96
  c.machines = 2 + static_cast<std::size_t>(rng.below(15)); // 2..16
  constexpr hcsched::etc::Consistency kClasses[] = {
      hcsched::etc::Consistency::kConsistent,
      hcsched::etc::Consistency::kSemiConsistent,
      hcsched::etc::Consistency::kInconsistent,
  };
  c.consistency = kClasses[rng.below(3)];
  // Every fourth seed drops the mean so integer-heavy matrices manufacture
  // epsilon ties; the rest stay in the well-separated regime.
  if (seed % 4 == 0) {
    c.mean_task_time = 3.0;
    c.v_task = 0.3;
    c.v_machine = 0.3;
  }
  const std::size_t full_grid = 3 * table.size();
  if (variation < full_grid) {
    c.kernel = table[variation / 3].kernel;
    c.policy = static_cast<hcsched::rng::TiePolicy>(variation % 3);
    return c;
  }
  // Subset and iterative variations pick their kernel from the seed stream
  // so the whole table is exercised across a sweep.
  c.kernel = table[rng.below(table.size())].kernel;
  switch (variation - full_grid) {
    case 0:
      c.subset = true;
      break;
    case 1:
      c.subset = true;
      c.policy = hcsched::rng::TiePolicy::kRandom;
      break;
    case 2:
      c.iterative = true;
      break;
    default:
      c.iterative = true;
      c.policy = hcsched::rng::TiePolicy::kRandom;
      break;
  }
  if (c.iterative) {
    // A whole-minimizer case runs up to `machines` full mappings per path;
    // bound the shape so the sweep rate stays dominated by mapping cases.
    c.tasks = 8 + c.tasks % 41;   // 8..48
    c.machines = 2 + c.machines % 9;  // 2..10
  }
  return c;
}

std::uint64_t env_or(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = env_or("HCSCHED_FUZZ_SEEDS", 256);
  std::uint64_t base = env_or("HCSCHED_FUZZ_SEED_BASE", 1);
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--base" && i + 1 < argc) {
      base = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::cerr << "usage: fastpath_fuzz [--seeds N] [--base B] [--verbose]\n";
      return 2;
    }
  }

  std::size_t cases = 0;
  std::size_t divergences = 0;
  for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
    for (std::size_t variation = 0; variation < cases_per_seed();
         ++variation) {
      const fastpath::DifferentialCase c = derive_case(seed, variation);
      const fastpath::DifferentialOutcome outcome =
          fastpath::run_differential_case(c);
      ++cases;
      if (!outcome.equivalent) {
        ++divergences;
        std::cout << "DIVERGENCE " << fastpath::describe(c) << ": "
                  << outcome.divergence << "\n";
      } else if (verbose) {
        std::cout << "ok " << fastpath::describe(c) << "\n";
      }
    }
  }
  std::cout << "fastpath_fuzz: " << cases << " cases over " << seeds
            << " seeds [" << base << ", " << (base + seeds) << "), "
            << divergences << " divergence"
            << (divergences == 1 ? "" : "s") << "\n";
  return divergences == 0 ? 0 : 1;
}
