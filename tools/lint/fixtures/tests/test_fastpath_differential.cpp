// Fixture differential suite: names covered_kernel so the
// fastpath-differential rule treats that file as tested.
//
// covers: covered_kernel.cpp
int main() { return 0; }
