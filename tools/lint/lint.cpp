// hcsched_lint — compatibility shim over hcsched_analyze.
//
// The regex scanner this file used to contain is gone: all nine of its
// rules now run on the token-aware engine in tools/analyze (plus the
// include-graph and lifetime/narrowing rules that engine adds). This shim
// keeps the old entry point and flags alive for scripts and muscle memory:
//
//   hcsched_lint --root <dir> [--verbose]
//
// runs the full analyzer in text mode with the same exit codes as before
// (0 clean, 1 violations, 2 usage errors). Prefer invoking hcsched_analyze
// directly for the new surface (--format sarif, --baseline, --cache, ...).
#include <iostream>
#include <string_view>

#include "analyze/engine.hpp"

int main(int argc, char** argv) {
  analyze::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      std::cerr << "usage: hcsched_lint --root <dir> [--verbose]\n";
      return 2;
    }
  }
  if (opts.root.empty()) {
    std::cerr << "hcsched_lint: --root is required\n";
    return 2;
  }
  return analyze::run(opts);
}
