// hcsched_lint — repo-convention linter (dependency-free, ctest-registered).
//
// Enforces project invariants the compiler cannot see:
//
//   heuristic-registry  every heuristic header directly under
//                       src/heuristics/ is included by
//                       src/heuristics/registry.cpp, so new heuristics
//                       cannot silently miss name-based lookup
//                       (heuristic.hpp and registry.hpp are the framework
//                       itself and exempt; subdirectories such as
//                       src/heuristics/fastpath/ hold support kernels, not
//                       registrable heuristics, and are out of scope).
//   fastpath-differential
//                       every source file under src/heuristics/fastpath/ is
//                       named in a tests/test_fastpath*.cpp differential
//                       suite, so a new kernel file cannot land without
//                       reference-equivalence coverage.
//   trace-guard         raw observability calls (obs::counters::add,
//                       obs::Tracer::emit, histogram feeds) outside src/obs/
//                       sit inside an #if HCSCHED_TRACE region or use the
//                       self-guarding HCSCHED_COUNT/HCSCHED_TRACE_EVENT
//                       macros, preserving the -DHCSCHED_TRACE=0 kill switch.
//   test-registration   every tests/test_*.cpp is listed in
//                       tests/CMakeLists.txt (an unlisted test silently
//                       never runs).
//   include-hygiene     no `#include "src/...)` and no `#include "../...`
//                       anywhere — all project includes are relative to
//                       src/ (the exported include root).
//
// A file may opt out of one rule with a comment anywhere in the file:
//     // hcsched-lint: allow(<rule-id>)
//
// Usage: hcsched_lint --root <repo-or-fixture-root> [--verbose]
// Exit code: 0 when clean, 1 on violations, 2 on usage/IO errors.
//
// Directories named "build*", ".git", or "fixtures" are skipped, so the
// linter's own test fixtures never count against the real tree.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;   // path relative to the scanned root
  std::size_t line;   // 1-based; 0 = whole-file finding
  std::string rule;
  std::string message;
};

struct SourceFile {
  fs::path path;              // absolute
  std::string relative;       // relative to root, '/'-separated
  std::vector<std::string> lines;
};

std::string to_relative(const fs::path& path, const fs::path& root) {
  std::string rel = path.lexically_relative(root).generic_string();
  return rel.empty() ? path.generic_string() : rel;
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == ".git" || name == "fixtures" || name.rfind("build", 0) == 0;
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

/// All *.hpp / *.cpp files under root (skipping excluded dirs), sorted by
/// relative path so output and exit behavior are deterministic.
std::vector<SourceFile> collect_sources(const fs::path& root) {
  std::vector<SourceFile> files;
  if (!fs::exists(root)) return files;
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory()) {
      if (skip_directory(it->path())) it.disable_recursion_pending();
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    files.push_back(SourceFile{it->path(), to_relative(it->path(), root),
                               read_lines(it->path())});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.relative < b.relative;
            });
  return files;
}

bool file_allows(const SourceFile& file, std::string_view rule) {
  const std::string needle = "hcsched-lint: allow(" + std::string(rule) + ")";
  for (const std::string& line : file.lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string_view trim_left(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// ------------------------------------------------------------------- rules

void check_heuristic_registry(const std::vector<SourceFile>& files,
                              std::vector<Violation>& out) {
  const SourceFile* registry = nullptr;
  for (const SourceFile& f : files) {
    if (f.relative == "src/heuristics/registry.cpp") registry = &f;
  }
  if (registry == nullptr) return;  // tree has no registry to check against
  std::string registry_text;
  for (const std::string& line : registry->lines) {
    registry_text += line;
    registry_text += '\n';
  }
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "src/heuristics/") ||
        f.path.extension() != ".hpp") {
      continue;
    }
    // Only headers directly in src/heuristics/ declare registrable
    // heuristics; subdirectories (e.g. fastpath/) are support code covered
    // by their own rules.
    const std::string_view below_heuristics =
        std::string_view(f.relative).substr(sizeof("src/heuristics/") - 1);
    if (below_heuristics.find('/') != std::string_view::npos) continue;
    const std::string stem = f.path.stem().string();
    if (stem == "heuristic" || stem == "registry") continue;  // framework
    if (file_allows(f, "heuristic-registry")) continue;
    const std::string include = "#include \"heuristics/" + stem + ".hpp\"";
    if (registry_text.find(include) == std::string::npos) {
      out.push_back(Violation{
          f.relative, 0, "heuristic-registry",
          "header is not included by src/heuristics/registry.cpp; register "
          "the heuristic (or mark the file '// hcsched-lint: "
          "allow(heuristic-registry)' if it is a wrapper)"});
    }
  }
}

void check_fastpath_differential(const std::vector<SourceFile>& files,
                                 std::vector<Violation>& out) {
  // Concatenated text of every differential suite. A kernel file counts as
  // covered when any tests/test_fastpath*.cpp names its stem (idiomatically
  // in a leading "// covers: ..." comment, but any mention qualifies).
  std::string suites_text;
  for (const SourceFile& f : files) {
    const std::string name = f.path.filename().string();
    if (starts_with(f.relative, "tests/") &&
        name.rfind("test_fastpath", 0) == 0 && f.path.extension() == ".cpp") {
      for (const std::string& line : f.lines) {
        suites_text += line;
        suites_text += '\n';
      }
    }
  }
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "src/heuristics/fastpath/")) continue;
    if (file_allows(f, "fastpath-differential")) continue;
    const std::string stem = f.path.stem().string();
    if (suites_text.find(stem) == std::string::npos) {
      out.push_back(Violation{
          f.relative, 0, "fastpath-differential",
          "kernel file is not named by any tests/test_fastpath*.cpp "
          "differential suite; add coverage (or mark the file "
          "'// hcsched-lint: allow(fastpath-differential)' if it is not a "
          "kernel)"});
    }
  }
}

void check_trace_guard(const std::vector<SourceFile>& files,
                       std::vector<Violation>& out) {
  // Raw observability entry points that -DHCSCHED_TRACE=0 must compile out.
  constexpr std::string_view kRawCalls[] = {
      "obs::counters::add(",      "counters::add(",
      "obs::Tracer::emit(",       "Tracer::emit(",
      "record_heuristic_call(",   "record_queue_depth(",
      "pool_wait_histogram(",     "pool_run_histogram(",
  };
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "src/")) continue;
    if (starts_with(f.relative, "src/obs/")) continue;  // the implementation
    if (file_allows(f, "trace-guard")) continue;
    // Track preprocessor conditional nesting; a line is guarded when any
    // enclosing conditional mentions HCSCHED_TRACE.
    std::vector<bool> guard_stack;
    std::size_t guarded_depth = 0;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string_view line = trim_left(f.lines[i]);
      if (starts_with(line, "#if")) {  // #if / #ifdef / #ifndef
        const bool guards = line.find("HCSCHED_TRACE") != std::string::npos;
        guard_stack.push_back(guards);
        if (guards) ++guarded_depth;
        continue;
      }
      if (starts_with(line, "#endif")) {
        if (!guard_stack.empty()) {
          if (guard_stack.back()) --guarded_depth;
          guard_stack.pop_back();
        }
        continue;
      }
      if (starts_with(line, "//")) continue;  // comment-only line
      if (guarded_depth > 0) continue;
      for (const std::string_view call : kRawCalls) {
        if (f.lines[i].find(call) != std::string::npos) {
          out.push_back(Violation{
              f.relative, i + 1, "trace-guard",
              "raw call '" + std::string(call) +
                  "...' outside an #if HCSCHED_TRACE region; use "
                  "HCSCHED_COUNT/HCSCHED_TRACE_EVENT or guard the block"});
          break;
        }
      }
    }
  }
}

void check_test_registration(const fs::path& root,
                             const std::vector<SourceFile>& files,
                             std::vector<Violation>& out) {
  const fs::path cmake_lists = root / "tests" / "CMakeLists.txt";
  if (!fs::exists(cmake_lists)) return;
  std::string cmake_text;
  {
    std::ifstream in(cmake_lists);
    std::stringstream buffer;
    buffer << in.rdbuf();
    cmake_text = buffer.str();
  }
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "tests/")) continue;
    const std::string name = f.path.filename().string();
    if (name.rfind("test_", 0) != 0 || f.path.extension() != ".cpp") continue;
    if (file_allows(f, "test-registration")) continue;
    if (cmake_text.find(name) == std::string::npos) {
      out.push_back(Violation{
          f.relative, 0, "test-registration",
          "test file is not listed in tests/CMakeLists.txt and will never "
          "run"});
    }
  }
}

void check_include_hygiene(const std::vector<SourceFile>& files,
                           std::vector<Violation>& out) {
  for (const SourceFile& f : files) {
    if (file_allows(f, "include-hygiene")) continue;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string_view line = trim_left(f.lines[i]);
      if (!starts_with(line, "#include")) continue;
      if (line.find("#include \"src/") != std::string_view::npos) {
        out.push_back(Violation{
            f.relative, i + 1, "include-hygiene",
            "include paths are relative to src/ — drop the 'src/' prefix"});
      } else if (line.find("#include \"../") != std::string_view::npos) {
        out.push_back(Violation{
            f.relative, i + 1, "include-hygiene",
            "parent-relative include; use a src/-relative path instead"});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::cerr << "usage: hcsched_lint --root <dir> [--verbose]\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "hcsched_lint: --root is required\n";
    return 2;
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "hcsched_lint: cannot open root: " << ec.message() << "\n";
    return 2;
  }

  const std::vector<SourceFile> files = collect_sources(root);
  if (verbose) {
    std::cout << "hcsched_lint: scanning " << files.size()
              << " source files under " << root.generic_string() << "\n";
  }

  std::vector<Violation> violations;
  check_heuristic_registry(files, violations);
  check_fastpath_differential(files, violations);
  check_trace_guard(files, violations);
  check_test_registration(root, files, violations);
  check_include_hygiene(files, violations);

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  for (const Violation& v : violations) {
    std::cout << v.file;
    if (v.line != 0) std::cout << ':' << v.line;
    std::cout << ": [" << v.rule << "] " << v.message << "\n";
  }
  if (violations.empty()) {
    if (verbose) std::cout << "hcsched_lint: clean\n";
    return 0;
  }
  std::cout << "hcsched_lint: " << violations.size() << " violation"
            << (violations.size() == 1 ? "" : "s") << "\n";
  return 1;
}
