// hcsched_lint — repo-convention linter (dependency-free, ctest-registered).
//
// Enforces project invariants the compiler cannot see:
//
//   heuristic-registry  every heuristic header directly under
//                       src/heuristics/ is included by
//                       src/heuristics/registry.cpp, so new heuristics
//                       cannot silently miss name-based lookup
//                       (heuristic.hpp and registry.hpp are the framework
//                       itself and exempt; subdirectories such as
//                       src/heuristics/fastpath/ hold support kernels, not
//                       registrable heuristics, and are out of scope).
//   fastpath-differential
//                       every source file under src/heuristics/fastpath/ is
//                       named in a tests/test_fastpath*.cpp differential
//                       suite, so a new kernel file cannot land without
//                       reference-equivalence coverage.
//   trace-guard         raw observability calls (obs::counters::add,
//                       obs::Tracer::emit, histogram feeds, obs::ScopedSpan
//                       construction, metrics registry accessors) outside
//                       src/obs/ sit inside an #if HCSCHED_TRACE region or
//                       use the self-guarding HCSCHED_COUNT /
//                       HCSCHED_TRACE_EVENT / HCSCHED_SPAN /
//                       HCSCHED_METRIC_* macros, preserving the
//                       -DHCSCHED_TRACE=0 kill switch.
//   test-registration   every tests/test_*.cpp is listed in
//                       tests/CMakeLists.txt (an unlisted test silently
//                       never runs).
//   include-hygiene     no `#include "src/...)` and no `#include "../...`
//                       anywhere — all project includes are relative to
//                       src/ (the exported include root). Applies at every
//                       nesting depth (src/sim/fault/, fastpath/, ...).
//   explicit-memory-order
//                       every std::atomic operation in src/ names a
//                       std::memory_order argument — the default seq_cst
//                       either hides a missing ordering decision or buys
//                       fences nobody reasoned about (docs/STATIC_ANALYSIS.md
//                       records the per-site justifications).
//   no-nondeterminism-in-core
//                       the deterministic layers (src/core/, src/heuristics/,
//                       src/etc/, src/ga/) must not reach for ambient
//                       entropy or iteration-order-unstable containers:
//                       rand()/srand()/std::time(), std::random_device,
//                       std::chrono::system_clock, std::unordered_map/set
//                       are banned there. Seeded randomness goes through
//                       core/rng.hpp; wall-clock stays in the sim/CLI layer.
//   lock-annotation-coverage
//                       every mutex member in src/ (std::mutex or
//                       core::Mutex) has at least one field annotated
//                       GUARDED_BY/PT_GUARDED_BY with that mutex's name —
//                       an unused capability is either dead weight or an
//                       unannotated invariant.
//   metric-docs         every metric name registered from src/ with a
//                       string literal (metrics::counter/gauge/histogram or
//                       an HCSCHED_METRIC_* macro) appears in
//                       docs/OBSERVABILITY.md — an undocumented metric is
//                       invisible to whoever reads the stats surface.
//
// A file may opt out of one rule with a comment anywhere in the file:
//     // hcsched-lint: allow(<rule-id>)
// The src/-wide rules above additionally accept a line-level escape on
// the flagged line or the line directly above it:
//     // lint:allow(memory-order | nondeterminism | lock-annotation |
//                   metric-docs)
//
// Usage: hcsched_lint --root <repo-or-fixture-root> [--verbose]
// Exit code: 0 when clean, 1 on violations, 2 on usage/IO errors.
//
// Directories named "build*", ".git", or "fixtures" are skipped, so the
// linter's own test fixtures never count against the real tree.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;   // path relative to the scanned root
  std::size_t line;   // 1-based; 0 = whole-file finding
  std::string rule;
  std::string message;
};

struct SourceFile {
  fs::path path;              // absolute
  std::string relative;       // relative to root, '/'-separated
  std::vector<std::string> lines;
};

std::string to_relative(const fs::path& path, const fs::path& root) {
  std::string rel = path.lexically_relative(root).generic_string();
  return rel.empty() ? path.generic_string() : rel;
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == ".git" || name == "fixtures" || name.rfind("build", 0) == 0;
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

/// All *.hpp / *.cpp files under root (skipping excluded dirs), sorted by
/// relative path so output and exit behavior are deterministic.
std::vector<SourceFile> collect_sources(const fs::path& root) {
  std::vector<SourceFile> files;
  if (!fs::exists(root)) return files;
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory()) {
      if (skip_directory(it->path())) it.disable_recursion_pending();
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    files.push_back(SourceFile{it->path(), to_relative(it->path(), root),
                               read_lines(it->path())});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.relative < b.relative;
            });
  return files;
}

bool file_allows(const SourceFile& file, std::string_view rule) {
  const std::string needle = "hcsched-lint: allow(" + std::string(rule) + ")";
  for (const std::string& line : file.lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

/// Line-level escape: `// lint:allow(<token>)` on the flagged line or the
/// line directly above it. Narrower than the file-level hcsched-lint escape
/// so one audited call site cannot silence the rule for the whole file.
bool line_allows(const SourceFile& file, std::size_t index,
                 std::string_view token) {
  const std::string needle = "lint:allow(" + std::string(token) + ")";
  if (file.lines[index].find(needle) != std::string::npos) return true;
  return index > 0 &&
         file.lines[index - 1].find(needle) != std::string::npos;
}

std::string_view trim_left(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_identifier_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Where `relative` sits with respect to directory `dir`. Shared by the
/// heuristic-registry and include-hygiene rules so both make the same call
/// about what counts as "inside a nested subdirectory".
struct SubdirSplit {
  bool inside = false;        // relative starts with dir
  std::string_view below;     // remainder after dir (may contain '/')
  bool nested = false;        // remainder has another directory level
};

SubdirSplit split_below(std::string_view relative, std::string_view dir) {
  SubdirSplit split;
  if (!starts_with(relative, dir)) return split;
  split.inside = true;
  split.below = relative.substr(dir.size());
  split.nested = split.below.find('/') != std::string_view::npos;
  return split;
}

// ------------------------------------------------------------------- rules

void check_heuristic_registry(const std::vector<SourceFile>& files,
                              std::vector<Violation>& out) {
  const SourceFile* registry = nullptr;
  for (const SourceFile& f : files) {
    if (f.relative == "src/heuristics/registry.cpp") registry = &f;
  }
  if (registry == nullptr) return;  // tree has no registry to check against
  std::string registry_text;
  for (const std::string& line : registry->lines) {
    registry_text += line;
    registry_text += '\n';
  }
  for (const SourceFile& f : files) {
    const SubdirSplit split = split_below(f.relative, "src/heuristics/");
    if (!split.inside || f.path.extension() != ".hpp") continue;
    // Only headers directly in src/heuristics/ declare registrable
    // heuristics; nested subdirectories (e.g. fastpath/) are support code
    // covered by the fastpath-differential rule — include-hygiene, by
    // contrast, deliberately descends into them (same split_below helper,
    // opposite branch).
    if (split.nested) continue;
    const std::string stem = f.path.stem().string();
    if (stem == "heuristic" || stem == "registry") continue;  // framework
    if (file_allows(f, "heuristic-registry")) continue;
    const std::string include = "#include \"heuristics/" + stem + ".hpp\"";
    if (registry_text.find(include) == std::string::npos) {
      out.push_back(Violation{
          f.relative, 0, "heuristic-registry",
          "header is not included by src/heuristics/registry.cpp; register "
          "the heuristic (or mark the file '// hcsched-lint: "
          "allow(heuristic-registry)' if it is a wrapper)"});
    }
  }
}

void check_fastpath_differential(const std::vector<SourceFile>& files,
                                 std::vector<Violation>& out) {
  // Concatenated text of every differential suite. A kernel file counts as
  // covered when any tests/test_fastpath*.cpp names its stem (idiomatically
  // in a leading "// covers: ..." comment, but any mention qualifies).
  std::string suites_text;
  for (const SourceFile& f : files) {
    const std::string name = f.path.filename().string();
    if (starts_with(f.relative, "tests/") &&
        name.rfind("test_fastpath", 0) == 0 && f.path.extension() == ".cpp") {
      for (const std::string& line : f.lines) {
        suites_text += line;
        suites_text += '\n';
      }
    }
  }
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "src/heuristics/fastpath/")) continue;
    if (file_allows(f, "fastpath-differential")) continue;
    const std::string stem = f.path.stem().string();
    if (suites_text.find(stem) == std::string::npos) {
      out.push_back(Violation{
          f.relative, 0, "fastpath-differential",
          "kernel file is not named by any tests/test_fastpath*.cpp "
          "differential suite; add coverage (or mark the file "
          "'// hcsched-lint: allow(fastpath-differential)' if it is not a "
          "kernel)"});
    }
  }
}

void check_trace_guard(const std::vector<SourceFile>& files,
                       std::vector<Violation>& out) {
  // Raw observability entry points that -DHCSCHED_TRACE=0 must compile out.
  constexpr std::string_view kRawCalls[] = {
      "obs::counters::add(",      "counters::add(",
      "obs::Tracer::emit(",       "Tracer::emit(",
      "record_heuristic_call(",   "record_queue_depth(",
      "pool_wait_histogram(",     "pool_run_histogram(",
      "obs::ScopedSpan",          "metrics::counter(",
      "metrics::gauge(",          "metrics::histogram(",
  };
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "src/")) continue;
    if (starts_with(f.relative, "src/obs/")) continue;  // the implementation
    if (file_allows(f, "trace-guard")) continue;
    // Track preprocessor conditional nesting; a line is guarded when any
    // enclosing conditional mentions HCSCHED_TRACE.
    std::vector<bool> guard_stack;
    std::size_t guarded_depth = 0;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string_view line = trim_left(f.lines[i]);
      if (starts_with(line, "#if")) {  // #if / #ifdef / #ifndef
        const bool guards = line.find("HCSCHED_TRACE") != std::string::npos;
        guard_stack.push_back(guards);
        if (guards) ++guarded_depth;
        continue;
      }
      if (starts_with(line, "#endif")) {
        if (!guard_stack.empty()) {
          if (guard_stack.back()) --guarded_depth;
          guard_stack.pop_back();
        }
        continue;
      }
      if (starts_with(line, "//")) continue;  // comment-only line
      if (guarded_depth > 0) continue;
      for (const std::string_view call : kRawCalls) {
        if (f.lines[i].find(call) != std::string::npos) {
          out.push_back(Violation{
              f.relative, i + 1, "trace-guard",
              "raw call '" + std::string(call) +
                  "...' outside an #if HCSCHED_TRACE region; use "
                  "HCSCHED_COUNT/HCSCHED_TRACE_EVENT or guard the block"});
          break;
        }
      }
    }
  }
}

void check_test_registration(const fs::path& root,
                             const std::vector<SourceFile>& files,
                             std::vector<Violation>& out) {
  const fs::path cmake_lists = root / "tests" / "CMakeLists.txt";
  if (!fs::exists(cmake_lists)) return;
  std::string cmake_text;
  {
    std::ifstream in(cmake_lists);
    std::stringstream buffer;
    buffer << in.rdbuf();
    cmake_text = buffer.str();
  }
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "tests/")) continue;
    const std::string name = f.path.filename().string();
    if (name.rfind("test_", 0) != 0 || f.path.extension() != ".cpp") continue;
    if (file_allows(f, "test-registration")) continue;
    if (cmake_text.find(name) == std::string::npos) {
      out.push_back(Violation{
          f.relative, 0, "test-registration",
          "test file is not listed in tests/CMakeLists.txt and will never "
          "run"});
    }
  }
}

void check_include_hygiene(const std::vector<SourceFile>& files,
                           std::vector<Violation>& out) {
  for (const SourceFile& f : files) {
    // Unlike heuristic-registry (which uses split_below to stop at the
    // first nesting level), this rule applies at EVERY depth: a
    // parent-relative include inside src/sim/fault/ or
    // src/heuristics/fastpath/ is just as much a violation as one at the
    // top level, so no subdirectory filter appears here on purpose.
    if (file_allows(f, "include-hygiene")) continue;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string_view line = trim_left(f.lines[i]);
      if (!starts_with(line, "#include")) continue;
      if (line.find("#include \"src/") != std::string_view::npos) {
        out.push_back(Violation{
            f.relative, i + 1, "include-hygiene",
            "include paths are relative to src/ — drop the 'src/' prefix"});
      } else if (line.find("#include \"../") != std::string_view::npos) {
        out.push_back(Violation{
            f.relative, i + 1, "include-hygiene",
            "parent-relative include; use a src/-relative path instead"});
      }
    }
  }
}

void check_explicit_memory_order(const std::vector<SourceFile>& files,
                                 std::vector<Violation>& out) {
  // Atomic member operations that accept a std::memory_order argument.
  // Matched only when preceded by '.' or '>' (i.e. `x.load(`, `p->store(`)
  // so free functions like `load_etc(` never trip the rule. `exchange(`
  // cannot match inside `compare_exchange_*(` — the longer names continue
  // with `_weak`/`_strong`, not `(`.
  constexpr std::string_view kAtomicOps[] = {
      "load(",
      "store(",
      "exchange(",
      "fetch_add(",
      "fetch_sub(",
      "fetch_and(",
      "fetch_or(",
      "fetch_xor(",
      "compare_exchange_weak(",
      "compare_exchange_strong(",
  };
  // An atomic call may wrap; gather up to this many continuation lines when
  // balancing the parentheses of the call.
  constexpr std::size_t kMaxContinuationLines = 10;
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "src/")) continue;
    if (file_allows(f, "explicit-memory-order")) continue;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string& line = f.lines[i];
      if (starts_with(trim_left(line), "//")) continue;
      bool flagged = false;  // at most one finding per line
      for (const std::string_view op : kAtomicOps) {
        for (std::size_t pos = line.find(op); pos != std::string::npos;
             pos = line.find(op, pos + 1)) {
          if (pos == 0) continue;
          const char before = line[pos - 1];
          if (before != '.' && before != '>') continue;
          // Collect the call text from the opening '(' to its matching
          // ')', spilling across continuation lines for wrapped calls.
          std::string call_text;
          int depth = 0;
          bool closed = false;
          std::size_t row = i;
          std::size_t col = pos + op.size() - 1;  // the '(' in the token
          while (row < f.lines.size() &&
                 row < i + 1 + kMaxContinuationLines && !closed) {
            const std::string& scan = f.lines[row];
            for (; col < scan.size(); ++col) {
              const char c = scan[col];
              call_text += c;
              if (c == '(') ++depth;
              if (c == ')' && --depth == 0) {
                closed = true;
                break;
              }
            }
            ++row;
            col = 0;
          }
          if (call_text.find("memory_order") != std::string::npos) continue;
          if (line_allows(f, i, "memory-order")) continue;
          out.push_back(Violation{
              f.relative, i + 1, "explicit-memory-order",
              "atomic '" + std::string(op) +
                  "...)' without an explicit std::memory_order — name the "
                  "ordering (and justify it in a comment), or audit the "
                  "site and mark it '// lint:allow(memory-order)'"});
          flagged = true;
          break;
        }
        if (flagged) break;
      }
    }
  }
}

void check_no_nondeterminism_in_core(const std::vector<SourceFile>& files,
                                     std::vector<Violation>& out) {
  // Layers whose outputs must be a pure function of (problem, seed). The
  // sim layer may use wall clocks and ambient entropy; these may not.
  constexpr std::string_view kDeterministicDirs[] = {
      "src/core/",
      "src/heuristics/",
      "src/etc/",
      "src/ga/",
  };
  struct Banned {
    std::string_view token;
    bool word_boundary;  // previous char must not be an identifier char
    std::string_view why;
  };
  constexpr Banned kBanned[] = {
      {"std::random_device", false,
       "ambient entropy; thread seeded randomness through core/rng.hpp"},
      {"std::chrono::system_clock", false,
       "wall-clock time; use steady_clock in sim/ or pass timestamps in"},
      {"std::unordered_map", false,
       "iteration order is implementation-defined; use std::map (or sort)"},
      {"std::unordered_set", false,
       "iteration order is implementation-defined; use std::set (or sort)"},
      {"srand(", true, "global RNG reseed; use core/rng.hpp streams"},
      {"rand(", true, "C global RNG; use core/rng.hpp streams"},
      {"time(", true, "wall-clock time; pass timestamps in from the caller"},
  };
  for (const SourceFile& f : files) {
    bool in_scope = false;
    for (const std::string_view dir : kDeterministicDirs) {
      if (starts_with(f.relative, dir)) in_scope = true;
    }
    if (!in_scope) continue;
    if (file_allows(f, "no-nondeterminism-in-core")) continue;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string& line = f.lines[i];
      if (starts_with(trim_left(line), "//")) continue;
      for (const Banned& ban : kBanned) {
        const std::size_t pos = line.find(ban.token);
        if (pos == std::string::npos) continue;
        // `rand(` must not fire inside `srand(`; `time(` must not fire
        // inside `completion_time(` or `steady_clock::now` callers — the
        // boundary check rejects a preceding identifier character.
        // (A preceding ':' stays in scope so `std::rand(`/`std::time(`
        // are still caught.)
        if (ban.word_boundary && pos > 0 &&
            is_identifier_char(line[pos - 1])) {
          continue;
        }
        if (line_allows(f, i, "nondeterminism")) continue;
        // Built with += rather than an operator+ chain: GCC 12 miscompiles
        // the diagnostic for `const char* + string&&` here into a spurious
        // -Werror=restrict (GCC PR105651).
        std::string message = "'";
        message += ban.token;
        message += "' in a deterministic layer: ";
        message += ban.why;
        message += " (or mark the audited line '// lint:allow("
                   "nondeterminism)')";
        out.push_back(Violation{f.relative, i + 1, "no-nondeterminism-in-core",
                                std::move(message)});
        break;  // one finding per line
      }
    }
  }
}

void check_lock_annotation_coverage(const std::vector<SourceFile>& files,
                                    std::vector<Violation>& out) {
  // Type tokens that declare a mutex member/variable when they open a
  // declaration line. References/pointers (`Mutex&`, `std::mutex*`) are
  // aliases to a capability owned elsewhere and are not declarations.
  constexpr std::string_view kMutexTypes[] = {
      "std::mutex ",
      "core::Mutex ",
      "Mutex ",
  };
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "src/")) continue;
    if (file_allows(f, "lock-annotation-coverage")) continue;
    std::string file_text;
    for (const std::string& line : f.lines) {
      file_text += line;
      file_text += '\n';
    }
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      std::string_view line = trim_left(f.lines[i]);
      if (starts_with(line, "//")) continue;
      if (starts_with(line, "mutable ")) {
        line.remove_prefix(sizeof("mutable ") - 1);
      }
      for (const std::string_view type : kMutexTypes) {
        if (!starts_with(line, type)) continue;
        std::string_view rest = trim_left(line.substr(type.size()));
        std::size_t len = 0;
        while (len < rest.size() && is_identifier_char(rest[len])) ++len;
        if (len == 0) continue;  // not a named declaration
        const std::string name(rest.substr(0, len));
        // GUARDED_BY(name) with a closing paren pins the exact mutex name
        // (so a file holding both `mutex` and `mutex_` cannot satisfy one
        // with the other's annotation); the bare substring also matches
        // HCSCHED_PT_GUARDED_BY, which equally proves the lock guards
        // something.
        const std::string needle = "GUARDED_BY(" + name + ")";
        if (file_text.find(needle) != std::string::npos) break;
        if (line_allows(f, i, "lock-annotation")) break;
        out.push_back(Violation{
            f.relative, i + 1, "lock-annotation-coverage",
            "mutex '" + name +
                "' has no GUARDED_BY/PT_GUARDED_BY field naming it — "
                "annotate what it protects (core/thread_annotations.hpp), "
                "or mark the audited line '// lint:allow("
                "lock-annotation)'"});
        break;
      }
    }
  }
}

void check_metric_docs(const fs::path& root,
                       const std::vector<SourceFile>& files,
                       std::vector<Violation>& out) {
  // Registration entry points whose first argument is the metric name.
  // Only literal names are checked: a site passing a variable (e.g. the
  // macro bodies in obs/metrics.hpp forwarding `(name)`) is skipped, since
  // its literal is checked where the macro is invoked.
  constexpr std::string_view kSites[] = {
      "HCSCHED_METRIC_COUNT(",     "HCSCHED_METRIC_GAUGE_SET(",
      "HCSCHED_METRIC_OBSERVE(",   "metrics::counter(",
      "metrics::gauge(",           "metrics::histogram(",
  };
  std::string docs_text;
  {
    std::ifstream in(root / "docs" / "OBSERVABILITY.md");
    std::stringstream buffer;
    buffer << in.rdbuf();
    docs_text = buffer.str();  // empty when the docs file is absent
  }
  for (const SourceFile& f : files) {
    if (!starts_with(f.relative, "src/")) continue;
    if (file_allows(f, "metric-docs")) continue;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string& line = f.lines[i];
      if (starts_with(trim_left(line), "//")) continue;
      for (const std::string_view site : kSites) {
        const std::size_t pos = line.find(site);
        if (pos == std::string::npos) continue;
        std::string_view after =
            trim_left(std::string_view(line).substr(pos + site.size()));
        if (after.empty() || after.front() != '"') continue;  // non-literal
        after.remove_prefix(1);
        const std::size_t close = after.find('"');
        if (close == std::string_view::npos || close == 0) continue;
        const std::string name(after.substr(0, close));
        if (docs_text.find(name) != std::string::npos) continue;
        if (line_allows(f, i, "metric-docs")) continue;
        out.push_back(Violation{
            f.relative, i + 1, "metric-docs",
            "metric '" + name +
                "' is not documented in docs/OBSERVABILITY.md — add it to "
                "the metrics table (or mark the audited line "
                "'// lint:allow(metric-docs)')"});
        break;  // one finding per line
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::cerr << "usage: hcsched_lint --root <dir> [--verbose]\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "hcsched_lint: --root is required\n";
    return 2;
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "hcsched_lint: cannot open root: " << ec.message() << "\n";
    return 2;
  }

  const std::vector<SourceFile> files = collect_sources(root);
  if (verbose) {
    std::cout << "hcsched_lint: scanning " << files.size()
              << " source files under " << root.generic_string() << "\n";
  }

  std::vector<Violation> violations;
  check_heuristic_registry(files, violations);
  check_fastpath_differential(files, violations);
  check_trace_guard(files, violations);
  check_test_registration(root, files, violations);
  check_include_hygiene(files, violations);
  check_explicit_memory_order(files, violations);
  check_no_nondeterminism_in_core(files, violations);
  check_lock_annotation_coverage(files, violations);
  check_metric_docs(root, files, violations);

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  for (const Violation& v : violations) {
    std::cout << v.file;
    if (v.line != 0) std::cout << ':' << v.line;
    std::cout << ": [" << v.rule << "] " << v.message << "\n";
  }
  if (violations.empty()) {
    if (verbose) std::cout << "hcsched_lint: clean\n";
    return 0;
  }
  std::cout << "hcsched_lint: " << violations.size() << " violation"
            << (violations.size() == 1 ? "" : "s") << "\n";
  return 1;
}
