// hcsched_cli — command-line front end to the library.
//
//   hcsched_cli list
//   hcsched_cli generate --tasks N --machines M [--method cvb|range]
//                        [--consistency inc|semi|cons] [--v-task X]
//                        [--v-machine X] [--seed S] [--out FILE]
//   hcsched_cli map      --etc FILE --heuristic NAME [--ties det|random]
//                        [--seed S]
//   hcsched_cli iterate  --etc FILE --heuristic NAME [--ties det|random]
//                        [--seed S] [--no-seeding]
//   hcsched_cli report   --etc FILE --heuristic NAME [--ties det|random]
//                        [--seed S] [--no-seeding] [--json]
//   hcsched_cli study    [--trials N] [--tasks N] [--machines M]
//                        [--ties det|random] [--seed S] [--budget-ms N]
//                        [--checkpoint FILE] [--resume FILE]
//                        [--profile FILE.json] [--gap]
//   hcsched_cli sweep    [--trials N] [--tasks N] [--machines M]
//                        [--ties det|random] [--seed S] [--budget-ms N]
//                        [--checkpoint FILE] [--resume FILE]
//                        [--profile FILE.json] [--gap]
//   hcsched_cli stats    [--trials N] [--tasks N] [--machines M]
//                        [--ties det|random] [--seed S]
//                        [--format json|prom]
//   hcsched_cli witness  --heuristic NAME [--tasks N] [--machines M]
//                        [--ties det|random] [--max-trials N] [--seed S]
//   hcsched_cli optimal  --etc FILE [--node-limit N]
//   hcsched_cli online   --etc FILE [--policy mct|met|olb|kpb|swa]
//                        [--count N] [--mean-gap X] [--seed S]
//
// Global flags (any subcommand):
//   --trace FILE.jsonl   stream structured events (JSON Lines) to FILE
//   --no-fastpath        force the reference two-phase greedy loop (the
//                        HCSCHED_FASTPATH env var does the same for kAuto)
//   --fault SPEC[,SPEC]  arm fault injection, SPEC = <site>:<rate>[:<seed>]
//                        (the HCSCHED_FAULT env var does the same); see
//                        docs/ROBUSTNESS.md for the site registry
//   --version / -V       print the version and exit
//
// study/sweep only:
//   --profile FILE.json  aggregate the run's spans into a profile tree
//                        (per-phase count / total / self wall time) and
//                        write it to FILE; stdout is unchanged, so resumed
//                        runs stay byte-identical with or without it
//   --gap                add the Local-Search baselines to the heuristic
//                        set and a per-row optimality-gap column: mean of
//                        (makespan - ref)/ref over trials, where ref is the
//                        trial's BnB optimum when proven within the size
//                        limits and the preemptive lower bound otherwise
//                        (docs/BASELINES.md)
//
// Exit status: 0 on success, 1 on bad usage — including unknown flags and
// malformed numeric values — or (witness) not found. Usage/help goes to
// stdout for `help`, stderr on error paths. Informational robustness
// notices (resume/quarantine/cancel summaries) go to stderr so stdout
// stays diffable.
#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/iterative.hpp"
#include "core/optimal.hpp"
#include "core/witness.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "etc/etc_io.hpp"
#include "etc/range_generator.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/registry.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/fault/fault.hpp"
#include "sim/online.hpp"
#include "sim/sweep.hpp"

#ifndef HCSCHED_CLI_VERSION
#define HCSCHED_CLI_VERSION "0.0.0-dev"
#endif

namespace {

using namespace hcsched;

/// Flags every subcommand accepts.
const std::set<std::string>& global_flags() {
  static const std::set<std::string> flags = {"trace", "no-fastpath",
                                              "fault"};
  return flags;
}

/// Minimal --flag value parser; flags may appear in any order. Strict: the
/// caller declares the subcommand's flags via allow(), and finish() rejects
/// anything undeclared, so a typo exits non-zero instead of being silently
/// ignored. Numeric accessors reject trailing garbage ("5x" is an error,
/// not 5).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        error_ = "unexpected argument '" + key + "'";
        return;
      }
      key = key.substr(2);
      if (key == "no-seeding" || key == "json" || key == "gap" ||
          key == "no-fastpath") {  // boolean flags
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "missing value for --" + key;
        return;
      }
      values_[key] = argv[++i];
    }
  }

  /// Declares the flags the dispatched subcommand understands.
  void allow(std::initializer_list<const char*> keys) {
    for (const char* key : keys) allowed_.insert(key);
  }

  /// Rejects any parsed flag that is neither global nor allowed.
  void finish() const {
    for (const auto& [key, value] : values_) {
      if (allowed_.count(key) == 0 && global_flags().count(key) == 0) {
        throw std::invalid_argument("unknown flag '--" + key + "'");
      }
    }
  }

  const std::string& error() const noexcept { return error_; }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string get_or(const std::string& key, std::string fallback) const {
    return get(key).value_or(std::move(fallback));
  }
  long long get_ll(const std::string& key, long long fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    long long out = 0;
    const char* begin = v->data();
    const char* end = begin + v->size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc{} || ptr != end) {
      throw std::invalid_argument("malformed value for --" + key + ": '" +
                                  *v + "'");
    }
    return out;
  }
  double get_d(const std::string& key, double fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    if (v->empty()) {
      throw std::invalid_argument("malformed value for --" + key + ": ''");
    }
    char* parse_end = nullptr;
    const double out = std::strtod(v->c_str(), &parse_end);
    if (parse_end != v->c_str() + v->size()) {
      throw std::invalid_argument("malformed value for --" + key + ": '" +
                                  *v + "'");
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_{};
  std::set<std::string> allowed_{};
  std::string error_{};
};

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: hcsched_cli "
      "<list|generate|map|iterate|report|study|sweep|stats|witness|optimal|"
      "online> [--flags]\n"
      "global flags: --trace FILE.jsonl (stream structured events), "
      "--no-fastpath (reference two-phase greedy loop), "
      "--fault <site>:<rate>[:<seed>] (arm fault injection), --version\n"
      "see the header of tools/hcsched_cli.cpp for the full flag list\n");
}

int usage() {
  print_usage(stderr);
  return 1;
}

etc::EtcMatrix load_etc(const Args& args) {
  const auto path = args.get("etc");
  if (!path) throw std::invalid_argument("--etc FILE is required");
  std::ifstream in(*path);
  if (!in) throw std::invalid_argument("cannot open '" + *path + "'");
  return etc::read_csv(in);
}

/// Builds the tie breaker requested by --ties/--seed. The Rng must outlive
/// the breaker, so the caller owns it.
rng::TieBreaker make_ties(const Args& args, rng::Rng& rng) {
  if (args.get_or("ties", "det") == "random") return rng::TieBreaker(rng);
  return rng::TieBreaker();
}

int cmd_list() {
  for (const auto& name : heuristics::known_heuristic_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_generate(const Args& args) {
  const auto tasks = static_cast<std::size_t>(args.get_ll("tasks", 16));
  const auto machines = static_cast<std::size_t>(args.get_ll("machines", 4));
  rng::Rng rng(static_cast<std::uint64_t>(args.get_ll("seed", 1)));

  etc::EtcMatrix matrix;
  if (args.get_or("method", "cvb") == "range") {
    etc::RangeParams params;
    params.num_tasks = tasks;
    params.num_machines = machines;
    matrix = etc::RangeEtcGenerator(params).generate(rng);
  } else {
    etc::CvbParams params;
    params.num_tasks = tasks;
    params.num_machines = machines;
    params.v_task = args.get_d("v-task", 0.6);
    params.v_machine = args.get_d("v-machine", 0.6);
    matrix = etc::CvbEtcGenerator(params).generate(rng);
  }
  const std::string consistency = args.get_or("consistency", "inc");
  if (consistency == "cons") {
    matrix = etc::shape_consistency(matrix, etc::Consistency::kConsistent);
  } else if (consistency == "semi") {
    matrix =
        etc::shape_consistency(matrix, etc::Consistency::kSemiConsistent);
  }

  const auto out = args.get("out");
  if (out) {
    std::ofstream file(*out);
    if (!file) throw std::invalid_argument("cannot write '" + *out + "'");
    etc::write_csv(file, matrix);
    std::printf("wrote %zu x %zu ETC matrix to %s\n", matrix.num_tasks(),
                matrix.num_machines(), out->c_str());
  } else {
    etc::write_csv(std::cout, matrix);
  }
  return 0;
}

int cmd_map(const Args& args) {
  const etc::EtcMatrix matrix = load_etc(args);
  const auto name = args.get("heuristic");
  if (!name) throw std::invalid_argument("--heuristic NAME is required");
  const auto heuristic = heuristics::make_heuristic(*name);
  rng::Rng rng(static_cast<std::uint64_t>(args.get_ll("seed", 1)));
  rng::TieBreaker ties = make_ties(args, rng);

  const sched::Problem problem = sched::Problem::full(matrix);
  const sched::Schedule schedule = heuristic->map(problem, ties);
  std::printf("%s mapping, makespan %s (machine m%d):\n%s",
              std::string(heuristic->name()).c_str(),
              report::TextTable::num(schedule.makespan(), 4).c_str(),
              schedule.makespan_machine(),
              report::render_gantt(schedule).c_str());
  return 0;
}

int cmd_iterate(const Args& args) {
  const etc::EtcMatrix matrix = load_etc(args);
  const auto name = args.get("heuristic");
  if (!name) throw std::invalid_argument("--heuristic NAME is required");
  const auto heuristic = heuristics::make_heuristic(*name);
  rng::Rng rng(static_cast<std::uint64_t>(args.get_ll("seed", 1)));
  rng::TieBreaker ties = make_ties(args, rng);

  core::IterativeOptions options;
  options.use_seeding = !args.get("no-seeding").has_value();
  const auto result = core::IterativeMinimizer{options}.run(
      *heuristic, sched::Problem::full(matrix), ties);

  for (const auto& it : result.iterations) {
    std::printf("-- iteration %zu (%zu tasks, %zu machines), makespan %s on "
                "m%d --\n%s",
                it.index, it.problem().num_tasks(),
                it.problem().num_machines(),
                report::TextTable::num(it.makespan, 4).c_str(),
                it.makespan_machine,
                report::render_gantt(it.schedule).c_str());
  }
  report::TextTable table({"machine", "original CT", "final CT"});
  const auto before = result.original_finishing_times();
  for (std::size_t i = 0; i < before.size(); ++i) {
    std::string machine_label(1, 'm');
    machine_label += std::to_string(result.final_finishing_times[i].first);
    table.add_row({std::move(machine_label),
                   report::TextTable::num(before[i], 4),
                   report::TextTable::num(
                       result.final_finishing_times[i].second, 4)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("effective makespan %s -> %s%s\n",
              report::TextTable::num(result.original().makespan, 4).c_str(),
              report::TextTable::num(result.final_makespan(), 4).c_str(),
              result.makespan_increased() ? " (INCREASED)" : "");
  return 0;
}

int cmd_report(const Args& args) {
  const etc::EtcMatrix matrix = load_etc(args);
  const auto name = args.get("heuristic");
  if (!name) throw std::invalid_argument("--heuristic NAME is required");
  const auto heuristic = heuristics::make_heuristic(*name);
  rng::Rng rng(static_cast<std::uint64_t>(args.get_ll("seed", 1)));
  rng::TieBreaker ties = make_ties(args, rng);

  core::IterativeOptions options;
  options.use_seeding = !args.get("no-seeding").has_value();
  obs::counters::reset();  // report deltas for this run only
  const auto result = core::IterativeMinimizer{options}.run(
      *heuristic, sched::Problem::full(matrix), ties);

  const obs::RunReport report =
      obs::build_run_report(heuristic->name(), result);
  if (args.get("json")) {
    std::printf("%s\n", obs::to_json(report).dump(2).c_str());
  } else {
    std::printf("%s", obs::to_text(report).c_str());
  }
  return 0;
}

/// Shared study/sweep robustness setup: a deadline token for --budget-ms
/// and checkpoint reader/writer for --resume/--checkpoint. Owns the hook
/// targets so they outlive the run.
struct RobustnessSetup {
  std::optional<core::CancelToken> token{};
  // unique_ptr, not optional: CheckpointWriter owns a mutex and cannot move.
  std::unique_ptr<sim::CheckpointWriter> writer{};
  std::optional<sim::CheckpointData> resume{};
  sim::StudyHooks hooks{};
};

RobustnessSetup make_robustness(const Args& args) {
  RobustnessSetup setup;
  const long long budget_ms = args.get_ll("budget-ms", -1);
  if (budget_ms >= 0) {
    setup.token.emplace();
    setup.token->cancel_after(std::chrono::milliseconds(budget_ms));
    setup.hooks.cancel = &*setup.token;
  }
  if (const auto resume_path = args.get("resume")) {
    setup.resume.emplace(sim::load_checkpoint(*resume_path));
    setup.hooks.resume = &*setup.resume;
    std::fprintf(stderr, "resume: %zu trial(s) loaded from %s",
                 setup.resume->trials.size(), resume_path->c_str());
    if (setup.resume->corrupt_lines > 0) {
      std::fprintf(stderr, " (%zu corrupt line(s) skipped)",
                   setup.resume->corrupt_lines);
    }
    std::fprintf(stderr, "\n");
  }
  if (const auto checkpoint_path = args.get("checkpoint")) {
    setup.writer = std::make_unique<sim::CheckpointWriter>(*checkpoint_path);
    setup.hooks.checkpoint = setup.writer.get();
  }
  return setup;
}

sim::StudyParams study_params_from(const Args& args) {
  sim::StudyParams params;
  params.heuristics = {"MET",       "MCT", "Min-Min", "Genitor", "SWA",
                       "Sufferage", "KPB"};
  params.trials = static_cast<std::size_t>(args.get_ll("trials", 25));
  params.cvb.num_tasks = static_cast<std::size_t>(args.get_ll("tasks", 24));
  params.cvb.num_machines =
      static_cast<std::size_t>(args.get_ll("machines", 6));
  params.seed = static_cast<std::uint64_t>(args.get_ll("seed", 7));
  params.tie_policy = args.get_or("ties", "det") == "random"
                          ? rng::TiePolicy::kRandom
                          : rng::TiePolicy::kDeterministic;
  if (args.get("gap").has_value()) {
    params.gap = true;
    // Gap runs are baseline comparisons: include the local-search family
    // next to the paper set so the table answers "how far from optimal".
    params.heuristics.push_back("Local-Search");
    params.heuristics.push_back("Local-Search-FI");
  }
  return params;
}

/// "3.142%" — fixed-point percent for the gap column.
std::string percent_of(double fraction) {
  double value = fraction * 100.0;
  // An exact-optimum gap can come out as a sub-rounding negative epsilon
  // (the solver and the schedule sum completion times in different
  // orders); don't render that as "-0.000%".
  if (value > -5e-4 && value < 5e-4) value = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f%%", value);
  return buf;
}

void print_study_rows(const std::vector<sim::StudyRow>& rows,
                      bool gap = false) {
  std::vector<std::string> header = {"heuristic", "improved", "unchanged",
                                     "worsened", "makespan increases"};
  if (gap) {
    header.push_back("mean gap");
    header.push_back("exact refs");
  }
  report::TextTable table(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {
        row.heuristic, std::to_string(row.machines_improved),
        std::to_string(row.machines_unchanged),
        std::to_string(row.machines_worsened),
        std::to_string(row.makespan_increases) + "/" +
            std::to_string(row.trials)};
    if (gap) {
      cells.push_back(row.gap_pct.count() > 0 ? percent_of(row.gap_pct.mean())
                                              : "-");
      cells.push_back(std::to_string(row.gap_exact_trials) + "/" +
                      std::to_string(row.trials));
    }
    table.add_row(cells);
  }
  std::printf("%s", table.to_string().c_str());
}

/// Stderr summary of one study report's robustness events.
void print_report_notices(const sim::StudyReport& report,
                          const std::string& label) {
  const char* prefix = label.empty() ? "study" : label.c_str();
  if (report.trials_replayed > 0) {
    std::fprintf(stderr, "%s: replayed %zu of %zu trial(s) from checkpoint\n",
                 prefix, report.trials_replayed, report.trials_requested);
  }
  for (const auto& q : report.quarantined) {
    std::fprintf(stderr,
                 "%s: quarantined trial %zu heuristic '%s' (site %s): %s\n",
                 prefix, q.trial, q.heuristic.c_str(), q.site.c_str(),
                 q.error.c_str());
  }
  if (report.cancelled) {
    std::fprintf(stderr, "%s: cancelled after %zu of %zu trial(s)\n", prefix,
                 report.trials_completed, report.trials_requested);
  }
}

int cmd_study(const Args& args) {
  const sim::StudyParams params = study_params_from(args);
  RobustnessSetup setup = make_robustness(args);
  sim::ThreadPool pool;
  const sim::StudyReport report =
      sim::run_iterative_study_report(params, pool, setup.hooks);
  print_study_rows(report.rows, params.gap);
  print_report_notices(report, "study");
  return 0;
}

int cmd_sweep(const Args& args) {
  const sim::StudyParams params = study_params_from(args);
  RobustnessSetup setup = make_robustness(args);
  sim::ThreadPool pool;
  const auto results = sim::run_sweep_report(params, sim::standard_sweep(),
                                             pool, setup.hooks);
  for (const auto& result : results) {
    std::printf("== %s ==\n", result.point.label.c_str());
    print_study_rows(result.report.rows, params.gap);
    print_report_notices(result.report, result.point.label);
  }
  if (results.size() < sim::standard_sweep().size()) {
    std::fprintf(stderr, "sweep: cancelled after %zu of %zu point(s)\n",
                 results.size(), sim::standard_sweep().size());
  }
  return 0;
}

int cmd_stats(const Args& args) {
  const std::string format = args.get_or("format", "json");
  if (format != "json" && format != "prom") {
    throw std::invalid_argument("unknown --format '" + format +
                                "' (want json|prom)");
  }
  if (!obs::kTraceCompiledIn) {
    std::fprintf(stderr,
                 "warning: built with HCSCHED_TRACE=0; stats will report "
                 "zeros\n");
  }
  const sim::StudyParams params = study_params_from(args);
  obs::counters::reset();
  obs::metrics::reset();
  sim::StudyReport report;
  {
    sim::ThreadPool pool;
    report = sim::run_iterative_study_report(params, pool);
  }  // joining the pool flushes every worker's counter buffer

  if (format == "prom") {
    // Typed metrics first, then the fixed counter table as one labelled
    // family so scrape configs need no per-counter name list.
    std::string text = obs::metrics::prometheus_text();
    text +=
        "# HELP hcsched_ops_total Monotonic operation counters (see "
        "docs/OBSERVABILITY.md)\n"
        "# TYPE hcsched_ops_total counter\n";
    const obs::JsonValue counters = obs::counters::snapshot().to_json();
    for (const auto& [name, value] : counters.as_object()) {
      text += "hcsched_ops_total{op=\"" + name + "\"} " +
              std::to_string(static_cast<unsigned long long>(
                  value.as_number())) +
              "\n";
    }
    std::printf("%s", text.c_str());
  } else {
    obs::JsonValue::Object root;
    root.reserve(5);
    root.emplace_back("schema", obs::JsonValue("hcsched.stats.v1"));
    root.emplace_back("trials", obs::JsonValue(report.trials_completed));
    root.emplace_back("heuristics",
                      obs::JsonValue(params.heuristics.size()));
    root.emplace_back("metrics",
                      obs::metrics::snapshot_json().at("metrics"));
    root.emplace_back("counters", obs::counters::snapshot().to_json());
    std::printf("%s\n", obs::JsonValue(std::move(root)).dump(2).c_str());
  }
  print_report_notices(report, "stats");
  return 0;
}

int cmd_witness(const Args& args) {
  const auto name = args.get("heuristic");
  if (!name) throw std::invalid_argument("--heuristic NAME is required");
  const auto heuristic = heuristics::make_heuristic(*name);
  core::WitnessSpec spec;
  spec.num_tasks = static_cast<std::size_t>(args.get_ll("tasks", 6));
  spec.num_machines = static_cast<std::size_t>(args.get_ll("machines", 3));
  spec.half_integers = true;
  spec.policy = args.get_or("ties", "det") == "random"
                    ? rng::TiePolicy::kRandom
                    : rng::TiePolicy::kDeterministic;
  const auto max_trials =
      static_cast<std::size_t>(args.get_ll("max-trials", 200000));
  rng::Rng rng(static_cast<std::uint64_t>(args.get_ll("seed", 42)));
  const auto witness =
      core::find_makespan_increase_witness(*heuristic, spec, rng, max_trials);
  if (!witness) {
    std::printf("no witness in %zu matrices\n", max_trials);
    return 1;
  }
  std::printf("witness after %zu matrices: makespan %s -> %s\n",
              witness->trials_used,
              report::TextTable::num(witness->original_makespan).c_str(),
              report::TextTable::num(witness->final_makespan).c_str());
  etc::write_csv(std::cout, *witness->matrix);
  return 0;
}

int cmd_optimal(const Args& args) {
  const etc::EtcMatrix matrix = load_etc(args);
  core::OptimalOptions options;
  options.node_limit = static_cast<std::uint64_t>(
      args.get_ll("node-limit", 50'000'000));
  const auto result = core::solve_optimal(sched::Problem::full(matrix),
                                          options);
  std::printf("%s makespan %s after %llu nodes:\n%s",
              result.proven_optimal ? "optimal" : "best-found (node limit)",
              report::TextTable::num(result.makespan, 4).c_str(),
              static_cast<unsigned long long>(result.nodes_explored),
              report::render_gantt(result.schedule).c_str());
  return 0;
}

int cmd_online(const Args& args) {
  const etc::EtcMatrix matrix = load_etc(args);
  const std::string policy_name = args.get_or("policy", "mct");
  sim::OnlineConfig config;
  if (policy_name == "met") {
    config.policy = sim::OnlinePolicy::kMet;
  } else if (policy_name == "olb") {
    config.policy = sim::OnlinePolicy::kOlb;
  } else if (policy_name == "kpb") {
    config.policy = sim::OnlinePolicy::kKpb;
  } else if (policy_name == "swa") {
    config.policy = sim::OnlinePolicy::kSwa;
  } else if (policy_name != "mct") {
    throw std::invalid_argument("unknown --policy '" + policy_name + "'");
  }
  rng::Rng rng(static_cast<std::uint64_t>(args.get_ll("seed", 1)));
  const auto stream = sim::make_arrival_stream(
      static_cast<std::size_t>(args.get_ll("count", 32)),
      args.get_d("mean-gap", 10.0), matrix.num_tasks(), rng);
  const sim::OnlineDispatcher dispatcher(config);
  rng::TieBreaker ties = make_ties(args, rng);
  const auto result = dispatcher.run(
      matrix, stream, std::vector<double>(matrix.num_machines(), 0.0), ties);
  std::printf(
      "%s dispatched %zu arrivals: makespan %s, mean flow time %s\n",
      sim::to_string(config.policy), result.records.size(),
      report::TextTable::num(result.makespan(), 4).c_str(),
      report::TextTable::num(result.mean_flow_time(), 4).c_str());
  return 0;
}

/// Declares the flags `command` understands on `args`; false for an unknown
/// subcommand.
bool declare_flags(const std::string& command, Args& args) {
  if (command == "list") return true;
  if (command == "generate") {
    args.allow({"tasks", "machines", "method", "consistency", "v-task",
                "v-machine", "seed", "out"});
    return true;
  }
  if (command == "map") {
    args.allow({"etc", "heuristic", "ties", "seed"});
    return true;
  }
  if (command == "iterate") {
    args.allow({"etc", "heuristic", "ties", "seed", "no-seeding"});
    return true;
  }
  if (command == "report") {
    args.allow({"etc", "heuristic", "ties", "seed", "no-seeding", "json"});
    return true;
  }
  if (command == "study" || command == "sweep") {
    args.allow({"trials", "tasks", "machines", "ties", "seed", "budget-ms",
                "checkpoint", "resume", "profile", "gap"});
    return true;
  }
  if (command == "stats") {
    args.allow({"trials", "tasks", "machines", "ties", "seed", "format"});
    return true;
  }
  if (command == "witness") {
    args.allow({"heuristic", "tasks", "machines", "ties", "max-trials",
                "seed"});
    return true;
  }
  if (command == "optimal") {
    args.allow({"etc", "node-limit"});
    return true;
  }
  if (command == "online") {
    args.allow({"etc", "policy", "count", "mean-gap", "seed"});
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "-V" || command == "version") {
    std::printf("hcsched_cli %s (trace instrumentation %s)\n",
                HCSCHED_CLI_VERSION,
                obs::kTraceCompiledIn ? "compiled in" : "compiled out");
    return 0;
  }
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  Args args(argc, argv, 2);
  if (!args.error().empty()) {
    std::fprintf(stderr, "error: %s\n", args.error().c_str());
    return usage();
  }
  if (!declare_flags(command, args)) {
    std::fprintf(stderr, "error: unknown subcommand '%s'\n", command.c_str());
    return usage();
  }

  // Install the JSONL trace sink (if requested) before dispatching so every
  // subcommand streams its events; the scoped sink flushes on exit.
  std::optional<obs::ScopedSink> trace_scope;
  try {
    args.finish();  // reject undeclared flags with a non-zero exit
    if (args.get("no-fastpath")) {
      heuristics::fastpath::set_mode(heuristics::fastpath::Mode::kForceOff);
    }
    if (const auto fault_specs = args.get("fault")) {
      std::string_view specs(*fault_specs);
      while (!specs.empty()) {
        const std::size_t comma = specs.find(',');
        const std::string_view one = specs.substr(0, comma);
        const auto plan = sim::fault::parse_spec(one);
        if (!plan) {
          throw std::invalid_argument("malformed --fault spec '" +
                                      std::string(one) +
                                      "' (want <site>:<rate>[:<seed>])");
        }
        sim::fault::arm(*plan);
        if (comma == std::string_view::npos) break;
        specs.remove_prefix(comma + 1);
      }
    }
    const auto trace_path = args.get("trace");
    const auto profile_path = args.get("profile");
    std::shared_ptr<obs::SpanCollector> profiler;
    if (trace_path || profile_path) {
      if (!obs::kTraceCompiledIn) {
        std::fprintf(stderr,
                     "warning: built with HCSCHED_TRACE=0; %s will "
                     "produce no events\n",
                     trace_path ? "--trace" : "--profile");
      }
      std::shared_ptr<obs::TraceSink> sink;
      if (trace_path) sink = std::make_shared<obs::JsonlSink>(*trace_path);
      if (profile_path) {
        profiler = std::make_shared<obs::SpanCollector>();
        sink = sink ? std::static_pointer_cast<obs::TraceSink>(
                          std::make_shared<obs::TeeSink>(
                              std::vector<std::shared_ptr<obs::TraceSink>>{
                                  std::move(sink), profiler}))
                    : std::static_pointer_cast<obs::TraceSink>(profiler);
      }
      trace_scope.emplace(std::move(sink));
    }
    int status = 1;
    if (command == "list") {
      status = cmd_list();
    } else if (command == "generate") {
      status = cmd_generate(args);
    } else if (command == "map") {
      status = cmd_map(args);
    } else if (command == "iterate") {
      status = cmd_iterate(args);
    } else if (command == "report") {
      status = cmd_report(args);
    } else if (command == "study") {
      status = cmd_study(args);
    } else if (command == "sweep") {
      status = cmd_sweep(args);
    } else if (command == "stats") {
      status = cmd_stats(args);
    } else if (command == "witness") {
      status = cmd_witness(args);
    } else if (command == "optimal") {
      status = cmd_optimal(args);
    } else if (command == "online") {
      status = cmd_online(args);
    } else {
      std::fprintf(stderr, "error: unreachable subcommand dispatch\n");
      return 1;
    }
    // Every span is closed by now (the subcommand joined its pool), so the
    // collector holds the complete forest. The profile goes to its own file
    // and a stderr notice — stdout stays byte-identical either way.
    if (profiler) {
      std::ofstream out(*profile_path);
      if (!out) {
        throw std::invalid_argument("cannot write '" + *profile_path + "'");
      }
      out << profiler->to_json().dump(2) << '\n';
      std::fprintf(stderr, "profile: wrote %zu span(s) to %s\n",
                   profiler->size(), profile_path->c_str());
    }
    return status;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
