// bench_check — schema validator for the repo's committed benchmark
// baselines and the CLI's introspection documents. Dependency-free (links
// only the library's JSON model), so CI can gate on it without pulling a
// JSON-schema engine.
//
//   bench_check --fastpath    BENCH_fastpath.json    fastpath kernel baseline
//   bench_check --iterative   BENCH_iterative.json   iterative study baseline
//   bench_check --localsearch BENCH_localsearch.json local-search gap baseline
//   bench_check --stats       stats.json             `hcsched_cli stats` output
//   bench_check --profile     profile.json           `--profile` span profile
//
// Exit status: 0 when every named file validates, 1 on the first schema
// violation (with a path-qualified message on stderr) or bad usage. Modes
// may be mixed in one invocation; files validate left to right.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "heuristics/fastpath/fastpath.hpp"
#include "obs/json.hpp"

namespace {

using hcsched::obs::JsonValue;

/// Schema violation carrying the JSON-path-ish location of the offence.
class SchemaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw SchemaError(where + ": " + what);
}

const JsonValue& field(const JsonValue& object, const std::string& where,
                       const std::string& key) {
  if (!object.is_object()) fail(where, "expected an object");
  for (const auto& [k, v] : object.as_object()) {
    if (k == key) return v;
  }
  fail(where, "missing key '" + key + "'");
}

std::string str(const JsonValue& object, const std::string& where,
                const std::string& key) {
  const JsonValue& v = field(object, where, key);
  if (!v.is_string()) fail(where + "." + key, "expected a string");
  return v.as_string();
}

double num(const JsonValue& object, const std::string& where,
           const std::string& key) {
  const JsonValue& v = field(object, where, key);
  if (!v.is_number()) fail(where + "." + key, "expected a number");
  return v.as_number();
}

double nonneg(const JsonValue& object, const std::string& where,
              const std::string& key) {
  const double v = num(object, where, key);
  if (!(v >= 0.0)) fail(where + "." + key, "expected a non-negative number");
  return v;
}

void require(bool ok, const std::string& where, const std::string& what) {
  if (!ok) fail(where, what);
}

const JsonValue::Array& array(const JsonValue& object,
                              const std::string& where,
                              const std::string& key) {
  const JsonValue& v = field(object, where, key);
  if (!v.is_array()) fail(where + "." + key, "expected an array");
  return v.as_array();
}

// --- fastpath baseline: BENCH_fastpath.json ------------------------------

void check_fastpath(const JsonValue& root) {
  require(str(root, "$", "bench") == "fastpath_kernel", "$.bench",
          "expected \"fastpath_kernel\"");
  const auto& cells = array(root, "$", "cells");
  require(!cells.empty(), "$.cells", "expected at least one cell");
  std::set<std::string> heuristics_seen;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string where = "$.cells[" + std::to_string(i) + "]";
    const JsonValue& cell = cells[i];
    require(!str(cell, where, "heuristic").empty(), where + ".heuristic",
            "expected a non-empty heuristic name");
    heuristics_seen.insert(str(cell, where, "heuristic"));
    require(num(cell, where, "tasks") > 0, where + ".tasks",
            "expected a positive task count");
    require(num(cell, where, "machines") > 0, where + ".machines",
            "expected a positive machine count");
    require(num(cell, where, "reference_ns") > 0, where + ".reference_ns",
            "expected a positive latency");
    require(num(cell, where, "fastpath_ns") > 0, where + ".fastpath_ns",
            "expected a positive latency");
    require(num(cell, where, "speedup") > 0, where + ".speedup",
            "expected a positive ratio");
    const JsonValue& eq = field(cell, where, "equivalent");
    require(eq.is_bool(), where + ".equivalent", "expected a bool");
  }
  // Every fastpath-covered heuristic must have at least one row: the
  // required set is the dispatch table itself (fastpath.hpp kernel_table()),
  // so registering a kernel makes a stale committed baseline fail CI until
  // the sweep is re-run.
  for (const auto& info : hcsched::heuristics::fastpath::kernel_table()) {
    require(heuristics_seen.count(info.name) != 0, "$.cells",
            std::string("missing rows for fastpath-covered heuristic '") +
                info.name + "'");
  }
}

// --- iterative baseline: BENCH_iterative.json ----------------------------

void check_iterative(const JsonValue& root) {
  require(str(root, "$", "bench") == "iterative_study", "$.bench",
          "expected \"iterative_study\"");
  const auto& cells = array(root, "$", "cells");
  require(!cells.empty(), "$.cells", "expected at least one cell");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string where = "$.cells[" + std::to_string(i) + "]";
    const JsonValue& cell = cells[i];
    require(!str(cell, where, "point").empty(), where + ".point",
            "expected a non-empty point label");
    require(num(cell, where, "wall_ms") > 0, where + ".wall_ms",
            "expected a positive wall time");
    const auto& rows = array(cell, where, "rows");
    require(!rows.empty(), where + ".rows", "expected at least one row");
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const std::string rw = where + ".rows[" + std::to_string(r) + "]";
      require(!str(rows[r], rw, "heuristic").empty(), rw + ".heuristic",
              "expected a non-empty heuristic name");
      nonneg(rows[r], rw, "improved");
      nonneg(rows[r], rw, "unchanged");
      nonneg(rows[r], rw, "worsened");
      nonneg(rows[r], rw, "makespan_increases");
      require(num(rows[r], rw, "trials") > 0, rw + ".trials",
              "expected a positive trial count");
    }
  }
}

// --- local-search gap baseline: BENCH_localsearch.json -------------------

void check_localsearch(const JsonValue& root) {
  require(str(root, "$", "bench") == "localsearch_gap", "$.bench",
          "expected \"localsearch_gap\"");
  const auto& cells = array(root, "$", "cells");
  require(!cells.empty(), "$.cells", "expected at least one cell");
  std::set<std::string> heuristics_seen;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string where = "$.cells[" + std::to_string(i) + "]";
    const JsonValue& cell = cells[i];
    require(!str(cell, where, "heuristic").empty(), where + ".heuristic",
            "expected a non-empty heuristic name");
    heuristics_seen.insert(str(cell, where, "heuristic"));
    require(num(cell, where, "tasks") > 0, where + ".tasks",
            "expected a positive task count");
    require(num(cell, where, "machines") > 0, where + ".machines",
            "expected a positive machine count");
    const std::string consistency = str(cell, where, "consistency");
    require(consistency == "inconsistent" ||
                consistency == "semi-consistent" ||
                consistency == "consistent",
            where + ".consistency", "unknown class '" + consistency + "'");
    require(num(cell, where, "trials") > 0, where + ".trials",
            "expected a positive trial count");
    // Gaps are measured against an admissible reference (a proven optimum
    // or the preemptive lower bound), so no heuristic can report < 0.
    const double mean = nonneg(cell, where, "mean_gap_pct");
    const double worst = nonneg(cell, where, "worst_gap_pct");
    require(worst >= mean, where + ".worst_gap_pct",
            "worst gap below the mean gap");
    const double exact = nonneg(cell, where, "exact_refs");
    require(exact <= num(cell, where, "trials"), where + ".exact_refs",
            "more exact references than trials");
  }
  // The baseline is only meaningful as a comparison: both local-search
  // variants AND the two-phase greedy baselines they are measured against
  // must have rows, or a stale committed sweep fails CI here.
  for (const char* name : {"Local-Search", "Local-Search-FI", "Min-Min",
                           "Max-Min", "Duplex"}) {
    require(heuristics_seen.count(name) != 0, "$.cells",
            std::string("missing rows for required heuristic '") + name +
                "'");
  }
}

// --- stats document: `hcsched_cli stats --format json` -------------------

void check_stats(const JsonValue& root) {
  require(str(root, "$", "schema") == "hcsched.stats.v1", "$.schema",
          "expected \"hcsched.stats.v1\"");
  nonneg(root, "$", "trials");
  const auto& metrics = array(root, "$", "metrics");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const std::string where = "$.metrics[" + std::to_string(i) + "]";
    const JsonValue& m = metrics[i];
    require(!str(m, where, "name").empty(), where + ".name",
            "expected a non-empty metric name");
    const std::string kind = str(m, where, "kind");
    if (kind == "counter" || kind == "gauge") {
      num(m, where, "value");
    } else if (kind == "histogram") {
      nonneg(m, where, "count");
      nonneg(m, where, "sum");
      const auto& buckets = array(m, where, "buckets");
      require(!buckets.empty(), where + ".buckets",
              "expected at least the +Inf bucket");
      const std::string bw =
          where + ".buckets[" + std::to_string(buckets.size() - 1) + "]";
      require(str(buckets.back(), bw, "le") == "+Inf", bw + ".le",
              "expected the final bucket bound to be \"+Inf\"");
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        nonneg(buckets[b],
               where + ".buckets[" + std::to_string(b) + "]", "count");
      }
    } else {
      fail(where + ".kind", "unknown kind '" + kind + "'");
    }
  }
  const JsonValue& counters = field(root, "$", "counters");
  require(counters.is_object(), "$.counters", "expected an object");
  for (const auto& [name, value] : counters.as_object()) {
    require(value.is_number() && value.as_number() >= 0.0,
            "$.counters." + name, "expected a non-negative number");
  }
}

// --- profile document: `--profile out.json` ------------------------------

std::uint64_t check_profile_node(const JsonValue& node,
                                 const std::string& where) {
  require(!str(node, where, "name").empty(), where + ".name",
          "expected a non-empty span name");
  require(num(node, where, "count") > 0, where + ".count",
          "expected a positive merge count");
  const double total_ns = nonneg(node, where, "total_ns");
  const double self_ns = nonneg(node, where, "self_ns");
  require(self_ns <= total_ns, where + ".self_ns",
          "self time exceeds total time");
  const auto& children = array(node, where, "children");
  std::uint64_t spans = static_cast<std::uint64_t>(num(node, where, "count"));
  for (std::size_t i = 0; i < children.size(); ++i) {
    spans += check_profile_node(
        children[i], where + ".children[" + std::to_string(i) + "]");
  }
  return spans;
}

void check_profile(const JsonValue& root) {
  require(str(root, "$", "profile") == "hcsched.profile.v1", "$.profile",
          "expected \"hcsched.profile.v1\"");
  const double declared = nonneg(root, "$", "spans");
  const auto& roots = array(root, "$", "roots");
  std::uint64_t counted = 0;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    counted += check_profile_node(roots[i],
                                  "$.roots[" + std::to_string(i) + "]");
  }
  require(static_cast<double>(counted) == declared, "$.spans",
          "declared " + std::to_string(declared) + " spans but the tree " +
              "holds " + std::to_string(counted));
}

// --- driver --------------------------------------------------------------

int usage() {
  std::fprintf(stderr,
               "usage: bench_check [--fastpath FILE] [--iterative FILE] "
               "[--localsearch FILE] [--stats FILE] [--profile FILE]\n");
  return 1;
}

JsonValue load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SchemaError("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return JsonValue::parse(text.str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc % 2 == 0) return usage();
  int checked = 0;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string mode = argv[i];
    const std::string path = argv[i + 1];
    try {
      const JsonValue root = load(path);
      if (mode == "--fastpath") {
        check_fastpath(root);
      } else if (mode == "--iterative") {
        check_iterative(root);
      } else if (mode == "--localsearch") {
        check_localsearch(root);
      } else if (mode == "--stats") {
        check_stats(root);
      } else if (mode == "--profile") {
        check_profile(root);
      } else {
        std::fprintf(stderr, "error: unknown mode '%s'\n", mode.c_str());
        return usage();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_check: %s: %s\n", path.c_str(), e.what());
      return 1;
    }
    std::printf("bench_check: %s: ok (%s)\n", path.c_str(),
                mode.c_str() + 2);
    ++checked;
  }
  return checked > 0 ? 0 : usage();
}
