// The preemptive-relaxation lower bound (core/bound.hpp) must be
// *admissible*: never above the optimal makespan, hence never above any
// heuristic's makespan. Hand-computed cases pin each of the three bound
// terms; the fuzz sweep (tier1, env-widenable) checks admissibility
// against every registered heuristic across the consistency classes.
#include "core/bound.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/optimal.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "sched/problem.hpp"

namespace {

using hcsched::core::gap_pct;
using hcsched::core::GapReference;
using hcsched::core::preemptive_bound;
using hcsched::core::solve_optimal;
using hcsched::etc::Consistency;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;

constexpr Consistency kClasses[] = {Consistency::kInconsistent,
                                    Consistency::kSemiConsistent,
                                    Consistency::kConsistent};

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks,
                        std::size_t machines) {
  Rng rng(seed);
  hcsched::etc::CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return hcsched::etc::CvbEtcGenerator(p).generate(rng);
}

/// Seed count for the fuzz sweeps; nightly CI widens via the environment
/// without a rebuild (same pattern as the fastpath fuzz harness).
std::size_t fuzz_seeds() {
  if (const char* env = std::getenv("HCSCHED_BOUND_FUZZ_SEEDS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 5;
}

TEST(Bound, HandComputedSingleTaskTermDominates) {
  // Per-task minima are 3, 2, 6 -> LB1 = 6; balanced LB3 = 11/3; LB2 = 0.
  const EtcMatrix m =
      EtcMatrix::from_rows({{4, 9, 3}, {7, 2, 8}, {6, 6, 6}});
  EXPECT_DOUBLE_EQ(preemptive_bound(Problem::full(m)), 6.0);
}

TEST(Bound, HandComputedBalancedTermDominates) {
  // Three identical tasks of 4 on two machines: LB1 = 4, LB3 = 12/2 = 6.
  // The optimum is 8 (a 2+1 split) — the bound stays below it.
  const EtcMatrix m = EtcMatrix::from_rows({{4, 4}, {4, 4}, {4, 4}});
  const Problem p = Problem::full(m);
  EXPECT_DOUBLE_EQ(preemptive_bound(p), 6.0);
  EXPECT_DOUBLE_EQ(solve_optimal(p).makespan, 8.0);
}

TEST(Bound, HandComputedReadyTimeTermDominates) {
  // Machine 0 is busy until 10 -> LB2 = 10, which is also the optimum
  // (both unit tasks fit on machine 1 well before then).
  const EtcMatrix m = EtcMatrix::from_rows({{1, 1}, {1, 1}});
  const Problem p(m, {0, 1}, {0, 1}, {10.0, 0.0});
  EXPECT_DOUBLE_EQ(preemptive_bound(p), 10.0);
  EXPECT_DOUBLE_EQ(solve_optimal(p).makespan, 10.0);
}

TEST(Bound, SingleMachineBoundIsExact) {
  // One machine: LB3 degenerates to the full serial load = the optimum.
  const EtcMatrix m = EtcMatrix::from_rows({{3}, {5}});
  const Problem p = Problem::full(m);
  EXPECT_DOUBLE_EQ(preemptive_bound(p), 8.0);
  EXPECT_DOUBLE_EQ(solve_optimal(p).makespan, 8.0);
}

TEST(Bound, NoMachinesThrows) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2}});
  const Problem none(m, {0}, {});
  EXPECT_THROW((void)preemptive_bound(none), std::invalid_argument);
}

TEST(Bound, NeverExceedsTheProvenOptimum) {
  for (const Consistency consistency : kClasses) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const EtcMatrix m = hcsched::etc::shape_consistency(
          random_matrix(seed, 7, 3), consistency);
      const Problem p = Problem::full(m);
      const auto optimal = solve_optimal(p);
      ASSERT_TRUE(optimal.proven_optimal);
      EXPECT_LE(preemptive_bound(p), optimal.makespan + 1e-9)
          << hcsched::etc::to_string(consistency) << " seed " << seed;
      // solve_optimal reports the same bound it pruned with.
      EXPECT_DOUBLE_EQ(optimal.lower_bound, preemptive_bound(p));
      EXPECT_LE(optimal.lower_bound, optimal.makespan + 1e-9);
    }
  }
}

// Satellite: admissibility fuzz — the bound must sit at or below the
// makespan of *every* registered heuristic on every fuzzed instance,
// including sizes far beyond what BnB can certify.
TEST(Bound, AdmissibleForEveryRegisteredHeuristic) {
  const std::size_t seeds = fuzz_seeds();
  for (const Consistency consistency : kClasses) {
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const EtcMatrix m = hcsched::etc::shape_consistency(
          random_matrix(seed ^ 0xb0u, 12, 4), consistency);
      const Problem p = Problem::full(m);
      const double bound = preemptive_bound(p);
      for (const std::string& name :
           hcsched::heuristics::known_heuristic_names()) {
        const auto h = hcsched::heuristics::make_heuristic(name);
        TieBreaker ties;
        EXPECT_LE(bound, h->map(p, ties).makespan() + 1e-9)
            << name << " " << hcsched::etc::to_string(consistency)
            << " seed " << seed;
      }
    }
  }
}

TEST(Bound, GapPctAgainstReference) {
  GapReference reference;
  reference.value = 8.0;
  EXPECT_DOUBLE_EQ(gap_pct(10.0, reference), 0.25);
  EXPECT_DOUBLE_EQ(gap_pct(8.0, reference), 0.0);
  // Degenerate zero-reference instances report a zero gap, not a NaN.
  reference.value = 0.0;
  EXPECT_DOUBLE_EQ(gap_pct(0.0, reference), 0.0);
}

TEST(Bound, GapReferenceFallsBackToBoundOnLargeInstances) {
  const EtcMatrix m = random_matrix(3, 20, 5);  // beyond exact_max_tasks
  const Problem p = Problem::full(m);
  const GapReference reference = hcsched::core::gap_reference(p);
  EXPECT_FALSE(reference.exact);
  EXPECT_EQ(reference.nodes_explored, 0u);
  EXPECT_DOUBLE_EQ(reference.value, preemptive_bound(p));
}

TEST(Bound, GapReferenceIsExactOnSmallInstances) {
  const EtcMatrix m = random_matrix(4, 8, 3);
  const Problem p = Problem::full(m);
  const GapReference reference = hcsched::core::gap_reference(p);
  ASSERT_TRUE(reference.exact);
  EXPECT_GT(reference.nodes_explored, 0u);
  EXPECT_NEAR(reference.value, solve_optimal(p).makespan, 1e-12);
}

}  // namespace
