// End-to-end integration: generator -> heuristics -> iterative technique ->
// metrics/reporting, wired the way the examples and benches use the API.
#include <gtest/gtest.h>

#include <sstream>

#include "core/iterative.hpp"
#include "core/theorems.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "etc/etc_io.hpp"
#include "heuristics/registry.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "sim/experiment.hpp"

namespace {

using hcsched::core::IterativeMinimizer;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;

TEST(Integration, FullPipelineOverAllHeuristics) {
  Rng rng(123);
  hcsched::etc::CvbParams params;
  params.num_tasks = 20;
  params.num_machines = 5;
  const EtcMatrix matrix = hcsched::etc::shape_consistency(
      hcsched::etc::CvbEtcGenerator(params).generate(rng),
      hcsched::etc::Consistency::kSemiConsistent);
  const Problem problem = Problem::full(matrix);

  for (const auto& heuristic : hcsched::heuristics::all_heuristics()) {
    TieBreaker ties;
    const auto result =
        IterativeMinimizer{}.run(*heuristic, problem, ties);
    // Structure.
    EXPECT_GE(result.iterations.size(), 2u) << heuristic->name();
    EXPECT_EQ(result.final_finishing_times.size(), 5u) << heuristic->name();
    for (const auto& it : result.iterations) {
      EXPECT_TRUE(hcsched::sched::is_valid(it.schedule))
          << heuristic->name() << " iteration " << it.index;
    }
    // Reporting works on every iteration's schedule.
    const std::string gantt =
        hcsched::report::render_gantt(result.original().schedule);
    EXPECT_NE(gantt.find("m0 |"), std::string::npos);
    // The original makespan machine's finishing time is always frozen.
    EXPECT_DOUBLE_EQ(
        result.final_finish_of(result.original().makespan_machine),
        result.original().makespan)
        << heuristic->name();
  }
}

TEST(Integration, SerializedMatrixReproducesIdenticalRun) {
  Rng rng(321);
  hcsched::etc::CvbParams params;
  params.num_tasks = 15;
  params.num_machines = 4;
  const EtcMatrix matrix =
      hcsched::etc::CvbEtcGenerator(params).generate(rng);
  const EtcMatrix restored =
      hcsched::etc::from_csv(hcsched::etc::to_csv(matrix));

  const auto minmin = hcsched::heuristics::make_heuristic("Min-Min");
  TieBreaker t1;
  TieBreaker t2;
  const auto a = IterativeMinimizer{}.run(*minmin, Problem::full(matrix), t1);
  const auto b =
      IterativeMinimizer{}.run(*minmin, Problem::full(restored), t2);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_TRUE(
        a.iterations[i].schedule.same_mapping(b.iterations[i].schedule));
  }
}

TEST(Integration, ProductionScenarioChangeAccounting) {
  // The paper's motivating scenario (§1): the technique *may* make
  // non-makespan machines available earlier — but, as the paper proves, no
  // greedy heuristic guarantees it. Verify the accounting is coherent and
  // that an invariant heuristic (Min-Min, deterministic ties) reports
  // exactly zero change.
  Rng rng(777);
  hcsched::etc::CvbParams params;
  params.num_tasks = 25;
  params.num_machines = 6;
  const EtcMatrix matrix =
      hcsched::etc::CvbEtcGenerator(params).generate(rng);
  const Problem problem = Problem::full(matrix);

  const auto sufferage = hcsched::heuristics::make_heuristic("Sufferage");
  TieBreaker t1;
  const auto suff_result = IterativeMinimizer{}.run(*sufferage, problem, t1);
  const auto summary = hcsched::sched::summarize_changes(
      suff_result.original_finishing_times(), [&] {
        std::vector<double> after;
        for (const auto& [m, t] : suff_result.final_finishing_times) {
          (void)m;
          after.push_back(t);
        }
        return after;
      }());
  EXPECT_EQ(summary.total(), 6u);
  // The original makespan machine is frozen, so at least one machine is
  // unchanged.
  EXPECT_GE(summary.unchanged, 1u);

  const auto minmin = hcsched::heuristics::make_heuristic("Min-Min");
  TieBreaker t2;
  const auto mm_result = IterativeMinimizer{}.run(*minmin, problem, t2);
  const auto mm_after = [&] {
    std::vector<double> after;
    for (const auto& [m, t] : mm_result.final_finishing_times) {
      (void)m;
      after.push_back(t);
    }
    return after;
  }();
  const auto mm_summary = hcsched::sched::summarize_changes(
      mm_result.original_finishing_times(), mm_after);
  EXPECT_EQ(mm_summary.unchanged, 6u);  // the paper's Min-Min theorem
}

TEST(Integration, StudyMatchesDirectComputation) {
  // One-trial study must agree with running the pipeline by hand.
  hcsched::sim::StudyParams sp;
  sp.heuristics = {"MCT"};
  sp.cvb.num_tasks = 10;
  sp.cvb.num_machines = 3;
  sp.trials = 1;
  sp.seed = 9;
  hcsched::sim::ThreadPool pool(1);
  const auto rows = hcsched::sim::run_iterative_study(sp, pool);
  ASSERT_EQ(rows.size(), 1u);

  Rng trial_rng = Rng(9).split(0);
  const EtcMatrix matrix =
      hcsched::etc::CvbEtcGenerator(sp.cvb).generate(trial_rng);
  const auto mct = hcsched::heuristics::make_heuristic("MCT");
  TieBreaker ties;
  const auto result =
      IterativeMinimizer{}.run(*mct, Problem::full(matrix), ties);
  EXPECT_NEAR(rows[0].original_makespan.mean(), result.original().makespan,
              1e-9);
}

}  // namespace
