// Thread-pool / counters stress tests: the workload the TSan CI job runs.
//
// Each test provokes a cross-thread interleaving that the plain unit tests
// do not: many external producers racing on submit(), teardown with a deep
// queue (shutdown-while-busy), concurrent parallel_for_chunks callers, and
// counter buffers merging on thread exit while another thread snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "obs/counters.hpp"
#include "sim/thread_pool.hpp"

namespace hcsched {
namespace {

using obs::Counter;

TEST(ThreadPoolStress, ManyProducersManyConsumers) {
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kJobsPerProducer = 200;

  sim::ThreadPool pool(4);
  std::atomic<std::uint64_t> executed{0};
  std::vector<std::future<void>> futures(kProducers * kJobsPerProducer);

  {
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t j = 0; j < kJobsPerProducer; ++j) {
          futures[p * kJobsPerProducer + j] = pool.submit([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(executed.load(), kProducers * kJobsPerProducer);
}

TEST(ThreadPoolStress, ShutdownWhileBusyDrainsQueue) {
  constexpr std::size_t kJobs = 64;
  std::atomic<std::uint64_t> executed{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kJobs);
  {
    sim::ThreadPool pool(2);
    for (std::size_t j = 0; j < kJobs; ++j) {
      futures.push_back(pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destructor runs with most of the queue still pending; the documented
    // contract is drain-then-join, never drop.
  }
  EXPECT_EQ(executed.load(), kJobs);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolStress, ConcurrentParallelForChunksCallers) {
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kRange = 1000;

  sim::ThreadPool pool(4);
  std::atomic<std::uint64_t> covered{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      pool.parallel_for_chunks(kRange,
                               [&covered](std::size_t begin, std::size_t end) {
                                 covered.fetch_add(
                                     end - begin,
                                     std::memory_order_relaxed);
                               });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(covered.load(), kCallers * kRange);
}

TEST(ThreadPoolStress, ExceptionsSurfaceWithoutCorruptingPool) {
  sim::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_chunks(
          8, [](std::size_t, std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> ok{0};
  pool.parallel_for_chunks(
      8, [&ok](std::size_t begin, std::size_t end) {
        ok.fetch_add(static_cast<int>(end - begin),
                     std::memory_order_relaxed);
      });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolStress, CancelMidParallelForChunksUnderContention) {
  // Many rounds of parallel_for_chunks racing against a canceller thread:
  // every round must return (no deadlock), every started body must finish
  // before parallel_for_chunks does (no dangling references to `token` or
  // `processed`, which live on this stack frame), and chunks not yet
  // started when the flag fires are skipped entirely.
  constexpr std::size_t kRounds = 16;
  constexpr std::size_t kRange = 1 << 12;

  sim::ThreadPool pool(4);
  for (std::size_t round = 0; round < kRounds; ++round) {
    core::CancelToken token;
    std::atomic<std::size_t> processed{0};
    std::thread canceller([&token, round] {
      // Vary the cancel point from "immediately" to "well into the batch".
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      token.request_cancel();
    });
    pool.parallel_for_chunks(
        kRange,
        [&processed](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            if (core::cancellation_requested()) return;
            processed.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(1));
          }
        },
        &token);
    canceller.join();
    EXPECT_TRUE(token.cancelled());
    EXPECT_LE(processed.load(), kRange);
  }
  // The pool survives repeated cancellations: an uncancelled batch still
  // covers the whole range.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_chunks(256,
                           [&covered](std::size_t begin, std::size_t end) {
                             covered.fetch_add(end - begin,
                                               std::memory_order_relaxed);
                           });
  EXPECT_EQ(covered.load(), 256u);
}

#if HCSCHED_TRACE

TEST(ThreadPoolStress, CounterMergeOnThreadExit) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 1000;

  obs::counters::reset();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
          obs::counters::add(Counter::kEtcCellEvaluations);
        }
        // No explicit flush: the thread-local buffer's destructor must
        // publish the counts when this thread exits.
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const auto snap = obs::counters::snapshot();
  EXPECT_EQ(snap[Counter::kEtcCellEvaluations], kThreads * kAddsPerThread);
}

TEST(ThreadPoolStress, SnapshotRacesFlushingWorkers) {
  // Readers snapshotting while workers add and flush: totals must come out
  // exact once everyone is joined, and intermediate snapshots monotone.
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kAddsPerWriter = 5000;

  obs::counters::reset();
  std::atomic<bool> stop_reader{false};
  std::thread reader([&stop_reader] {
    std::uint64_t last = 0;
    while (!stop_reader.load(std::memory_order_acquire)) {
      const auto snap = obs::counters::snapshot();
      const std::uint64_t now = snap[Counter::kTieDecisions];
      EXPECT_GE(now, last);
      last = now;
    }
  });
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (std::size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([] {
        for (std::uint64_t i = 0; i < kAddsPerWriter; ++i) {
          obs::counters::add(Counter::kTieDecisions);
          if (i % 64 == 0) obs::counters::flush_thread();
        }
      });
    }
    for (std::thread& t : writers) t.join();
  }
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(obs::counters::snapshot()[Counter::kTieDecisions],
            kWriters * kAddsPerWriter);
}

TEST(ThreadPoolStress, HistogramsRecordUnderContention) {
  obs::counters::reset();
  sim::ThreadPool pool(4);
  constexpr std::size_t kJobs = 256;
  std::vector<std::future<void>> futures;
  futures.reserve(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(obs::pool_wait_histogram().count(), kJobs);
  EXPECT_EQ(obs::pool_run_histogram().count(), kJobs);
  EXPECT_GE(obs::pool_run_histogram().quantile_upper_bound_ns(0.99),
            obs::pool_run_histogram().quantile_upper_bound_ns(0.50));
}

#endif  // HCSCHED_TRACE

}  // namespace
}  // namespace hcsched
