// Golden-pin tests for the analyzer's C++ lexer (tools/analyze/lexer.hpp):
// the lexical shapes that defeated the old regex linter. Each test pins the
// exact (kind, text, line) sequence so a lexer regression shows up as a
// readable token diff, not as a silently mis-fired lint rule.
#include "analyze/lexer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using analyze::Tok;
using analyze::Token;
using analyze::lex;

std::string kind_name(Tok k) {
  switch (k) {
    case Tok::Identifier: return "ident";
    case Tok::Number: return "number";
    case Tok::String: return "string";
    case Tok::Char: return "char";
    case Tok::Punct: return "punct";
    case Tok::HeaderName: return "header";
    case Tok::Directive: return "directive";
    case Tok::Comment: return "comment";
  }
  return "?";
}

// Render a token stream as "kind@line:text" lines — the golden format.
std::string render(const std::vector<Token>& toks) {
  std::string out;
  for (const Token& t : toks) {
    out += kind_name(t.kind);
    out += '@';
    out += std::to_string(t.line);
    out += ':';
    out += t.text;
    out += '\n';
  }
  return out;
}

TEST(AnalyzeLexer, RawStringCustomDelimiter) {
  // The body of a raw string is taken verbatim: the ")(" inside does not
  // close it, only the ")xy\"" sequence matching the custom delimiter does.
  const auto toks = lex("auto s = R\"xy(a)(\"b)xy\";\n");
  EXPECT_EQ(render(toks),
            "ident@1:auto\n"
            "ident@1:s\n"
            "punct@1:=\n"
            "string@1:R\"xy(a)(\"b)xy\"\n"
            "punct@1:;\n");
}

TEST(AnalyzeLexer, RawStringBodyIsNotSpliced) {
  // A backslash-newline inside a raw string body is content, not a line
  // continuation ([lex.phases]: splicing is reverted inside raw strings).
  const auto toks = lex("auto s = R\"(ab\\\ncd)\";\nint z;\n");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_EQ(toks[3].kind, Tok::String);
  EXPECT_EQ(toks[3].text, "R\"(ab\\\ncd)\"");
  EXPECT_EQ(toks[3].line, 1u);
  EXPECT_EQ(toks[3].end_line, 2u);
  // The declaration after the raw string lands on physical line 3.
  EXPECT_EQ(toks[5].text, "int");
  EXPECT_EQ(toks[5].line, 3u);
}

TEST(AnalyzeLexer, DigitSeparators) {
  // pp-numbers swallow digit separators, hex, and exponent suffixes whole.
  const auto toks = lex("auto n = 1'000'000 + 0xFF'FFp-3f + 1.5e+10;\n");
  EXPECT_EQ(render(toks),
            "ident@1:auto\n"
            "ident@1:n\n"
            "punct@1:=\n"
            "number@1:1'000'000\n"
            "punct@1:+\n"
            "number@1:0xFF'FFp-3f\n"
            "punct@1:+\n"
            "number@1:1.5e+10\n"
            "punct@1:;\n");
}

TEST(AnalyzeLexer, BlockCommentsDoNotNest) {
  // C++ block comments do not nest: the first "*/" ends the comment, so the
  // trailing "*/" lexes as punctuation ("*" then "/").
  const auto toks = lex("/* outer /* inner */ int x; /* tail */\n");
  EXPECT_EQ(render(toks),
            "comment@1:/* outer /* inner */\n"
            "ident@1:int\n"
            "ident@1:x\n"
            "punct@1:;\n"
            "comment@1:/* tail */\n");
}

TEST(AnalyzeLexer, LineContinuationInsideStringLiteral) {
  // A backslash-newline inside an ordinary string literal splices the two
  // physical lines into one logical literal; token text holds the spliced
  // form while line/end_line keep the physical extent.
  const auto toks = lex("const char* s = \"ab\\\ncd\";\nint after;\n");
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_EQ(toks[5].kind, Tok::String);
  EXPECT_EQ(toks[5].text, "\"abcd\"");
  EXPECT_EQ(toks[5].line, 1u);
  EXPECT_EQ(toks[5].end_line, 2u);
  EXPECT_EQ(toks[7].text, "int");
  EXPECT_EQ(toks[7].line, 3u);
}

TEST(AnalyzeLexer, LineContinuationInsideLineComment) {
  // A // comment that ends in a backslash swallows the next physical line.
  const auto toks = lex("// part one \\\npart two\nint x;\n");
  ASSERT_GE(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::Comment);
  EXPECT_EQ(toks[0].text, "// part one part two");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(AnalyzeLexer, CrlfAndLoneCrNewlines) {
  // CRLF and lone-CR line endings count lines exactly like LF and never
  // leak '\r' into token text.
  const auto toks = lex("int a;\r\nint b;\rint c;\n");
  EXPECT_EQ(render(toks),
            "ident@1:int\n"
            "ident@1:a\n"
            "punct@1:;\n"
            "ident@2:int\n"
            "ident@2:b\n"
            "punct@2:;\n"
            "ident@3:int\n"
            "ident@3:c\n"
            "punct@3:;\n");
}

TEST(AnalyzeLexer, IncludeHeaderNameToken) {
  // Directive intro is normalized ("#  include" -> "#include") and both
  // include operand spellings lex as a single HeaderName token.
  const auto toks = lex("#  include <vector>\n#include \"sched/tie.hpp\"\n");
  EXPECT_EQ(render(toks),
            "directive@1:#include\n"
            "header@1:<vector>\n"
            "directive@2:#include\n"
            "header@2:\"sched/tie.hpp\"\n");
}

TEST(AnalyzeLexer, MaximalMunchPunctuation) {
  const auto toks = lex("a<=>b; x<<=1; p->*q;\n");
  EXPECT_EQ(render(toks),
            "ident@1:a\n"
            "punct@1:<=>\n"
            "ident@1:b\n"
            "punct@1:;\n"
            "ident@1:x\n"
            "punct@1:<<=\n"
            "number@1:1\n"
            "punct@1:;\n"
            "ident@1:p\n"
            "punct@1:->*\n"
            "ident@1:q\n"
            "punct@1:;\n");
}

TEST(AnalyzeLexer, SplicedIdentifierAcrossLines) {
  // Phase-2 splicing happens before tokenization, so an identifier split by
  // a backslash-newline is one token anchored at its first character.
  const auto toks = lex("int spli\\\nced = 0;\n");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1].kind, Tok::Identifier);
  EXPECT_EQ(toks[1].text, "spliced");
  EXPECT_EQ(toks[1].line, 1u);
  EXPECT_EQ(toks[1].end_line, 2u);
}

}  // namespace
