#include <gtest/gtest.h>

#include <sstream>

#include "report/csv.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

namespace {

using hcsched::report::CsvWriter;
using hcsched::report::render_gantt;
using hcsched::report::TextTable;

TEST(TextTable, NumFormatsLikeThePaper) {
  EXPECT_EQ(TextTable::num(6.0), "6");
  EXPECT_EQ(TextTable::num(6.5), "6.5");
  EXPECT_EQ(TextTable::num(0.0), "0");
  EXPECT_EQ(TextTable::num(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(TextTable::num(2.50), "2.5");
  EXPECT_EQ(TextTable::num(-3.0), "-3");
}

TEST(TextTable, RendersAlignedGrid) {
  TextTable t({"task", "machine"});
  t.add_row({"t0", "m1"});
  t.add_row({"t10", "m22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| task | machine |"), std::string::npos);
  EXPECT_NE(s.find("| t10  | m22     |"), std::string::npos);
  // Four rules + header + 2 rows... rules: top, under-header, bottom = 3.
  EXPECT_EQ(std::count(s.begin(), s.end(), '+'), 3 * 3);
}

TEST(TextTable, HandlesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 1 |   |   |"), std::string::npos);
}

TEST(TextTable, NumRows) {
  TextTable t;
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Gantt, ShowsEveryMachineAndCompletionTime) {
  const auto m = hcsched::etc::EtcMatrix::from_rows({{2, 9}, {9, 3}});
  hcsched::sched::Schedule s(hcsched::sched::Problem::full(m));
  s.assign(0, 0);
  s.assign(1, 1);
  const std::string g = render_gantt(s);
  EXPECT_NE(g.find("m0 |t0"), std::string::npos);
  EXPECT_NE(g.find("m1 |t1"), std::string::npos);
  EXPECT_NE(g.find("CT = 2"), std::string::npos);
  EXPECT_NE(g.find("CT = 3"), std::string::npos);
}

TEST(Gantt, BoxWidthTracksEtc) {
  const auto m = hcsched::etc::EtcMatrix::from_rows({{1}, {9}});
  hcsched::sched::Schedule s(hcsched::sched::Problem::full(m));
  s.assign(0, 0);
  s.assign(1, 0);
  const std::string g =
      render_gantt(s, {.chars_per_unit = 4.0, .target_width = 60});
  // t1's box (9 units) must be visibly longer than t0's (1 unit).
  const auto t0_pos = g.find("t0");
  const auto t1_pos = g.find("t1");
  ASSERT_NE(t0_pos, std::string::npos);
  ASSERT_NE(t1_pos, std::string::npos);
  const auto bar_after_t0 = g.find('|', t0_pos);
  const auto bar_after_t1 = g.find('|', t1_pos);
  EXPECT_GT(bar_after_t1 - t1_pos, bar_after_t0 - t0_pos);
}

TEST(Gantt, EmptyMachineStillListed) {
  const auto m = hcsched::etc::EtcMatrix::from_rows({{2, 9}});
  hcsched::sched::Schedule s(hcsched::sched::Problem::full(m));
  s.assign(0, 0);
  const std::string g = render_gantt(s);
  EXPECT_NE(g.find("m1 |"), std::string::npos);
  EXPECT_NE(g.find("CT = 0"), std::string::npos);
}

TEST(Csv, EscapesSpecialCells) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"h1", "h2"});
  w.write_row({"1", "a,b"});
  EXPECT_EQ(os.str(), "h1,h2\n1,\"a,b\"\n");
}

}  // namespace
