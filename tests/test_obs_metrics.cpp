// Typed metrics registry: bucket boundaries, registration semantics,
// snapshot JSON round-trips, the Prometheus text exposition golden, reset
// behaviour, and the HCSCHED_TRACE kill switch on the macros. (Named
// test_obs_metrics to keep clear of test_metrics.cpp, which covers the
// scheduling-quality metrics of the paper.)
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace hcsched;
using obs::MetricHistogram;

TEST(MetricHistogramBuckets, IndexMatchesLog4Boundaries) {
  // Bucket i holds 4^i < v <= 4^(i+1); bucket 0 additionally takes [0, 4].
  EXPECT_EQ(MetricHistogram::bucket_index(0), 0u);
  EXPECT_EQ(MetricHistogram::bucket_index(1), 0u);
  EXPECT_EQ(MetricHistogram::bucket_index(4), 0u);
  EXPECT_EQ(MetricHistogram::bucket_index(5), 1u);
  EXPECT_EQ(MetricHistogram::bucket_index(16), 1u);
  EXPECT_EQ(MetricHistogram::bucket_index(17), 2u);
  EXPECT_EQ(MetricHistogram::bucket_index(64), 2u);
  EXPECT_EQ(MetricHistogram::bucket_index(65), 3u);
  EXPECT_EQ(MetricHistogram::bucket_index(~std::uint64_t{0}),
            MetricHistogram::kBuckets - 1);
}

TEST(MetricHistogramBuckets, UpperBoundsArePowersOfFourThenInf) {
  EXPECT_EQ(MetricHistogram::bucket_upper_bound(0), 4u);
  EXPECT_EQ(MetricHistogram::bucket_upper_bound(1), 16u);
  EXPECT_EQ(MetricHistogram::bucket_upper_bound(2), 64u);
  EXPECT_EQ(MetricHistogram::bucket_upper_bound(MetricHistogram::kBuckets - 1),
            ~std::uint64_t{0});
  // Every observed value lands in the bucket whose bound covers it.
  for (std::size_t i = 0; i + 1 < MetricHistogram::kBuckets; ++i) {
    const std::uint64_t bound = MetricHistogram::bucket_upper_bound(i);
    EXPECT_EQ(MetricHistogram::bucket_index(bound), i);
    EXPECT_EQ(MetricHistogram::bucket_index(bound + 1), i + 1);
  }
}

TEST(MetricsRegistry, SameNameYieldsSameInstrument) {
  obs::MetricsRegistry registry;
  obs::MetricCounter& a = registry.counter("hcsched_test_ops_total", "ops");
  obs::MetricCounter& b = registry.counter("hcsched_test_ops_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("hcsched_test_mixed");
  EXPECT_THROW(registry.gauge("hcsched_test_mixed"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("hcsched_test_mixed"),
               std::invalid_argument);
}

TEST(MetricsRegistry, InvalidNamesThrow) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("9leading_digit"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has-dash"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space"), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotJsonRoundTripsThroughParser) {
  obs::MetricsRegistry registry;
  registry.counter("hcsched_test_ops_total", "Test ops").add(3);
  registry.gauge("hcsched_test_depth").set(-2);
  obs::MetricHistogram& h =
      registry.histogram("hcsched_test_lat_ns", "Latency");
  h.observe(1);
  h.observe(5);
  h.observe(100);

  const obs::JsonValue parsed =
      obs::JsonValue::parse(registry.snapshot_json().dump());
  const auto& metrics = parsed.at("metrics").as_array();
  ASSERT_EQ(metrics.size(), 3u);  // sorted by name
  EXPECT_EQ(metrics[0].at("name").as_string(), "hcsched_test_depth");
  EXPECT_EQ(metrics[0].at("kind").as_string(), "gauge");
  EXPECT_DOUBLE_EQ(metrics[0].at("value").as_number(), -2.0);
  EXPECT_EQ(metrics[0].find("help"), nullptr);  // empty help elided

  EXPECT_EQ(metrics[1].at("name").as_string(), "hcsched_test_lat_ns");
  EXPECT_EQ(metrics[1].at("kind").as_string(), "histogram");
  EXPECT_DOUBLE_EQ(metrics[1].at("count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(metrics[1].at("sum").as_number(), 106.0);
  const auto& buckets = metrics[1].at("buckets").as_array();
  // Non-empty buckets 0 (v=1), 1 (v=5), 3 (v=100) plus the pinned +Inf.
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].at("le").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(buckets[0].at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[2].at("le").as_number(), 256.0);
  EXPECT_DOUBLE_EQ(buckets[2].at("count").as_number(), 1.0);
  EXPECT_EQ(buckets[3].at("le").as_string(), "+Inf");

  EXPECT_EQ(metrics[2].at("name").as_string(), "hcsched_test_ops_total");
  EXPECT_EQ(metrics[2].at("help").as_string(), "Test ops");
  EXPECT_DOUBLE_EQ(metrics[2].at("value").as_number(), 3.0);
}

TEST(MetricsRegistry, PrometheusExpositionMatchesGolden) {
  // A LOCAL registry: the global one accumulates across the whole test
  // binary and cannot be pinned.
  obs::MetricsRegistry registry;
  registry.counter("hcsched_test_ops_total", "Test ops").add(3);
  registry.gauge("hcsched_test_depth").set(-2);
  obs::MetricHistogram& h =
      registry.histogram("hcsched_test_lat_ns", "Latency");
  h.observe(1);
  h.observe(5);
  h.observe(100);

  const std::string text = registry.prometheus_text();

  // Families appear sorted by name; the gauge (no help string) leads.
  EXPECT_EQ(text.rfind("# TYPE hcsched_test_depth gauge\n"
                       "hcsched_test_depth -2\n",
                       0),
            0u);
  EXPECT_NE(text.find("# HELP hcsched_test_lat_ns Latency\n"
                      "# TYPE hcsched_test_lat_ns histogram\n"),
            std::string::npos);
  // Cumulative bucket counts: 1 at le=4, 2 from le=16, 3 from le=256 on.
  EXPECT_NE(text.find("hcsched_test_lat_ns_bucket{le=\"4\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("hcsched_test_lat_ns_bucket{le=\"16\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("hcsched_test_lat_ns_bucket{le=\"64\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("hcsched_test_lat_ns_bucket{le=\"256\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("hcsched_test_lat_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("hcsched_test_lat_ns_sum 106\n"), std::string::npos);
  EXPECT_NE(text.find("hcsched_test_lat_ns_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP hcsched_test_ops_total Test ops\n"
                      "# TYPE hcsched_test_ops_total counter\n"
                      "hcsched_test_ops_total 3\n"),
            std::string::npos);

  // Exposition-format sanity: every line is a comment or `name[{labels}]
  // value` with a parseable numeric value.
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.rfind("# ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW({
      (void)std::stod(line.substr(space + 1));
    }) << line;
  }
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  obs::MetricsRegistry registry;
  obs::MetricCounter& c = registry.counter("hcsched_test_reset_total");
  c.add(7);
  obs::MetricHistogram& h = registry.histogram("hcsched_test_reset_ns");
  h.observe(42);
  registry.reset();
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(c.value(), 0u);  // cached reference stays valid
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsMacros, HonourCompileTimeKillSwitch) {
  // The macro registers in the GLOBAL registry on first execution — but
  // only when tracing is compiled in; under -DHCSCHED_TRACE=0 the site
  // vanishes and the name never appears.
  HCSCHED_METRIC_COUNT("hcsched_test_macro_probe_total", "Macro probe", 1);
  bool found = false;
  const obs::JsonValue snapshot = obs::metrics::snapshot_json();
  for (const obs::JsonValue& m : snapshot.at("metrics").as_array()) {
    if (m.at("name").as_string() == "hcsched_test_macro_probe_total") {
      found = true;
      EXPECT_GE(m.at("value").as_number(), 1.0);
    }
  }
  EXPECT_EQ(found, obs::kTraceCompiledIn);
}

}  // namespace
