#include "heuristics/swa.hpp"

#include <gtest/gtest.h>

#include "core/paper_examples.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::heuristics::Swa;
using hcsched::heuristics::SwaMode;
using hcsched::heuristics::SwaStep;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

TEST(Swa, RejectsBadThresholds) {
  EXPECT_THROW(Swa(0.6, 0.5), std::invalid_argument);   // low > high
  EXPECT_THROW(Swa(-0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(Swa(0.2, 1.5), std::invalid_argument);
}

TEST(Swa, FirstTaskAlwaysUsesMct) {
  const EtcMatrix m = EtcMatrix::from_rows({{9, 1}});
  Swa swa;
  TieBreaker ties;
  std::vector<SwaStep> trace;
  swa.map_traced(Problem::full(m), ties, &trace);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].mode, SwaMode::kMct);
  EXPECT_FALSE(trace[0].balance_index.has_value());  // the paper's "x"
  EXPECT_EQ(trace[0].machine, 1);
}

TEST(Swa, SwitchesToMetWhenBalanced) {
  // Two machines; after two MCT mappings the load is perfectly balanced
  // (BI = 1 > high), so the third task must be mapped by MET.
  const EtcMatrix m = EtcMatrix::from_rows({
      {2, 9},
      {9, 2},
      {5, 9},  // MET machine is m0 even though m1 is equally ready
  });
  Swa swa(0.35, 0.49);
  TieBreaker ties;
  std::vector<SwaStep> trace;
  swa.map_traced(Problem::full(m), ties, &trace);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[1].mode, SwaMode::kMct);
  ASSERT_TRUE(trace[2].balance_index.has_value());
  EXPECT_DOUBLE_EQ(*trace[2].balance_index, 1.0);
  EXPECT_EQ(trace[2].mode, SwaMode::kMet);
  EXPECT_EQ(trace[2].machine, 0);
}

TEST(Swa, SwitchesBackToMctWhenImbalanced) {
  // Force MET mode, then let the imbalance grow past the low threshold.
  const EtcMatrix m = EtcMatrix::from_rows({
      {2, 9},
      {9, 2},   // after this: ready (2, 2), BI = 1 -> MET
      {1, 9},   // MET -> m0; ready (3, 2)
      {10, 9},  // BI after = 2/3 > high?? no: 2/3 > 0.49 -> stays MET...
  });
  // Use tight thresholds so the trajectory crosses them.
  Swa swa(0.75, 0.8);
  TieBreaker ties;
  std::vector<SwaStep> trace;
  swa.map_traced(Problem::full(m), ties, &trace);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[2].mode, SwaMode::kMet);  // BI = 1 > 0.8
  // After t2: ready (3, 2), BI = 2/3 < 0.75 -> back to MCT for t3.
  ASSERT_TRUE(trace[3].balance_index.has_value());
  EXPECT_NEAR(*trace[3].balance_index, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(trace[3].mode, SwaMode::kMct);
  EXPECT_EQ(trace[3].machine, 1);  // MCT: CT 11 on m1 beats 13 on m0
}

TEST(Swa, PaperOriginalMappingTraceMatchesTable10) {
  const auto example = hcsched::core::swa_example();
  Swa swa;  // defaults: low 0.35, high 0.49 (DESIGN.md §4)
  TieBreaker ties;
  std::vector<SwaStep> trace;
  const Schedule s =
      swa.map_traced(Problem::full(*example.matrix), ties, &trace);
  ASSERT_EQ(trace.size(), 5u);
  // Paper Table 10 BI column: x, 0, 0, 1/3, 2/3.
  EXPECT_FALSE(trace[0].balance_index.has_value());
  EXPECT_DOUBLE_EQ(*trace[1].balance_index, 0.0);
  EXPECT_DOUBLE_EQ(*trace[2].balance_index, 0.0);
  EXPECT_NEAR(*trace[3].balance_index, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(*trace[4].balance_index, 2.0 / 3.0, 1e-12);
  // Heuristic column: MCT x4 then MET.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(trace[static_cast<size_t>(i)].mode, SwaMode::kMct);
  EXPECT_EQ(trace[4].mode, SwaMode::kMet);
  // Completion times (6, 5, 5).
  EXPECT_DOUBLE_EQ(s.completion_time(0), 6.0);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 5.0);
  EXPECT_DOUBLE_EQ(s.completion_time(2), 5.0);
}

TEST(Swa, PaperIterativeMappingTraceMatchesTable11) {
  const auto example = hcsched::core::swa_example();
  // First iterative problem: makespan machine m0 and its task t0 removed.
  const Problem p(*example.matrix, {1, 2, 3, 4}, {1, 2});
  Swa swa;
  TieBreaker ties;
  std::vector<SwaStep> trace;
  const Schedule s = swa.map_traced(p, ties, &trace);
  ASSERT_EQ(trace.size(), 4u);
  // Paper Table 11 BI column: x, 0, 1/2, 4/13.
  EXPECT_FALSE(trace[0].balance_index.has_value());
  EXPECT_DOUBLE_EQ(*trace[1].balance_index, 0.0);
  EXPECT_DOUBLE_EQ(*trace[2].balance_index, 0.5);
  EXPECT_NEAR(*trace[3].balance_index, 4.0 / 13.0, 1e-12);
  // Heuristic column: MCT, MCT, MET, MCT.
  EXPECT_EQ(trace[0].mode, SwaMode::kMct);
  EXPECT_EQ(trace[1].mode, SwaMode::kMct);
  EXPECT_EQ(trace[2].mode, SwaMode::kMet);
  EXPECT_EQ(trace[3].mode, SwaMode::kMct);
  // Completion times (4, 6.5): the paper's makespan increase 6 -> 6.5.
  EXPECT_DOUBLE_EQ(s.completion_time(1), 4.0);
  EXPECT_DOUBLE_EQ(s.completion_time(2), 6.5);
}

TEST(Swa, DegenerateThresholdsPinTheMode) {
  // high = 1.0 can never be exceeded: SWA stays MCT forever.
  const EtcMatrix m = EtcMatrix::from_rows({{2, 2}, {2, 2}, {2, 2}});
  Swa always_mct(0.0, 1.0);
  TieBreaker ties;
  std::vector<SwaStep> trace;
  always_mct.map_traced(Problem::full(m), ties, &trace);
  for (const SwaStep& step : trace) EXPECT_EQ(step.mode, SwaMode::kMct);
}

}  // namespace
