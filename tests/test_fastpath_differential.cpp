// Differential suite for the incremental two-phase greedy kernel.
//
// The fast path (src/heuristics/fastpath/) must be *indistinguishable* from
// the reference loop except for doing less work: identical assignment
// sequences, completion-time vectors, TieBreaker decision/tie-event counts
// and RNG/script consumption, under every tie policy and consistency class.
// This file is the enforcement: seeded fuzz sweeps through
// run_differential_case (shared with tools/fuzz/fastpath_fuzz.cpp), golden
// pins against the paper's worked examples, a regression pinning the
// reference's load-bearing phase-two list order, and the switch surface
// itself. docs/FASTPATH.md documents the invariant being tested.
//
// covers: fastpath.cpp etc_view.cpp two_phase_fast.cpp differential.cpp
// (stems named for the fastpath-differential lint rule)
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/iterative.hpp"
#include "core/paper_examples.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "etc/etc_matrix.hpp"
#include "heuristics/duplex.hpp"
#include "heuristics/fastpath/differential.hpp"
#include "heuristics/fastpath/etc_view.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/registry.hpp"
#include "obs/counters.hpp"
#include "rng/rng.hpp"
#include "rng/tie_break.hpp"

namespace {

namespace fastpath = hcsched::heuristics::fastpath;
using fastpath::DifferentialCase;
using fastpath::DifferentialOutcome;
using fastpath::Mode;
using fastpath::ScopedMode;
using hcsched::etc::Consistency;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::rng::TiePolicy;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

constexpr Consistency kConsistencies[] = {
    Consistency::kConsistent,
    Consistency::kSemiConsistent,
    Consistency::kInconsistent,
};

/// Sweeps seeds x consistency classes x {Min-Min, Max-Min} for one tie
/// policy, with problem sizes derived from the seed (8..64 tasks on 2..15
/// machines), and asserts zero divergence. Returns the number of cases run
/// so the suite can prove its own breadth.
std::size_t sweep_policy(TiePolicy policy, bool subset,
                         std::size_t num_seeds) {
  std::size_t cases = 0;
  for (std::uint64_t seed = 1; seed <= num_seeds; ++seed) {
    for (const Consistency consistency : kConsistencies) {
      for (const bool prefer_largest : {false, true}) {
        DifferentialCase c;
        c.seed = seed * 1000003 + static_cast<std::uint64_t>(consistency);
        c.tasks = 8 + (seed * 7) % 57;
        c.machines = 2 + (seed * 3) % 14;
        c.consistency = consistency;
        c.policy = policy;
        c.prefer_largest = prefer_largest;
        c.subset = subset;
        const DifferentialOutcome outcome =
            fastpath::run_differential_case(c);
        EXPECT_TRUE(outcome.equivalent)
            << fastpath::describe(c) << ": " << outcome.divergence;
        ++cases;
      }
    }
  }
  return cases;
}

// Together the three sweeps run 450 full-problem trials (25 seeds x 3
// consistency classes x 2 heuristics x 3 policies), clearing the >= 200
// trial / >= 2 class / >= 2 policy bar with margin.

TEST(FastpathDifferential, DeterministicTiesFullProblems) {
  EXPECT_EQ(sweep_policy(TiePolicy::kDeterministic, /*subset=*/false, 25),
            150u);
}

TEST(FastpathDifferential, RandomTiesFullProblems) {
  // Random ties are the hard case: a skipped or extra RNG draw anywhere
  // desynchronizes every later decision, so equivalence here proves the
  // replay bookkeeping exactly matches the reference's.
  EXPECT_EQ(sweep_policy(TiePolicy::kRandom, /*subset=*/false, 25), 150u);
}

TEST(FastpathDifferential, ScriptedTiesFullProblems) {
  EXPECT_EQ(sweep_policy(TiePolicy::kScripted, /*subset=*/false, 25), 150u);
}

TEST(FastpathDifferential, SubsetProblemsWithNonzeroReadyTimes) {
  // Task/machine subsets with nonzero initial ready times — the shape the
  // iterative technique feeds the heuristics after removing machines.
  EXPECT_EQ(sweep_policy(TiePolicy::kDeterministic, /*subset=*/true, 10),
            60u);
  EXPECT_EQ(sweep_policy(TiePolicy::kRandom, /*subset=*/true, 10), 60u);
}

TEST(FastpathDifferential, NarrowEpsilonManufacturesManyTies) {
  // Large v_task/v_machine CVB draws rarely tie to 1e-9; integer-valued
  // matrices (v -> small, rounded means) tie constantly. Exercise the tied
  // regime explicitly: small mean forces coincident completion times.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const auto policy : {TiePolicy::kDeterministic, TiePolicy::kRandom,
                              TiePolicy::kScripted}) {
      DifferentialCase c;
      c.seed = seed;
      c.tasks = 20;
      c.machines = 4;
      c.policy = policy;
      c.mean_task_time = 3.0;  // CVB rounds to a handful of distinct values
      c.v_task = 0.3;
      c.v_machine = 0.3;
      const DifferentialOutcome outcome = fastpath::run_differential_case(c);
      EXPECT_TRUE(outcome.equivalent)
          << fastpath::describe(c) << ": " << outcome.divergence;
    }
  }
}

#if HCSCHED_TRACE
TEST(FastpathDifferential, KernelEvaluatesStrictlyFewerEtcCells) {
  // The point of the kernel: same output, fewer scored cells. On a
  // non-trivial instance the reference charges rounds x tasks x machines
  // while the kernel only rescores invalidated tasks.
  DifferentialCase c;
  c.seed = 42;
  c.tasks = 96;
  c.machines = 16;
  const DifferentialOutcome outcome = fastpath::run_differential_case(c);
  ASSERT_TRUE(outcome.equivalent) << outcome.divergence;
  EXPECT_GT(outcome.reference_cell_evals, 0u);
  EXPECT_LT(outcome.fastpath_cell_evals, outcome.reference_cell_evals);
}
#endif

TEST(FastpathDifferential, IterativeTechniqueIdenticalUnderBothPaths) {
  // End-to-end through core::IterativeMinimizer: the full iterative
  // technique (machine removal, seeding off as in the paper's greedy
  // protocol) must produce identical trajectories whichever path maps.
  for (const char* name : {"Min-Min", "Max-Min", "Duplex"}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      hcsched::etc::CvbParams params;
      params.num_tasks = 40;
      params.num_machines = 8;
      params.mean_task_time = 100.0;
      Rng rng(seed);
      const EtcMatrix matrix = hcsched::etc::CvbEtcGenerator(params)
                                   .generate(rng);
      const Problem problem = Problem::full(matrix);
      const auto heuristic = hcsched::heuristics::make_heuristic(name);
      const hcsched::core::IterativeMinimizer minimizer;

      const auto run_with = [&](Mode mode, std::uint64_t tie_seed) {
        const ScopedMode scope(mode);
        Rng tie_rng(tie_seed);
        TieBreaker ties(tie_rng);
        return minimizer.run(*heuristic, problem, ties);
      };
      const auto ref = run_with(Mode::kForceOff, seed * 31);
      const auto fast = run_with(Mode::kForceOn, seed * 31);

      ASSERT_EQ(ref.iterations.size(), fast.iterations.size())
          << name << " seed " << seed;
      for (std::size_t i = 0; i < ref.iterations.size(); ++i) {
        EXPECT_EQ(ref.iterations[i].makespan, fast.iterations[i].makespan)
            << name << " seed " << seed << " iteration " << i;
        EXPECT_EQ(ref.iterations[i].makespan_machine,
                  fast.iterations[i].makespan_machine)
            << name << " seed " << seed << " iteration " << i;
      }
      ASSERT_EQ(ref.final_finishing_times.size(),
                fast.final_finishing_times.size());
      for (std::size_t i = 0; i < ref.final_finishing_times.size(); ++i) {
        EXPECT_EQ(ref.final_finishing_times[i], fast.final_finishing_times[i])
            << name << " seed " << seed << " machine entry " << i;
      }
    }
  }
}

TEST(FastpathDifferential, PaperExamplesGoldenPinsUnderFastpath) {
  // The paper's worked examples (Tables 1-17) are the repo's ground truth;
  // they must keep matching with the kernel forced on. Only the Min-Min
  // example dispatches through the kernel, but running all six keeps this a
  // pin on the whole dispatch surface.
  const ScopedMode scope(Mode::kForceOn);
  for (const auto& example : hcsched::core::all_paper_examples()) {
    const auto result = hcsched::core::run_paper_example(example);
    EXPECT_TRUE(hcsched::core::example_matches(example, result))
        << example.id << " (" << example.table_refs << ")";
  }
}

TEST(FastpathDifferential, PhaseTwoTieBreaksInOriginalTaskOrder) {
  // Regression for the reference's erase()-maintained list: phase-two ties
  // resolve by position, and positions must stay in original task order.
  // Here t1 and t2 tie at completion time 3 in round 2; the earliest
  // original task (t1) must win. A swap-and-pop "optimization" of the
  // reference's erase would move t2 into t1's position after t0 is mapped,
  // flip the tie to t2, and hand t1 a different machine — a different
  // mapping, not just a different order.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 10}, {4, 3}, {9, 3}});
  const auto run = [&](Mode mode) {
    const ScopedMode scope(mode);
    TieBreaker ties;
    return hcsched::heuristics::detail::two_phase_greedy(
        Problem::full(m), ties, /*prefer_largest=*/false);
  };
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const Schedule s = run(mode);
    const auto& order = s.assignment_order();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0].task, 0);
    EXPECT_EQ(order[1].task, 1);
    EXPECT_EQ(order[2].task, 2);
    EXPECT_EQ(s.machine_of(0), std::optional<hcsched::sched::MachineId>(0));
    EXPECT_EQ(s.machine_of(1), std::optional<hcsched::sched::MachineId>(1));
    EXPECT_EQ(s.machine_of(2), std::optional<hcsched::sched::MachineId>(1));
    EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
  }
}

TEST(FastpathDifferential, EtcViewIsVerbatimCopyOfProblemCells) {
  const EtcMatrix m =
      EtcMatrix::from_rows({{2.5, 9.0, 1.0}, {6.5, 4.0, 8.0}});
  // Subset view: task 1 only, machines {2, 0}, to exercise the gather's
  // index mapping rather than a straight memcpy.
  const Problem p(m, {1}, {2, 0}, {0.0, 0.0});
  const fastpath::EtcView view(p);
  ASSERT_EQ(view.num_tasks(), 1u);
  ASSERT_EQ(view.num_slots(), 2u);
  EXPECT_EQ(view.row(0)[0], 8.0);
  EXPECT_EQ(view.row(0)[1], 6.5);
}

TEST(FastpathSwitch, EnvValueParsing) {
  EXPECT_FALSE(fastpath::env_value_enables("0"));
  EXPECT_FALSE(fastpath::env_value_enables("off"));
  EXPECT_FALSE(fastpath::env_value_enables("OFF"));
  EXPECT_FALSE(fastpath::env_value_enables("false"));
  EXPECT_FALSE(fastpath::env_value_enables("False"));
  EXPECT_FALSE(fastpath::env_value_enables("no"));
  EXPECT_TRUE(fastpath::env_value_enables(nullptr));
  EXPECT_TRUE(fastpath::env_value_enables(""));
  EXPECT_TRUE(fastpath::env_value_enables("1"));
  EXPECT_TRUE(fastpath::env_value_enables("on"));
  EXPECT_TRUE(fastpath::env_value_enables("anything"));
}

TEST(FastpathSwitch, ScopedModeForcesAndRestores) {
  const Mode original = fastpath::mode();
  {
    const ScopedMode off(Mode::kForceOff);
    EXPECT_EQ(fastpath::mode(), Mode::kForceOff);
    EXPECT_FALSE(fastpath::enabled());
    {
      const ScopedMode on(Mode::kForceOn);
      EXPECT_EQ(fastpath::mode(), Mode::kForceOn);
      EXPECT_EQ(fastpath::enabled(), fastpath::compiled());
    }
    EXPECT_EQ(fastpath::mode(), Mode::kForceOff);
  }
  EXPECT_EQ(fastpath::mode(), original);
}

TEST(FastpathSwitch, DispatcherFollowsMode) {
  // Not much to distinguish the paths behaviorally (that is the point), so
  // pin the dispatch itself through the cell-evaluation counter: on a
  // many-round instance the kernel charges strictly fewer cells.
  const EtcMatrix m = [] {
    hcsched::etc::CvbParams params;
    params.num_tasks = 48;
    params.num_machines = 8;
    Rng rng(7);
    return hcsched::etc::CvbEtcGenerator(params).generate(rng);
  }();
  const Problem problem = Problem::full(m);
#if HCSCHED_TRACE
  const auto evals_under = [&](Mode mode) {
    const ScopedMode scope(mode);
    TieBreaker ties;
    const auto before = hcsched::obs::counters::snapshot();
    (void)hcsched::heuristics::detail::two_phase_greedy(problem, ties,
                                                        false);
    const auto after = hcsched::obs::counters::snapshot();
    return after.delta_since(
        before)[hcsched::obs::Counter::kEtcCellEvaluations];
  };
  if (fastpath::compiled()) {
    EXPECT_LT(evals_under(Mode::kForceOn), evals_under(Mode::kForceOff));
  } else {
    // -DHCSCHED_FASTPATH=OFF: kForceOn is a documented no-op and both
    // dispatches run the reference loop.
    EXPECT_EQ(evals_under(Mode::kForceOn), evals_under(Mode::kForceOff));
  }
#else
  // Without counters just exercise both dispatch directions.
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const ScopedMode scope(mode);
    TieBreaker ties;
    EXPECT_TRUE(hcsched::heuristics::detail::two_phase_greedy(problem, ties,
                                                              false)
                    .complete());
  }
#endif
}

}  // namespace
