// Differential suite for the incremental fastpath kernels.
//
// The fast path (src/heuristics/fastpath/) must be *indistinguishable* from
// the reference loops except for doing less work: identical assignment
// sequences, completion-time vectors, TieBreaker decision/tie-event counts
// and RNG/script consumption, under every tie policy and consistency class.
// This file is the enforcement: seeded fuzz sweeps through
// run_differential_case (shared with tools/fuzz/fastpath_fuzz.cpp) over
// EVERY row of the fastpath dispatch table — the covered-heuristic set is
// derived from kernel_table(), never hardcoded, so registering a kernel
// automatically enrolls it here — plus whole-minimizer iterative
// differentials, non-default-knob trace comparisons, golden pins against
// the paper's worked examples, a regression pinning the reference's
// load-bearing phase-two list order, and the switch surface itself.
// docs/FASTPATH.md documents the invariant being tested.
//
// covers: fastpath.cpp etc_view.cpp two_phase_fast.cpp differential.cpp
// minscan.cpp arena.hpp workspace.cpp reuse.cpp sufferage_fast.cpp
// kpb_fast.cpp swa_fast.cpp kernel_table.cpp
// (stems named for the fastpath-differential lint rule)
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "core/iterative.hpp"
#include "core/paper_examples.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "etc/etc_matrix.hpp"
#include "heuristics/duplex.hpp"
#include "heuristics/fastpath/differential.hpp"
#include "heuristics/fastpath/etc_view.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/kpb.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/sufferage.hpp"
#include "heuristics/swa.hpp"
#include "obs/counters.hpp"
#include "rng/rng.hpp"
#include "rng/tie_break.hpp"

namespace {

namespace fastpath = hcsched::heuristics::fastpath;
using fastpath::DifferentialCase;
using fastpath::DifferentialOutcome;
using fastpath::Kernel;
using fastpath::KernelInfo;
using fastpath::Mode;
using fastpath::ScopedMode;
using hcsched::etc::Consistency;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::rng::TiePolicy;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

constexpr Consistency kConsistencies[] = {
    Consistency::kConsistent,
    Consistency::kSemiConsistent,
    Consistency::kInconsistent,
};

/// Sweeps seeds x consistency classes x every dispatch-table kernel for one
/// tie policy, with problem sizes derived from the seed (8..64 tasks on
/// 2..15 machines), and asserts zero divergence. Returns the number of
/// cases run so the suite can prove its own breadth.
std::size_t sweep_policy(TiePolicy policy, bool subset,
                         std::size_t num_seeds) {
  std::size_t cases = 0;
  for (std::uint64_t seed = 1; seed <= num_seeds; ++seed) {
    for (const Consistency consistency : kConsistencies) {
      for (const KernelInfo& info : fastpath::kernel_table()) {
        DifferentialCase c;
        c.seed = seed * 1000003 + static_cast<std::uint64_t>(consistency);
        c.tasks = 8 + (seed * 7) % 57;
        c.machines = 2 + (seed * 3) % 14;
        c.consistency = consistency;
        c.policy = policy;
        c.kernel = info.kernel;
        c.subset = subset;
        const DifferentialOutcome outcome =
            fastpath::run_differential_case(c);
        EXPECT_TRUE(outcome.equivalent)
            << fastpath::describe(c) << ": " << outcome.divergence;
        ++cases;
      }
    }
  }
  return cases;
}

// Together the three sweeps run 1125 full-problem trials (25 seeds x 3
// consistency classes x 5 dispatch-table kernels x 3 policies), clearing
// the >= 200 trial / >= 2 class / >= 2 policy bar with margin. The counts
// are asserted against the table size so a kernel registration widens the
// sweep (and shows up here) automatically.

TEST(FastpathDifferential, DeterministicTiesFullProblems) {
  EXPECT_EQ(sweep_policy(TiePolicy::kDeterministic, /*subset=*/false, 25),
            25u * 3u * fastpath::kernel_table().size());
}

TEST(FastpathDifferential, RandomTiesFullProblems) {
  // Random ties are the hard case: a skipped or extra RNG draw anywhere
  // desynchronizes every later decision, so equivalence here proves the
  // replay bookkeeping exactly matches the reference's.
  EXPECT_EQ(sweep_policy(TiePolicy::kRandom, /*subset=*/false, 25),
            25u * 3u * fastpath::kernel_table().size());
}

TEST(FastpathDifferential, ScriptedTiesFullProblems) {
  EXPECT_EQ(sweep_policy(TiePolicy::kScripted, /*subset=*/false, 25),
            25u * 3u * fastpath::kernel_table().size());
}

TEST(FastpathDifferential, SubsetProblemsWithNonzeroReadyTimes) {
  // Task/machine subsets with nonzero initial ready times — the shape the
  // iterative technique feeds the heuristics after removing machines.
  EXPECT_EQ(sweep_policy(TiePolicy::kDeterministic, /*subset=*/true, 10),
            10u * 3u * fastpath::kernel_table().size());
  EXPECT_EQ(sweep_policy(TiePolicy::kRandom, /*subset=*/true, 10),
            10u * 3u * fastpath::kernel_table().size());
}

TEST(FastpathDifferential, NarrowEpsilonManufacturesManyTies) {
  // Large v_task/v_machine CVB draws rarely tie to 1e-9; integer-valued
  // matrices (v -> small, rounded means) tie constantly. Exercise the tied
  // regime explicitly for every kernel: small mean forces coincident
  // completion times.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const auto policy : {TiePolicy::kDeterministic, TiePolicy::kRandom,
                              TiePolicy::kScripted}) {
      for (const KernelInfo& info : fastpath::kernel_table()) {
        DifferentialCase c;
        c.seed = seed;
        c.tasks = 20;
        c.machines = 4;
        c.policy = policy;
        c.kernel = info.kernel;
        c.mean_task_time = 3.0;  // CVB rounds to a handful of distinct values
        c.v_task = 0.3;
        c.v_machine = 0.3;
        const DifferentialOutcome outcome =
            fastpath::run_differential_case(c);
        EXPECT_TRUE(outcome.equivalent)
            << fastpath::describe(c) << ": " << outcome.divergence;
      }
    }
  }
}

TEST(FastpathDifferential, IterativeLoopIdenticalForEveryKernel) {
  // Whole-minimizer differential: run_iterative with fastpath off vs on
  // (which also toggles the incremental machine-removal reuse context) must
  // produce identical trajectories — every iteration's full mapping,
  // makespan machine cut points, and the final finishing-time table — for
  // every dispatch-table kernel under both deterministic and random ties.
  for (const KernelInfo& info : fastpath::kernel_table()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      for (const auto policy :
           {TiePolicy::kDeterministic, TiePolicy::kRandom}) {
        DifferentialCase c;
        c.seed = seed * 7919;
        c.tasks = 24 + (seed * 5) % 17;
        c.machines = 5 + seed % 4;
        c.consistency = kConsistencies[seed % 3];
        c.policy = policy;
        c.kernel = info.kernel;
        c.iterative = true;
        const DifferentialOutcome outcome =
            fastpath::run_differential_case(c);
        EXPECT_TRUE(outcome.equivalent)
            << fastpath::describe(c) << ": " << outcome.divergence;
      }
    }
  }
}

TEST(FastpathDifferential, DispatchTableIsCompleteAndRegistryBacked) {
  // The table is the source of truth for differential/fuzz/bench coverage:
  // every Kernel enum value resolves, names are unique, and each name is a
  // canonical registry spelling (the iterative differential constructs
  // heuristics by table name).
  const auto table = fastpath::kernel_table();
  ASSERT_EQ(table.size(), 5u);
  std::set<std::string> names;
  for (const KernelInfo& info : table) {
    const KernelInfo* found = fastpath::find_kernel(info.kernel);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, info.name);
    EXPECT_NE(info.reference, nullptr);
    EXPECT_NE(info.fast, nullptr);
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate kernel name " << info.name;
    EXPECT_NE(hcsched::heuristics::make_heuristic(info.name), nullptr)
        << info.name;
  }
}

#if HCSCHED_TRACE
TEST(FastpathDifferential, KernelEvaluatesStrictlyFewerEtcCells) {
  // The point of the two-phase kernel: same output, fewer scored cells. On
  // a non-trivial instance the reference charges rounds x tasks x machines
  // while the kernel only rescores invalidated tasks.
  DifferentialCase c;
  c.seed = 42;
  c.tasks = 96;
  c.machines = 16;
  c.kernel = Kernel::kMinMin;
  const DifferentialOutcome outcome = fastpath::run_differential_case(c);
  ASSERT_TRUE(outcome.equivalent) << outcome.divergence;
  EXPECT_GT(outcome.reference_cell_evals, 0u);
  EXPECT_LT(outcome.fastpath_cell_evals, outcome.reference_cell_evals);
}
#endif

/// Assignment-sequence and completion-time equality for the non-default-
/// knob comparisons below (the table adapters only cover default knobs).
void expect_same_schedule(const Schedule& ref, const Schedule& fast,
                          const std::string& what) {
  const auto& ref_order = ref.assignment_order();
  const auto& fast_order = fast.assignment_order();
  ASSERT_EQ(ref_order.size(), fast_order.size()) << what;
  for (std::size_t i = 0; i < ref_order.size(); ++i) {
    EXPECT_TRUE(ref_order[i] == fast_order[i])
        << what << ": assignment " << i;
  }
  EXPECT_EQ(ref.completion_times_by_slot(), fast.completion_times_by_slot())
      << what;
}

EtcMatrix cvb_matrix(std::uint64_t seed, std::size_t tasks,
                     std::size_t machines, double mean = 100.0) {
  hcsched::etc::CvbParams params;
  params.num_tasks = tasks;
  params.num_machines = machines;
  params.mean_task_time = mean;
  Rng rng(seed);
  return hcsched::etc::CvbEtcGenerator(params).generate(rng);
}

TEST(FastpathDifferential, SufferageEncounterOrderRequeueMatchesReference) {
  // The table adapter runs the default kOriginalOrder requeue; the EXT-7d
  // ablation knob must match too, including the pass-by-pass commit trace.
  namespace h = hcsched::heuristics;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const EtcMatrix m = cvb_matrix(seed, 30, 6, seed % 2 == 0 ? 3.0 : 100.0);
    const Problem problem = Problem::full(m);
    Rng ref_rng(seed * 13);
    Rng fast_rng(seed * 13);
    TieBreaker ref_ties(ref_rng);
    TieBreaker fast_ties(fast_rng);
    std::vector<h::SufferageStep> ref_trace;
    std::vector<h::SufferageStep> fast_trace;
    const Schedule ref = h::detail::sufferage_reference(
        problem, ref_ties, h::SufferageRequeue::kEncounterOrder, &ref_trace);
    const Schedule fast = fastpath::sufferage_fast(
        problem, fast_ties, h::SufferageRequeue::kEncounterOrder,
        &fast_trace);
    expect_same_schedule(ref, fast,
                         "sufferage encounter-order seed " +
                             std::to_string(seed));
    EXPECT_EQ(ref_ties.decisions(), fast_ties.decisions());
    EXPECT_EQ(ref_ties.tie_events(), fast_ties.tie_events());
    ASSERT_EQ(ref_trace.size(), fast_trace.size());
    for (std::size_t i = 0; i < ref_trace.size(); ++i) {
      EXPECT_EQ(ref_trace[i].pass, fast_trace[i].pass) << i;
      EXPECT_EQ(ref_trace[i].task, fast_trace[i].task) << i;
      EXPECT_EQ(ref_trace[i].machine, fast_trace[i].machine) << i;
      EXPECT_EQ(ref_trace[i].min_ct, fast_trace[i].min_ct) << i;
      EXPECT_EQ(ref_trace[i].sufferage, fast_trace[i].sufferage) << i;
    }
  }
}

TEST(FastpathDifferential, KpbNonDefaultPercentMatchesReferenceWithTrace) {
  // k = 40% (subset of 2 on 6 machines) and k = 100% (degenerates to MCT):
  // the kernel's partial_sort prefix must equal the reference's stable-sort
  // prefix, machine-for-machine, in the trace's subset column.
  namespace h = hcsched::heuristics;
  for (const double k_percent : {40.0, 100.0}) {
    const h::Kpb kpb(k_percent);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const EtcMatrix m =
          cvb_matrix(seed, 30, 6, seed % 2 == 0 ? 3.0 : 100.0);
      const Problem problem = Problem::full(m);
      const std::size_t k = kpb.subset_size(problem.num_machines());
      Rng ref_rng(seed * 17);
      Rng fast_rng(seed * 17);
      TieBreaker ref_ties(ref_rng);
      TieBreaker fast_ties(fast_rng);
      std::vector<h::KpbStep> ref_trace;
      std::vector<h::KpbStep> fast_trace;
      const Schedule ref =
          h::detail::kpb_reference(problem, ref_ties, k, &ref_trace);
      const Schedule fast =
          fastpath::kpb_fast(problem, fast_ties, k, &fast_trace);
      expect_same_schedule(ref, fast,
                           "kpb k=" + std::to_string(k_percent) + " seed " +
                               std::to_string(seed));
      EXPECT_EQ(ref_ties.decisions(), fast_ties.decisions());
      EXPECT_EQ(ref_ties.tie_events(), fast_ties.tie_events());
      ASSERT_EQ(ref_trace.size(), fast_trace.size());
      for (std::size_t i = 0; i < ref_trace.size(); ++i) {
        EXPECT_EQ(ref_trace[i].task, fast_trace[i].task) << i;
        EXPECT_EQ(ref_trace[i].machine, fast_trace[i].machine) << i;
        EXPECT_EQ(ref_trace[i].completion, fast_trace[i].completion) << i;
        EXPECT_EQ(ref_trace[i].subset, fast_trace[i].subset) << i;
      }
    }
  }
}

TEST(FastpathDifferential, SwaNonDefaultThresholdsMatchReferenceWithTrace) {
  // Tight thresholds force frequent MCT<->MET switching; the kernel's
  // incrementally-maintained balance index must reproduce the reference's
  // recomputed one exactly (same doubles), or the mode column diverges.
  namespace h = hcsched::heuristics;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const EtcMatrix m = cvb_matrix(seed, 30, 6);
    const Problem problem = Problem::full(m);
    Rng ref_rng(seed * 19);
    Rng fast_rng(seed * 19);
    TieBreaker ref_ties(ref_rng);
    TieBreaker fast_ties(fast_rng);
    std::vector<h::SwaStep> ref_trace;
    std::vector<h::SwaStep> fast_trace;
    const Schedule ref =
        h::detail::swa_reference(problem, ref_ties, 0.6, 0.75, &ref_trace);
    const Schedule fast =
        fastpath::swa_fast(problem, fast_ties, 0.6, 0.75, &fast_trace);
    expect_same_schedule(ref, fast,
                         "swa tight thresholds seed " +
                             std::to_string(seed));
    EXPECT_EQ(ref_ties.decisions(), fast_ties.decisions());
    EXPECT_EQ(ref_ties.tie_events(), fast_ties.tie_events());
    ASSERT_EQ(ref_trace.size(), fast_trace.size());
    for (std::size_t i = 0; i < ref_trace.size(); ++i) {
      EXPECT_EQ(ref_trace[i].task, fast_trace[i].task) << i;
      EXPECT_EQ(ref_trace[i].machine, fast_trace[i].machine) << i;
      EXPECT_EQ(ref_trace[i].completion, fast_trace[i].completion) << i;
      EXPECT_EQ(ref_trace[i].balance_index, fast_trace[i].balance_index)
          << i;
      EXPECT_EQ(ref_trace[i].mode, fast_trace[i].mode) << i;
    }
  }
}

TEST(FastpathDifferential, IterativeTechniqueIdenticalUnderBothPaths) {
  // End-to-end through core::IterativeMinimizer by registry name: every
  // dispatch-table heuristic plus Duplex (which runs both two-phase kernels
  // internally and so exercises dispatch without a table row of its own).
  std::vector<std::string> names;
  for (const KernelInfo& info : fastpath::kernel_table()) {
    names.push_back(info.name);
  }
  names.push_back("Duplex");
  for (const std::string& name : names) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const EtcMatrix matrix = cvb_matrix(seed, 40, 8);
      const Problem problem = Problem::full(matrix);
      const auto heuristic = hcsched::heuristics::make_heuristic(name);
      const hcsched::core::IterativeMinimizer minimizer;

      const auto run_with = [&](Mode mode, std::uint64_t tie_seed) {
        const ScopedMode scope(mode);
        Rng tie_rng(tie_seed);
        TieBreaker ties(tie_rng);
        return minimizer.run(*heuristic, problem, ties);
      };
      const auto ref = run_with(Mode::kForceOff, seed * 31);
      const auto fast = run_with(Mode::kForceOn, seed * 31);

      ASSERT_EQ(ref.iterations.size(), fast.iterations.size())
          << name << " seed " << seed;
      for (std::size_t i = 0; i < ref.iterations.size(); ++i) {
        EXPECT_EQ(ref.iterations[i].makespan, fast.iterations[i].makespan)
            << name << " seed " << seed << " iteration " << i;
        EXPECT_EQ(ref.iterations[i].makespan_machine,
                  fast.iterations[i].makespan_machine)
            << name << " seed " << seed << " iteration " << i;
      }
      ASSERT_EQ(ref.final_finishing_times.size(),
                fast.final_finishing_times.size());
      for (std::size_t i = 0; i < ref.final_finishing_times.size(); ++i) {
        EXPECT_EQ(ref.final_finishing_times[i], fast.final_finishing_times[i])
            << name << " seed " << seed << " machine entry " << i;
      }
    }
  }
}

TEST(FastpathDifferential, PaperExamplesGoldenPinsUnderFastpath) {
  // The paper's worked examples (Tables 1-17) are the repo's ground truth;
  // they must keep matching with the kernels forced on. Min-Min, Max-Min,
  // Sufferage, KPB and SWA all dispatch through kernels now, so this pins
  // the whole dispatch surface against hand-checked tables.
  const ScopedMode scope(Mode::kForceOn);
  for (const auto& example : hcsched::core::all_paper_examples()) {
    const auto result = hcsched::core::run_paper_example(example);
    EXPECT_TRUE(hcsched::core::example_matches(example, result))
        << example.id << " (" << example.table_refs << ")";
  }
}

TEST(FastpathDifferential, PhaseTwoTieBreaksInOriginalTaskOrder) {
  // Regression for the reference's erase()-maintained list: phase-two ties
  // resolve by position, and positions must stay in original task order.
  // Here t1 and t2 tie at completion time 3 in round 2; the earliest
  // original task (t1) must win. A swap-and-pop "optimization" of the
  // reference's erase would move t2 into t1's position after t0 is mapped,
  // flip the tie to t2, and hand t1 a different machine — a different
  // mapping, not just a different order.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 10}, {4, 3}, {9, 3}});
  const auto run = [&](Mode mode) {
    const ScopedMode scope(mode);
    TieBreaker ties;
    return hcsched::heuristics::detail::two_phase_greedy(
        Problem::full(m), ties, /*prefer_largest=*/false);
  };
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const Schedule s = run(mode);
    const auto& order = s.assignment_order();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0].task, 0);
    EXPECT_EQ(order[1].task, 1);
    EXPECT_EQ(order[2].task, 2);
    EXPECT_EQ(s.machine_of(0), std::optional<hcsched::sched::MachineId>(0));
    EXPECT_EQ(s.machine_of(1), std::optional<hcsched::sched::MachineId>(1));
    EXPECT_EQ(s.machine_of(2), std::optional<hcsched::sched::MachineId>(1));
    EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
  }
}

TEST(FastpathDifferential, EtcViewIsVerbatimCopyOfProblemCells) {
  const EtcMatrix m =
      EtcMatrix::from_rows({{2.5, 9.0, 1.0}, {6.5, 4.0, 8.0}});
  // Subset view: task 1 only, machines {2, 0}, to exercise the gather's
  // index mapping rather than a straight memcpy.
  const Problem p(m, {1}, {2, 0}, {0.0, 0.0});
  const fastpath::EtcView view(p);
  ASSERT_EQ(view.num_tasks(), 1u);
  ASSERT_EQ(view.num_slots(), 2u);
  EXPECT_EQ(view.row(0)[0], 8.0);
  EXPECT_EQ(view.row(0)[1], 6.5);
}

TEST(FastpathDifferential, EtcViewCompactEqualsFreshGatherOfShrunkProblem) {
  // compact() is the iterative technique's machine-removal step: dropping a
  // machine column and the rows of the removed iteration's surviving-task
  // complement must leave exactly the view a fresh gather of the shrunk
  // problem would build.
  const EtcMatrix m = cvb_matrix(11, 7, 5);
  const Problem before(m, {0, 1, 2, 3, 4, 5, 6}, {0, 1, 2, 3, 4},
                       {0.0, 0.0, 0.0, 0.0, 0.0});
  fastpath::EtcView view(before);
  // Drop machine slot 2 and task positions {1, 4} (tasks 1 and 4).
  const std::size_t drop_rows[] = {1, 4};
  view.compact(2, drop_rows);
  const Problem after(m, {0, 2, 3, 5, 6}, {0, 1, 3, 4}, {0.0, 0.0, 0.0, 0.0});
  const fastpath::EtcView fresh(after);
  ASSERT_EQ(view.num_tasks(), fresh.num_tasks());
  ASSERT_EQ(view.num_slots(), fresh.num_slots());
  for (std::size_t p = 0; p < fresh.num_tasks(); ++p) {
    for (std::size_t s = 0; s < fresh.num_slots(); ++s) {
      EXPECT_EQ(view.row(p)[s], fresh.row(p)[s]) << "row " << p << " slot "
                                                 << s;
    }
  }
}

TEST(FastpathSwitch, EnvValueParsing) {
  EXPECT_FALSE(fastpath::env_value_enables("0"));
  EXPECT_FALSE(fastpath::env_value_enables("off"));
  EXPECT_FALSE(fastpath::env_value_enables("OFF"));
  EXPECT_FALSE(fastpath::env_value_enables("false"));
  EXPECT_FALSE(fastpath::env_value_enables("False"));
  EXPECT_FALSE(fastpath::env_value_enables("no"));
  EXPECT_TRUE(fastpath::env_value_enables(nullptr));
  EXPECT_TRUE(fastpath::env_value_enables(""));
  EXPECT_TRUE(fastpath::env_value_enables("1"));
  EXPECT_TRUE(fastpath::env_value_enables("on"));
  EXPECT_TRUE(fastpath::env_value_enables("anything"));
}

TEST(FastpathSwitch, ScopedModeForcesAndRestores) {
  const Mode original = fastpath::mode();
  {
    const ScopedMode off(Mode::kForceOff);
    EXPECT_EQ(fastpath::mode(), Mode::kForceOff);
    EXPECT_FALSE(fastpath::enabled());
    {
      const ScopedMode on(Mode::kForceOn);
      EXPECT_EQ(fastpath::mode(), Mode::kForceOn);
      EXPECT_EQ(fastpath::enabled(), fastpath::compiled());
    }
    EXPECT_EQ(fastpath::mode(), Mode::kForceOff);
  }
  EXPECT_EQ(fastpath::mode(), original);
}

TEST(FastpathSwitch, DispatcherFollowsMode) {
  // Not much to distinguish the paths behaviorally (that is the point), so
  // pin the dispatch itself through the cell-evaluation counter: on a
  // many-round instance the kernel charges strictly fewer cells.
  const EtcMatrix m = [] {
    hcsched::etc::CvbParams params;
    params.num_tasks = 48;
    params.num_machines = 8;
    Rng rng(7);
    return hcsched::etc::CvbEtcGenerator(params).generate(rng);
  }();
  const Problem problem = Problem::full(m);
#if HCSCHED_TRACE
  const auto evals_under = [&](Mode mode) {
    const ScopedMode scope(mode);
    TieBreaker ties;
    const auto before = hcsched::obs::counters::snapshot();
    (void)hcsched::heuristics::detail::two_phase_greedy(problem, ties,
                                                        false);
    const auto after = hcsched::obs::counters::snapshot();
    return after.delta_since(
        before)[hcsched::obs::Counter::kEtcCellEvaluations];
  };
  if (fastpath::compiled()) {
    EXPECT_LT(evals_under(Mode::kForceOn), evals_under(Mode::kForceOff));
  } else {
    // -DHCSCHED_FASTPATH=OFF: kForceOn is a documented no-op and both
    // dispatches run the reference loop.
    EXPECT_EQ(evals_under(Mode::kForceOn), evals_under(Mode::kForceOff));
  }
#else
  // Without counters just exercise both dispatch directions.
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const ScopedMode scope(mode);
    TieBreaker ties;
    EXPECT_TRUE(hcsched::heuristics::detail::two_phase_greedy(problem, ties,
                                                              false)
                    .complete());
  }
#endif
}

}  // namespace
