#include "core/iterative.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "etc/cvb_generator.hpp"
#include "heuristics/mct.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/registry.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::core::IterativeMinimizer;
using hcsched::core::IterativeOptions;
using hcsched::core::IterativeResult;
using hcsched::core::restrict_schedule;
using hcsched::etc::EtcMatrix;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks = 15,
                        std::size_t machines = 4) {
  hcsched::rng::Rng rng(seed);
  hcsched::etc::CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return hcsched::etc::CvbEtcGenerator(p).generate(rng);
}

TEST(Iterative, RunsUntilOneMachineRemains) {
  const EtcMatrix m = random_matrix(1, 12, 5);
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const IterativeResult r = IterativeMinimizer{}.run(mct, Problem::full(m),
                                                     ties);
  EXPECT_EQ(r.iterations.size(), 5u);  // |M| - 1 removals + terminal
  EXPECT_EQ(r.iterations.back().problem().num_machines(), 1u);
}

TEST(Iterative, RemovedMachineNeverReappears) {
  const EtcMatrix m = random_matrix(2, 20, 6);
  hcsched::heuristics::MinMin minmin;
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(minmin, Problem::full(m), ties);
  std::set<int> removed;
  for (std::size_t i = 0; i + 1 < r.iterations.size(); ++i) {
    removed.insert(r.iterations[i].makespan_machine);
    for (int machine : r.iterations[i + 1].problem().machines()) {
      EXPECT_FALSE(removed.contains(machine))
          << "machine " << machine << " reappeared at iteration " << i + 1;
    }
  }
}

TEST(Iterative, TasksOfRemovedMachineAreDropped) {
  const EtcMatrix m = random_matrix(3, 18, 4);
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(mct, Problem::full(m), ties);
  for (std::size_t i = 0; i + 1 < r.iterations.size(); ++i) {
    const auto& done = r.iterations[i];
    const auto dropped = done.schedule.tasks_on(done.makespan_machine);
    const auto& next_tasks = r.iterations[i + 1].problem().tasks();
    for (int t : dropped) {
      EXPECT_EQ(std::count(next_tasks.begin(), next_tasks.end(), t), 0);
    }
    EXPECT_EQ(next_tasks.size(),
              done.problem().tasks().size() - dropped.size());
  }
}

TEST(Iterative, FinalFinishingTimesComeFromRemovalIteration) {
  const EtcMatrix m = random_matrix(4, 15, 4);
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(mct, Problem::full(m), ties);
  for (std::size_t i = 0; i + 1 < r.iterations.size(); ++i) {
    const auto& done = r.iterations[i];
    EXPECT_DOUBLE_EQ(r.final_finish_of(done.makespan_machine),
                     done.makespan);
  }
  // Survivor takes the terminal iteration's completion time.
  const auto& last = r.iterations.back();
  const int survivor = last.problem().machines().front();
  EXPECT_DOUBLE_EQ(r.final_finish_of(survivor),
                   last.schedule.completion_time(survivor));
}

TEST(Iterative, EverySchedulePassesValidation) {
  const EtcMatrix m = random_matrix(5, 25, 5);
  hcsched::heuristics::MinMin minmin;
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(minmin, Problem::full(m), ties);
  for (const auto& it : r.iterations) {
    EXPECT_TRUE(hcsched::sched::is_valid(it.schedule))
        << "iteration " << it.index;
    EXPECT_TRUE(it.schedule.complete());
  }
}

TEST(Iterative, SingleMachineProblemTerminatesImmediately) {
  const EtcMatrix m = EtcMatrix::from_rows({{3}, {4}});
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(mct, Problem::full(m), ties);
  EXPECT_EQ(r.iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(r.final_finish_of(0), 7.0);
  EXPECT_DOUBLE_EQ(r.final_makespan(), 7.0);
  EXPECT_FALSE(r.makespan_increased());
}

TEST(Iterative, StopsEarlyWhenTasksRunOut) {
  // One task, three machines: after the original mapping removes the only
  // loaded machine, the remaining problem has no tasks.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2, 3}});
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(mct, Problem::full(m), ties);
  ASSERT_GE(r.iterations.size(), 2u);
  EXPECT_EQ(r.iterations[1].problem().num_tasks(), 0u);
  EXPECT_EQ(r.iterations.size(), 2u);
  EXPECT_DOUBLE_EQ(r.final_finish_of(0), 1.0);
  EXPECT_DOUBLE_EQ(r.final_finish_of(1), 0.0);
  EXPECT_DOUBLE_EQ(r.final_finish_of(2), 0.0);
}

TEST(Iterative, InitialReadyTimesAreRestoredEachIteration) {
  const EtcMatrix m = EtcMatrix::from_rows({{5, 5, 5}, {1, 1, 1}, {1, 1, 1}});
  const Problem p(m, {0, 1, 2}, {0, 1, 2}, {2.0, 1.0, 0.0});
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const IterativeResult r = IterativeMinimizer{}.run(mct, p, ties);
  for (const auto& it : r.iterations) {
    const auto& prob = it.problem();
    for (std::size_t slot = 0; slot < prob.num_machines(); ++slot) {
      const int machine = prob.machines()[slot];
      const double expected = machine == 0 ? 2.0 : (machine == 1 ? 1.0 : 0.0);
      EXPECT_DOUBLE_EQ(prob.initial_ready(slot), expected);
    }
  }
}

TEST(Iterative, MakespanIncreasedDetectsThePhenomenon) {
  // The MCT paper example with its tie script must flag an increase.
  const EtcMatrix m = EtcMatrix::from_rows(
      {{9, 2, 2}, {4, 9, 9}, {9, 1, 9}, {9, 9, 3}});
  hcsched::heuristics::Mct mct;
  TieBreaker scripted(std::vector<std::size_t>{0, 1});
  const IterativeResult r =
      IterativeMinimizer{IterativeOptions{.use_seeding = false}}.run(
          mct, Problem::full(m), scripted);
  EXPECT_TRUE(r.makespan_increased());
  EXPECT_DOUBLE_EQ(r.final_makespan(), 5.0);
}

TEST(Iterative, OriginalFinishingTimesMatchOriginalSchedule) {
  const EtcMatrix m = random_matrix(6, 10, 3);
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(mct, Problem::full(m), ties);
  const auto before = r.original_finishing_times();
  ASSERT_EQ(before.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(
        before[i],
        r.original().schedule.completion_time(static_cast<int>(i)));
  }
}

TEST(Iterative, UnknownMachineQueryThrows) {
  const EtcMatrix m = random_matrix(7, 6, 2);
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(mct, Problem::full(m), ties);
  EXPECT_THROW((void)r.final_finish_of(99), std::invalid_argument);
}

// Structural sweep: the iterative technique upholds its invariants for
// every registered heuristic (including the stochastic ones).
class IterativeSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IterativeSweepTest, InvariantsHoldForEveryHeuristic) {
  const auto heuristic = hcsched::heuristics::make_heuristic(GetParam());
  const EtcMatrix m = random_matrix(4242, 14, 4);
  TieBreaker ties;
  const IterativeResult r =
      IterativeMinimizer{}.run(*heuristic, Problem::full(m), ties);
  ASSERT_GE(r.iterations.size(), 2u);
  EXPECT_LE(r.iterations.size(), 4u);
  for (const auto& it : r.iterations) {
    EXPECT_TRUE(it.schedule.complete()) << GetParam();
    EXPECT_TRUE(hcsched::sched::is_valid(it.schedule)) << GetParam();
  }
  // Frozen finishing times come from the removal iterations.
  for (std::size_t i = 0; i + 1 < r.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.final_finish_of(r.iterations[i].makespan_machine),
                     r.iterations[i].makespan)
        << GetParam();
  }
  EXPECT_GE(r.final_makespan(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllHeuristics, IterativeSweepTest,
    ::testing::ValuesIn(hcsched::heuristics::known_heuristic_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RestrictSchedule, KeepsSurvivingAssignments) {
  const EtcMatrix m = random_matrix(8, 8, 3);
  const Problem full = Problem::full(m);
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const Schedule s = mct.map(full, ties);
  const int span_machine = s.makespan_machine();
  const Problem rest =
      full.without_machine(span_machine, s.tasks_on(span_machine));
  const Schedule restricted = restrict_schedule(s, rest);
  EXPECT_TRUE(restricted.complete());
  for (int t : rest.tasks()) {
    EXPECT_EQ(*restricted.machine_of(t), *s.machine_of(t));
  }
  EXPECT_TRUE(hcsched::sched::is_valid(restricted));
}

TEST(RestrictSchedule, MissingTaskThrows) {
  const EtcMatrix m = random_matrix(9, 4, 2);
  const Problem full = Problem::full(m);
  Schedule partial(full);
  partial.assign(0, 0);
  EXPECT_THROW((void)restrict_schedule(partial, full),
               std::invalid_argument);
}

TEST(Iterative, NoMachinesThrows) {
  const EtcMatrix m(2, 2);
  const Problem p(m, {0, 1}, {});
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  EXPECT_THROW((void)IterativeMinimizer{}.run(mct, p, ties),
               std::invalid_argument);
}

}  // namespace
