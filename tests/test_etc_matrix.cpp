#include "etc/etc_matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using hcsched::etc::EtcMatrix;

TEST(EtcMatrix, DefaultIsEmpty) {
  EtcMatrix m;
  EXPECT_EQ(m.num_tasks(), 0u);
  EXPECT_EQ(m.num_machines(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(EtcMatrix, ZeroInitialized) {
  EtcMatrix m(3, 4);
  EXPECT_EQ(m.num_tasks(), 3u);
  EXPECT_EQ(m.num_machines(), 4u);
  for (int t = 0; t < 3; ++t) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(m.at(t, j), 0.0);
  }
}

TEST(EtcMatrix, FromRowsAndAt) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.num_tasks(), 2u);
  EXPECT_EQ(m.num_machines(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 3);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5);
}

TEST(EtcMatrix, FromRowsRejectsRagged) {
  EXPECT_THROW(EtcMatrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(EtcMatrix, MutableAccess) {
  EtcMatrix m(2, 2);
  m.at(1, 0) = 7.5;
  EXPECT_DOUBLE_EQ(m.at(1, 0), 7.5);
}

TEST(EtcMatrix, OutOfRangeThrows) {
  EtcMatrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  EXPECT_THROW((void)m.at(-1, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, -1), std::out_of_range);
}

TEST(EtcMatrix, RowSpanViewsCorrectSlice) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const auto row1 = m.row(1);
  ASSERT_EQ(row1.size(), 2u);
  EXPECT_DOUBLE_EQ(row1[0], 3);
  EXPECT_DOUBLE_EQ(row1[1], 4);
}

TEST(EtcMatrix, Aggregates) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 9}, {4, 2}});
  EXPECT_DOUBLE_EQ(m.total(), 16);
  EXPECT_DOUBLE_EQ(m.min_value(), 1);
  EXPECT_DOUBLE_EQ(m.max_value(), 9);
}

TEST(EtcMatrix, AggregatesOfEmpty) {
  EtcMatrix m;
  EXPECT_DOUBLE_EQ(m.total(), 0);
  EXPECT_DOUBLE_EQ(m.min_value(), 0);
  EXPECT_DOUBLE_EQ(m.max_value(), 0);
}

TEST(EtcMatrix, Equality) {
  const EtcMatrix a = EtcMatrix::from_rows({{1, 2}});
  const EtcMatrix b = EtcMatrix::from_rows({{1, 2}});
  EtcMatrix c = EtcMatrix::from_rows({{1, 3}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
