#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace {

using hcsched::rng::Rng;

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(2);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 12.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 12.25);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(4);
  std::array<int, 7> counts{};
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.below(7))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 7.0, 0.01);
  }
}

TEST(Rng, BelowBoundOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0ULL);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, GammaMomentsShapeAboveOne) {
  Rng rng(9);
  const double shape = 4.0;
  const double scale = 2.5;
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.15);               // E = 10
  EXPECT_NEAR(var, shape * scale * scale, 1.0);         // V = 25
}

TEST(Rng, GammaMomentsShapeBelowOne) {
  Rng rng(10);
  const double shape = 0.5;
  const double scale = 3.0;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, shape * scale, 0.05);  // E = 1.5
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(12);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  int fixed = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<size_t>(i)] == i) ++fixed;
  }
  EXPECT_LT(fixed, 20);  // expected ~1 fixed point
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng base(13);
  Rng a = base.split(0);
  Rng b = base.split(1);
  Rng a_again = Rng(13).split(0);
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto x = a.next_u64();
    EXPECT_EQ(x, a_again.next_u64());
    if (x == b.next_u64()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, ReproducibleFromSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

}  // namespace
