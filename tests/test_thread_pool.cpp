#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using hcsched::sim::ThreadPool;

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForChunksCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_chunks(1000, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForChunksHandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for_chunks(3, [&counter](std::size_t begin, std::size_t end) {
    counter += static_cast<int>(end - begin);
  });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ParallelForChunksZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_chunks(0, [&ran](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForChunksRethrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_chunks(
                   10,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::logic_error("chunk failure");
                   }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // FIFO on 1 thread
}

}  // namespace
