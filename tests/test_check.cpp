// Tests for the contract-check layer (src/core/check.hpp) itself: the
// diagnostic format, the failure-handler hook, the death of the default
// handler, and — when checks are compiled out — that conditions are not
// evaluated at all.
#include "core/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace hcsched {
namespace {

using check::Violation;

// ---------------------------------------------------------------- formatting

TEST(CheckFormat, PreconditionWithMessage) {
  Violation v;
  v.kind = "precondition";
  v.expression = "task >= 0";
  v.file = "src/sched/schedule.cpp";
  v.line = 42;
  v.function = "assign";
  v.message = "task id -3 out of range";
  EXPECT_EQ(check::format_violation(v),
            "hcsched: PRECONDITION violated: task >= 0\n"
            "  at src/sched/schedule.cpp:42 in assign\n"
            "  task id -3 out of range");
}

TEST(CheckFormat, InvariantWithoutMessage) {
  Violation v;
  v.kind = "invariant";
  v.expression = "begin == n";
  v.file = "f.cpp";
  v.line = 7;
  v.function = "chunk";
  EXPECT_EQ(check::format_violation(v),
            "hcsched: INVARIANT violated: begin == n\n"
            "  at f.cpp:7 in chunk");
}

TEST(CheckFormat, UnreachableHasNoExpression) {
  Violation v;
  v.kind = "unreachable";
  v.file = "f.cpp";
  v.line = 9;
  v.function = "freeze";
  v.message = "machine 3 unknown";
  EXPECT_EQ(check::format_violation(v),
            "hcsched: UNREACHABLE reached\n"
            "  at f.cpp:9 in freeze\n"
            "  machine 3 unknown");
}

// ------------------------------------------------------------ handler plumbing

/// Thrown by the test handler so violations surface as catchable exceptions.
struct ViolationError : std::runtime_error {
  explicit ViolationError(const Violation& v)
      : std::runtime_error(check::format_violation(v)) {}
};

[[noreturn]] void throwing_handler(const Violation& v) {
  throw ViolationError(v);
}

/// RAII: installs the throwing handler for one test body.
class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(check::set_failure_handler(&throwing_handler)) {}
  ~ScopedThrowingHandler() { check::set_failure_handler(previous_); }
  ScopedThrowingHandler(const ScopedThrowingHandler&) = delete;
  ScopedThrowingHandler& operator=(const ScopedThrowingHandler&) = delete;

 private:
  check::Handler previous_;
};

#if HCSCHED_CHECK_ENABLED

TEST(CheckEnabled, PassingCheckIsSilent) {
  const ScopedThrowingHandler guard;
  EXPECT_NO_THROW(HCSCHED_PRECONDITION(1 + 1 == 2));
  EXPECT_NO_THROW(HCSCHED_INVARIANT(true, "never printed"));
}

TEST(CheckEnabled, FailingPreconditionReportsSiteAndMessage) {
  const ScopedThrowingHandler guard;
  const int task = -3;
  try {
    HCSCHED_PRECONDITION(task >= 0, "task id ", task, " out of range");
    FAIL() << "precondition did not fire";
  } catch (const ViolationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PRECONDITION violated: task >= 0"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("task id -3 out of range"), std::string::npos)
        << what;
  }
}

TEST(CheckEnabled, FailingInvariantWithoutMessage) {
  const ScopedThrowingHandler guard;
  EXPECT_THROW(HCSCHED_INVARIANT(false), ViolationError);
}

TEST(CheckEnabled, UnreachableAlwaysFires) {
  const ScopedThrowingHandler guard;
  try {
    HCSCHED_UNREACHABLE("frozen machine ", 3, " unknown");
    FAIL() << "unreachable did not fire";
  } catch (const ViolationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("UNREACHABLE reached"), std::string::npos) << what;
    EXPECT_NE(what.find("frozen machine 3 unknown"), std::string::npos)
        << what;
  }
}

TEST(CheckEnabled, MessageArgumentsOnlyEvaluatedOnFailure) {
  const ScopedThrowingHandler guard;
  int evaluations = 0;
  const auto counted = [&evaluations] { return ++evaluations; };
  HCSCHED_INVARIANT(true, "count ", counted());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(HCSCHED_INVARIANT(false, "count ", counted()),
               ViolationError);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckEnabled, SetFailureHandlerReturnsPrevious) {
  const check::Handler original = check::set_failure_handler(nullptr);
  EXPECT_EQ(check::set_failure_handler(&throwing_handler), nullptr);
  EXPECT_EQ(check::set_failure_handler(original), &throwing_handler);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, DefaultHandlerPrintsAndAborts) {
  EXPECT_DEATH(HCSCHED_PRECONDITION(false, "boom"),
               "PRECONDITION violated: false");
}

TEST(CheckDeathTest, HandlerThatReturnsStillAborts) {
  // A handler that swallows the violation must not let execution continue.
  EXPECT_DEATH(
      {
        check::set_failure_handler(+[](const Violation&) {});
        HCSCHED_INVARIANT(false);
      },
      ".*");
}

#else  // HCSCHED_CHECK_ENABLED

TEST(CheckDisabled, ConditionsAreNotEvaluated) {
  const ScopedThrowingHandler guard;
  int evaluations = 0;
  const auto counted = [&evaluations] { return ++evaluations > 0; };
  HCSCHED_PRECONDITION(counted(), "side effect ", evaluations);
  HCSCHED_INVARIANT(counted());
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckDisabled, CompiledInFlagReportsOff) {
  EXPECT_FALSE(check::kChecksCompiledIn);
}

#endif  // HCSCHED_CHECK_ENABLED

}  // namespace
}  // namespace hcsched
