#include "heuristics/registry.hpp"

#include <gtest/gtest.h>

namespace {

using hcsched::heuristics::all_heuristics;
using hcsched::heuristics::known_heuristic_names;
using hcsched::heuristics::make_heuristic;
using hcsched::heuristics::paper_heuristics;

TEST(Registry, ConstructsEveryKnownName) {
  for (const std::string& name : known_heuristic_names()) {
    const auto h = make_heuristic(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->name(), name);
  }
}

TEST(Registry, MatchingIsForgiving) {
  EXPECT_EQ(make_heuristic("min-min")->name(), "Min-Min");
  EXPECT_EQ(make_heuristic("MINMIN")->name(), "Min-Min");
  EXPECT_EQ(make_heuristic("min min")->name(), "Min-Min");
  EXPECT_EQ(make_heuristic("k_percent_best")->name(), "KPB");
  EXPECT_EQ(make_heuristic("switching algorithm")->name(), "SWA");
  EXPECT_EQ(make_heuristic("genitor")->name(), "Genitor");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_heuristic("branch-and-cut"),
               std::invalid_argument);
  EXPECT_THROW((void)make_heuristic("hereboy"), std::invalid_argument);
  EXPECT_THROW((void)make_heuristic(""), std::invalid_argument);
}

TEST(Registry, PaperSetMatchesThePaper) {
  const auto set = paper_heuristics();
  ASSERT_EQ(set.size(), 7u);
  EXPECT_EQ(set[0]->name(), "MET");
  EXPECT_EQ(set[1]->name(), "MCT");
  EXPECT_EQ(set[2]->name(), "Min-Min");
  EXPECT_EQ(set[3]->name(), "Genitor");
  EXPECT_EQ(set[4]->name(), "SWA");
  EXPECT_EQ(set[5]->name(), "Sufferage");
  EXPECT_EQ(set[6]->name(), "KPB");
}

TEST(Registry, AllSetAddsTheBaselines) {
  const auto set = all_heuristics();
  ASSERT_EQ(set.size(), 10u);
  EXPECT_EQ(set[7]->name(), "OLB");
  EXPECT_EQ(set[8]->name(), "Max-Min");
  EXPECT_EQ(set[9]->name(), "Duplex");
}

TEST(Registry, ExtendedSetAddsSearchBaselines) {
  const auto set = hcsched::heuristics::extended_heuristics();
  ASSERT_EQ(set.size(), 17u);
  EXPECT_EQ(set[10]->name(), "SA");
  EXPECT_EQ(set[11]->name(), "GSA");
  EXPECT_EQ(set[12]->name(), "Tabu");
  EXPECT_EQ(set[13]->name(), "Segmented Min-Min");
  EXPECT_EQ(set[14]->name(), "A*");
  EXPECT_EQ(set[15]->name(), "Local-Search");
  EXPECT_EQ(set[16]->name(), "Local-Search-FI");
}

TEST(Registry, OnlySearchHeuristicsAreNondeterministicGivenTies) {
  for (const auto& h : hcsched::heuristics::extended_heuristics()) {
    const std::string name(h->name());
    const bool stochastic =
        name == "Genitor" || name == "SA" || name == "GSA" ||
        name == "Tabu" || name == "Local-Search" || name == "Local-Search-FI";
    EXPECT_EQ(h->deterministic_given_ties(), !stochastic) << name;
  }
}

}  // namespace
