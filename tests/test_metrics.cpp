#include "sched/metrics.hpp"

#include <gtest/gtest.h>

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::sched::Change;
using hcsched::sched::ChangeSummary;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

Schedule sample_schedule(const EtcMatrix& m) {
  Schedule s(Problem::full(m));
  s.assign(0, 0);  // m0 = 2
  s.assign(1, 1);  // m1 = 1
  s.assign(2, 1);  // m1 = 5
  return s;
}

TEST(Metrics, FinishingTimes) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}, {4, 4}});
  const Schedule s = sample_schedule(m);
  const auto ft = hcsched::sched::finishing_times(s);
  ASSERT_EQ(ft.size(), 2u);
  EXPECT_EQ(ft[0].first, 0);
  EXPECT_DOUBLE_EQ(ft[0].second, 2.0);
  EXPECT_EQ(ft[1].first, 1);
  EXPECT_DOUBLE_EQ(ft[1].second, 5.0);
}

TEST(Metrics, MeanCompletion) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}, {4, 4}});
  const Schedule s = sample_schedule(m);
  EXPECT_DOUBLE_EQ(hcsched::sched::mean_completion(s), 3.5);
}

TEST(Metrics, TotalFlowTime) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}, {4, 4}});
  const Schedule s = sample_schedule(m);
  // Finishes: t0 at 2, t1 at 1, t2 at 5.
  EXPECT_DOUBLE_EQ(hcsched::sched::total_flow_time(s), 8.0);
}

TEST(Metrics, NonMakespanCompletionsExcludeTheMakespanMachine) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}, {4, 4}});
  const Schedule s = sample_schedule(m);
  const auto non = hcsched::sched::non_makespan_completions(s);
  ASSERT_EQ(non.size(), 1u);
  EXPECT_DOUBLE_EQ(non[0], 2.0);
}

TEST(Metrics, MaxNonMakespanCompletion) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}, {4, 4}});
  const Schedule s = sample_schedule(m);
  // Makespan machine is m1 (5); the other machine finishes at 2.
  EXPECT_DOUBLE_EQ(hcsched::sched::max_non_makespan_completion(s), 2.0);
}

TEST(Metrics, MaxNonMakespanWithSingleMachineIsZero) {
  const EtcMatrix m = EtcMatrix::from_rows({{2}});
  Schedule s(Problem::full(m));
  s.assign(0, 0);
  EXPECT_DOUBLE_EQ(hcsched::sched::max_non_makespan_completion(s), 0.0);
}

TEST(Metrics, CompletionVariance) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}, {4, 4}});
  const Schedule s = sample_schedule(m);
  // CTs are (2, 5): mean 3.5, sample variance 4.5.
  EXPECT_DOUBLE_EQ(hcsched::sched::completion_variance(s), 4.5);
}

TEST(Metrics, LoadBalanceIndex) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}, {4, 4}});
  const Schedule s = sample_schedule(m);
  EXPECT_DOUBLE_EQ(hcsched::sched::load_balance_index(s), 0.4);  // 2 / 5

  // Perfectly balanced mapping.
  const EtcMatrix b = EtcMatrix::from_rows({{3, 9}, {9, 3}});
  Schedule balanced(Problem::full(b));
  balanced.assign(0, 0);
  balanced.assign(1, 1);
  EXPECT_DOUBLE_EQ(hcsched::sched::load_balance_index(balanced), 1.0);

  // Idle machine -> 0.
  const EtcMatrix i = EtcMatrix::from_rows({{3, 9}});
  Schedule idle(Problem::full(i));
  idle.assign(0, 0);
  EXPECT_DOUBLE_EQ(hcsched::sched::load_balance_index(idle), 0.0);
}

TEST(Metrics, SummarizeChangesClassifies) {
  const std::vector<double> before = {10, 10, 10, 10};
  const std::vector<double> after = {8, 10, 12, 10 + 1e-12};
  const ChangeSummary cs = hcsched::sched::summarize_changes(before, after);
  EXPECT_EQ(cs.improved, 1u);
  EXPECT_EQ(cs.worsened, 1u);
  EXPECT_EQ(cs.unchanged, 2u);
  EXPECT_EQ(cs.total(), 4u);
  EXPECT_NEAR(cs.total_delta, 0.0, 1e-9);
}

TEST(Metrics, SummarizeChangesSizeMismatchThrows) {
  EXPECT_THROW(hcsched::sched::summarize_changes({1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Metrics, SummarizeChangesEpsilonControlsSensitivity) {
  const std::vector<double> before = {10};
  const std::vector<double> after = {10.5};
  EXPECT_EQ(hcsched::sched::summarize_changes(before, after, 1.0).unchanged,
            1u);
  EXPECT_EQ(hcsched::sched::summarize_changes(before, after, 0.1).worsened,
            1u);
}

}  // namespace
