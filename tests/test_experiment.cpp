#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "sim/sweep.hpp"

namespace {

using hcsched::sim::run_iterative_study;
using hcsched::sim::StudyParams;
using hcsched::sim::StudyRow;
using hcsched::sim::ThreadPool;

StudyParams small_params() {
  StudyParams params;
  params.heuristics = {"MCT", "Min-Min", "Sufferage"};
  params.cvb.num_tasks = 12;
  params.cvb.num_machines = 4;
  params.trials = 10;
  params.seed = 42;
  return params;
}

TEST(Experiment, RowCountsAreConsistent) {
  ThreadPool pool(2);
  const auto rows = run_iterative_study(small_params(), pool);
  ASSERT_EQ(rows.size(), 3u);
  for (const StudyRow& row : rows) {
    EXPECT_EQ(row.trials, 10u);
    // Non-makespan machines per trial = machines - 1.
    EXPECT_EQ(row.machines_improved + row.machines_unchanged +
                  row.machines_worsened,
              10u * 3u)
        << row.heuristic;
    EXPECT_LE(row.makespan_increases, row.trials);
    EXPECT_EQ(row.original_makespan.count(), 10u);
  }
}

TEST(Experiment, TheoremHeuristicsNeverChangeUnderDeterministicTies) {
  // Min-Min / MCT with deterministic ties: every non-makespan machine's
  // finishing time is unchanged and the makespan never increases — the
  // Monte-Carlo harness must agree with the theorems.
  StudyParams params = small_params();
  params.heuristics = {"MCT", "Min-Min", "MET"};
  params.trials = 8;
  ThreadPool pool(2);
  const auto rows = run_iterative_study(params, pool);
  for (const StudyRow& row : rows) {
    EXPECT_EQ(row.machines_improved, 0u) << row.heuristic;
    EXPECT_EQ(row.machines_worsened, 0u) << row.heuristic;
    EXPECT_EQ(row.makespan_increases, 0u) << row.heuristic;
  }
}

TEST(Experiment, StudyStatisticsIdenticalUnderBothDispatchPaths) {
  // The fastpath knob may change study wall-clock, never study statistics:
  // both forced modes must reproduce identical aggregates trial for trial.
  StudyParams params = small_params();
  params.heuristics = {"Min-Min", "Max-Min", "Duplex"};
  params.tie_policy = hcsched::rng::TiePolicy::kRandom;
  ThreadPool pool(2);
  params.fastpath = hcsched::heuristics::fastpath::Mode::kForceOff;
  const auto ref = run_iterative_study(params, pool);
  params.fastpath = hcsched::heuristics::fastpath::Mode::kForceOn;
  const auto fast = run_iterative_study(params, pool);
  ASSERT_EQ(ref.size(), fast.size());
  for (std::size_t h = 0; h < ref.size(); ++h) {
    EXPECT_EQ(ref[h].machines_improved, fast[h].machines_improved);
    EXPECT_EQ(ref[h].machines_unchanged, fast[h].machines_unchanged);
    EXPECT_EQ(ref[h].machines_worsened, fast[h].machines_worsened);
    EXPECT_EQ(ref[h].makespan_increases, fast[h].makespan_increases);
    EXPECT_EQ(ref[h].original_makespan.mean(),
              fast[h].original_makespan.mean())
        << ref[h].heuristic;
    EXPECT_EQ(ref[h].finish_delta.mean(), fast[h].finish_delta.mean())
        << ref[h].heuristic;
  }
}

TEST(Experiment, ResultsIndependentOfThreadCount) {
  const StudyParams params = small_params();
  ThreadPool one(1);
  ThreadPool four(4);
  const auto a = run_iterative_study(params, one);
  const auto b = run_iterative_study(params, four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].machines_improved, b[i].machines_improved);
    EXPECT_EQ(a[i].machines_unchanged, b[i].machines_unchanged);
    EXPECT_EQ(a[i].machines_worsened, b[i].machines_worsened);
    EXPECT_EQ(a[i].makespan_increases, b[i].makespan_increases);
    EXPECT_NEAR(a[i].finish_delta.mean(), b[i].finish_delta.mean(), 1e-12);
    EXPECT_NEAR(a[i].original_makespan.mean(), b[i].original_makespan.mean(),
                1e-9);
  }
}

TEST(Experiment, EmptyHeuristicListThrows) {
  StudyParams params = small_params();
  params.heuristics.clear();
  ThreadPool pool(1);
  EXPECT_THROW((void)run_iterative_study(params, pool),
               std::invalid_argument);
}

TEST(Experiment, SufferageCanImproveNonMakespanMachines) {
  // The point of the paper's technique: for heuristics that do change,
  // some machines should improve across a batch of trials.
  StudyParams params = small_params();
  params.heuristics = {"Sufferage", "KPB", "SWA"};
  params.trials = 30;
  ThreadPool pool(2);
  const auto rows = run_iterative_study(params, pool);
  std::size_t total_improved = 0;
  for (const StudyRow& row : rows) total_improved += row.machines_improved;
  EXPECT_GT(total_improved, 0u);
}

TEST(Sweep, StandardGridHasTwelveCells) {
  const auto points = hcsched::sim::standard_sweep();
  ASSERT_EQ(points.size(), 12u);
  EXPECT_EQ(points.front().label, "inconsistent HiHi");
  EXPECT_EQ(points.back().label, "consistent LoLo");
}

TEST(Sweep, RunSweepAppliesPointParameters) {
  StudyParams base = small_params();
  base.heuristics = {"MCT"};
  base.trials = 2;
  std::vector<hcsched::sim::SweepPoint> points = {
      {.label = "a", .consistency = hcsched::etc::Consistency::kConsistent,
       .v_task = 0.3, .v_machine = 0.3},
      {.label = "b",
       .consistency = hcsched::etc::Consistency::kInconsistent,
       .v_task = 0.9,
       .v_machine = 0.9},
  };
  ThreadPool pool(2);
  const auto results = hcsched::sim::run_sweep(base, points, pool);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].point.label, "a");
  ASSERT_EQ(results[0].rows.size(), 1u);
  EXPECT_EQ(results[0].rows[0].trials, 2u);
}

}  // namespace
