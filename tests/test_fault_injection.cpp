// Fault-matrix suite for the deterministic fault-injection framework
// (docs/ROBUSTNESS.md): every registered site crossed with {never, always,
// rate+seed} arming, quarantine reports pinned against the decision
// function, and the headline property — surviving-trial statistics are
// bit-identical to a clean run restricted to the surviving executions.
#include "sim/fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"

namespace {

using hcsched::sim::fold_outcomes;
using hcsched::sim::QuarantineRecord;
using hcsched::sim::run_iterative_study_report;
using hcsched::sim::StudyParams;
using hcsched::sim::StudyReport;
using hcsched::sim::StudyRow;
using hcsched::sim::ThreadPool;
using hcsched::sim::TrialOutcome;
namespace fault = hcsched::sim::fault;

StudyParams small_params() {
  StudyParams params;
  params.heuristics = {"MCT", "Min-Min", "Sufferage"};
  params.cvb.num_tasks = 10;
  params.cvb.num_machines = 4;
  params.trials = 12;
  params.seed = 42;
  // Random ties stress the per-heuristic stream isolation that the
  // surviving-statistics property depends on.
  params.tie_policy = hcsched::rng::TiePolicy::kRandom;
  return params;
}

/// Exact (bitwise) equality of two folded study rows. Doubles are compared
/// with EXPECT_EQ on purpose: the determinism contract is bit-identity,
/// not tolerance.
void expect_rows_identical(const std::vector<StudyRow>& a,
                           const std::vector<StudyRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].heuristic);
    EXPECT_EQ(a[i].heuristic, b[i].heuristic);
    EXPECT_EQ(a[i].trials, b[i].trials);
    EXPECT_EQ(a[i].machines_improved, b[i].machines_improved);
    EXPECT_EQ(a[i].machines_unchanged, b[i].machines_unchanged);
    EXPECT_EQ(a[i].machines_worsened, b[i].machines_worsened);
    EXPECT_EQ(a[i].makespan_increases, b[i].makespan_increases);
    EXPECT_EQ(a[i].finish_delta.count(), b[i].finish_delta.count());
    EXPECT_EQ(a[i].finish_delta.mean(), b[i].finish_delta.mean());
    EXPECT_EQ(a[i].finish_delta.variance(), b[i].finish_delta.variance());
    EXPECT_EQ(a[i].mean_completion_delta.count(),
              b[i].mean_completion_delta.count());
    EXPECT_EQ(a[i].mean_completion_delta.mean(),
              b[i].mean_completion_delta.mean());
    EXPECT_EQ(a[i].mean_completion_delta.variance(),
              b[i].mean_completion_delta.variance());
    EXPECT_EQ(a[i].original_makespan.count(), b[i].original_makespan.count());
    EXPECT_EQ(a[i].original_makespan.mean(), b[i].original_makespan.mean());
    EXPECT_EQ(a[i].original_makespan.variance(),
              b[i].original_makespan.variance());
  }
}

/// The (trial, heuristic) executions a heuristic-map plan will kill,
/// computed from the documented key layout key = trial * H + h.
std::set<std::pair<std::size_t, std::size_t>> predicted_map_faults(
    const StudyParams& params) {
  std::set<std::pair<std::size_t, std::size_t>> out;
  const std::size_t h_count = params.heuristics.size();
  for (std::size_t trial = 0; trial < params.trials; ++trial) {
    for (std::size_t h = 0; h < h_count; ++h) {
      if (fault::should_inject(fault::Site::kHeuristicMap,
                               trial * h_count + h)) {
        out.emplace(trial, h);
      }
    }
  }
  return out;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(FaultMatrixTest, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < fault::kNumSites; ++i) {
    const auto site = static_cast<fault::Site>(i);
    const auto parsed = fault::parse_site(fault::to_string(site));
    ASSERT_TRUE(parsed.has_value()) << fault::to_string(site);
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(fault::parse_site("no-such-site").has_value());
  EXPECT_FALSE(fault::parse_site("").has_value());
}

TEST_F(FaultMatrixTest, SpecParsing) {
  const auto full = fault::parse_spec("heuristic-map:0.25:17");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->site, fault::Site::kHeuristicMap);
  EXPECT_DOUBLE_EQ(full->rate, 0.25);
  EXPECT_EQ(full->seed, 17u);

  const auto defaulted = fault::parse_spec("etc-generate:1");
  ASSERT_TRUE(defaulted.has_value());
  EXPECT_EQ(defaulted->site, fault::Site::kEtcGenerate);
  EXPECT_DOUBLE_EQ(defaulted->rate, 1.0);
  EXPECT_EQ(defaulted->seed, 1u);

  for (const char* bad :
       {"", "heuristic-map", "bogus:0.5", "heuristic-map:1.5",
        "heuristic-map:-0.1", "heuristic-map:x", "heuristic-map:0.5:",
        "heuristic-map:0.5:abc", "heuristic-map::3", "heuristic-map:0.5x"}) {
    EXPECT_FALSE(fault::parse_spec(bad).has_value()) << "'" << bad << "'";
  }
}

TEST_F(FaultMatrixTest, DecisionIsDeterministicAndRateShaped) {
  const fault::FaultPlan plan{fault::Site::kHeuristicMap, 0.3, 5};
  std::size_t fired = 0;
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const double value = fault::decision_value(plan, key);
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
    EXPECT_EQ(value, fault::decision_value(plan, key)) << key;  // pure
    if (value < plan.rate) ++fired;
  }
  // ~600 expected; a generous band catches a broken mixer, not noise.
  EXPECT_GT(fired, 400u);
  EXPECT_LT(fired, 800u);

  // Different seeds and different sites decorrelate the decision.
  const fault::FaultPlan other_seed{fault::Site::kHeuristicMap, 0.3, 6};
  const fault::FaultPlan other_site{fault::Site::kEtcGenerate, 0.3, 5};
  bool seed_differs = false;
  bool site_differs = false;
  for (std::uint64_t key = 0; key < 64; ++key) {
    seed_differs |= fault::decision_value(plan, key) !=
                    fault::decision_value(other_seed, key);
    site_differs |= fault::decision_value(plan, key) !=
                    fault::decision_value(other_site, key);
  }
  EXPECT_TRUE(seed_differs);
  EXPECT_TRUE(site_differs);
}

TEST_F(FaultMatrixTest, ArmDisarmLifecycle) {
  EXPECT_FALSE(fault::any_armed());
  fault::arm({fault::Site::kEtcGenerate, 1.0, 3});
  EXPECT_TRUE(fault::any_armed());
  ASSERT_TRUE(fault::armed(fault::Site::kEtcGenerate).has_value());
  EXPECT_FALSE(fault::armed(fault::Site::kHeuristicMap).has_value());
  {
    const fault::ScopedFault scoped({fault::Site::kEtcGenerate, 0.5, 9});
    EXPECT_DOUBLE_EQ(fault::armed(fault::Site::kEtcGenerate)->rate, 0.5);
  }
  // ScopedFault restored the outer plan, not the disarmed state.
  ASSERT_TRUE(fault::armed(fault::Site::kEtcGenerate).has_value());
  EXPECT_DOUBLE_EQ(fault::armed(fault::Site::kEtcGenerate)->rate, 1.0);
  fault::disarm(fault::Site::kEtcGenerate);
  EXPECT_FALSE(fault::any_armed());
  EXPECT_NO_THROW(fault::maybe_inject(fault::Site::kEtcGenerate, 0));
}

TEST_F(FaultMatrixTest, MaybeInjectThrowsTypedError) {
  const fault::ScopedFault scoped({fault::Site::kHeuristicMap, 1.0, 1});
  try {
    fault::maybe_inject(fault::Site::kHeuristicMap, 41);
    FAIL() << "expected FaultInjected";
  } catch (const fault::FaultInjected& error) {
    EXPECT_EQ(error.site(), fault::Site::kHeuristicMap);
    EXPECT_EQ(error.key(), 41u);
    EXPECT_NE(std::string(error.what()).find("heuristic-map"),
              std::string::npos);
  }
}

// -- The matrix: every site with a rate-0 plan is a no-op ------------------

TEST_F(FaultMatrixTest, NeverFiringPlansLeaveStudyBitIdentical) {
  const StudyParams params = small_params();
  ThreadPool pool(2);
  const StudyReport clean = run_iterative_study_report(params, pool);
  for (std::size_t i = 0; i < fault::kNumSites; ++i) {
    SCOPED_TRACE(fault::to_string(static_cast<fault::Site>(i)));
    const fault::ScopedFault scoped(
        {static_cast<fault::Site>(i), 0.0, 123});
    const StudyReport report = run_iterative_study_report(params, pool);
    EXPECT_TRUE(report.quarantined.empty());
    EXPECT_EQ(report.trials_completed, params.trials);
    expect_rows_identical(clean.rows, report.rows);
  }
}

// -- always-firing plans, site by site -------------------------------------

TEST_F(FaultMatrixTest, EtcGenerateAlwaysQuarantinesEveryTrialWhole) {
  const StudyParams params = small_params();
  const fault::ScopedFault scoped({fault::Site::kEtcGenerate, 1.0, 1});
  ThreadPool pool(2);
  const StudyReport report = run_iterative_study_report(params, pool);
  // One quarantine record per trial (no heuristic ever ran), zero rows.
  ASSERT_EQ(report.quarantined.size(), params.trials);
  for (const QuarantineRecord& q : report.quarantined) {
    EXPECT_EQ(q.site, "etc-generate");
    EXPECT_TRUE(q.heuristic.empty());
    EXPECT_EQ(q.study_seed, params.seed);
  }
  for (const StudyRow& row : report.rows) {
    EXPECT_EQ(row.trials, 0u);
    EXPECT_EQ(row.original_makespan.count(), 0u);
  }
  // Trials still *completed* (they produced a definite, quarantined
  // outcome); nothing was silently dropped.
  EXPECT_EQ(report.trials_completed, params.trials);
}

TEST_F(FaultMatrixTest, HeuristicMapAlwaysQuarantinesEveryExecution) {
  const StudyParams params = small_params();
  const fault::ScopedFault scoped({fault::Site::kHeuristicMap, 1.0, 1});
  ThreadPool pool(2);
  const StudyReport report = run_iterative_study_report(params, pool);
  ASSERT_EQ(report.quarantined.size(),
            params.trials * params.heuristics.size());
  // (trial, heuristic) order, every heuristic named.
  std::size_t index = 0;
  for (std::size_t trial = 0; trial < params.trials; ++trial) {
    for (const std::string& name : params.heuristics) {
      const QuarantineRecord& q = report.quarantined[index++];
      EXPECT_EQ(q.trial, trial);
      EXPECT_EQ(q.heuristic, name);
      EXPECT_EQ(q.site, "heuristic-map");
    }
  }
  for (const StudyRow& row : report.rows) EXPECT_EQ(row.trials, 0u);
}

TEST_F(FaultMatrixTest, CheckpointWriteAlwaysLosesPersistenceNotResults) {
  const StudyParams params = small_params();
  const std::string path =
      ::testing::TempDir() + "fault_ckpt_write_always.jsonl";
  std::remove(path.c_str());
  ThreadPool pool(2);
  const StudyReport clean = run_iterative_study_report(params, pool);
  StudyReport report;
  {
    const fault::ScopedFault scoped({fault::Site::kCheckpointWrite, 1.0, 1});
    hcsched::sim::CheckpointWriter writer(path);
    hcsched::sim::StudyHooks hooks;
    hooks.checkpoint = &writer;
    report = run_iterative_study_report(params, pool, hooks);
  }
  // The study is unharmed — bit-identical to the clean run — but nothing
  // was persisted, so a resume would recompute from scratch.
  EXPECT_TRUE(report.quarantined.empty());
  expect_rows_identical(clean.rows, report.rows);
  const auto data = hcsched::sim::load_checkpoint(path);
  EXPECT_TRUE(data.trials.empty());
  std::remove(path.c_str());
}

TEST_F(FaultMatrixTest, PoolJobStartAlwaysAbortsTheRun) {
  const StudyParams params = small_params();
  const fault::ScopedFault scoped({fault::Site::kPoolJobStart, 1.0, 1});
  ThreadPool pool(2);
  // Worker loss is not quarantinable — the chunk never ran. The typed
  // error reaches the caller; checkpoint/resume is the recovery path.
  EXPECT_THROW((void)run_iterative_study_report(params, pool),
               fault::FaultInjected);
}

// -- rate + seed plans: the injected set is exactly the predicted set ------

TEST_F(FaultMatrixTest, RateSeededQuarantineMatchesPredictedSet) {
  const StudyParams params = small_params();
  const fault::ScopedFault scoped({fault::Site::kHeuristicMap, 0.4, 99});
  const auto predicted = predicted_map_faults(params);
  ASSERT_FALSE(predicted.empty()) << "rate 0.4 over 36 keys never fired; "
                                     "decision function changed?";
  ASSERT_LT(predicted.size(), params.trials * params.heuristics.size());

  ThreadPool pool(2);
  const StudyReport report = run_iterative_study_report(params, pool);
  std::set<std::pair<std::size_t, std::size_t>> observed;
  for (const QuarantineRecord& q : report.quarantined) {
    const auto it = std::find(params.heuristics.begin(),
                              params.heuristics.end(), q.heuristic);
    ASSERT_NE(it, params.heuristics.end()) << q.heuristic;
    observed.emplace(q.trial, static_cast<std::size_t>(
                                  it - params.heuristics.begin()));
    EXPECT_EQ(q.site, "heuristic-map");
  }
  EXPECT_EQ(observed, predicted);
  // Surviving executions per heuristic = trials - its predicted kills.
  for (std::size_t h = 0; h < params.heuristics.size(); ++h) {
    const auto killed = static_cast<std::size_t>(std::count_if(
        predicted.begin(), predicted.end(),
        [h](const auto& pair) { return pair.second == h; }));
    EXPECT_EQ(report.rows[h].trials, params.trials - killed)
        << params.heuristics[h];
  }
}

TEST_F(FaultMatrixTest, SurvivingStatisticsBitIdenticalToRestrictedCleanRun) {
  // The headline quarantine-exactness property: take the clean study, strike
  // out exactly the executions the armed plan kills, fold — the result must
  // equal the faulty run bit for bit. This fails if a fault perturbs any
  // surviving execution (e.g. by advancing a shared tie-break RNG).
  const StudyParams params = small_params();
  ThreadPool pool(2);
  const StudyReport clean = run_iterative_study_report(params, pool);

  const fault::ScopedFault scoped({fault::Site::kHeuristicMap, 0.4, 99});
  const auto predicted = predicted_map_faults(params);
  ASSERT_FALSE(predicted.empty());
  const StudyReport faulty = run_iterative_study_report(params, pool);

  std::vector<TrialOutcome> restricted = clean.outcomes;
  for (const auto& [trial, h] : predicted) {
    auto& records = restricted[trial].records;
    const std::string& name = params.heuristics[h];
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [&name](const auto& record) {
                                   return record.heuristic == name;
                                 }),
                  records.end());
  }
  const StudyReport expected = fold_outcomes(params, std::move(restricted));
  expect_rows_identical(expected.rows, faulty.rows);
}

TEST_F(FaultMatrixTest, InjectionCountersTrack) {
  if (!hcsched::obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  const StudyParams params = small_params();
  ThreadPool pool(2);
  const auto before = hcsched::obs::counters::snapshot();
  const fault::ScopedFault scoped({fault::Site::kHeuristicMap, 1.0, 1});
  const StudyReport report = run_iterative_study_report(params, pool);
  const auto delta =
      hcsched::obs::counters::snapshot().delta_since(before);
  EXPECT_EQ(delta[hcsched::obs::Counter::kFaultsInjected],
            params.trials * params.heuristics.size());
  EXPECT_EQ(delta[hcsched::obs::Counter::kTrialsQuarantined], params.trials);
  EXPECT_EQ(report.quarantined.size(),
            params.trials * params.heuristics.size());
}

}  // namespace
