// Edge-case pins for the analyzer's symbol indexer (tools/analyze/
// symbols.hpp): the declaration shapes the recognizer must classify
// without a real C++ parser — template heads, overload sets, out-of-line
// members, operators, lambdas handed to parallel_for_chunks, function
// pointers, held-lock tracking, and annotation capture. Each test feeds a
// snippet through the real analyze_file pipeline and inspects the
// FunctionRecords, so a recognizer regression shows up here before it
// mis-fires an interprocedural rule.
#include "analyze/symbols.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/model.hpp"

namespace {

using analyze::FileSummary;
using analyze::FunctionRecord;

FileSummary index(const std::string& source,
                  const std::string& relative = "src/sim/probe.cpp") {
  return analyze::analyze_file(relative, source);
}

/// Definitions only, file-scope record excluded.
std::vector<const FunctionRecord*> defs(const FileSummary& s) {
  std::vector<const FunctionRecord*> out;
  for (const FunctionRecord& r : s.functions) {
    if (!r.file_scope && r.is_definition) out.push_back(&r);
  }
  return out;
}

const FunctionRecord* find(const FileSummary& s,
                           const std::string& qualified) {
  for (const FunctionRecord& r : s.functions) {
    if (r.qualified == qualified) return &r;
  }
  return nullptr;
}

TEST(SymbolIndexer, TemplateFunctionIsFlaggedTemplate) {
  const FileSummary s = index(
      "namespace hc {\n"
      "template <typename T>\n"
      "T clamp_low(T v, T lo) {\n"
      "  return v < lo ? lo : v;\n"
      "}\n"
      "}  // namespace hc\n");
  const FunctionRecord* r = find(s, "hc::clamp_low");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->is_template);
  EXPECT_TRUE(r->is_definition);
  EXPECT_FALSE(r->is_member);
}

TEST(SymbolIndexer, OverloadSetYieldsOneRecordPerDefinition) {
  const FileSummary s = index(
      "namespace hc {\n"
      "int widen(int x) { return x; }\n"
      "double widen(double x) { return x; }\n"
      "}  // namespace hc\n");
  std::size_t widen_defs = 0;
  for (const FunctionRecord* r : defs(s)) {
    if (r->name == "widen") ++widen_defs;
  }
  EXPECT_EQ(widen_defs, 2u);
}

TEST(SymbolIndexer, OutOfLineMemberCarriesClassQualifier) {
  const FileSummary s = index(
      "namespace hc {\n"
      "int Engine::run(int x) { return step(x); }\n"
      "}  // namespace hc\n");
  const FunctionRecord* r = find(s, "hc::Engine::run");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->is_member);
  EXPECT_EQ(r->name, "run");
  ASSERT_EQ(r->calls.size(), 1u);
  EXPECT_EQ(r->calls[0].name, "step");
}

TEST(SymbolIndexer, OperatorOverloadsAreOperators) {
  const FileSummary s = index(
      "namespace hc {\n"
      "bool operator==(int a, long b) { return a == b; }\n"
      "int Functor::operator()(int x) { return x; }\n"
      "}  // namespace hc\n");
  const FunctionRecord* eq = find(s, "hc::operator==");
  ASSERT_NE(eq, nullptr);
  EXPECT_TRUE(eq->is_operator);
  const FunctionRecord* call = find(s, "hc::Functor::operator()");
  ASSERT_NE(call, nullptr);
  EXPECT_TRUE(call->is_operator);
  EXPECT_TRUE(call->is_member);
}

TEST(SymbolIndexer, ConstructorAndDestructorAreSpecial) {
  const FileSummary s = index(
      "namespace hc {\n"
      "Pool::Pool(int n) : size_(n) { open(); }\n"
      "Pool::~Pool() { close(); }\n"
      "}  // namespace hc\n");
  const FunctionRecord* ctor = find(s, "hc::Pool::Pool");
  ASSERT_NE(ctor, nullptr);
  EXPECT_TRUE(ctor->is_special);
  const FunctionRecord* dtor = find(s, "hc::Pool::~Pool");
  ASSERT_NE(dtor, nullptr);
  EXPECT_TRUE(dtor->is_special);
}

TEST(SymbolIndexer, DefaultedSpecialMemberIsNotADefinition) {
  const FileSummary s = index(
      "namespace hc {\n"
      "struct Flat {\n"
      "  Flat() = default;\n"
      "  int live() { return 1; }\n"
      "};\n"
      "}  // namespace hc\n");
  EXPECT_EQ(find(s, "hc::Flat::Flat"), nullptr);
  ASSERT_NE(find(s, "hc::Flat::live"), nullptr);
}

TEST(SymbolIndexer, LambdaInParallelForChunksAttributesToEnclosing) {
  // The call made inside the lambda body belongs to the function that
  // built the lambda, and handing work to the pool is a blocking site.
  const FileSummary s = index(
      "namespace hc {\n"
      "void Runner::fan_out() {\n"
      "  pool_.parallel_for_chunks(0, 8, [&](std::size_t i) {\n"
      "    accumulate(i);\n"
      "  });\n"
      "}\n"
      "}  // namespace hc\n");
  const FunctionRecord* r = find(s, "hc::Runner::fan_out");
  ASSERT_NE(r, nullptr);
  bool saw_accumulate = false;
  for (const analyze::CallSite& c : r->calls) {
    if (c.name == "accumulate") saw_accumulate = true;
  }
  EXPECT_TRUE(saw_accumulate);
  ASSERT_EQ(r->blocks.size(), 1u);
  EXPECT_EQ(r->blocks[0].what, "parallel_for_chunks");
}

TEST(SymbolIndexer, FunctionPointerReferenceKeepsTargetLive) {
  // Taking a function's address is a ref, which is what the dead-symbol
  // liveness fixpoint consumes.
  const FileSummary s = index(
      "namespace hc {\n"
      "int target(int x) { return x; }\n"
      "void install() {\n"
      "  int (*fp)(int) = &target;\n"
      "  use(fp);\n"
      "}\n"
      "}  // namespace hc\n");
  const FunctionRecord* r = find(s, "hc::install");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->refs.count("target"), 1u);
}

TEST(SymbolIndexer, HeldLockStackTracksNestingAndScopeExit) {
  const FileSummary s = index(
      "namespace hc {\n"
      "void Reg::update() {\n"
      "  const core::MutexLock outer(a_);\n"
      "  {\n"
      "    const core::MutexLock inner(b_);\n"
      "  }\n"
      "  refresh();\n"
      "}\n"
      "}  // namespace hc\n");
  const FunctionRecord* r = find(s, "hc::Reg::update");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->locks.size(), 2u);
  EXPECT_EQ(r->locks[0].mutex, "Reg::a_");
  EXPECT_TRUE(r->locks[0].held.empty());
  EXPECT_EQ(r->locks[1].mutex, "Reg::b_");
  ASSERT_EQ(r->locks[1].held.size(), 1u);
  EXPECT_EQ(r->locks[1].held[0], "Reg::a_");
  // The inner guard died with its block: refresh() runs under outer only.
  bool saw_refresh = false;
  for (const analyze::CallSite& c : r->calls) {
    if (c.name != "refresh") continue;
    saw_refresh = true;
    ASSERT_EQ(c.held.size(), 1u);
    EXPECT_EQ(c.held[0], "Reg::a_");
  }
  EXPECT_TRUE(saw_refresh);
}

TEST(SymbolIndexer, AnnotationArgsAreCapturedAndClassQualified) {
  const FileSummary s = index(
      "namespace hc {\n"
      "void Reg::grab() HCSCHED_ACQUIRE(mu_) {}\n"
      "void Reg::poke() HCSCHED_REQUIRES(mu_) { touch(); }\n"
      "}  // namespace hc\n");
  const FunctionRecord* grab = find(s, "hc::Reg::grab");
  ASSERT_NE(grab, nullptr);
  ASSERT_EQ(grab->annot_acquires.size(), 1u);
  EXPECT_EQ(grab->annot_acquires[0], "Reg::mu_");
  const FunctionRecord* poke = find(s, "hc::Reg::poke");
  ASSERT_NE(poke, nullptr);
  ASSERT_EQ(poke->annot_requires.size(), 1u);
  EXPECT_EQ(poke->annot_requires[0], "Reg::mu_");
  // REQUIRES seeds the held set for the body's call sites.
  ASSERT_EQ(poke->calls.size(), 1u);
  ASSERT_EQ(poke->calls[0].held.size(), 1u);
  EXPECT_EQ(poke->calls[0].held[0], "Reg::mu_");
}

TEST(SymbolIndexer, CondVarWaitOnHeldLockIsTheIdiom) {
  const FileSummary s = index(
      "namespace hc {\n"
      "void Pool::drain() {\n"
      "  const core::MutexLock lock(queue_mutex_);\n"
      "  cv_.wait(queue_mutex_);\n"
      "}\n"
      "}  // namespace hc\n");
  const FunctionRecord* r = find(s, "hc::Pool::drain");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->blocks.size(), 1u);
  EXPECT_EQ(r->blocks[0].what, "CondVar::wait");
  EXPECT_TRUE(r->blocks[0].wait_on_held);
}

TEST(SymbolIndexer, MacroDefinitionBodyFeedsFileScopeRecord) {
  // Tokens on directive lines must not open functions; their identifiers
  // land on the file-scope record so macro-expanded helpers stay live.
  const FileSummary s = index(
      "#define PROBE_HOOK(x) probe_helper(x)\n"
      "namespace hc {\n"
      "int plain() { return 0; }\n"
      "}  // namespace hc\n");
  const FunctionRecord* file_scope = nullptr;
  for (const FunctionRecord& r : s.functions) {
    if (r.file_scope) file_scope = &r;
  }
  ASSERT_NE(file_scope, nullptr);
  EXPECT_EQ(file_scope->refs.count("probe_helper"), 1u);
  ASSERT_NE(find(s, "hc::plain"), nullptr);
  EXPECT_EQ(find(s, "hc::PROBE_HOOK"), nullptr);
}

TEST(SymbolIndexer, NestedNamespaceDefinitionQualifies) {
  const FileSummary s = index(
      "namespace hc::fault {\n"
      "int jitter() { return 4; }\n"
      "}  // namespace hc::fault\n");
  ASSERT_NE(find(s, "hc::fault::jitter"), nullptr);
}

TEST(SymbolIndexer, TaintSitesRecordBannedTokens) {
  const FileSummary s = index(
      "namespace hc {\n"
      "int noisy() { return std::rand(); }\n"
      "}  // namespace hc\n",
      "src/sim/noisy.cpp");
  const FunctionRecord* r = find(s, "hc::noisy");
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->taints.size(), 1u);
  EXPECT_EQ(r->taints[0].token, "rand(");
}

TEST(SymbolIndexer, QualifiedCallKeepsQualifierForResolution) {
  const FileSummary s = index(
      "namespace hc {\n"
      "int shim() { return fault::jitter() + std::abs(-1); }\n"
      "}  // namespace hc\n");
  const FunctionRecord* r = find(s, "hc::shim");
  ASSERT_NE(r, nullptr);
  bool saw_jitter = false;
  bool saw_abs = false;
  for (const analyze::CallSite& c : r->calls) {
    if (c.name == "jitter") {
      saw_jitter = true;
      EXPECT_EQ(c.qualifier, "fault");
    }
    if (c.name == "abs") {
      saw_abs = true;
      EXPECT_EQ(c.qualifier, "std");
    }
  }
  EXPECT_TRUE(saw_jitter);
  EXPECT_TRUE(saw_abs);
}

}  // namespace
