#include "heuristics/kpb.hpp"

#include <gtest/gtest.h>

#include "sched/validate.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::heuristics::Kpb;
using hcsched::heuristics::KpbStep;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

TEST(Kpb, SubsetSizeRule) {
  const Kpb kpb(70.0);
  EXPECT_EQ(kpb.subset_size(3), 2u);   // floor(2.1) — the paper's example
  EXPECT_EQ(kpb.subset_size(2), 1u);   // floor(1.4) — degenerates to MET
  EXPECT_EQ(kpb.subset_size(10), 7u);
  EXPECT_EQ(kpb.subset_size(1), 1u);
  const Kpb full(100.0);
  EXPECT_EQ(full.subset_size(5), 5u);
  const Kpb tiny(1.0);
  EXPECT_EQ(tiny.subset_size(50), 1u);  // never below one machine
}

TEST(Kpb, RejectsInvalidPercent) {
  EXPECT_THROW(Kpb(0.0), std::invalid_argument);
  EXPECT_THROW(Kpb(-5.0), std::invalid_argument);
  EXPECT_THROW(Kpb(100.5), std::invalid_argument);
}

TEST(Kpb, ConsidersOnlyBestEtcMachines) {
  // m2 is idle but not among t0's two best-ETC machines, so KPB must not
  // use it even though it would give the earliest completion.
  const EtcMatrix m = EtcMatrix::from_rows({
      {5, 6, 7},   // t0's best two: m0, m1
      {5, 6, 7},
      {5, 6, 7},
  });
  const Kpb kpb(70.0);
  TieBreaker ties;
  const Schedule s = kpb.map(Problem::full(m), ties);
  EXPECT_EQ(s.tasks_on(2).size(), 0u);
  EXPECT_TRUE(hcsched::sched::is_valid(s));
}

TEST(Kpb, TraceRecordsSubsets) {
  const EtcMatrix m = EtcMatrix::from_rows({
      {1, 9, 5},   // best two: m0, m2
      {7, 2, 3},   // best two: m1, m2
  });
  const Kpb kpb(70.0);
  TieBreaker ties;
  std::vector<KpbStep> trace;
  const Schedule s = kpb.map_traced(Problem::full(m), ties, &trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].task, 0);
  EXPECT_EQ(trace[0].subset, (std::vector<int>{0, 2}));
  EXPECT_EQ(trace[0].machine, 0);
  EXPECT_EQ(trace[1].subset, (std::vector<int>{1, 2}));
  EXPECT_EQ(trace[1].machine, 1);
  EXPECT_DOUBLE_EQ(trace[1].completion, 2.0);
  EXPECT_TRUE(s.complete());
}

TEST(Kpb, SubsetEtcTiesResolveTowardLowerSlot) {
  const EtcMatrix m = EtcMatrix::from_rows({{4, 4, 4}});
  const Kpb kpb(40.0);  // subset of one machine
  TieBreaker ties;
  std::vector<KpbStep> trace;
  kpb.map_traced(Problem::full(m), ties, &trace);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].machine, 0);
}

TEST(Kpb, MidRangePercentTradesLoadAndAffinity) {
  // With k=70% the paper's intuition holds: KPB avoids MET's pile-up while
  // never assigning a task to a machine that is poor for it.
  const EtcMatrix m = EtcMatrix::from_rows({
      {1, 2, 50},
      {1, 2, 50},
      {1, 2, 50},
      {1, 2, 50},
  });
  const Kpb kpb(70.0);
  TieBreaker ties;
  const Schedule s = kpb.map(Problem::full(m), ties);
  // Tasks spread over {m0, m1}; m2 never used. Hand trace: t0 -> m0 (1),
  // t1 ties at 2 -> m0 (2), t2 -> m1 (2), t3 -> m0 (3).
  EXPECT_EQ(s.tasks_on(2).size(), 0u);
  EXPECT_EQ(s.tasks_on(0), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(s.tasks_on(1), (std::vector<int>{2}));
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

}  // namespace
