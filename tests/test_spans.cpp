// Span emission: well-formed trees from the instrumented study pipeline,
// deterministic IDs for seeded traces, completeness under quarantine and
// cancellation, the HCSCHED_TRACE kill switch, and SpanCollector
// aggregation (the --profile data model).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/cancel.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "sim/fault/fault.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace hcsched;

sim::StudyParams small_study() {
  sim::StudyParams params;
  params.heuristics = {"MET", "Min-Min"};
  params.trials = 3;
  params.cvb.num_tasks = 8;
  params.cvb.num_machines = 3;
  params.seed = 11;
  return params;
}

/// Structural identity of one span event, timing fields excluded.
using SpanShape =
    std::tuple<std::string, std::string, std::string, std::string>;

SpanShape shape_of(const obs::TraceEvent& event) {
  const obs::JsonValue json = event.to_json();
  std::string parent;
  if (const obs::JsonValue* p = json.find("parent_span_id")) {
    parent = p->as_string();
  }
  return {json.at("name").as_string(), json.at("trace_id").as_string(),
          json.at("span_id").as_string(), parent};
}

/// Every span closed, so every parent referenced by a captured span must
/// itself have been captured (no dangling open spans), and IDs are unique.
void expect_well_formed(const std::vector<obs::TraceEvent>& spans) {
  std::set<std::string> ids;
  for (const obs::TraceEvent& event : spans) {
    const obs::JsonValue json = event.to_json();
    const std::string id = json.at("span_id").as_string();
    EXPECT_NE(obs::parse_span_id(id), 0u) << "malformed span_id " << id;
    EXPECT_TRUE(ids.insert(id).second) << "duplicate span_id " << id;
    EXPECT_NE(obs::parse_span_id(json.at("trace_id").as_string()), 0u);
    EXPECT_GE(json.at("duration_ns").as_number(), 0.0);
    EXPECT_GE(json.at("start_ns").as_number(), 0.0);
  }
  for (const obs::TraceEvent& event : spans) {
    const obs::JsonValue json = event.to_json();
    if (const obs::JsonValue* parent = json.find("parent_span_id")) {
      EXPECT_EQ(ids.count(parent->as_string()), 1u)
          << json.at("name").as_string() << " dangles from parent "
          << parent->as_string();
    }
  }
}

TEST(Spans, StudyEmitsWellFormedTree) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  auto ring = std::make_shared<obs::RingBufferSink>(1 << 14);
  const obs::ScopedSink scope(ring);
  sim::ThreadPool pool(2);
  const sim::StudyReport report =
      sim::run_iterative_study_report(small_study(), pool);
  ASSERT_EQ(report.trials_completed, 3u);
  ASSERT_EQ(obs::spans::thread_depth(), 0u);

  const auto spans = ring->events_named("span");
  ASSERT_EQ(ring->dropped(), 0u);
  expect_well_formed(spans);

  // The instrumented layers all show up: study root, one span per trial,
  // per-heuristic iterative runs with nested iterations, NVI map spans.
  std::map<std::string, std::size_t> by_name;
  for (const auto& event : spans) {
    ++by_name[event.to_json().at("name").as_string()];
  }
  EXPECT_EQ(by_name["study"], 1u);
  EXPECT_EQ(by_name["trial"], 3u);
  EXPECT_EQ(by_name["iterative:MET"], 3u);
  EXPECT_EQ(by_name["iterative:Min-Min"], 3u);
  EXPECT_GE(by_name["iteration"], 6u);
  EXPECT_GE(by_name["map:Min-Min"], 3u);

  // The trial spans nest under the per-trial seeded roots, not the study's:
  // each carries its own deterministic trace_id.
  std::set<std::string> trial_traces;
  for (const auto& event : spans) {
    const obs::JsonValue json = event.to_json();
    if (json.at("name").as_string() == "trial") {
      trial_traces.insert(json.at("trace_id").as_string());
    }
  }
  EXPECT_EQ(trial_traces.size(), 3u);
}

TEST(Spans, SeededTracesAreDeterministicAcrossRuns) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  // Two identical studies on fresh pools. Seeded traces (study + trial
  // roots) must emit identical ID graphs; pool.job spans root from a
  // process-local counter and are excluded.
  const auto run = [] {
    auto ring = std::make_shared<obs::RingBufferSink>(1 << 14);
    const obs::ScopedSink scope(ring);
    sim::ThreadPool pool(2);
    (void)sim::run_iterative_study_report(small_study(), pool);
    std::set<std::string> seeded_traces;
    for (const auto& event : ring->events_named("span")) {
      const obs::JsonValue json = event.to_json();
      const std::string name = json.at("name").as_string();
      if (name == "study" || name == "trial") {
        seeded_traces.insert(json.at("trace_id").as_string());
      }
    }
    std::vector<SpanShape> shapes;
    for (const auto& event : ring->events_named("span")) {
      const obs::JsonValue json = event.to_json();
      if (seeded_traces.count(json.at("trace_id").as_string()) != 0) {
        shapes.push_back(shape_of(event));
      }
    }
    std::sort(shapes.begin(), shapes.end());
    return shapes;
  };
  const std::vector<SpanShape> first = run();
  const std::vector<SpanShape> second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Spans, QuarantinedTrialsStillFlushCompleteTrees) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  auto ring = std::make_shared<obs::RingBufferSink>(1 << 14);
  const obs::ScopedSink scope(ring);
  // Rate 1: every heuristic map throws, every trial quarantines; stack
  // unwinding must still close (and therefore emit) every open span.
  const sim::fault::ScopedFault fault(
      {sim::fault::Site::kHeuristicMap, 1.0, 5});
  sim::ThreadPool pool(2);
  const sim::StudyReport report =
      sim::run_iterative_study_report(small_study(), pool);
  EXPECT_FALSE(report.quarantined.empty());
  EXPECT_EQ(obs::spans::thread_depth(), 0u);

  const auto spans = ring->events_named("span");
  ASSERT_EQ(ring->dropped(), 0u);
  expect_well_formed(spans);
  std::size_t quarantined_trials = 0;
  std::size_t trials = 0;
  for (const auto& event : spans) {
    const obs::JsonValue json = event.to_json();
    if (json.at("name").as_string() != "trial") continue;
    ++trials;
    if (const obs::JsonValue* q = json.find("quarantined")) {
      EXPECT_TRUE(q->as_bool());
      ++quarantined_trials;
    }
  }
  EXPECT_EQ(trials, 3u);
  EXPECT_EQ(quarantined_trials, 3u);
}

TEST(Spans, CancelledStudyClosesItsSpans) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  auto ring = std::make_shared<obs::RingBufferSink>(1 << 14);
  const obs::ScopedSink scope(ring);
  const core::CancelToken token;
  token.request_cancel();  // cancelled before the first trial
  sim::StudyHooks hooks;
  hooks.cancel = &token;
  sim::ThreadPool pool(2);
  const sim::StudyReport report =
      sim::run_iterative_study_report(small_study(), pool, hooks);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(obs::spans::thread_depth(), 0u);
  const auto spans = ring->events_named("span");
  expect_well_formed(spans);
  // The study root span itself still flushes.
  EXPECT_EQ(ring->events_named("span").empty(), false);
}

TEST(Spans, MacroHonoursCompileTimeKillSwitch) {
  auto ring = std::make_shared<obs::RingBufferSink>();
  const obs::ScopedSink scope(ring);
  {
    HCSCHED_SPAN(span, "kill-switch-probe");
    HCSCHED_SPAN_ATTR(span, "probe", obs::JsonValue(true));
  }
  if (obs::kTraceCompiledIn) {
    EXPECT_EQ(ring->events_named("span").size(), 1u);
  } else {
    EXPECT_EQ(ring->size(), 0u);
  }
}

TEST(Spans, NoSinkMeansNoRecordingAndNoIds) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  const obs::ScopedSpan span("unwatched");
  EXPECT_FALSE(span.recording());
  EXPECT_EQ(span.span_id(), 0u);
  EXPECT_EQ(obs::spans::thread_depth(), 0u);
}

TEST(Spans, ParentAccessorMirrorsNesting) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  auto ring = std::make_shared<obs::RingBufferSink>();
  const obs::ScopedSink scope(ring);
  obs::ScopedSpan outer("outer");
  const obs::ScopedSpan inner("inner");
  EXPECT_EQ(outer.parent_span_id(), 0u);
  EXPECT_EQ(inner.parent_span_id(), outer.span_id());
}

TEST(Spans, NullSpanIsInertAndParentless) {
  constexpr obs::NullSpan null;
  EXPECT_FALSE(null.recording());
  EXPECT_EQ(null.trace_id(), 0u);
  EXPECT_EQ(null.span_id(), 0u);
  EXPECT_EQ(null.parent_span_id(), 0u);
}

TEST(Spans, IdFormatRoundTrips) {
  EXPECT_EQ(obs::format_span_id(0xdeadbeef01020304ULL).size(), 16u);
  EXPECT_EQ(obs::parse_span_id(obs::format_span_id(0xdeadbeef01020304ULL)),
            0xdeadbeef01020304ULL);
  EXPECT_EQ(obs::parse_span_id("not-a-span-id!!!"), 0u);
  EXPECT_EQ(obs::parse_span_id("abc"), 0u);
}

TEST(Spans, TeeSinkFansOutToCollectorAndRing) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  auto ring = std::make_shared<obs::RingBufferSink>();
  auto collector = std::make_shared<obs::SpanCollector>();
  const obs::ScopedSink scope(std::make_shared<obs::TeeSink>(
      std::vector<std::shared_ptr<obs::TraceSink>>{ring, collector}));
  {
    obs::ScopedSpan outer("outer");
    const obs::ScopedSpan inner("inner");
  }
  EXPECT_EQ(ring->events_named("span").size(), 2u);
  EXPECT_EQ(collector->size(), 2u);
}

TEST(Spans, CollectorAggregatesNestingIntoProfileTree) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  auto collector = std::make_shared<obs::SpanCollector>();
  const obs::ScopedSink scope(collector);
  for (int i = 0; i < 3; ++i) {
    obs::ScopedSpan outer("phase");
    const obs::ScopedSpan inner("step");
  }
  const std::vector<obs::ProfileNode> roots = collector->aggregate();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "phase");
  EXPECT_EQ(roots[0].count, 3u);
  ASSERT_EQ(roots[0].children.size(), 1u);
  EXPECT_EQ(roots[0].children[0].name, "step");
  EXPECT_EQ(roots[0].children[0].count, 3u);
  EXPECT_LE(roots[0].self_ns, roots[0].total_ns);
  EXPECT_GE(roots[0].total_ns, roots[0].children[0].total_ns);

  const obs::JsonValue json = collector->to_json();
  EXPECT_EQ(json.at("profile").as_string(), "hcsched.profile.v1");
  EXPECT_DOUBLE_EQ(json.at("spans").as_number(), 6.0);
  EXPECT_EQ(json.at("roots").as_array().size(), 1u);
}

}  // namespace
