#include "heuristics/astar.hpp"

#include <gtest/gtest.h>

#include "core/optimal.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::core::solve_optimal;
using hcsched::etc::EtcMatrix;
using hcsched::heuristics::AStar;
using hcsched::heuristics::AStarConfig;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks,
                        std::size_t machines) {
  Rng rng(seed);
  hcsched::etc::CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return hcsched::etc::CvbEtcGenerator(p).generate(rng);
}

TEST(AStar, RejectsZeroBeam) {
  EXPECT_THROW(AStar(AStarConfig{.beam_width = 0}), std::invalid_argument);
}

TEST(AStar, OptimalOnSmallInstancesWithWideBeam) {
  // With an admissible h and a beam wide enough to never prune, A* is
  // exact — compare against the branch-and-bound oracle.
  const AStar astar(AStarConfig{.beam_width = 200000,
                                .max_expansions = 2000000});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const EtcMatrix m = random_matrix(seed, 8, 3);
    const Problem p = Problem::full(m);
    TieBreaker ties;
    const Schedule s = astar.map(p, ties);
    const auto exact = solve_optimal(p);
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_NEAR(s.makespan(), exact.makespan, 1e-9) << "seed " << seed;
    EXPECT_TRUE(hcsched::sched::is_valid(s));
  }
}

TEST(AStar, NarrowBeamStillCompleteAndValid) {
  const AStar astar(AStarConfig{.beam_width = 8});
  const EtcMatrix m = random_matrix(9, 20, 5);
  TieBreaker ties;
  const Schedule s = astar.map(Problem::full(m), ties);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(s));
}

TEST(AStar, WiderBeamNeverHurts) {
  const EtcMatrix m = random_matrix(21, 14, 4);
  const Problem p = Problem::full(m);
  TieBreaker t1;
  TieBreaker t2;
  const double narrow =
      AStar(AStarConfig{.beam_width = 4}).map(p, t1).makespan();
  const double wide =
      AStar(AStarConfig{.beam_width = 4096}).map(p, t2).makespan();
  EXPECT_LE(wide, narrow + 1e-9);
}

TEST(AStar, CompetitiveWithMinMin) {
  const AStar astar;  // default beam 1024
  const auto minmin = hcsched::heuristics::make_heuristic("Min-Min");
  int astar_not_worse = 0;
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    const EtcMatrix m = random_matrix(seed, 12, 4);
    const Problem p = Problem::full(m);
    TieBreaker t1;
    TieBreaker t2;
    if (astar.map(p, t1).makespan() <=
        minmin->map(p, t2).makespan() + 1e-9) {
      ++astar_not_worse;
    }
  }
  EXPECT_GE(astar_not_worse, 8);  // A* should dominate at this size
}

TEST(AStar, DeterministicRunToRun) {
  const AStar astar;
  const EtcMatrix m = random_matrix(77, 16, 4);
  const Problem p = Problem::full(m);
  TieBreaker t1;
  TieBreaker t2;
  EXPECT_TRUE(astar.map(p, t1).same_mapping(astar.map(p, t2)));
}

TEST(AStar, HandlesReadyTimesAndSubsets) {
  const EtcMatrix m = random_matrix(5, 10, 4);
  const Problem p(m, {0, 2, 4, 6}, {1, 3}, {50.0, 0.0});
  const AStar astar;
  TieBreaker ties;
  const Schedule s = astar.map(p, ties);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(s));
  EXPECT_GE(s.completion_time(1), 50.0 - 1e-9);
}

TEST(AStar, RegisteredInTheRegistry) {
  const auto h = hcsched::heuristics::make_heuristic("A*");
  EXPECT_EQ(h->name(), "A*");
  EXPECT_EQ(hcsched::heuristics::make_heuristic("astar")->name(), "A*");
}

TEST(AStar, ExpansionCapFallsBackGracefully) {
  const AStar astar(AStarConfig{.beam_width = 4, .max_expansions = 2});
  const EtcMatrix m = random_matrix(8, 15, 4);
  TieBreaker ties;
  const Schedule s = astar.map(Problem::full(m), ties);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(s));
}

}  // namespace
