// Structured event tracing: the ring sink captures the paper's Min-Min
// worked example (Tables 1-3) iteration by iteration, and the JSONL sink's
// output round-trips through the strict JSON parser.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/paper_examples.hpp"
#include "obs/trace.hpp"

namespace {

using namespace hcsched;

TEST(Trace, RingSinkCapturesMinMinIterativeTrajectory) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  auto ring = std::make_shared<obs::RingBufferSink>();
  const obs::ScopedSink scope(ring);

  const auto result = core::run_paper_example(core::minmin_example());
  ASSERT_EQ(result.iterations.size(), 3u);

  // One event per iteration of the technique.
  const auto events = ring->events_named("iterative.iteration");
  ASSERT_EQ(events.size(), 3u);

  // Iteration 0 mirrors Table 2: completions (5, 2, 4), makespan machine m0
  // frozen at 5.
  const obs::JsonValue first = events[0].to_json();
  EXPECT_EQ(first.at("event").as_string(), "iterative.iteration");
  EXPECT_EQ(first.at("heuristic").as_string(), "Min-Min");
  EXPECT_DOUBLE_EQ(first.at("iteration").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(first.at("makespan").as_number(), 5.0);
  const obs::JsonValue& cts0 = first.at("completion_times");
  EXPECT_DOUBLE_EQ(cts0.at("m0").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(cts0.at("m1").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(cts0.at("m2").as_number(), 4.0);
  EXPECT_EQ(first.at("removed_machine").as_string(), "m0");
  EXPECT_DOUBLE_EQ(first.at("frozen_completion_time").as_number(), 5.0);

  // Iteration 1 mirrors Table 3: m0 gone, (m1, m2) = (1, 6), new makespan
  // machine m2 — the paper's increase from 5 to 6.
  const obs::JsonValue second = events[1].to_json();
  EXPECT_DOUBLE_EQ(second.at("iteration").as_number(), 1.0);
  const obs::JsonValue& cts1 = second.at("completion_times");
  EXPECT_EQ(cts1.find("m0"), nullptr);
  EXPECT_DOUBLE_EQ(cts1.at("m1").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(cts1.at("m2").as_number(), 6.0);
  EXPECT_EQ(second.at("removed_machine").as_string(), "m2");
  EXPECT_DOUBLE_EQ(second.at("frozen_completion_time").as_number(), 6.0);

  // Terminal iteration removes nothing.
  const obs::JsonValue third = events[2].to_json();
  EXPECT_EQ(third.find("removed_machine"), nullptr);

  // The run summary records the makespan transition.
  const auto done = ring->events_named("iterative.done");
  ASSERT_EQ(done.size(), 1u);
  const obs::JsonValue summary = done[0].to_json();
  EXPECT_DOUBLE_EQ(summary.at("original_makespan").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(summary.at("final_makespan").as_number(), 6.0);
  EXPECT_TRUE(summary.at("makespan_increased").as_bool());
  EXPECT_DOUBLE_EQ(
      summary.at("final_finishing_times").at("m1").as_number(), 1.0);

  // The NVI wrapper emitted one heuristic.call per mapping.
  EXPECT_EQ(ring->events_named("heuristic.call").size(), 3u);
}

TEST(Trace, EventsCarryMonotonicSequenceNumbers) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  auto ring = std::make_shared<obs::RingBufferSink>();
  const obs::ScopedSink scope(ring);
  core::run_paper_example(core::minmin_example());

  const auto events = ring->events();
  ASSERT_GE(events.size(), 2u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].sequence, events[i - 1].sequence);
  }
}

TEST(Trace, JsonlSinkRoundTripsThroughParser) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  std::ostringstream out;
  {
    const obs::ScopedSink scope(std::make_shared<obs::JsonlSink>(out));
    core::run_paper_example(core::minmin_example());
  }  // ScopedSink flushes on exit

  std::istringstream lines(out.str());
  std::string line;
  std::size_t parsed = 0;
  std::size_t iteration_events = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue value = obs::JsonValue::parse(line);
    ASSERT_TRUE(value.is_object()) << line;
    EXPECT_NE(value.find("seq"), nullptr);
    EXPECT_NE(value.find("event"), nullptr);
    // Compact dump -> parse must reproduce the value exactly.
    EXPECT_EQ(obs::JsonValue::parse(value.dump()), value);
    if (value.at("event").as_string() == "iterative.iteration") {
      ++iteration_events;
    }
    ++parsed;
  }
  EXPECT_GE(parsed, 4u);
  EXPECT_EQ(iteration_events, 3u);
}

// The sink/tracer machinery itself is compiled in every configuration (only
// the instrumentation *sites* honor the kill switch), so these run
// regardless of HCSCHED_TRACE.

TEST(Trace, RingBufferEvictsOldestPastCapacity) {
  auto ring = std::make_shared<obs::RingBufferSink>(2);
  const obs::ScopedSink scope(ring);
  obs::Tracer::emit("test.a", {});
  obs::Tracer::emit("test.b", {});
  obs::Tracer::emit("test.c", {});

  EXPECT_EQ(ring->size(), 2u);
  EXPECT_EQ(ring->dropped(), 1u);
  const auto events = ring->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "test.b");
  EXPECT_EQ(events[1].name, "test.c");

  ring->clear();
  EXPECT_EQ(ring->size(), 0u);
}

TEST(Trace, ScopedSinkRestoresPreviousSink) {
  auto outer = std::make_shared<obs::RingBufferSink>();
  const obs::ScopedSink outer_scope(outer);
  {
    auto inner = std::make_shared<obs::RingBufferSink>();
    const obs::ScopedSink inner_scope(inner);
    obs::Tracer::emit("test.inner", {});
    EXPECT_EQ(inner->size(), 1u);
    EXPECT_EQ(outer->size(), 0u);
  }
  obs::Tracer::emit("test.outer", {});
  EXPECT_EQ(outer->events_named("test.outer").size(), 1u);
}

TEST(Trace, InactiveTracerDropsEvents) {
  // No sink installed: emit() is a no-op and active() is false.
  {
    const obs::ScopedSink scope(nullptr);
    EXPECT_FALSE(obs::Tracer::active());
    obs::Tracer::emit("test.dropped", {});
  }
}

}  // namespace
