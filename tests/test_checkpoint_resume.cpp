// Checkpoint/resume contract (docs/ROBUSTNESS.md): the JSONL trial
// checkpoint round-trips exactly, tolerates crash artifacts (truncated or
// corrupt lines), and a resumed study folds to statistics bit-identical to
// an uninterrupted run — the paper's numbers cannot depend on whether the
// sweep that produced them was interrupted.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "etc/consistency.hpp"
#include "obs/counters.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/thread_pool.hpp"

namespace {

using hcsched::etc::Consistency;
using hcsched::sim::CheckpointData;
using hcsched::sim::CheckpointKey;
using hcsched::sim::CheckpointWriter;
using hcsched::sim::QuarantineRecord;
using hcsched::sim::StudyHooks;
using hcsched::sim::StudyParams;
using hcsched::sim::StudyReport;
using hcsched::sim::StudyRow;
using hcsched::sim::ThreadPool;
using hcsched::sim::TrialOutcome;
using hcsched::sim::TrialRecord;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "hcsched_ckpt_" + name + ".jsonl";
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  out << contents;
}

StudyParams small_params() {
  StudyParams params;
  params.heuristics = {"MCT", "Min-Min", "Sufferage"};
  params.cvb.num_tasks = 10;
  params.cvb.num_machines = 4;
  params.trials = 8;
  params.seed = 77;
  return params;
}

void expect_rows_identical(const std::vector<StudyRow>& a,
                           const std::vector<StudyRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].heuristic);
    EXPECT_EQ(a[i].heuristic, b[i].heuristic);
    EXPECT_EQ(a[i].trials, b[i].trials);
    EXPECT_EQ(a[i].machines_improved, b[i].machines_improved);
    EXPECT_EQ(a[i].machines_unchanged, b[i].machines_unchanged);
    EXPECT_EQ(a[i].machines_worsened, b[i].machines_worsened);
    EXPECT_EQ(a[i].makespan_increases, b[i].makespan_increases);
    EXPECT_EQ(a[i].finish_delta.count(), b[i].finish_delta.count());
    EXPECT_EQ(a[i].finish_delta.mean(), b[i].finish_delta.mean());
    EXPECT_EQ(a[i].finish_delta.variance(), b[i].finish_delta.variance());
    EXPECT_EQ(a[i].mean_completion_delta.count(),
              b[i].mean_completion_delta.count());
    EXPECT_EQ(a[i].mean_completion_delta.mean(),
              b[i].mean_completion_delta.mean());
    EXPECT_EQ(a[i].mean_completion_delta.variance(),
              b[i].mean_completion_delta.variance());
  }
}

TrialOutcome sample_outcome() {
  TrialOutcome outcome;
  outcome.completed = true;
  TrialRecord r;
  r.heuristic = "Min-Min";
  r.machines_improved = 2;
  r.machines_unchanged = 1;
  r.machines_worsened = 0;
  // Awkward doubles on purpose: shortest-round-trip formatting must bring
  // them back bit-identical.
  r.finish_deltas = {-0.1234567890123456789, 0.0, 1.0 / 3.0, -1e-17};
  r.has_mean_completion_delta = true;
  r.mean_completion_delta = -0.07000000000000001;
  r.makespan_increased = true;
  r.original_makespan = 123.45600000000002;
  outcome.records.push_back(r);

  TrialRecord empty;
  empty.heuristic = "MCT";
  empty.has_mean_completion_delta = false;  // serialized as null
  outcome.records.push_back(empty);

  QuarantineRecord q;
  q.trial = 3;
  q.study_seed = 77;
  q.heuristic = "Sufferage";
  q.site = "heuristic-map";
  q.error = "fault injected at heuristic-map (key 11) with \"quotes\"";
  outcome.quarantined.push_back(q);
  return outcome;
}

// -- codec ----------------------------------------------------------------

TEST(CheckpointCodec, RoundTripPreservesEveryField) {
  const CheckpointKey key{"consistent HiLo", 0xFFFFFFFFFFFFFFFFULL, 42};
  const TrialOutcome outcome = sample_outcome();
  const std::string line = hcsched::sim::encode_trial(key, outcome);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const auto decoded = hcsched::sim::decode_trial(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first.point, key.point);
  EXPECT_EQ(decoded->first.seed, key.seed);  // uint64 max: no double loss
  EXPECT_EQ(decoded->first.trial, key.trial);

  const TrialOutcome& back = decoded->second;
  EXPECT_TRUE(back.completed);
  ASSERT_EQ(back.records.size(), outcome.records.size());
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    const TrialRecord& a = outcome.records[i];
    const TrialRecord& b = back.records[i];
    EXPECT_EQ(a.heuristic, b.heuristic);
    EXPECT_EQ(a.machines_improved, b.machines_improved);
    EXPECT_EQ(a.machines_unchanged, b.machines_unchanged);
    EXPECT_EQ(a.machines_worsened, b.machines_worsened);
    ASSERT_EQ(a.finish_deltas.size(), b.finish_deltas.size());
    for (std::size_t d = 0; d < a.finish_deltas.size(); ++d) {
      EXPECT_EQ(a.finish_deltas[d], b.finish_deltas[d]);  // bit-exact
    }
    EXPECT_EQ(a.has_mean_completion_delta, b.has_mean_completion_delta);
    if (a.has_mean_completion_delta) {
      EXPECT_EQ(a.mean_completion_delta, b.mean_completion_delta);
    }
    EXPECT_EQ(a.makespan_increased, b.makespan_increased);
    EXPECT_EQ(a.original_makespan, b.original_makespan);
  }
  ASSERT_EQ(back.quarantined.size(), 1u);
  EXPECT_EQ(back.quarantined[0].heuristic, "Sufferage");
  EXPECT_EQ(back.quarantined[0].site, "heuristic-map");
  EXPECT_EQ(back.quarantined[0].error, outcome.quarantined[0].error);
}

TEST(CheckpointCodec, RejectsCorruptInput) {
  const std::string good =
      hcsched::sim::encode_trial(CheckpointKey{"", 1, 0}, sample_outcome());
  EXPECT_TRUE(hcsched::sim::decode_trial(good).has_value());

  // The crash artifact this format is designed around: a line cut short.
  EXPECT_FALSE(
      hcsched::sim::decode_trial(good.substr(0, good.size() / 2)).has_value());
  EXPECT_FALSE(hcsched::sim::decode_trial("").has_value());
  EXPECT_FALSE(hcsched::sim::decode_trial("not json at all").has_value());
  EXPECT_FALSE(hcsched::sim::decode_trial("{}").has_value());
  EXPECT_FALSE(hcsched::sim::decode_trial(
                   R"({"v":2,"point":"","seed":1,"trial":0,"records":[]})")
                   .has_value());
}

// -- load -----------------------------------------------------------------

TEST(CheckpointLoad, MissingFileIsEmpty) {
  const CheckpointData data =
      hcsched::sim::load_checkpoint(tmp_path("does_not_exist"));
  EXPECT_TRUE(data.trials.empty());
  EXPECT_EQ(data.lines_read, 0u);
  EXPECT_EQ(data.corrupt_lines, 0u);
  EXPECT_EQ(data.find("", 1, 0), nullptr);
}

TEST(CheckpointLoad, SkipsCorruptLinesWithCount) {
  const std::string path = tmp_path("corrupt");
  const std::string a =
      hcsched::sim::encode_trial(CheckpointKey{"", 9, 0}, sample_outcome());
  const std::string b =
      hcsched::sim::encode_trial(CheckpointKey{"", 9, 1}, sample_outcome());
  // Corruption mid-file (an fsck-style scramble) and at the tail (a killed
  // process mid-append; no trailing newline).
  write_file(path, a + "\n" + "garbage{{{\n" + b + "\n" + b.substr(0, 20));

  const CheckpointData data = hcsched::sim::load_checkpoint(path);
  EXPECT_EQ(data.lines_read, 4u);
  EXPECT_EQ(data.corrupt_lines, 2u);
  EXPECT_EQ(data.trials.size(), 2u);
  EXPECT_NE(data.find("", 9, 0), nullptr);
  EXPECT_NE(data.find("", 9, 1), nullptr);
  EXPECT_EQ(data.find("", 9, 2), nullptr);
  std::remove(path.c_str());
}

TEST(CheckpointLoad, LaterDuplicateWins) {
  const std::string path = tmp_path("dup");
  TrialOutcome first = sample_outcome();
  first.records[0].machines_improved = 1;
  TrialOutcome second = sample_outcome();
  second.records[0].machines_improved = 9;
  const CheckpointKey key{"", 5, 2};
  write_file(path, hcsched::sim::encode_trial(key, first) + "\n" +
                       hcsched::sim::encode_trial(key, second) + "\n");

  const CheckpointData data = hcsched::sim::load_checkpoint(path);
  ASSERT_EQ(data.trials.size(), 1u);
  const TrialOutcome* stored = data.find("", 5, 2);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->records[0].machines_improved, 9u);
  std::remove(path.c_str());
}

// -- study-level resume ----------------------------------------------------

class CheckpointResumeTest : public testing::Test {
 protected:
  // Simulates a run interrupted after `k` completed trials: a first process
  // checkpoints trials 0..k-1, a second resumes the full study from its
  // file. Trial streams are derived from (seed, trial), so the first k
  // trials of the short run are exactly the first k of the full one.
  void expect_resume_bit_identical(StudyParams params, std::size_t k,
                                   const std::string& tag) {
    SCOPED_TRACE(tag);
    ThreadPool pool(3);
    const StudyReport clean =
        hcsched::sim::run_iterative_study_report(params, pool);

    const std::string path = tmp_path(tag);
    std::remove(path.c_str());
    {
      StudyParams first = params;
      first.trials = k;
      CheckpointWriter writer(path);
      StudyHooks hooks;
      hooks.checkpoint = &writer;
      hcsched::sim::run_iterative_study_report(first, pool, hooks);
    }

    const CheckpointData data = hcsched::sim::load_checkpoint(path);
    EXPECT_EQ(data.trials.size(), k);
    EXPECT_EQ(data.corrupt_lines, 0u);
    StudyHooks hooks;
    hooks.resume = &data;
    const StudyReport resumed =
        hcsched::sim::run_iterative_study_report(params, pool, hooks);
    EXPECT_EQ(resumed.trials_replayed, k);
    EXPECT_EQ(resumed.trials_completed, params.trials);
    EXPECT_FALSE(resumed.cancelled);
    expect_rows_identical(clean.rows, resumed.rows);
    std::remove(path.c_str());
  }
};

TEST_F(CheckpointResumeTest, BitIdenticalAcrossConsistencyClassesAndCutPoints) {
  const struct {
    Consistency consistency;
    const char* name;
  } classes[] = {{Consistency::kInconsistent, "inc"},
                 {Consistency::kSemiConsistent, "semi"},
                 {Consistency::kConsistent, "con"}};
  for (const auto& c : classes) {
    StudyParams params = small_params();
    params.consistency = c.consistency;
    // Boundary cut points: nothing checkpointed, one trial, all but one.
    for (const std::size_t k : {std::size_t{0}, std::size_t{1},
                                params.trials - 1}) {
      expect_resume_bit_identical(params, k,
                                  std::string(c.name) + "_k" +
                                      std::to_string(k));
    }
  }
}

TEST_F(CheckpointResumeTest, FullyCheckpointedRunReplaysEveryTrial) {
  StudyParams params = small_params();
  expect_resume_bit_identical(params, params.trials, "full");
}

TEST_F(CheckpointResumeTest, RandomTiesSurviveResume) {
  // kRandom ties draw from per-(trial, heuristic) streams; replaying some
  // trials from disk must not shift the streams of recomputed ones.
  StudyParams params = small_params();
  params.tie_policy = hcsched::rng::TiePolicy::kRandom;
  expect_resume_bit_identical(params, 3, "random_ties");
}

TEST_F(CheckpointResumeTest, CorruptTailDoesNotPoisonResume) {
  StudyParams params = small_params();
  ThreadPool pool(3);
  const StudyReport clean =
      hcsched::sim::run_iterative_study_report(params, pool);

  const std::string path = tmp_path("corrupt_tail");
  std::remove(path.c_str());
  {
    StudyParams first = params;
    first.trials = 4;
    CheckpointWriter writer(path);
    StudyHooks hooks;
    hooks.checkpoint = &writer;
    hcsched::sim::run_iterative_study_report(first, pool, hooks);
  }
  {
    // The killed-mid-append artifact: a truncated final line.
    std::ofstream out(path, std::ios::app);
    out << R"({"v":1,"point":"","seed":77,"tri)";
  }
  const CheckpointData data = hcsched::sim::load_checkpoint(path);
  EXPECT_EQ(data.corrupt_lines, 1u);
  EXPECT_EQ(data.trials.size(), 4u);
  StudyHooks hooks;
  hooks.resume = &data;
  const StudyReport resumed =
      hcsched::sim::run_iterative_study_report(params, pool, hooks);
  EXPECT_EQ(resumed.trials_replayed, 4u);
  expect_rows_identical(clean.rows, resumed.rows);
  std::remove(path.c_str());
}

TEST_F(CheckpointResumeTest, ResumeIgnoresOtherPointsSeedsAndTrials) {
  StudyParams params = small_params();
  ThreadPool pool(3);
  const StudyReport clean =
      hcsched::sim::run_iterative_study_report(params, pool);

  // A checkpoint from a *different* sweep cell, seed, and trial range:
  // nothing matches this study's keys, so everything recomputes.
  const std::string path = tmp_path("foreign");
  std::remove(path.c_str());
  {
    CheckpointWriter writer(path);
    writer.append_trial(CheckpointKey{"other point", params.seed, 0},
                        sample_outcome());
    writer.append_trial(CheckpointKey{"", params.seed + 1, 1},
                        sample_outcome());
    writer.append_trial(CheckpointKey{"", params.seed, params.trials + 5},
                        sample_outcome());
  }
  const CheckpointData data = hcsched::sim::load_checkpoint(path);
  StudyHooks hooks;
  hooks.resume = &data;
  const StudyReport resumed =
      hcsched::sim::run_iterative_study_report(params, pool, hooks);
  EXPECT_EQ(resumed.trials_replayed, 0u);
  expect_rows_identical(clean.rows, resumed.rows);
  std::remove(path.c_str());
}

// -- sweep-level resume ----------------------------------------------------

TEST(SweepResume, PointLabelsNamespaceKeysAndReplayExactly) {
  StudyParams base = small_params();
  base.trials = 3;
  std::vector<hcsched::sim::SweepPoint> points(2);
  points[0].label = "inconsistent HiHi";
  points[0].consistency = Consistency::kInconsistent;
  points[1].label = "consistent LoLo";
  points[1].consistency = Consistency::kConsistent;
  points[1].v_task = 0.3;
  points[1].v_machine = 0.3;

  ThreadPool pool(3);
  const auto clean = hcsched::sim::run_sweep_report(base, points, pool);

  const std::string path = tmp_path("sweep");
  std::remove(path.c_str());
  {
    CheckpointWriter writer(path);
    StudyHooks hooks;
    hooks.checkpoint = &writer;
    hcsched::sim::run_sweep_report(base, points, pool, hooks);
  }
  const CheckpointData data = hcsched::sim::load_checkpoint(path);
  EXPECT_EQ(data.trials.size(), 2 * base.trials);
  for (const auto& point : points) {
    for (std::size_t t = 0; t < base.trials; ++t) {
      EXPECT_NE(data.find(point.label, base.seed, t), nullptr)
          << point.label << " trial " << t;
    }
  }

  StudyHooks hooks;
  hooks.resume = &data;
  const auto resumed = hcsched::sim::run_sweep_report(base, points, pool, hooks);
  ASSERT_EQ(resumed.size(), clean.size());
  for (std::size_t p = 0; p < resumed.size(); ++p) {
    SCOPED_TRACE(points[p].label);
    EXPECT_EQ(resumed[p].report.trials_replayed, base.trials);
    expect_rows_identical(clean[p].report.rows, resumed[p].report.rows);
  }
  std::remove(path.c_str());
}

// -- observability ---------------------------------------------------------

TEST(CheckpointCounters, WrittenReplayedAndCorruptAreCounted) {
  if (!hcsched::obs::kTraceCompiledIn) {
    GTEST_SKIP() << "counters compiled out";
  }
  StudyParams params = small_params();
  params.trials = 4;
  ThreadPool pool(2);
  const std::string path = tmp_path("counters");
  std::remove(path.c_str());

  const auto before = hcsched::obs::counters::snapshot();
  {
    CheckpointWriter writer(path);
    StudyHooks hooks;
    hooks.checkpoint = &writer;
    hcsched::sim::run_iterative_study_report(params, pool, hooks);
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage\n";
  }
  const CheckpointData data = hcsched::sim::load_checkpoint(path);
  StudyHooks hooks;
  hooks.resume = &data;
  hcsched::sim::run_iterative_study_report(params, pool, hooks);

  const auto delta = hcsched::obs::counters::snapshot().delta_since(before);
  using hcsched::obs::Counter;
  EXPECT_EQ(delta[Counter::kCheckpointTrialsWritten], params.trials);
  EXPECT_EQ(delta[Counter::kCheckpointTrialsReplayed], params.trials);
  EXPECT_EQ(delta[Counter::kCheckpointCorruptLines], 1u);
  std::remove(path.c_str());
}

}  // namespace
