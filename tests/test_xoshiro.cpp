#include "rng/xoshiro256ss.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>

namespace {

using hcsched::rng::Xoshiro256ss;

// Independent transcription of Blackman & Vigna's xoshiro256starstar.c,
// seeded the same way (SplitMix64 expansion), used as the oracle.
struct Reference {
  std::array<std::uint64_t, 4> s{};

  explicit Reference(std::uint64_t seed) {
    for (auto& word : s) {
      std::uint64_t z = (seed += 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
  }
};

TEST(Xoshiro256ss, MatchesReferenceAlgorithm) {
  Xoshiro256ss engine(987654321);
  Reference ref(987654321);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(engine.next(), ref.next()) << "at step " << i;
  }
}

TEST(Xoshiro256ss, DeterministicFromSeed) {
  Xoshiro256ss a(5);
  Xoshiro256ss b(5);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256ss, JumpChangesStateAndDecorrelates) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  b.jump();
  EXPECT_NE(a.state(), b.state());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256ss, JumpIsDeterministic) {
  Xoshiro256ss a(1);
  Xoshiro256ss b(1);
  a.jump();
  b.jump();
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256ss, BitsLookUniform) {
  // Each of the 64 bit positions should be set roughly half the time.
  Xoshiro256ss engine(2024);
  constexpr int kSamples = 20000;
  std::array<int, 64> ones{};
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t v = engine.next();
    for (int bit = 0; bit < 64; ++bit) {
      if (v & (1ULL << bit)) ++ones[static_cast<std::size_t>(bit)];
    }
  }
  for (int bit = 0; bit < 64; ++bit) {
    const double p = static_cast<double>(ones[static_cast<std::size_t>(bit)]) /
                     kSamples;
    EXPECT_NEAR(p, 0.5, 0.02) << "bit " << bit;
  }
}

TEST(Xoshiro256ss, NoImmediateRepeats) {
  Xoshiro256ss engine(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(engine.next()).second);
  }
}

}  // namespace
