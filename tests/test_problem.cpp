#include "sched/problem.hpp"

#include <gtest/gtest.h>

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::sched::Problem;

EtcMatrix matrix3x3() {
  return EtcMatrix::from_rows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
}

TEST(Problem, FullCoversEverything) {
  const EtcMatrix m = matrix3x3();
  const Problem p = Problem::full(m);
  EXPECT_EQ(p.num_tasks(), 3u);
  EXPECT_EQ(p.num_machines(), 3u);
  EXPECT_EQ(p.tasks(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(p.machines(), (std::vector<int>{0, 1, 2}));
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(p.initial_ready(s), 0.0);
  }
}

TEST(Problem, SubsetView) {
  const EtcMatrix m = matrix3x3();
  const Problem p(m, {2, 0}, {1, 2}, {10.0, 20.0});
  EXPECT_EQ(p.num_tasks(), 2u);
  EXPECT_EQ(p.num_machines(), 2u);
  EXPECT_DOUBLE_EQ(p.etc_at(2, 0), 8);  // task 2 on machine slot 0 (= m1)
  EXPECT_DOUBLE_EQ(p.etc_at(0, 1), 3);  // task 0 on machine slot 1 (= m2)
  EXPECT_DOUBLE_EQ(p.initial_ready(0), 10.0);
  EXPECT_DOUBLE_EQ(p.initial_ready(1), 20.0);
}

TEST(Problem, SlotAndMembershipLookups) {
  const EtcMatrix m = matrix3x3();
  const Problem p(m, {1}, {0, 2});
  EXPECT_EQ(p.slot_of(0), 0u);
  EXPECT_EQ(p.slot_of(2), 1u);
  EXPECT_EQ(p.slot_of(1), Problem::npos);
  EXPECT_TRUE(p.has_machine(2));
  EXPECT_FALSE(p.has_machine(1));
  EXPECT_TRUE(p.has_task(1));
  EXPECT_FALSE(p.has_task(0));
}

TEST(Problem, RejectsOutOfRangeIds) {
  const EtcMatrix m = matrix3x3();
  EXPECT_THROW(Problem(m, {3}, {0}), std::out_of_range);
  EXPECT_THROW(Problem(m, {0}, {5}), std::out_of_range);
  EXPECT_THROW(Problem(m, {-1}, {0}), std::out_of_range);
}

TEST(Problem, RejectsDuplicateIds) {
  const EtcMatrix m = matrix3x3();
  EXPECT_THROW(Problem(m, {0, 0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(Problem(m, {0, 1}, {2, 2}), std::invalid_argument);
}

TEST(Problem, RejectsMismatchedReadyVector) {
  const EtcMatrix m = matrix3x3();
  EXPECT_THROW(Problem(m, {0}, {0, 1}, {1.0}), std::invalid_argument);
}

TEST(Problem, WithoutMachineDropsMachineAndTasks) {
  const EtcMatrix m = matrix3x3();
  const Problem p(m, {0, 1, 2}, {0, 1, 2}, {5.0, 6.0, 7.0});
  const Problem next = p.without_machine(1, {1});
  EXPECT_EQ(next.tasks(), (std::vector<int>{0, 2}));
  EXPECT_EQ(next.machines(), (std::vector<int>{0, 2}));
  // Initial ready times of survivors are preserved (the paper's "reset to
  // initial ready times" semantics).
  EXPECT_DOUBLE_EQ(next.initial_ready(0), 5.0);
  EXPECT_DOUBLE_EQ(next.initial_ready(1), 7.0);
}

TEST(Problem, WithoutMachinePreservesTaskOrder) {
  const EtcMatrix m = matrix3x3();
  const Problem p(m, {2, 1, 0}, {0, 1, 2});
  const Problem next = p.without_machine(0, {1});
  EXPECT_EQ(next.tasks(), (std::vector<int>{2, 0}));  // relative order kept
}

TEST(Problem, WithoutMachineOnAbsentMachineThrows) {
  const EtcMatrix m = matrix3x3();
  const Problem p(m, {0}, {0, 1});
  EXPECT_THROW(p.without_machine(2, {}), std::invalid_argument);
}

TEST(Problem, WithoutMachineWithEmptyDropListKeepsTasks) {
  const EtcMatrix m = matrix3x3();
  const Problem p = Problem::full(m);
  const Problem next = p.without_machine(2, {});
  EXPECT_EQ(next.num_tasks(), 3u);
  EXPECT_EQ(next.num_machines(), 2u);
}

}  // namespace
