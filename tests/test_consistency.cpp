#include "etc/consistency.hpp"

#include <gtest/gtest.h>

#include "etc/range_generator.hpp"
#include "rng/rng.hpp"

namespace {

using hcsched::etc::Consistency;
using hcsched::etc::EtcMatrix;
using hcsched::etc::is_consistent;
using hcsched::etc::is_semi_consistent;
using hcsched::etc::shape_consistency;

TEST(Consistency, ConsistentShapingSortsEveryRow) {
  const EtcMatrix raw = EtcMatrix::from_rows({{3, 1, 2}, {9, 7, 8}});
  const EtcMatrix shaped = shape_consistency(raw, Consistency::kConsistent);
  EXPECT_DOUBLE_EQ(shaped.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(shaped.at(0, 1), 2);
  EXPECT_DOUBLE_EQ(shaped.at(0, 2), 3);
  EXPECT_DOUBLE_EQ(shaped.at(1, 0), 7);
  EXPECT_TRUE(is_consistent(shaped));
}

TEST(Consistency, InconsistentShapingIsIdentity) {
  const EtcMatrix raw = EtcMatrix::from_rows({{3, 1, 2}, {9, 7, 8}});
  EXPECT_EQ(shape_consistency(raw, Consistency::kInconsistent), raw);
}

TEST(Consistency, SemiConsistentSortsEvenColumnsOnly) {
  const EtcMatrix raw = EtcMatrix::from_rows({{5, 1, 3, 2}, {8, 9, 6, 7}});
  const EtcMatrix shaped =
      shape_consistency(raw, Consistency::kSemiConsistent);
  // Even columns (0, 2) sorted per row; odd columns untouched.
  EXPECT_DOUBLE_EQ(shaped.at(0, 0), 3);
  EXPECT_DOUBLE_EQ(shaped.at(0, 2), 5);
  EXPECT_DOUBLE_EQ(shaped.at(0, 1), 1);
  EXPECT_DOUBLE_EQ(shaped.at(0, 3), 2);
  EXPECT_DOUBLE_EQ(shaped.at(1, 0), 6);
  EXPECT_DOUBLE_EQ(shaped.at(1, 2), 8);
  EXPECT_TRUE(is_semi_consistent(shaped));
}

TEST(Consistency, DetectorsRejectCounterexamples) {
  // Column order flips between rows: inconsistent.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2}, {2, 1}});
  EXPECT_FALSE(is_consistent(m));
  // Even columns flip between rows (columns 0 and 2).
  const EtcMatrix s = EtcMatrix::from_rows({{1, 0, 2, 0}, {2, 0, 1, 0}});
  EXPECT_FALSE(is_semi_consistent(s));
}

TEST(Consistency, DetectorsAcceptTrivialCases) {
  EXPECT_TRUE(is_consistent(EtcMatrix(0, 0)));
  EXPECT_TRUE(is_consistent(EtcMatrix::from_rows({{5}})));
  EXPECT_TRUE(is_semi_consistent(EtcMatrix::from_rows({{5, 1}, {2, 9}})));
}

TEST(Consistency, ToStringLabels) {
  EXPECT_STREQ(hcsched::etc::to_string(Consistency::kConsistent),
               "consistent");
  EXPECT_STREQ(hcsched::etc::to_string(Consistency::kSemiConsistent),
               "semi-consistent");
  EXPECT_STREQ(hcsched::etc::to_string(Consistency::kInconsistent),
               "inconsistent");
}

class ConsistencyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencyPropertyTest, ShapingEstablishesTheInvariantOnRandomInput) {
  hcsched::rng::Rng rng(static_cast<std::uint64_t>(GetParam()));
  hcsched::etc::RangeEtcGenerator gen(
      hcsched::etc::RangeParams{.num_tasks = 20, .num_machines = 7});
  const EtcMatrix raw = gen.generate(rng);
  const EtcMatrix cons = shape_consistency(raw, Consistency::kConsistent);
  const EtcMatrix semi = shape_consistency(raw, Consistency::kSemiConsistent);
  EXPECT_TRUE(is_consistent(cons));
  EXPECT_TRUE(is_semi_consistent(semi));
  EXPECT_TRUE(is_semi_consistent(cons));  // consistent implies semi
  // Shaping permutes values within rows: row multisets are preserved.
  for (std::size_t t = 0; t < raw.num_tasks(); ++t) {
    double raw_sum = 0.0;
    double cons_sum = 0.0;
    for (std::size_t j = 0; j < raw.num_machines(); ++j) {
      raw_sum += raw.at(static_cast<int>(t), static_cast<int>(j));
      cons_sum += cons.at(static_cast<int>(t), static_cast<int>(j));
    }
    EXPECT_NEAR(raw_sum, cons_sum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyPropertyTest,
                         ::testing::Range(1, 21));

}  // namespace
