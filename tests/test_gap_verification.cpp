// Gap-verification tier: BnB-solved small instances (t <= 10, m <= 4, all
// three consistency classes) pin exact optima as golden oracles. On those
// cells every registered heuristic's reported gap must match
// (makespan - opt) / opt to 1e-9, the local-search family must match or
// beat the best two-phase greedy gap on >= 80% of cells, and the study
// engine's gap columns must equal an independent recomputation — through
// checkpoint round trips included. Cell counts widen via HCSCHED_GAP_SEEDS
// in the nightly gap-verification CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/bound.hpp"
#include "core/optimal.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "sched/problem.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/thread_pool.hpp"

namespace {

using hcsched::core::gap_pct;
using hcsched::core::gap_reference;
using hcsched::core::GapReference;
using hcsched::core::preemptive_bound;
using hcsched::core::solve_optimal;
using hcsched::etc::Consistency;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;

constexpr Consistency kClasses[] = {Consistency::kInconsistent,
                                    Consistency::kSemiConsistent,
                                    Consistency::kConsistent};

std::size_t gap_seeds() {
  if (const char* env = std::getenv("HCSCHED_GAP_SEEDS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 3;
}

/// One BnB-solvable golden matrix. Returned by value: Problem is a view
/// over an EtcMatrix, so the caller must keep the matrix alive.
EtcMatrix golden_matrix(std::uint64_t seed, std::size_t tasks,
                        std::size_t machines, Consistency consistency) {
  Rng rng(seed);
  hcsched::etc::CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return hcsched::etc::shape_consistency(
      hcsched::etc::CvbEtcGenerator(p).generate(rng), consistency);
}

struct GoldenCell {
  std::size_t tasks;
  std::size_t machines;
};
constexpr GoldenCell kGoldenCells[] = {{6, 3}, {8, 4}, {10, 4}};

// Acceptance criterion: on every golden instance the reported gap of every
// registered heuristic is exact — (makespan - opt)/opt to 1e-9 — and the
// chain lower_bound <= opt <= heuristic makespan holds.
TEST(GapVerification, GoldenOraclesPinExactGapsForEveryHeuristic) {
  const std::size_t seeds = gap_seeds();
  for (const Consistency consistency : kClasses) {
    for (const GoldenCell& cell : kGoldenCells) {
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const EtcMatrix m =
            golden_matrix(seed, cell.tasks, cell.machines, consistency);
        const Problem p = Problem::full(m);
        const auto optimal = solve_optimal(p);
        ASSERT_TRUE(optimal.proven_optimal)
            << cell.tasks << "x" << cell.machines << " seed " << seed;
        const GapReference reference = gap_reference(p);
        ASSERT_TRUE(reference.exact);
        ASSERT_NEAR(reference.value, optimal.makespan, 1e-12);
        const double bound = preemptive_bound(p);
        EXPECT_LE(bound, optimal.makespan + 1e-9);
        for (const std::string& name :
             hcsched::heuristics::known_heuristic_names()) {
          const auto h = hcsched::heuristics::make_heuristic(name);
          TieBreaker ties;
          const double makespan = h->map(p, ties).makespan();
          const double gap = gap_pct(makespan, reference);
          EXPECT_NEAR(gap, (makespan - optimal.makespan) / optimal.makespan,
                      1e-9)
              << name;
          EXPECT_GE(gap, -1e-9) << name << ": beat a proven optimum";
          EXPECT_LE(bound, makespan + 1e-9) << name;
        }
      }
    }
  }
}

// Acceptance criterion: the local-search family's gap is at or below the
// best two-phase greedy gap (Min-Min / Max-Min / Duplex) on >= 80% of
// golden cells.
TEST(GapVerification, LocalSearchFamilyMatchesOrBeatsTwoPhaseGreedy) {
  const std::size_t seeds = std::max<std::size_t>(gap_seeds(), 5);
  std::size_t cells = 0;
  std::size_t family_wins = 0;
  for (const Consistency consistency : kClasses) {
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const EtcMatrix m = golden_matrix(seed ^ 0x9a0u, 10, 4, consistency);
      const Problem p = Problem::full(m);
      const GapReference reference = gap_reference(p);
      ASSERT_TRUE(reference.exact);
      const auto gap_of = [&](const char* name) {
        const auto h = hcsched::heuristics::make_heuristic(name);
        TieBreaker ties;
        return gap_pct(h->map(p, ties).makespan(), reference);
      };
      const double greedy = std::min(
          {gap_of("Min-Min"), gap_of("Max-Min"), gap_of("Duplex")});
      const double family =
          std::min(gap_of("Local-Search"), gap_of("Local-Search-FI"));
      ++cells;
      if (family <= greedy + 1e-12) ++family_wins;
    }
  }
  EXPECT_GE(family_wins * 10, cells * 8)
      << family_wins << " of " << cells << " cells";
}

// The study engine's gap columns are not a separate estimate: each record
// must equal a recomputation from the trial's own regenerated instance.
TEST(GapVerification, StudyGapColumnsMatchIndependentRecomputation) {
  hcsched::sim::StudyParams params;
  params.heuristics = {"Min-Min", "Sufferage", "Local-Search"};
  params.cvb.num_tasks = 8;
  params.cvb.num_machines = 3;
  params.trials = 5;
  params.seed = 17;
  params.gap = true;

  hcsched::sim::ThreadPool pool;
  const hcsched::sim::StudyReport report =
      hcsched::sim::run_iterative_study_report(params, pool);

  const hcsched::etc::CvbEtcGenerator generator(params.cvb);
  ASSERT_EQ(report.outcomes.size(), params.trials);
  for (std::size_t trial = 0; trial < params.trials; ++trial) {
    // Regenerate the trial's instance exactly as run_one_trial does.
    Rng trial_rng = Rng(params.seed).split(trial);
    const EtcMatrix matrix = hcsched::etc::shape_consistency(
        generator.generate(trial_rng), params.consistency);
    const Problem p = Problem::full(matrix);
    const GapReference reference = gap_reference(p, params.gap_options);
    for (const auto& record : report.outcomes[trial].records) {
      SCOPED_TRACE(record.heuristic);
      ASSERT_TRUE(record.has_gap);
      EXPECT_EQ(record.gap_exact, reference.exact);
      // Same code path, same inputs: bit-identical, not just close.
      EXPECT_EQ(record.gap_pct,
                gap_pct(record.original_makespan, reference));
      EXPECT_GE(record.gap_pct, -1e-9);
    }
  }
  for (const auto& row : report.rows) {
    EXPECT_EQ(row.gap_pct.count(), row.trials);
    EXPECT_EQ(row.gap_exact_trials, row.trials);  // 8x3 is BnB-solvable
  }
}

TEST(GapVerification, CheckpointRoundTripsGapFields) {
  hcsched::sim::TrialOutcome outcome;
  outcome.completed = true;
  hcsched::sim::TrialRecord record;
  record.heuristic = "Local-Search";
  record.original_makespan = 12.5;
  record.has_gap = true;
  record.gap_pct = 0.0625;
  record.gap_exact = true;
  outcome.records.push_back(record);

  const hcsched::sim::CheckpointKey key{"", 5, 0};
  const std::string line = hcsched::sim::encode_trial(key, outcome);
  const auto decoded = hcsched::sim::decode_trial(line);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->second.records.size(), 1u);
  const auto& back = decoded->second.records[0];
  EXPECT_TRUE(back.has_gap);
  EXPECT_EQ(back.gap_pct, record.gap_pct);
  EXPECT_TRUE(back.gap_exact);
}

TEST(GapVerification, VersionOneLinesWithoutGapFieldsStillDecode) {
  // A line written before the gap columns existed: every original field,
  // no gap_pct/gap_exact. Tolerant decode, not a corrupt line.
  const std::string line =
      R"({"v":1,"point":"","seed":"5","trial":0,"records":[)"
      R"({"heuristic":"Min-Min","improved":1,"unchanged":2,"worsened":0,)"
      R"("finish_deltas":[-0.5],"mean_completion_delta":null,)"
      R"("makespan_increased":false,"original_makespan":9.0}],)"
      R"("quarantined":[]})";
  const auto decoded = hcsched::sim::decode_trial(line);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->second.records.size(), 1u);
  const auto& record = decoded->second.records[0];
  EXPECT_FALSE(record.has_gap);
  EXPECT_FALSE(record.gap_exact);
  EXPECT_EQ(record.machines_improved, 1u);
}

}  // namespace
