// Positive control for thread_pool_requires_fail.cpp: the same internal
// call with the lock held MUST compile under HCSCHED_THREAD_SAFETY=ON. The
// `thread_safety_requires_accepted` ctest builds this target; together the
// pair proves the compile-fail test fails because of the missing lock, not
// because of an unrelated build breakage.
#include <future>
#include <utility>

#include "core/thread_annotations.hpp"
#include "sim/thread_pool.hpp"

namespace hcsched::sim {

struct ThreadPoolThreadSafetyProbe {
  static void enqueue_with_lock(ThreadPool& pool) {
    const core::MutexLock lock(pool.queue_mutex_);
    pool.enqueue_locked(std::packaged_task<void()>([] {}));
  }
};

}  // namespace hcsched::sim

int main() {
  hcsched::sim::ThreadPool pool(1);
  hcsched::sim::ThreadPoolThreadSafetyProbe::enqueue_with_lock(pool);
  // The enqueued no-op task is drained by the pool destructor's
  // stop-and-join; no notify needed for a correctness probe that only has
  // to compile and terminate.
  return 0;
}
