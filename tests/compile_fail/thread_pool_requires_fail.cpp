// MUST NOT COMPILE under HCSCHED_THREAD_SAFETY=ON (Clang): calls a
// REQUIRES(queue_mutex_) member of the thread pool without holding the
// lock. The `thread_safety_requires_rejected` ctest builds this target and
// expects the build to fail — pinning that the capability analysis actually
// rejects lock-discipline violations rather than silently parsing the
// annotations. The sibling thread_pool_requires_ok.cpp is the positive
// control proving the harness fails for the right reason.
#include <future>
#include <utility>

#include "sim/thread_pool.hpp"

namespace hcsched::sim {

struct ThreadPoolThreadSafetyProbe {
  static void enqueue_without_lock(ThreadPool& pool) {
    // error: calling function 'enqueue_locked' requires holding mutex
    // 'pool.queue_mutex_' exclusively [-Werror,-Wthread-safety-analysis]
    pool.enqueue_locked(std::packaged_task<void()>([] {}));
  }
};

}  // namespace hcsched::sim

int main() {
  hcsched::sim::ThreadPool pool(1);
  hcsched::sim::ThreadPoolThreadSafetyProbe::enqueue_without_lock(pool);
  return 0;
}
