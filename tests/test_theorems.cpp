// Property tests for the paper's theorems (§3.2-3.4) and the Genitor
// monotonicity claim (§3.1).
#include "core/theorems.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/paper_examples.hpp"
#include "core/witness.hpp"
#include "etc/cvb_generator.hpp"
#include "ga/genitor.hpp"
#include "heuristics/registry.hpp"

namespace {

using hcsched::core::check_mapping_invariance;
using hcsched::core::check_monotone_makespan;
using hcsched::core::IterativeMinimizer;
using hcsched::core::IterativeOptions;
using hcsched::core::verify_theorem;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;

EtcMatrix continuous_matrix(std::uint64_t seed, std::size_t tasks,
                            std::size_t machines) {
  Rng rng(seed);
  hcsched::etc::CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return hcsched::etc::CvbEtcGenerator(p).generate(rng);
}

/// Small-integer matrices deliberately provoke ties, exercising the
/// deterministic tie-breaking path of the theorems.
EtcMatrix tie_rich_matrix(std::uint64_t seed, std::size_t tasks,
                          std::size_t machines) {
  Rng rng(seed);
  EtcMatrix m(tasks, machines);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t j = 0; j < machines; ++j) {
      m.at(static_cast<int>(t), static_cast<int>(j)) =
          static_cast<double>(rng.between(1, 4));
    }
  }
  return m;
}

// The theorems: Min-Min, MCT and MET mappings are invariant across
// iterations under deterministic tie-breaking. Swept over both continuous
// (tie-free) and tie-rich integer matrices.
class TheoremTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(TheoremTest, MappingInvariantUnderDeterministicTies) {
  const auto& [name, seed] = GetParam();
  const auto heuristic = hcsched::heuristics::make_heuristic(name);
  {
    const EtcMatrix m =
        continuous_matrix(static_cast<std::uint64_t>(seed), 18, 5);
    const auto report = verify_theorem(*heuristic, Problem::full(m));
    EXPECT_TRUE(report.holds) << name << ": " << report.violation;
  }
  {
    const EtcMatrix m =
        tie_rich_matrix(static_cast<std::uint64_t>(seed) + 1000, 14, 4);
    const auto report = verify_theorem(*heuristic, Problem::full(m));
    EXPECT_TRUE(report.holds) << name << " (tie-rich): " << report.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MinMinMctMet, TheoremTest,
    ::testing::Combine(::testing::Values(std::string("Min-Min"),
                                         std::string("MCT"),
                                         std::string("MET")),
                       ::testing::Range(1, 26)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(param_info.param));
    });

TEST(Theorems, InvarianceImpliesNoMakespanIncrease) {
  // Direct corollary check on a batch of tie-rich instances.
  for (const char* name : {"Min-Min", "MCT", "MET"}) {
    const auto heuristic = hcsched::heuristics::make_heuristic(name);
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const EtcMatrix m = tie_rich_matrix(seed, 10, 3);
      TieBreaker det;
      const auto result =
          IterativeMinimizer{IterativeOptions{.use_seeding = false}}.run(
              *heuristic, Problem::full(m), det);
      EXPECT_FALSE(result.makespan_increased()) << name << " seed " << seed;
      EXPECT_TRUE(hcsched::core::no_machine_worsened(result))
          << name << " seed " << seed;
    }
  }
}

TEST(Theorems, SwaKpbSufferageAreNotInvariant) {
  // The paper's §3.5-3.7 claims: witnesses exist where the mapping changes
  // (and the makespan increases) even with deterministic ties. Use the
  // witness search to exhibit one for each heuristic.
  for (const char* name : {"SWA", "KPB", "Sufferage"}) {
    const auto heuristic = hcsched::heuristics::make_heuristic(name);
    hcsched::core::WitnessSpec spec;
    spec.num_tasks = 6;
    spec.num_machines = 3;
    spec.half_integers = true;
    Rng rng(2026);
    const auto witness = hcsched::core::find_makespan_increase_witness(
        *heuristic, spec, rng, 300000);
    ASSERT_TRUE(witness.has_value()) << name;
    const auto report = check_mapping_invariance(witness->result);
    EXPECT_FALSE(report.holds) << name;
    EXPECT_TRUE(witness->result.makespan_increased()) << name;
  }
}

TEST(Theorems, GenitorWithSeedingIsMonotone) {
  hcsched::ga::GenitorConfig cfg;
  cfg.population_size = 30;
  cfg.total_steps = 200;
  const hcsched::ga::Genitor genitor(cfg);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EtcMatrix m = continuous_matrix(seed + 500, 16, 4);
    TieBreaker ties;
    const auto result =
        IterativeMinimizer{IterativeOptions{.use_seeding = true}}.run(
            genitor, Problem::full(m), ties);
    const auto report = check_monotone_makespan(result);
    EXPECT_TRUE(report.holds) << "seed " << seed << ": " << report.violation;
    EXPECT_FALSE(result.makespan_increased()) << "seed " << seed;
  }
}

TEST(Theorems, CheckMonotoneDetectsViolations) {
  // Feed it a result that *does* increase: the MET paper example.
  const auto example = hcsched::core::met_example();
  const auto result = hcsched::core::run_paper_example(example);
  EXPECT_FALSE(check_monotone_makespan(result).holds);
}

TEST(Theorems, CheckInvarianceDetectsMovedTask) {
  const auto example = hcsched::core::mct_example();
  const auto result = hcsched::core::run_paper_example(example);
  const auto report = check_mapping_invariance(result);
  EXPECT_FALSE(report.holds);
  EXPECT_FALSE(report.violation.empty());
}

}  // namespace
