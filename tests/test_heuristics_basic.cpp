// Hand-computed mappings for every greedy heuristic on small instances.
#include <gtest/gtest.h>

#include "heuristics/duplex.hpp"
#include "heuristics/mct.hpp"
#include "heuristics/met.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/olb.hpp"
#include "rng/tie_break.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

TEST(Mct, GreedyEarliestCompletion) {
  // t0 -> m0 (2); t1 -> m1 (1); t2: CT m0 = 2+4 = 6 vs m1 = 1+4 = 5 -> m1.
  const EtcMatrix m = EtcMatrix::from_rows({{2, 9}, {9, 1}, {4, 4}});
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const Schedule s = mct.map(Problem::full(m), ties);
  EXPECT_EQ(*s.machine_of(0), 0);
  EXPECT_EQ(*s.machine_of(1), 1);
  EXPECT_EQ(*s.machine_of(2), 1);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
}

TEST(Mct, AccountsForInitialReadyTimes) {
  // m0 is busy until t=10, so even a slow m1 wins.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 5}});
  const Problem p(m, {0}, {0, 1}, {10.0, 0.0});
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const Schedule s = mct.map(p, ties);
  EXPECT_EQ(*s.machine_of(0), 1);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 5.0);
}

TEST(Met, IgnoresReadyTimes) {
  // All tasks pile onto the fastest machine no matter the load.
  const EtcMatrix m =
      EtcMatrix::from_rows({{1, 2}, {1, 2}, {1, 2}, {1, 2}});
  hcsched::heuristics::Met met;
  TieBreaker ties;
  const Schedule s = met.map(Problem::full(m), ties);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(*s.machine_of(t), 0);
  EXPECT_DOUBLE_EQ(s.completion_time(0), 4.0);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 0.0);
}

TEST(Met, IgnoresInitialReadyTimesToo) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 5}});
  const Problem p(m, {0}, {0, 1}, {100.0, 0.0});
  hcsched::heuristics::Met met;
  TieBreaker ties;
  const Schedule s = met.map(p, ties);
  EXPECT_EQ(*s.machine_of(0), 0);  // min ETC, despite the backlog
  EXPECT_DOUBLE_EQ(s.completion_time(0), 101.0);
}

TEST(Olb, BalancesLoadIgnoringEtc) {
  // OLB sends each task to the soonest-ready machine even if slow there.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 100}, {1, 100}});
  hcsched::heuristics::Olb olb;
  TieBreaker ties;
  const Schedule s = olb.map(Problem::full(m), ties);
  EXPECT_EQ(*s.machine_of(0), 0);  // both idle: tie -> lowest slot
  EXPECT_EQ(*s.machine_of(1), 1);  // m0 busy until 1, m1 idle
  EXPECT_DOUBLE_EQ(s.makespan(), 100.0);
}

TEST(MinMin, MapsShortTasksFirst) {
  // Phase-2 minimum is t1 (CT 1 on m1), then t0 (2 on m0), then t2.
  const EtcMatrix m = EtcMatrix::from_rows({{2, 9}, {9, 1}, {4, 4}});
  hcsched::heuristics::MinMin minmin;
  TieBreaker ties;
  const Schedule s = minmin.map(Problem::full(m), ties);
  EXPECT_EQ(s.assignment_order()[0].task, 1);
  EXPECT_EQ(s.assignment_order()[1].task, 0);
  EXPECT_EQ(s.assignment_order()[2].task, 2);
  EXPECT_EQ(*s.machine_of(2), 1);  // CT 5 on m1 beats 6 on m0
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
}

TEST(MaxMin, MapsLongTasksFirst) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 9}, {9, 1}, {4, 4}});
  hcsched::heuristics::MaxMin maxmin;
  TieBreaker ties;
  const Schedule s = maxmin.map(Problem::full(m), ties);
  // Phase-1 minima: t0 -> 2, t1 -> 1, t2 -> 4; Max-Min starts with t2.
  EXPECT_EQ(s.assignment_order()[0].task, 2);
}

TEST(MaxMin, CanBeatMinMinOnSkewedInstances) {
  // Classic case: one long task plus fillers. Min-Min handles the fillers
  // first and then the long task lands on a loaded machine.
  const EtcMatrix m =
      EtcMatrix::from_rows({{8, 9}, {2, 3}, {2, 3}, {2, 3}});
  hcsched::heuristics::MinMin minmin;
  hcsched::heuristics::MaxMin maxmin;
  TieBreaker t1;
  TieBreaker t2;
  const double min_span = minmin.map(Problem::full(m), t1).makespan();
  const double max_span = maxmin.map(Problem::full(m), t2).makespan();
  EXPECT_LT(max_span, min_span);
}

TEST(Duplex, TakesTheBetterOfMinMinAndMaxMin) {
  const EtcMatrix skew =
      EtcMatrix::from_rows({{8, 9}, {2, 3}, {2, 3}, {2, 3}});
  hcsched::heuristics::MinMin minmin;
  hcsched::heuristics::MaxMin maxmin;
  hcsched::heuristics::Duplex duplex;
  TieBreaker t1;
  TieBreaker t2;
  TieBreaker t3;
  const double d = duplex.map(Problem::full(skew), t3).makespan();
  const double mn = minmin.map(Problem::full(skew), t1).makespan();
  const double mx = maxmin.map(Problem::full(skew), t2).makespan();
  EXPECT_DOUBLE_EQ(d, std::min(mn, mx));
}

TEST(AllGreedy, SingleMachineEverythingPilesUp) {
  const EtcMatrix m = EtcMatrix::from_rows({{2}, {3}, {4}});
  const Problem p = Problem::full(m);
  hcsched::heuristics::Mct mct;
  hcsched::heuristics::Met met;
  hcsched::heuristics::Olb olb;
  hcsched::heuristics::MinMin minmin;
  for (hcsched::heuristics::Heuristic* h :
       std::initializer_list<hcsched::heuristics::Heuristic*>{
           &mct, &met, &olb, &minmin}) {
    TieBreaker ties;
    const Schedule s = h->map(p, ties);
    EXPECT_DOUBLE_EQ(s.makespan(), 9.0) << h->name();
    EXPECT_TRUE(hcsched::sched::is_valid(s)) << h->name();
  }
}

TEST(Mct, ScriptedTieReproducesAlternative) {
  const EtcMatrix m = EtcMatrix::from_rows({{5, 5}});
  const Problem p = Problem::full(m);
  hcsched::heuristics::Mct mct;
  TieBreaker det;
  EXPECT_EQ(*mct.map(p, det).machine_of(0), 0);
  TieBreaker scripted(std::vector<std::size_t>{1});
  EXPECT_EQ(*mct.map(p, scripted).machine_of(0), 1);
}

TEST(MinMin, EmptyTaskListYieldsEmptySchedule) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2}});
  const Problem p(m, {}, {0, 1});
  hcsched::heuristics::MinMin minmin;
  TieBreaker ties;
  const Schedule s = minmin.map(p, ties);
  EXPECT_EQ(s.num_assigned(), 0u);
  EXPECT_TRUE(s.complete());
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

}  // namespace
