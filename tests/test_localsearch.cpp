// Differential determinism harness for the local-search family: the same
// seed must yield the same schedule and consume no caller randomness —
// with or without cancellation, and through checkpoint/resume — and a run
// seeded from another schedule can never end up worse than its seed.
#include "heuristics/localsearch/localsearch.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/cancel.hpp"
#include "etc/consistency.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/mct.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/registry.hpp"
#include "sched/validate.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/thread_pool.hpp"

namespace {

using hcsched::core::CancelToken;
using hcsched::core::ScopedCancel;
using hcsched::etc::EtcMatrix;
using hcsched::heuristics::LocalSearch;
using hcsched::heuristics::LocalSearchConfig;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks,
                        std::size_t machines) {
  Rng rng(seed);
  hcsched::etc::CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return hcsched::etc::CvbEtcGenerator(p).generate(rng);
}

void expect_identical(const Problem& problem, const Schedule& a,
                      const Schedule& b) {
  ASSERT_TRUE(a.same_mapping(b));
  for (const auto machine : problem.machines()) {
    EXPECT_DOUBLE_EQ(a.completion_time(machine), b.completion_time(machine));
  }
}

TEST(LocalSearch, SameSeedSameScheduleAndNoTieConsumption) {
  const EtcMatrix m = random_matrix(21, 16, 5);
  const Problem p = Problem::full(m);
  for (const bool first_improvement : {false, true}) {
    LocalSearchConfig config;
    config.first_improvement = first_improvement;
    const LocalSearch ls(config);
    TieBreaker t1;
    TieBreaker t2;
    const Schedule a = ls.map(p, t1);
    const Schedule b = ls.map(p, t2);
    expect_identical(p, a, b);
    // All stochastic decisions come from the private seeded stream: the
    // caller's TieBreaker is untouched, so traces and RNG consumption of
    // the surrounding study are identical run to run.
    EXPECT_EQ(t1.decisions(), 0u);
    EXPECT_EQ(t1.tie_events(), 0u);
    EXPECT_TRUE(hcsched::sched::is_valid(a));
    EXPECT_TRUE(a.complete());
  }
}

TEST(LocalSearch, DifferentSeedsMayDifferButStayValid) {
  const EtcMatrix m = random_matrix(22, 14, 4);
  const Problem p = Problem::full(m);
  LocalSearchConfig config;
  config.seed = 1;
  LocalSearchConfig other = config;
  other.seed = 2;
  TieBreaker ties;
  const Schedule a = LocalSearch(config).map(p, ties);
  const Schedule b = LocalSearch(other).map(p, ties);
  EXPECT_TRUE(hcsched::sched::is_valid(a));
  EXPECT_TRUE(hcsched::sched::is_valid(b));
  // Both descents start from the same Min-Min seed, so both are at least
  // as good as it regardless of which disruptions their streams chose.
  hcsched::heuristics::MinMin minmin;
  TieBreaker det;
  const double seed_span = minmin.map(p, det).makespan();
  EXPECT_LE(a.makespan(), seed_span + 1e-9);
  EXPECT_LE(b.makespan(), seed_span + 1e-9);
}

TEST(LocalSearch, NeverWorseThanItsGreedySeed) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const EtcMatrix m = random_matrix(seed, 12, 4);
    const Problem p = Problem::full(m);
    hcsched::heuristics::MinMin minmin;
    TieBreaker det;
    const double greedy = minmin.map(p, det).makespan();
    for (const char* name : {"Local-Search", "Local-Search-FI"}) {
      const auto ls = hcsched::heuristics::make_heuristic(name);
      TieBreaker ties;
      EXPECT_LE(ls->map(p, ties).makespan(), greedy + 1e-9)
          << name << " seed " << seed;
    }
  }
}

TEST(LocalSearch, SeededRunNeverWorseThanTheSeedSchedule) {
  const EtcMatrix m = random_matrix(31, 12, 4);
  const Problem p = Problem::full(m);
  hcsched::heuristics::Mct mct;
  TieBreaker det;
  const Schedule seed_schedule = mct.map(p, det);
  const LocalSearch ls;
  TieBreaker ties;
  const Schedule out = ls.map_seeded(p, ties, &seed_schedule);
  EXPECT_LE(out.makespan(), seed_schedule.makespan() + 1e-9);
  EXPECT_TRUE(hcsched::sched::is_valid(out));
}

TEST(LocalSearch, TrivialInstances) {
  // One machine: every mapping is the same; the search must not loop.
  const EtcMatrix one = EtcMatrix::from_rows({{3}, {4}});
  const LocalSearch ls;
  TieBreaker ties;
  EXPECT_DOUBLE_EQ(ls.map(Problem::full(one), ties).makespan(), 7.0);
  // No tasks.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2}});
  const Problem empty(m, {}, {0, 1});
  EXPECT_DOUBLE_EQ(ls.map(empty, ties).makespan(), 0.0);
  // No machines: error, like every heuristic.
  const Problem none(m, {0}, {});
  EXPECT_THROW((void)ls.map(none, ties), std::invalid_argument);
}

TEST(LocalSearch, CancelledRunIsCompleteValidAndDeterministic) {
  const EtcMatrix m = random_matrix(41, 16, 5);
  const Problem p = Problem::full(m);
  const LocalSearch ls;

  // Cut point A: cancelled before the search starts. The anytime contract
  // still returns a complete, valid mapping — and the same one every time.
  CancelToken cancelled;
  cancelled.request_cancel();
  Schedule first(p);
  {
    const ScopedCancel scope(cancelled);
    TieBreaker ties;
    first = ls.map(p, ties);
  }
  EXPECT_TRUE(first.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(first));
  {
    const ScopedCancel scope(cancelled);
    TieBreaker ties;
    const Schedule again = ls.map(p, ties);
    expect_identical(p, first, again);
  }

  // Cut point B: no cancellation. Deterministic as well, and at least as
  // good as the early-cut result (the search only ever keeps improvements).
  TieBreaker ties;
  const Schedule full = ls.map(p, ties);
  EXPECT_LE(full.makespan(), first.makespan() + 1e-9);
}

TEST(LocalSearch, StudyResumeIsBitIdenticalWithGapColumns) {
  using hcsched::sim::CheckpointData;
  using hcsched::sim::CheckpointWriter;
  using hcsched::sim::StudyHooks;
  using hcsched::sim::StudyParams;
  using hcsched::sim::StudyReport;
  using hcsched::sim::ThreadPool;

  StudyParams params;
  params.heuristics = {"Min-Min", "Local-Search", "Local-Search-FI"};
  params.cvb.num_tasks = 8;
  params.cvb.num_machines = 3;
  params.trials = 6;
  params.seed = 91;
  params.gap = true;

  ThreadPool pool;
  const StudyReport clean =
      hcsched::sim::run_iterative_study_report(params, pool);

  const std::string path =
      testing::TempDir() + "hcsched_localsearch_resume.jsonl";
  std::remove(path.c_str());
  {
    CheckpointWriter writer(path);
    StudyHooks hooks;
    hooks.checkpoint = &writer;
    (void)hcsched::sim::run_iterative_study_report(params, pool, hooks);
  }
  const CheckpointData data = hcsched::sim::load_checkpoint(path);
  EXPECT_EQ(data.trials.size(), params.trials);
  StudyHooks resume_hooks;
  resume_hooks.resume = &data;
  const StudyReport resumed =
      hcsched::sim::run_iterative_study_report(params, pool, resume_hooks);
  EXPECT_EQ(resumed.trials_replayed, params.trials);

  ASSERT_EQ(clean.rows.size(), resumed.rows.size());
  for (std::size_t i = 0; i < clean.rows.size(); ++i) {
    SCOPED_TRACE(clean.rows[i].heuristic);
    EXPECT_EQ(clean.rows[i].trials, resumed.rows[i].trials);
    EXPECT_EQ(clean.rows[i].machines_improved,
              resumed.rows[i].machines_improved);
    EXPECT_EQ(clean.rows[i].finish_delta.mean(),
              resumed.rows[i].finish_delta.mean());
    // The gap columns survive the round trip bit-for-bit.
    EXPECT_EQ(clean.rows[i].gap_pct.count(), resumed.rows[i].gap_pct.count());
    EXPECT_EQ(clean.rows[i].gap_pct.mean(), resumed.rows[i].gap_pct.mean());
    EXPECT_EQ(clean.rows[i].gap_pct.variance(),
              resumed.rows[i].gap_pct.variance());
    EXPECT_EQ(clean.rows[i].gap_exact_trials,
              resumed.rows[i].gap_exact_trials);
  }
  std::remove(path.c_str());
}

TEST(LocalSearch, RegistryExposesTheFamily) {
  EXPECT_EQ(hcsched::heuristics::make_heuristic("local-search")->name(),
            "Local-Search");
  EXPECT_EQ(hcsched::heuristics::make_heuristic("LS")->name(),
            "Local-Search");
  EXPECT_EQ(hcsched::heuristics::make_heuristic("local_search_fi")->name(),
            "Local-Search-FI");
  const auto ls = hcsched::heuristics::make_heuristic("Local-Search");
  EXPECT_FALSE(ls->deterministic_given_ties());
}

}  // namespace
