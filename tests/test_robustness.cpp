#include "sim/robustness.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "etc/cvb_generator.hpp"
#include "heuristics/mct.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;
using hcsched::sim::perturb;
using hcsched::sim::PerturbationModel;
using hcsched::sim::realized_completions;
using hcsched::sim::realized_makespan;
using hcsched::sim::robustness_radius;

TEST(Robustness, ZeroNoiseIsIdentity) {
  Rng rng(1);
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}});
  const EtcMatrix actual = perturb(m, PerturbationModel{.noise = 0.0}, rng);
  EXPECT_EQ(actual, m);
}

TEST(Robustness, PerturbationStaysPositiveAndNearMean) {
  Rng rng(2);
  EtcMatrix m(50, 10);
  for (int t = 0; t < 50; ++t) {
    for (int j = 0; j < 10; ++j) m.at(t, j) = 100.0;
  }
  const EtcMatrix actual =
      perturb(m, PerturbationModel{.noise = 0.2, .floor = 0.05}, rng);
  double sum = 0.0;
  for (double v : actual.data()) {
    EXPECT_GE(v, 5.0);  // floor * 100
    sum += v;
  }
  const double mean = sum / 500.0;
  EXPECT_NEAR(mean, 100.0, 4.0);  // unbiased up to the floor clamp
}

TEST(Robustness, RejectsBadModel) {
  Rng rng(3);
  const EtcMatrix m = EtcMatrix::from_rows({{1}});
  EXPECT_THROW((void)perturb(m, PerturbationModel{.noise = -0.1}, rng),
               std::invalid_argument);
  EXPECT_THROW(
      (void)perturb(m, PerturbationModel{.noise = 0.1, .floor = 0.0}, rng),
      std::invalid_argument);
}

TEST(Robustness, RealizedCompletionsUseActualTimes) {
  const EtcMatrix estimated = EtcMatrix::from_rows({{2, 9}, {9, 3}});
  Schedule s(Problem::full(estimated));
  s.assign(0, 0);
  s.assign(1, 1);
  EtcMatrix actual = estimated;
  actual.at(0, 0) = 4.0;  // ran twice as long as estimated
  const auto realized = realized_completions(s, actual);
  ASSERT_EQ(realized.size(), 2u);
  EXPECT_DOUBLE_EQ(realized[0], 4.0);
  EXPECT_DOUBLE_EQ(realized[1], 3.0);
  EXPECT_DOUBLE_EQ(realized_makespan(s, actual), 4.0);
}

TEST(Robustness, RealizedCompletionsKeepInitialReady) {
  const EtcMatrix estimated = EtcMatrix::from_rows({{2}});
  const Problem p(estimated, {0}, {0}, {10.0});
  Schedule s(p);
  s.assign(0, 0);
  const auto realized = realized_completions(s, estimated);
  EXPECT_DOUBLE_EQ(realized[0], 12.0);
}

TEST(Robustness, ShapeMismatchThrows) {
  const EtcMatrix estimated = EtcMatrix::from_rows({{2, 9}});
  Schedule s(Problem::full(estimated));
  s.assign(0, 0);
  const EtcMatrix wrong = EtcMatrix::from_rows({{2}});
  EXPECT_THROW((void)realized_completions(s, wrong), std::invalid_argument);
}

TEST(Robustness, RadiusMatchesHandComputation) {
  // Mapping: m0 holds work 4, m1 holds work 2; tau = 6.
  // r_m0 = (6 - 4) / 4 = 0.5; r_m1 = (6 - 2) / 2 = 2 -> radius 0.5.
  const EtcMatrix m = EtcMatrix::from_rows({{4, 9}, {9, 2}});
  Schedule s(Problem::full(m));
  s.assign(0, 0);
  s.assign(1, 1);
  EXPECT_DOUBLE_EQ(robustness_radius(s, 6.0), 0.5);
}

TEST(Robustness, RadiusZeroWhenAlreadyPastTau) {
  const EtcMatrix m = EtcMatrix::from_rows({{4, 9}});
  Schedule s(Problem::full(m));
  s.assign(0, 0);
  EXPECT_DOUBLE_EQ(robustness_radius(s, 3.0), 0.0);
}

TEST(Robustness, RadiusInfiniteWithNoWork) {
  const EtcMatrix m = EtcMatrix::from_rows({{4, 9}});
  const Problem p(m, {}, {0, 1});
  Schedule s(p);
  EXPECT_EQ(robustness_radius(s, 100.0),
            std::numeric_limits<double>::infinity());
}

TEST(Robustness, RadiusVerifiedByDirectInflation) {
  // Inflating one machine's queue by exactly the radius lands on tau.
  Rng rng(9);
  hcsched::etc::CvbParams params;
  params.num_tasks = 12;
  params.num_machines = 4;
  const EtcMatrix estimated =
      hcsched::etc::CvbEtcGenerator(params).generate(rng);
  hcsched::heuristics::Mct mct;
  TieBreaker ties;
  const Schedule s = mct.map(Problem::full(estimated), ties);
  const double tau = s.makespan() * 1.3;
  const double radius = robustness_radius(s, tau);
  ASSERT_GT(radius, 0.0);
  // Find the critical machine and inflate only its queue entries.
  for (int machine = 0; machine < 4; ++machine) {
    const double work = s.completion_time(machine);
    if (work <= 0.0) continue;
    EtcMatrix inflated = estimated;
    for (const auto& a : s.queue_of(machine)) {
      inflated.at(a.task, a.machine) *= (1.0 + radius);
    }
    EXPECT_LE(realized_makespan(s, inflated), tau + 1e-9);
  }
}

}  // namespace
