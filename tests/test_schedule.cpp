#include "sched/schedule.hpp"

#include <gtest/gtest.h>

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

EtcMatrix matrix() {
  return EtcMatrix::from_rows({{2, 5}, {3, 1}, {4, 4}});
}

TEST(Schedule, AssignChainsReadyTimes) {
  const EtcMatrix m = matrix();
  const Problem p = Problem::full(m);
  Schedule s(p);
  EXPECT_DOUBLE_EQ(s.assign(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.assign(1, 0), 5.0);  // 2 + 3
  EXPECT_DOUBLE_EQ(s.assign(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(s.completion_time(0), 5.0);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 4.0);
  EXPECT_TRUE(s.complete());
}

TEST(Schedule, InitialReadyTimesOffsetStarts) {
  const EtcMatrix m = matrix();
  const Problem p(m, {0, 1}, {0, 1}, {10.0, 0.5});
  Schedule s(p);
  EXPECT_DOUBLE_EQ(s.assign(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(s.assign(1, 1), 1.5);
  const auto& q0 = s.queue_of(0);
  ASSERT_EQ(q0.size(), 1u);
  EXPECT_DOUBLE_EQ(q0[0].start, 10.0);
  EXPECT_DOUBLE_EQ(q0[0].finish, 12.0);
}

TEST(Schedule, MakespanAndMachine) {
  const EtcMatrix m = matrix();
  const Problem p = Problem::full(m);
  Schedule s(p);
  s.assign(0, 0);  // m0 = 2
  s.assign(1, 1);  // m1 = 1
  s.assign(2, 1);  // m1 = 5
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_EQ(s.makespan_machine(), 1);
}

TEST(Schedule, MakespanMachineTieGoesToLowestId) {
  const EtcMatrix m = EtcMatrix::from_rows({{3, 0}, {0, 3}});
  const Problem p = Problem::full(m);
  Schedule s(p);
  s.assign(0, 0);
  s.assign(1, 1);
  EXPECT_DOUBLE_EQ(s.completion_time(0), 3.0);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 3.0);
  EXPECT_EQ(s.makespan_machine(), 0);
}

TEST(Schedule, MakespanMachineEpsilonWidensTie) {
  const EtcMatrix m = EtcMatrix::from_rows({{2.9999999, 0}, {0, 3}});
  const Problem p = Problem::full(m);
  Schedule s(p);
  s.assign(0, 0);
  s.assign(1, 1);
  EXPECT_EQ(s.makespan_machine(0.0), 1);
  EXPECT_EQ(s.makespan_machine(1e-3), 0);  // within epsilon -> lowest id
}

TEST(Schedule, DoubleAssignThrows) {
  const EtcMatrix m = matrix();
  const Problem p = Problem::full(m);
  Schedule s(p);
  s.assign(0, 0);
  EXPECT_THROW(s.assign(0, 1), std::logic_error);
}

TEST(Schedule, ForeignTaskOrMachineThrows) {
  const EtcMatrix m = matrix();
  const Problem p(m, {0}, {0});
  Schedule s(p);
  EXPECT_THROW(s.assign(1, 0), std::invalid_argument);  // task not in problem
  EXPECT_THROW(s.assign(0, 1), std::invalid_argument);  // machine absent
  EXPECT_THROW(s.assign(99, 0), std::invalid_argument);
  EXPECT_THROW((void)s.completion_time(1), std::invalid_argument);
  EXPECT_THROW((void)s.queue_of(7), std::invalid_argument);
}

TEST(Schedule, MachineOfTracksAssignments) {
  const EtcMatrix m = matrix();
  const Problem p = Problem::full(m);
  Schedule s(p);
  EXPECT_FALSE(s.machine_of(0).has_value());
  s.assign(0, 1);
  ASSERT_TRUE(s.machine_of(0).has_value());
  EXPECT_EQ(*s.machine_of(0), 1);
  EXPECT_FALSE(s.machine_of(2).has_value());
}

TEST(Schedule, TasksOnListsQueueOrder) {
  const EtcMatrix m = matrix();
  const Problem p = Problem::full(m);
  Schedule s(p);
  s.assign(2, 0);
  s.assign(0, 0);
  s.assign(1, 1);
  EXPECT_EQ(s.tasks_on(0), (std::vector<int>{2, 0}));
  EXPECT_EQ(s.tasks_on(1), (std::vector<int>{1}));
}

TEST(Schedule, SameMappingIgnoresOrderWithinMachine) {
  const EtcMatrix m = matrix();
  const Problem p = Problem::full(m);
  Schedule a(p);
  a.assign(0, 0);
  a.assign(1, 0);
  a.assign(2, 1);
  Schedule b(p);
  b.assign(1, 0);
  b.assign(2, 1);
  b.assign(0, 0);
  EXPECT_TRUE(a.same_mapping(b));

  Schedule c(p);
  c.assign(0, 1);
  c.assign(1, 0);
  c.assign(2, 1);
  EXPECT_FALSE(a.same_mapping(c));
}

TEST(Schedule, SurvivesOwnerProblemGoingOutOfScope) {
  const EtcMatrix m = matrix();
  Schedule s = [&m] {
    const Problem p = Problem::full(m);
    Schedule inner(p);
    inner.assign(0, 0);
    return inner;
  }();  // p destroyed here; s must still be fully usable
  s.assign(1, 1);
  EXPECT_DOUBLE_EQ(s.completion_time(0), 2.0);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 1.0);
  EXPECT_EQ(s.problem().num_tasks(), 3u);
}

TEST(Schedule, AssignmentOrderIsChronological) {
  const EtcMatrix m = matrix();
  const Problem p = Problem::full(m);
  Schedule s(p);
  s.assign(2, 0);
  s.assign(0, 1);
  const auto& order = s.assignment_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].task, 2);
  EXPECT_EQ(order[1].task, 0);
}

}  // namespace
