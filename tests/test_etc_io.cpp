#include "etc/etc_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "etc/cvb_generator.hpp"
#include "rng/rng.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::etc::from_csv;
using hcsched::etc::to_csv;

TEST(EtcIo, RoundTripSmall) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2.5}, {3.25, 4}});
  EXPECT_EQ(from_csv(to_csv(m)), m);
}

TEST(EtcIo, RoundTripPreservesFullPrecision) {
  EtcMatrix m(1, 2);
  m.at(0, 0) = 0.1 + 0.2;  // 0.30000000000000004
  m.at(0, 1) = 1.0 / 3.0;
  EXPECT_EQ(from_csv(to_csv(m)), m);
}

TEST(EtcIo, RoundTripGeneratedMatrix) {
  hcsched::rng::Rng rng(5);
  hcsched::etc::CvbEtcGenerator gen(
      hcsched::etc::CvbParams{.num_tasks = 30, .num_machines = 6});
  const EtcMatrix m = gen.generate(rng);
  EXPECT_EQ(from_csv(to_csv(m)), m);
}

TEST(EtcIo, HeaderFormat) {
  const EtcMatrix m = EtcMatrix::from_rows({{7, 8, 9}});
  const std::string csv = to_csv(m);
  EXPECT_EQ(csv.substr(0, 4), "1,3\n");
}

TEST(EtcIo, MissingHeaderThrows) {
  std::istringstream empty("");
  EXPECT_THROW(hcsched::etc::read_csv(empty), std::runtime_error);
}

TEST(EtcIo, MalformedHeaderThrows) {
  EXPECT_THROW(from_csv("banana\n1,2\n"), std::runtime_error);
  EXPECT_THROW(from_csv("2;2\n"), std::runtime_error);
}

TEST(EtcIo, TruncatedBodyThrows) {
  EXPECT_THROW(from_csv("2,2\n1,2\n"), std::runtime_error);
}

TEST(EtcIo, ShortRowThrows) {
  EXPECT_THROW(from_csv("1,3\n1,2\n"), std::runtime_error);
}

TEST(EtcIo, EmptyMatrixRoundTrips) {
  EtcMatrix m(0, 0);
  EXPECT_EQ(from_csv(to_csv(m)), m);
}

}  // namespace
