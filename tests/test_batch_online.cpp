#include "sim/batch_online.hpp"

#include <gtest/gtest.h>

#include "etc/cvb_generator.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sim::BatchOnlineConfig;
using hcsched::sim::BatchOnlineDispatcher;
using hcsched::sim::BatchPolicy;
using hcsched::sim::OnlineResult;
using hcsched::sim::OnlineTask;

TEST(BatchOnline, RejectsBadConfigAndInput) {
  EXPECT_THROW(BatchOnlineDispatcher(BatchOnlineConfig{.interval = 0.0}),
               std::invalid_argument);
  BatchOnlineDispatcher dispatcher;
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2}});
  TieBreaker ties;
  EXPECT_THROW((void)dispatcher.run(m, {{0, 0.0}}, {0.0}, ties),
               std::invalid_argument);
  EXPECT_THROW((void)dispatcher.run(m, {{5, 0.0}}, {0.0, 0.0}, ties),
               std::out_of_range);
  EXPECT_THROW(
      (void)dispatcher.run(m, {{0, 3.0}, {0, 1.0}}, {0.0, 0.0}, ties),
      std::invalid_argument);
}

TEST(BatchOnline, SingleEventMapsLikeMinMinMetaTask) {
  // All tasks arrive before the first event: one Min-Min mapping at t =
  // interval over machines ready at the event time.
  const EtcMatrix m = EtcMatrix::from_rows({{2, 9}, {9, 1}, {4, 4}});
  BatchOnlineDispatcher dispatcher(
      BatchOnlineConfig{.policy = BatchPolicy::kMinMin, .interval = 10.0});
  const std::vector<OnlineTask> stream = {{0, 0.0}, {1, 1.0}, {2, 2.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  ASSERT_EQ(r.records.size(), 3u);
  // Machines are busy until the event time at the earliest.
  for (const auto& rec : r.records) EXPECT_GE(rec.start, 10.0);
  // Min-Min meta-task result (hand-traced in test_heuristics_basic):
  // t1 -> m1, t0 -> m0, t2 -> m1.
  EXPECT_DOUBLE_EQ(r.makespan(), 15.0);  // 10 + 5
}

TEST(BatchOnline, TasksArrivingAfterAnEventWaitForTheNext) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 1}});
  BatchOnlineDispatcher dispatcher(
      BatchOnlineConfig{.policy = BatchPolicy::kMinMin, .interval = 5.0});
  const std::vector<OnlineTask> stream = {{0, 1.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_DOUBLE_EQ(r.records[0].start, 5.0);  // waits for the event
  EXPECT_DOUBLE_EQ(r.records[0].finish, 6.0);
}

TEST(BatchOnline, MultipleEventsAccumulateLoad) {
  const EtcMatrix m = EtcMatrix::from_rows({{3, 100}});
  BatchOnlineDispatcher dispatcher(
      BatchOnlineConfig{.policy = BatchPolicy::kMinMin, .interval = 2.0});
  // One task per event window; all prefer m0, so they chain there.
  const std::vector<OnlineTask> stream = {{0, 0.5}, {0, 2.5}, {0, 4.5}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_DOUBLE_EQ(r.records[0].start, 2.0);
  EXPECT_DOUBLE_EQ(r.records[0].finish, 5.0);
  EXPECT_DOUBLE_EQ(r.records[1].start, 5.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(r.records[2].start, 8.0);
}

TEST(BatchOnline, DuplicateIdsInOneBatchAreAllServed) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 3}});
  BatchOnlineDispatcher dispatcher(
      BatchOnlineConfig{.policy = BatchPolicy::kMinMin, .interval = 10.0});
  const std::vector<OnlineTask> stream = {{0, 0.0}, {0, 1.0}, {0, 2.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  EXPECT_EQ(r.records.size(), 3u);
}

TEST(BatchOnline, AllPoliciesProduceCoherentResults) {
  Rng rng(3);
  hcsched::etc::CvbParams params;
  params.num_tasks = 12;
  params.num_machines = 4;
  params.mean_task_time = 10.0;
  const EtcMatrix m = hcsched::etc::CvbEtcGenerator(params).generate(rng);
  const auto stream = hcsched::sim::make_arrival_stream(30, 3.0, 12, rng);
  for (BatchPolicy policy : {BatchPolicy::kMinMin, BatchPolicy::kMaxMin,
                             BatchPolicy::kSufferage}) {
    BatchOnlineDispatcher dispatcher(
        BatchOnlineConfig{.policy = policy, .interval = 8.0});
    TieBreaker ties;
    const OnlineResult r =
        dispatcher.run(m, stream, {0.0, 0.0, 0.0, 0.0}, ties);
    EXPECT_EQ(r.records.size(), 30u) << to_string(policy);
    for (const auto& rec : r.records) {
      EXPECT_GE(rec.start, rec.arrival - 1e-9) << to_string(policy);
      EXPECT_GT(rec.finish, rec.start) << to_string(policy);
    }
    EXPECT_GT(r.mean_flow_time(), 0.0) << to_string(policy);
  }
}

TEST(BatchOnline, PolicyNames) {
  EXPECT_STREQ(to_string(BatchPolicy::kMinMin), "Min-Min");
  EXPECT_STREQ(to_string(BatchPolicy::kMaxMin), "Max-Min");
  EXPECT_STREQ(to_string(BatchPolicy::kSufferage), "Sufferage");
}

}  // namespace
