#include "rng/splitmix64.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using hcsched::rng::SplitMix64;

// Independent transcription of Vigna's splitmix64.c, used as the oracle.
std::uint64_t reference_splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TEST(SplitMix64, MatchesReferenceAlgorithm) {
  SplitMix64 sm(1234567);
  std::uint64_t state = 1234567;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sm.next(), reference_splitmix64(state)) << "at step " << i;
  }
}

TEST(SplitMix64, DeterministicAcrossInstances) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, StateAdvancesByGoldenGamma) {
  SplitMix64 sm(0);
  sm.next();
  EXPECT_EQ(sm.state(), 0x9e3779b97f4a7c15ULL);
  sm.next();
  EXPECT_EQ(sm.state(), 2 * 0x9e3779b97f4a7c15ULL);
}

TEST(SplitMix64, NoShortCycles) {
  SplitMix64 sm(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(seen.insert(sm.next()).second);
}

TEST(SplitMix64, ZeroSeedProducesNonZeroStream) {
  SplitMix64 sm(0);
  bool any_nonzero = false;
  for (int i = 0; i < 4; ++i) any_nonzero |= (sm.next() != 0);
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
