#include "core/witness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "heuristics/registry.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::core::find_makespan_increase_witness;
using hcsched::core::makespan_increase_rate;
using hcsched::core::sample_matrix;
using hcsched::core::WitnessSpec;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TiePolicy;

TEST(WitnessSearch, SampleMatrixRespectsSpec) {
  WitnessSpec spec;
  spec.num_tasks = 5;
  spec.num_machines = 4;
  spec.min_etc = 2;
  spec.max_etc = 6;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const EtcMatrix m = sample_matrix(spec, rng);
    EXPECT_EQ(m.num_tasks(), 5u);
    EXPECT_EQ(m.num_machines(), 4u);
    EXPECT_GE(m.min_value(), 2.0);
    EXPECT_LE(m.max_value(), 6.0);
    // Integer spec: every entry is whole.
    for (double v : m.data()) {
      EXPECT_DOUBLE_EQ(v, std::round(v));
    }
  }
}

TEST(WitnessSearch, HalfIntegerSpecProducesHalves) {
  WitnessSpec spec;
  spec.num_tasks = 20;
  spec.num_machines = 4;
  spec.half_integers = true;
  Rng rng(2);
  bool saw_half = false;
  for (int i = 0; i < 20 && !saw_half; ++i) {
    const EtcMatrix m = sample_matrix(spec, rng);
    for (double v : m.data()) {
      if (std::fabs(v - std::floor(v) - 0.5) < 1e-12) saw_half = true;
    }
  }
  EXPECT_TRUE(saw_half);
}

TEST(WitnessSearch, FindsDeterministicWitnessForKpb) {
  const auto kpb = hcsched::heuristics::make_heuristic("KPB");
  WitnessSpec spec;
  spec.num_tasks = 5;
  spec.num_machines = 3;
  Rng rng(3);
  const auto w = find_makespan_increase_witness(*kpb, spec, rng, 200000);
  ASSERT_TRUE(w.has_value());
  EXPECT_GT(w->final_makespan, w->original_makespan);
  EXPECT_GE(w->trials_used, 1u);
  // All schedules in the witness run are structurally valid.
  for (const auto& it : w->result.iterations) {
    EXPECT_TRUE(hcsched::sched::is_valid(it.schedule));
  }
}

TEST(WitnessSearch, FindsRandomTieWitnessForMinMin) {
  const auto minmin = hcsched::heuristics::make_heuristic("Min-Min");
  WitnessSpec spec;
  spec.num_tasks = 4;
  spec.num_machines = 3;
  spec.max_etc = 5;  // small alphabet -> frequent ties
  spec.policy = TiePolicy::kRandom;
  Rng rng(4);
  const auto w = find_makespan_increase_witness(*minmin, spec, rng, 200000);
  ASSERT_TRUE(w.has_value());
  EXPECT_GT(w->final_makespan, w->original_makespan);
}

TEST(WitnessSearch, NeverFindsDeterministicWitnessForMct) {
  // The paper's theorem says none exists; the search must come up empty.
  const auto mct = hcsched::heuristics::make_heuristic("MCT");
  WitnessSpec spec;
  spec.num_tasks = 5;
  spec.num_machines = 3;
  spec.max_etc = 4;
  Rng rng(5);
  const auto w = find_makespan_increase_witness(*mct, spec, rng, 5000);
  EXPECT_FALSE(w.has_value());
}

TEST(WitnessSearch, IncreaseRateWithinBoundsAndConsistent) {
  const auto kpb = hcsched::heuristics::make_heuristic("KPB");
  WitnessSpec spec;
  spec.num_tasks = 5;
  spec.num_machines = 3;
  Rng rng(6);
  const double rate = makespan_increase_rate(*kpb, spec, rng, 2000);
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  EXPECT_GT(rate, 0.0);  // KPB witnesses are not rare at this size
}

TEST(WitnessSearch, IncreaseRateZeroForTheoremHeuristics) {
  const auto met = hcsched::heuristics::make_heuristic("MET");
  WitnessSpec spec;
  spec.num_tasks = 5;
  spec.num_machines = 3;
  spec.max_etc = 4;
  Rng rng(7);
  EXPECT_DOUBLE_EQ(makespan_increase_rate(*met, spec, rng, 2000), 0.0);
}

TEST(WitnessSearch, ZeroTrialsRateIsZero) {
  const auto met = hcsched::heuristics::make_heuristic("MET");
  WitnessSpec spec;
  Rng rng(8);
  EXPECT_DOUBLE_EQ(makespan_increase_rate(*met, spec, rng, 0), 0.0);
}

TEST(WitnessSearch, ParallelSearchIsThreadCountInvariant) {
  const auto kpb = hcsched::heuristics::make_heuristic("KPB");
  WitnessSpec spec;
  spec.num_tasks = 5;
  spec.num_machines = 3;
  hcsched::sim::ThreadPool one(1);
  hcsched::sim::ThreadPool four(4);
  const auto a = hcsched::core::find_makespan_increase_witness_parallel(
      *kpb, spec, 77, one, 50000);
  const auto b = hcsched::core::find_makespan_increase_witness_parallel(
      *kpb, spec, 77, four, 50000);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a->matrix, *b->matrix);
  EXPECT_EQ(a->trials_used, b->trials_used);
  EXPECT_DOUBLE_EQ(a->final_makespan, b->final_makespan);
}

TEST(WitnessSearch, ParallelSearchComesUpEmptyForTheoremHeuristic) {
  const auto mct = hcsched::heuristics::make_heuristic("MCT");
  WitnessSpec spec;
  spec.num_tasks = 5;
  spec.num_machines = 3;
  spec.max_etc = 4;
  hcsched::sim::ThreadPool pool(2);
  const auto w = hcsched::core::find_makespan_increase_witness_parallel(
      *mct, spec, 3, pool, 4000);
  EXPECT_FALSE(w.has_value());
}

TEST(WitnessSearch, WitnessMatrixOutlivesMoves) {
  const auto kpb = hcsched::heuristics::make_heuristic("KPB");
  WitnessSpec spec;
  spec.num_tasks = 5;
  spec.num_machines = 3;
  Rng rng(9);
  auto w = find_makespan_increase_witness(*kpb, spec, rng, 200000);
  ASSERT_TRUE(w.has_value());
  // Move the witness around; the schedules must still resolve their matrix.
  auto moved = std::move(*w);
  const double span = moved.result.original().schedule.makespan();
  EXPECT_DOUBLE_EQ(span, moved.original_makespan);
}

}  // namespace
