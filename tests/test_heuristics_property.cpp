// Property sweeps over every registered heuristic on random instances.
#include <gtest/gtest.h>

#include <cctype>

#include <algorithm>
#include <string>

#include "core/iterative.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/fastpath/fastpath.hpp"
#include "heuristics/kpb.hpp"
#include "heuristics/mct.hpp"
#include "heuristics/met.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/olb.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/sufferage.hpp"
#include "heuristics/swa.hpp"
#include "rng/rng.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks,
                        std::size_t machines) {
  Rng rng(seed);
  CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  p.mean_task_time = 100.0;
  return CvbEtcGenerator(p).generate(rng);
}

/// Lower bound on any mapping's makespan: the cheapest possible placement of
/// the most constrained task.
double trivial_lower_bound(const EtcMatrix& m) {
  double lb = 0.0;
  for (std::size_t t = 0; t < m.num_tasks(); ++t) {
    const auto row = m.row(static_cast<int>(t));
    lb = std::max(lb, *std::min_element(row.begin(), row.end()));
  }
  return lb;
}

class HeuristicPropertyTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(HeuristicPropertyTest, ProducesCompleteValidSchedules) {
  const auto heuristic = hcsched::heuristics::make_heuristic(GetParam());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const EtcMatrix m = random_matrix(seed, 24, 5);
    TieBreaker ties;
    const Schedule s = heuristic->map(Problem::full(m), ties);
    EXPECT_TRUE(s.complete());
    const auto errors = hcsched::sched::validate(s);
    EXPECT_TRUE(errors.empty())
        << GetParam() << " seed " << seed << ": "
        << (errors.empty() ? "" : errors.front());
  }
}

TEST_P(HeuristicPropertyTest, RespectsTrivialMakespanBounds) {
  const auto heuristic = hcsched::heuristics::make_heuristic(GetParam());
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    const EtcMatrix m = random_matrix(seed, 30, 4);
    TieBreaker ties;
    const Schedule s = heuristic->map(Problem::full(m), ties);
    EXPECT_GE(s.makespan() + 1e-9, trivial_lower_bound(m)) << GetParam();
    EXPECT_LE(s.makespan(), m.total() + 1e-9) << GetParam();
  }
}

TEST_P(HeuristicPropertyTest, DeterministicRunToRun) {
  const auto heuristic = hcsched::heuristics::make_heuristic(GetParam());
  const EtcMatrix m = random_matrix(99, 20, 6);
  TieBreaker t1;
  TieBreaker t2;
  const Schedule a = heuristic->map(Problem::full(m), t1);
  const Schedule b = heuristic->map(Problem::full(m), t2);
  EXPECT_TRUE(a.same_mapping(b)) << GetParam();
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan()) << GetParam();
}

TEST_P(HeuristicPropertyTest, HandlesSubsetProblemsWithReadyTimes) {
  const auto heuristic = hcsched::heuristics::make_heuristic(GetParam());
  const EtcMatrix m = random_matrix(7, 12, 4);
  const Problem p(m, {1, 3, 5, 7, 9}, {0, 2, 3}, {50.0, 0.0, 25.0});
  TieBreaker ties;
  const Schedule s = heuristic->map(p, ties);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(s)) << GetParam();
  // No machine can finish before its initial ready time.
  EXPECT_GE(s.completion_time(0), 50.0 - 1e-9);
  EXPECT_GE(s.completion_time(3), 25.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllHeuristics, HeuristicPropertyTest,
    ::testing::ValuesIn(hcsched::heuristics::known_heuristic_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(HeuristicComparisons, KpbWithFullPercentEqualsMct) {
  hcsched::heuristics::Kpb kpb100(100.0);
  hcsched::heuristics::Mct mct;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const EtcMatrix m = random_matrix(seed, 18, 5);
    TieBreaker t1;
    TieBreaker t2;
    const Schedule a = kpb100.map(Problem::full(m), t1);
    const Schedule b = mct.map(Problem::full(m), t2);
    EXPECT_TRUE(a.same_mapping(b)) << "seed " << seed;
  }
}

TEST(HeuristicComparisons, KpbWithSingletonSubsetEqualsMet) {
  // 1/|M| percent: subset size floor(5 * 20 / 100) = 1.
  hcsched::heuristics::Kpb kpb_met(20.0);
  hcsched::heuristics::Met met;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const EtcMatrix m = random_matrix(seed + 50, 18, 5);
    TieBreaker t1;
    TieBreaker t2;
    const Schedule a = kpb_met.map(Problem::full(m), t1);
    const Schedule b = met.map(Problem::full(m), t2);
    EXPECT_TRUE(a.same_mapping(b)) << "seed " << seed;
  }
}

TEST(TwoPhaseGreedyInvariants, NeverAssignsToRemovedMachine) {
  // Under the iterative technique, every machine the previous iterations
  // froze is gone from the shrunk Problem; neither greedy path may ever
  // assign a task to one — whichever dispatch mode is active.
  using hcsched::heuristics::fastpath::Mode;
  using hcsched::heuristics::fastpath::ScopedMode;
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const ScopedMode scope(mode);
    for (const char* name : {"Min-Min", "Max-Min"}) {
      const auto heuristic = hcsched::heuristics::make_heuristic(name);
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const EtcMatrix m = random_matrix(seed + 200, 24, 6);
        const hcsched::core::IterativeMinimizer minimizer;
        TieBreaker ties;
        const auto result =
            minimizer.run(*heuristic, Problem::full(m), ties);
        std::vector<hcsched::sched::MachineId> removed;
        for (const auto& record : result.iterations) {
          // Machines removed by *earlier* iterations must be invisible to
          // this iteration's mapping.
          for (const hcsched::sched::MachineId gone : removed) {
            for (const auto& a : record.schedule.assignment_order()) {
              EXPECT_NE(a.machine, gone)
                  << name << " seed " << seed << " iteration "
                  << record.index;
            }
          }
          removed.push_back(record.makespan_machine);
        }
      }
    }
  }
}

TEST(TwoPhaseGreedyInvariants, MinMinRoundBestCompletionTimesMonotone) {
  // Min-Min picks the globally smallest attainable completion time each
  // round, and ready times only grow, so the sequence of assigned finish
  // times is non-decreasing. Holds for both dispatch paths.
  using hcsched::heuristics::fastpath::Mode;
  using hcsched::heuristics::fastpath::ScopedMode;
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const ScopedMode scope(mode);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const EtcMatrix m = random_matrix(seed + 300, 32, 5);
      TieBreaker ties;
      const Schedule s = hcsched::heuristics::detail::two_phase_greedy(
          Problem::full(m), ties, /*prefer_largest=*/false);
      const auto& order = s.assignment_order();
      for (std::size_t i = 1; i < order.size(); ++i) {
        EXPECT_GE(order[i].finish, order[i - 1].finish - 1e-9)
            << "seed " << seed << " assignment " << i;
      }
    }
  }
}

TEST(SufferageInvariants, SufferageValuesNonNegativeUnderBothPaths) {
  // A task's sufferage is second-best CT minus best CT, so it can never be
  // negative, and with a single machine it is defined as 0 (sufferage.hpp).
  // Checked through the commit trace with the kernel dispatched both ways.
  using hcsched::heuristics::fastpath::Mode;
  using hcsched::heuristics::fastpath::ScopedMode;
  const hcsched::heuristics::Sufferage sufferage;
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const ScopedMode scope(mode);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const EtcMatrix m = random_matrix(seed + 400, 28, 6);
      TieBreaker ties;
      std::vector<hcsched::heuristics::SufferageStep> trace;
      const Schedule s =
          sufferage.map_traced(Problem::full(m), ties, &trace);
      EXPECT_TRUE(s.complete());
      ASSERT_EQ(trace.size(), m.num_tasks());
      for (const auto& step : trace) {
        EXPECT_GE(step.sufferage, 0.0)
            << "seed " << seed << " task " << step.task;
        EXPECT_GE(step.min_ct, 0.0);
      }
    }
    // Single machine: every sufferage is exactly 0.
    const EtcMatrix narrow = random_matrix(3, 10, 1);
    TieBreaker ties;
    std::vector<hcsched::heuristics::SufferageStep> trace;
    (void)sufferage.map_traced(Problem::full(narrow), ties, &trace);
    for (const auto& step : trace) {
      EXPECT_EQ(step.sufferage, 0.0) << "task " << step.task;
    }
  }
}

TEST(KpbInvariants, ChosenMachineInsideKPercentSubsetUnderBothPaths) {
  // KPB may only assign inside the k-percent-best subset, the subset must
  // have exactly max(1, floor(m*k/100)) distinct valid machines, and every
  // subset member's ETC must be <= every non-member's ETC for that task.
  using hcsched::heuristics::fastpath::Mode;
  using hcsched::heuristics::fastpath::ScopedMode;
  const hcsched::heuristics::Kpb kpb(70.0);
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const ScopedMode scope(mode);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const EtcMatrix m = random_matrix(seed + 500, 24, 6);
      const Problem problem = Problem::full(m);
      const std::size_t k = kpb.subset_size(problem.num_machines());
      TieBreaker ties;
      std::vector<hcsched::heuristics::KpbStep> trace;
      const Schedule s = kpb.map_traced(problem, ties, &trace);
      EXPECT_TRUE(s.complete());
      ASSERT_EQ(trace.size(), m.num_tasks());
      for (const auto& step : trace) {
        ASSERT_EQ(step.subset.size(), k) << "task " << step.task;
        EXPECT_NE(std::find(step.subset.begin(), step.subset.end(),
                            step.machine),
                  step.subset.end())
            << "seed " << seed << " task " << step.task
            << ": assigned machine outside the k-percent subset";
        double worst_inside = 0.0;
        for (const auto member : step.subset) {
          worst_inside = std::max(worst_inside, m.at(step.task, member));
        }
        for (std::size_t slot = 0; slot < m.num_machines(); ++slot) {
          const auto id = static_cast<hcsched::sched::MachineId>(slot);
          if (std::find(step.subset.begin(), step.subset.end(), id) !=
              step.subset.end()) {
            continue;
          }
          EXPECT_GE(m.at(step.task, id) + 1e-12, worst_inside)
              << "seed " << seed << " task " << step.task << ": machine "
              << slot << " outside the subset beats a member";
        }
      }
    }
  }
}

TEST(SwaInvariants, BalanceIndexAndModeFollowHysteresisUnderBothPaths) {
  // The balance index min(ready)/max(ready) lives in [0, 1]; the first task
  // is mapped by MCT with no index; afterwards the mode follows the paper's
  // hysteresis — above high switches to MET, below low back to MCT,
  // in between the previous mode sticks.
  using hcsched::heuristics::fastpath::Mode;
  using hcsched::heuristics::fastpath::ScopedMode;
  using hcsched::heuristics::SwaMode;
  const hcsched::heuristics::Swa swa;  // defaults: low 0.35, high 0.49
  for (const Mode mode : {Mode::kForceOff, Mode::kForceOn}) {
    const ScopedMode scope(mode);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const EtcMatrix m = random_matrix(seed + 600, 28, 5);
      TieBreaker ties;
      std::vector<hcsched::heuristics::SwaStep> trace;
      const Schedule s = swa.map_traced(Problem::full(m), ties, &trace);
      EXPECT_TRUE(s.complete());
      ASSERT_EQ(trace.size(), m.num_tasks());
      EXPECT_FALSE(trace.front().balance_index.has_value());
      EXPECT_EQ(trace.front().mode, SwaMode::kMct);
      SwaMode expected = SwaMode::kMct;
      for (std::size_t i = 1; i < trace.size(); ++i) {
        ASSERT_TRUE(trace[i].balance_index.has_value()) << "step " << i;
        const double bi = *trace[i].balance_index;
        EXPECT_GE(bi, 0.0) << "step " << i;
        EXPECT_LE(bi, 1.0) << "step " << i;
        if (bi > swa.high_threshold()) {
          expected = SwaMode::kMet;
        } else if (bi < swa.low_threshold()) {
          expected = SwaMode::kMct;
        }
        EXPECT_EQ(trace[i].mode, expected) << "seed " << seed << " step "
                                           << i;
      }
    }
  }
}

TEST(HeuristicComparisons, MinMinUsuallyBeatsOlbOnInconsistentMatrices) {
  hcsched::heuristics::MinMin minmin;
  hcsched::heuristics::Olb olb;
  int minmin_wins = 0;
  constexpr int kTrials = 20;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    const EtcMatrix m = random_matrix(seed + 100, 40, 6);
    TieBreaker t1;
    TieBreaker t2;
    if (minmin.map(Problem::full(m), t1).makespan() <
        olb.map(Problem::full(m), t2).makespan()) {
      ++minmin_wins;
    }
  }
  EXPECT_GE(minmin_wins, kTrials * 3 / 4);
}

}  // namespace
