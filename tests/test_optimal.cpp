#include "core/optimal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::core::OptimalOptions;
using hcsched::core::solve_optimal;
using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks,
                        std::size_t machines) {
  Rng rng(seed);
  hcsched::etc::CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return hcsched::etc::CvbEtcGenerator(p).generate(rng);
}

/// Exhaustive reference: minimum makespan over all machine^tasks mappings.
double brute_force(const EtcMatrix& m) {
  const std::size_t tasks = m.num_tasks();
  const std::size_t machines = m.num_machines();
  std::size_t total = 1;
  for (std::size_t i = 0; i < tasks; ++i) total *= machines;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t code = 0; code < total; ++code) {
    std::vector<double> load(machines, 0.0);
    std::size_t c = code;
    for (std::size_t t = 0; t < tasks; ++t) {
      load[c % machines] += m.at(static_cast<int>(t),
                                 static_cast<int>(c % machines));
      c /= machines;
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
  }
  return best;
}

TEST(Optimal, MatchesBruteForceOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const EtcMatrix m = random_matrix(seed, 6, 3);
    const auto result = solve_optimal(Problem::full(m));
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_NEAR(result.makespan, brute_force(m), 1e-9) << "seed " << seed;
    EXPECT_TRUE(hcsched::sched::is_valid(result.schedule));
    EXPECT_TRUE(result.schedule.complete());
  }
}

TEST(Optimal, NeverWorseThanAnyHeuristic) {
  const EtcMatrix m = random_matrix(99, 10, 4);
  const Problem p = Problem::full(m);
  const auto optimal = solve_optimal(p);
  ASSERT_TRUE(optimal.proven_optimal);
  for (const auto& h : hcsched::heuristics::extended_heuristics()) {
    TieBreaker ties;
    EXPECT_LE(optimal.makespan, h->map(p, ties).makespan() + 1e-9)
        << h->name();
  }
}

TEST(Optimal, NeverWorseThanAnyHeuristicUnderAnyTiePolicy) {
  // A tie-rich integer instance: ties are where a broken tie policy could
  // otherwise hide an optimality regression, so the oracle sweep covers
  // all three policies, not just the default deterministic one.
  const EtcMatrix m = EtcMatrix::from_rows({{2, 2, 4},
                                            {4, 2, 2},
                                            {2, 4, 2},
                                            {6, 2, 4},
                                            {4, 6, 2},
                                            {2, 2, 2},
                                            {4, 4, 4},
                                            {6, 6, 6}});
  const Problem p = Problem::full(m);
  const auto optimal = solve_optimal(p);
  ASSERT_TRUE(optimal.proven_optimal);
  for (const auto& h : hcsched::heuristics::extended_heuristics()) {
    {
      TieBreaker deterministic;
      EXPECT_LE(optimal.makespan,
                h->map(p, deterministic).makespan() + 1e-9)
          << h->name() << " (deterministic ties)";
    }
    {
      Rng rng(7);
      TieBreaker random(rng);
      EXPECT_LE(optimal.makespan, h->map(p, random).makespan() + 1e-9)
          << h->name() << " (random ties)";
    }
    {
      TieBreaker scripted(std::vector<std::size_t>{1, 0, 2, 1, 0, 3, 2, 1});
      EXPECT_LE(optimal.makespan, h->map(p, scripted).makespan() + 1e-9)
          << h->name() << " (scripted ties)";
    }
  }
}

TEST(Optimal, RespectsInitialReadyTimes) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 1}, {1, 1}});
  // m0 starts busy until 10: both tasks must go to m1 -> makespan 10? No:
  // the makespan is max(10, loads): putting both on m1 gives (10, 2) -> 10.
  const Problem p(m, {0, 1}, {0, 1}, {10.0, 0.0});
  const auto result = solve_optimal(p);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
  EXPECT_EQ(result.schedule.tasks_on(0).size(), 0u);
}

TEST(Optimal, HandlesTrivialCases) {
  // No tasks.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2}});
  const Problem empty(m, {}, {0, 1});
  const auto r0 = solve_optimal(empty);
  EXPECT_TRUE(r0.proven_optimal);
  EXPECT_DOUBLE_EQ(r0.makespan, 0.0);
  // One machine: forced mapping.
  const Problem one(m, {0}, {1});
  const auto r1 = solve_optimal(one);
  EXPECT_DOUBLE_EQ(r1.makespan, 2.0);
  // No machines: error.
  const Problem none(m, {0}, {});
  EXPECT_THROW((void)solve_optimal(none), std::invalid_argument);
}

TEST(Optimal, NodeLimitDegradesGracefully) {
  const EtcMatrix m = random_matrix(7, 14, 5);
  OptimalOptions options;
  options.node_limit = 50;  // far too small to finish
  const auto result = solve_optimal(Problem::full(m), options);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_TRUE(result.schedule.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(result.schedule));
  EXPECT_LE(result.nodes_explored, 51u);
}

TEST(Optimal, WarmStartPrunesButStaysCorrect) {
  const EtcMatrix m = random_matrix(11, 8, 3);
  const Problem p = Problem::full(m);
  const auto cold = solve_optimal(p);
  ASSERT_TRUE(cold.proven_optimal);
  // Warm start with a loose bound: same optimum, typically fewer nodes.
  OptimalOptions options;
  options.initial_upper_bound = cold.makespan * 1.5;
  const auto warm = solve_optimal(p, options);
  EXPECT_TRUE(warm.proven_optimal);
  EXPECT_NEAR(warm.makespan, cold.makespan, 1e-9);
  EXPECT_LE(warm.nodes_explored, cold.nodes_explored);
}

TEST(Optimal, MinMinGapIsRealOnAdversarialInstance) {
  // The classic instance where Min-Min is suboptimal (one long task).
  const EtcMatrix m =
      EtcMatrix::from_rows({{8, 9}, {2, 3}, {2, 3}, {2, 3}});
  const Problem p = Problem::full(m);
  const auto optimal = solve_optimal(p);
  const auto minmin = hcsched::heuristics::make_heuristic("Min-Min");
  TieBreaker ties;
  const double mm = minmin->map(p, ties).makespan();
  EXPECT_TRUE(optimal.proven_optimal);
  // Optimal: t0 alone on m0 (8), fillers on m1 (9) -> makespan 9;
  // Min-Min reaches 12 (hand-traced in test_search_heuristics.cpp).
  EXPECT_DOUBLE_EQ(optimal.makespan, 9.0);
  EXPECT_DOUBLE_EQ(mm, 12.0);
  EXPECT_GT(mm, optimal.makespan);
}

}  // namespace
