#include "rng/tie_break.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace {

using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::rng::TiePolicy;

TEST(TieBreaker, DeterministicPicksFirstOfTied) {
  TieBreaker tb;
  const std::vector<double> scores = {3.0, 1.0, 1.0, 2.0};
  EXPECT_EQ(tb.choose_min(scores), 1u);
  EXPECT_EQ(tb.tie_events(), 1u);
}

TEST(TieBreaker, NoTieNoEvent) {
  TieBreaker tb;
  const std::vector<double> scores = {3.0, 1.0, 2.0};
  EXPECT_EQ(tb.choose_min(scores), 1u);
  EXPECT_EQ(tb.tie_events(), 0u);
  EXPECT_EQ(tb.decisions(), 1u);
}

TEST(TieBreaker, ChooseMaxPicksLargest) {
  TieBreaker tb;
  const std::vector<double> scores = {3.0, 5.0, 5.0, 2.0};
  EXPECT_EQ(tb.choose_max(scores), 1u);
  EXPECT_EQ(tb.tie_events(), 1u);
}

TEST(TieBreaker, EmptyInputReturnsNpos) {
  TieBreaker tb;
  EXPECT_EQ(tb.choose_min({}), TieBreaker::npos);
  EXPECT_EQ(tb.choose_max({}), TieBreaker::npos);
  EXPECT_EQ(tb.choose_among({}), TieBreaker::npos);
}

TEST(TieBreaker, EpsilonGroupsNearTies) {
  TieBreaker coarse(std::vector<std::size_t>{}, /*epsilon=*/0.1);
  const std::vector<double> scores = {1.05, 1.0, 2.0};
  // 1.05 ties 1.0 within 0.1; scripted-exhausted policy picks first tied.
  EXPECT_EQ(coarse.choose_min(scores), 0u);
  EXPECT_EQ(coarse.tie_events(), 1u);

  TieBreaker fine;  // epsilon 1e-9
  EXPECT_EQ(fine.choose_min(scores), 1u);
  EXPECT_EQ(fine.tie_events(), 0u);
}

TEST(TieBreaker, TiedPredicate) {
  TieBreaker tb;
  EXPECT_TRUE(tb.tied(1.0, 1.0));
  EXPECT_TRUE(tb.tied(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(tb.tied(1.0, 1.001));
}

TEST(TieBreaker, RandomCoversAllTiedCandidates) {
  Rng rng(77);
  TieBreaker tb(rng);
  const std::vector<double> scores = {1.0, 1.0, 1.0, 9.0};
  std::array<int, 4> counts{};
  for (int i = 0; i < 3000; ++i) {
    ++counts[tb.choose_min(scores)];
  }
  EXPECT_EQ(counts[3], 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(i)] / 3000.0, 1.0 / 3.0,
                0.05);
  }
}

TEST(TieBreaker, RandomNeverPicksNonMinimal) {
  Rng rng(78);
  TieBreaker tb(rng);
  const std::vector<double> scores = {2.0, 1.0, 1.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(tb.choose_min(scores), 0u);
  }
}

TEST(TieBreaker, ScriptedReplaysChoices) {
  TieBreaker tb(std::vector<std::size_t>{1, 0, 2});
  const std::vector<double> tie3 = {1.0, 1.0, 1.0};
  EXPECT_EQ(tb.choose_min(tie3), 1u);
  EXPECT_EQ(tb.choose_min(tie3), 0u);
  EXPECT_EQ(tb.choose_min(tie3), 2u);
  // Script exhausted -> deterministic (first tied).
  EXPECT_EQ(tb.choose_min(tie3), 0u);
}

TEST(TieBreaker, ScriptedClampsOutOfRangeEntries) {
  TieBreaker tb(std::vector<std::size_t>{9});
  const std::vector<double> tie2 = {1.0, 1.0};
  EXPECT_EQ(tb.choose_min(tie2), 1u);  // clamped to last tied candidate
}

TEST(TieBreaker, ScriptedEntriesOnlyConsumedOnRealTies) {
  TieBreaker tb(std::vector<std::size_t>{1});
  const std::vector<double> no_tie = {2.0, 1.0, 3.0};
  EXPECT_EQ(tb.choose_min(no_tie), 1u);  // no tie: script untouched
  const std::vector<double> tie2 = {1.0, 1.0};
  EXPECT_EQ(tb.choose_min(tie2), 1u);  // consumes the script entry
}

TEST(TieBreaker, ChooseAmongRespectsPolicy) {
  TieBreaker det;
  const std::vector<std::size_t> tied = {4, 7, 9};
  EXPECT_EQ(det.choose_among(tied), 4u);

  TieBreaker scripted(std::vector<std::size_t>{2});
  EXPECT_EQ(scripted.choose_among(tied), 9u);
}

TEST(TieBreaker, PolicyAccessors) {
  TieBreaker det;
  EXPECT_EQ(det.policy(), TiePolicy::kDeterministic);
  Rng rng(1);
  TieBreaker rnd(rng, 0.5);
  EXPECT_EQ(rnd.policy(), TiePolicy::kRandom);
  EXPECT_DOUBLE_EQ(rnd.epsilon(), 0.5);
  TieBreaker scripted(std::vector<std::size_t>{1});
  EXPECT_EQ(scripted.policy(), TiePolicy::kScripted);
}

}  // namespace
