// Regression oracles: every reconstructed worked example must reproduce the
// paper's reported numbers exactly (EXPERIMENTS.md maps these to Tables
// 1-17 / Figures 3-19).
#include "core/paper_examples.hpp"

#include <gtest/gtest.h>

#include "core/theorems.hpp"
#include "heuristics/registry.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::core::all_paper_examples;
using hcsched::core::example_matches;
using hcsched::core::PaperExample;
using hcsched::core::run_paper_example;

class PaperExampleTest : public ::testing::TestWithParam<PaperExample> {};

TEST_P(PaperExampleTest, ReproducesReportedCompletionTimes) {
  const PaperExample& ex = GetParam();
  const auto result = run_paper_example(ex);
  EXPECT_TRUE(example_matches(ex, result)) << ex.id;
  // Every example in the paper demonstrates a makespan increase.
  EXPECT_TRUE(result.makespan_increased()) << ex.id;
  for (const auto& it : result.iterations) {
    EXPECT_TRUE(hcsched::sched::is_valid(it.schedule))
        << ex.id << " iteration " << it.index;
  }
}

TEST_P(PaperExampleTest, ExpectationVectorsAreWellFormed) {
  const PaperExample& ex = GetParam();
  EXPECT_FALSE(ex.matrix->empty()) << ex.id;
  EXPECT_EQ(ex.expected_original_ct.size(), ex.matrix->num_machines());
  EXPECT_EQ(ex.expected_final_ct.size(), ex.matrix->num_machines());
  EXPECT_GT(ex.expected_final_makespan, ex.expected_original_makespan);
}

INSTANTIATE_TEST_SUITE_P(
    AllExamples, PaperExampleTest, ::testing::ValuesIn(all_paper_examples()),
    [](const ::testing::TestParamInfo<PaperExample>& param_info) {
      return param_info.param.id;
    });

TEST(PaperExamples, MinMinOriginalMatchesTable2) {
  const auto ex = hcsched::core::minmin_example();
  const auto result = run_paper_example(ex);
  const auto& s = result.original().schedule;
  // Table 2 narrative: completions m0=5, m1=2, m2=4; makespan machine m0
  // carries exactly one task.
  EXPECT_DOUBLE_EQ(s.completion_time(0), 5.0);
  EXPECT_DOUBLE_EQ(s.completion_time(1), 2.0);
  EXPECT_DOUBLE_EQ(s.completion_time(2), 4.0);
  EXPECT_EQ(result.original().makespan_machine, 0);
  EXPECT_EQ(s.tasks_on(0), (std::vector<int>{0}));
}

TEST(PaperExamples, MinMinIterationOneMatchesTable3) {
  const auto ex = hcsched::core::minmin_example();
  const auto result = run_paper_example(ex);
  ASSERT_GE(result.iterations.size(), 2u);
  const auto& it1 = result.iterations[1].schedule;
  // Table 3 narrative: m1 = 1, m2 = 6; new makespan machine is m2.
  EXPECT_DOUBLE_EQ(it1.completion_time(1), 1.0);
  EXPECT_DOUBLE_EQ(it1.completion_time(2), 6.0);
  EXPECT_EQ(result.iterations[1].makespan_machine, 2);
}

TEST(PaperExamples, MctAndMetShareTable4Matrix) {
  const auto mct = hcsched::core::mct_example();
  const auto met = hcsched::core::met_example();
  EXPECT_EQ(*mct.matrix, *met.matrix);
}

TEST(PaperExamples, MakespanMachineTransitionsMatchPaper) {
  // In each example the original makespan machine is m0 and the increase
  // appears on a different machine in iteration 1.
  for (const auto& ex : all_paper_examples()) {
    const auto result = run_paper_example(ex);
    const auto original_span_machine = result.original().makespan_machine;
    ASSERT_GE(result.iterations.size(), 2u) << ex.id;
    EXPECT_NE(result.iterations[1].makespan_machine, original_span_machine)
        << ex.id;
  }
}

TEST(PaperExamples, DeterministicExamplesNeedNoScript) {
  EXPECT_TRUE(hcsched::core::swa_example().tie_script.empty());
  EXPECT_TRUE(hcsched::core::kpb_example().tie_script.empty());
  EXPECT_TRUE(hcsched::core::sufferage_example().tie_script.empty());
  // The random-tie examples do script their ties.
  EXPECT_FALSE(hcsched::core::minmin_example().tie_script.empty());
  EXPECT_FALSE(hcsched::core::mct_example().tie_script.empty());
  EXPECT_FALSE(hcsched::core::met_example().tie_script.empty());
}

TEST(PaperExamples, RandomTieExamplesAreInvariantWithoutTheScript) {
  // Run the same matrices with deterministic ties: the theorems apply and
  // nothing may change — confirming the increase is purely a tie artifact.
  for (const auto& ex : {hcsched::core::minmin_example(),
                         hcsched::core::mct_example(),
                         hcsched::core::met_example()}) {
    const auto heuristic = hcsched::heuristics::make_heuristic(ex.heuristic);
    const auto report = hcsched::core::verify_theorem(
        *heuristic, hcsched::sched::Problem::full(*ex.matrix));
    EXPECT_TRUE(report.holds) << ex.id << ": " << report.violation;
  }
}

TEST(PaperExamples, SixExamplesCoverTheSixHeuristics) {
  const auto all = all_paper_examples();
  ASSERT_EQ(all.size(), 6u);
  std::vector<std::string> names;
  for (const auto& ex : all) names.push_back(ex.heuristic);
  EXPECT_EQ(names, (std::vector<std::string>{"Min-Min", "MCT", "MET", "SWA",
                                             "KPB", "Sufferage"}));
}

}  // namespace
