#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/rng.hpp"

namespace {

using hcsched::sim::RunningStats;

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.14);
  EXPECT_DOUBLE_EQ(s.max(), 3.14);
}

TEST(RunningStats, MergeEqualsSequential) {
  hcsched::rng::Rng rng(1);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 10.0;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.add(1.0);
  a.add(3.0);
  RunningStats b = a;
  b.merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  hcsched::rng::Rng rng(2);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    if (i < 100) small.add(x);
    large.add(x);
  }
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  // CI of the uniform mean over 10k samples: ~1.96 * 0.2887/100 = 0.0057.
  EXPECT_NEAR(large.ci95_half_width(), 1.96 * std::sqrt(1.0 / 12.0) / 100.0,
              0.001);
}

}  // namespace
