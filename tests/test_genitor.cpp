#include "ga/genitor.hpp"

#include <gtest/gtest.h>

#include "etc/cvb_generator.hpp"
#include "ga/operators.hpp"
#include "heuristics/minmin.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::etc::EtcMatrix;
using hcsched::ga::Chromosome;
using hcsched::ga::Genitor;
using hcsched::ga::GenitorConfig;
using hcsched::ga::Member;
using hcsched::ga::Population;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks = 20,
                        std::size_t machines = 4) {
  Rng rng(seed);
  CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return CvbEtcGenerator(p).generate(rng);
}

TEST(Chromosome, EvaluateMatchesDecodedSchedule) {
  const EtcMatrix m = random_matrix(1);
  const Problem p = Problem::full(m);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const Chromosome c = Chromosome::random(p, rng);
    EXPECT_NEAR(c.evaluate(p), c.decode(p).makespan(), 1e-9);
  }
}

TEST(Chromosome, FromScheduleRoundTrips) {
  const EtcMatrix m = random_matrix(3);
  const Problem p = Problem::full(m);
  Rng rng(4);
  const Chromosome c = Chromosome::random(p, rng);
  const Schedule s = c.decode(p);
  const Chromosome back = Chromosome::from_schedule(p, s);
  EXPECT_EQ(c, back);
}

TEST(Chromosome, SizeMismatchThrows) {
  const EtcMatrix m = random_matrix(5);
  const Problem p = Problem::full(m);
  Chromosome wrong(std::vector<std::uint32_t>{0, 1});
  EXPECT_THROW((void)wrong.evaluate(p), std::invalid_argument);
  EXPECT_THROW((void)wrong.decode(p), std::invalid_argument);
}

TEST(Operators, CrossoverExchangesPrefix) {
  Chromosome a(std::vector<std::uint32_t>{0, 0, 0, 0, 0});
  Chromosome b(std::vector<std::uint32_t>{1, 1, 1, 1, 1});
  Rng rng(6);
  const auto [x, y] = hcsched::ga::crossover(a, b, rng);
  // Per-position: each offspring holds one parent's gene and the genes are
  // complementary.
  std::size_t boundary_changes = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(x.genes()[i] + y.genes()[i], 1u);
    if (i > 0 && x.genes()[i] != x.genes()[i - 1]) ++boundary_changes;
  }
  EXPECT_EQ(boundary_changes, 1u);  // single cut point
}

TEST(Operators, CrossoverSizeMismatchThrows) {
  Chromosome a(std::vector<std::uint32_t>{0, 0});
  Chromosome b(std::vector<std::uint32_t>{1});
  Rng rng(7);
  EXPECT_THROW((void)hcsched::ga::crossover(a, b, rng),
               std::invalid_argument);
}

TEST(Operators, MutateChangesExactlyOneGeneSlot) {
  Chromosome c(std::vector<std::uint32_t>{0, 0, 0, 0});
  Rng rng(8);
  const std::size_t idx = hcsched::ga::mutate(c, 5, rng);
  ASSERT_NE(idx, hcsched::ga::kNpos);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != idx) {
      EXPECT_EQ(c.genes()[i], 0u);
    }
  }
  EXPECT_LT(c.genes()[idx], 5u);
}

TEST(Population, KeepsSortedAndBounded) {
  Population pop(3);
  pop.insert(Member{Chromosome({0}), 5.0});
  pop.insert(Member{Chromosome({0}), 2.0});
  pop.insert(Member{Chromosome({0}), 8.0});
  EXPECT_DOUBLE_EQ(pop.best().makespan, 2.0);
  EXPECT_DOUBLE_EQ(pop.worst().makespan, 8.0);
  // Overflow: inserting 1.0 evicts 8.0.
  EXPECT_TRUE(pop.insert(Member{Chromosome({0}), 1.0}));
  EXPECT_EQ(pop.size(), 3u);
  EXPECT_DOUBLE_EQ(pop.best().makespan, 1.0);
  EXPECT_DOUBLE_EQ(pop.worst().makespan, 5.0);
  // Inserting something worse than the worst dies immediately.
  EXPECT_FALSE(pop.insert(Member{Chromosome({0}), 9.0}));
  EXPECT_DOUBLE_EQ(pop.worst().makespan, 5.0);
}

TEST(Population, SelectionPrefersGoodRanks) {
  Population pop(50, 1.9);
  for (int i = 0; i < 50; ++i) {
    pop.insert(Member{Chromosome({0}), static_cast<double>(i)});
  }
  Rng rng(9);
  std::size_t top_half = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (pop.select_rank(rng) < 25) ++top_half;
  }
  EXPECT_GT(static_cast<double>(top_half) / kDraws, 0.60);
}

TEST(Population, RejectsBadConfig) {
  EXPECT_THROW(Population(0), std::invalid_argument);
  EXPECT_THROW(Population(5, 0.5), std::invalid_argument);
  EXPECT_THROW(Population(5, 2.5), std::invalid_argument);
}

TEST(Genitor, NeverWorseThanItsMinMinSeed) {
  GenitorConfig cfg;
  cfg.population_size = 40;
  cfg.total_steps = 300;
  const Genitor genitor(cfg);
  hcsched::heuristics::MinMin minmin;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EtcMatrix m = random_matrix(seed + 20);
    const Problem p = Problem::full(m);
    TieBreaker t1;
    TieBreaker t2;
    const double ga_span = genitor.map(p, t1).makespan();
    const double mm_span = minmin.map(p, t2).makespan();
    EXPECT_LE(ga_span, mm_span + 1e-9) << "seed " << seed;
  }
}

TEST(Genitor, SeededRunNeverWorseThanSeed) {
  GenitorConfig cfg;
  cfg.population_size = 30;
  cfg.total_steps = 200;
  cfg.seed_with_minmin = false;
  const Genitor genitor(cfg);
  const EtcMatrix m = random_matrix(42);
  const Problem p = Problem::full(m);
  // A deliberately bad seed: everything on machine 0.
  Schedule bad(p);
  for (int t : p.tasks()) bad.assign(t, 0);
  TieBreaker ties;
  const Schedule out = genitor.map_seeded(p, ties, &bad);
  EXPECT_LE(out.makespan(), bad.makespan() + 1e-9);
  EXPECT_TRUE(hcsched::sched::is_valid(out));
}

TEST(Genitor, ReproducibleFromConfigSeed) {
  GenitorConfig cfg;
  cfg.population_size = 25;
  cfg.total_steps = 150;
  cfg.seed = 777;
  const Genitor genitor(cfg);
  const EtcMatrix m = random_matrix(55);
  const Problem p = Problem::full(m);
  TieBreaker t1;
  TieBreaker t2;
  const Schedule a = genitor.map(p, t1);
  const Schedule b = genitor.map(p, t2);
  EXPECT_TRUE(a.same_mapping(b));
}

TEST(Genitor, ImprovesOverRandomInitialBest) {
  GenitorConfig cfg;
  cfg.population_size = 40;
  cfg.total_steps = 500;
  cfg.seed_with_minmin = false;  // pure random start
  const Genitor genitor(cfg);
  const EtcMatrix m = random_matrix(66, 30, 5);
  const Problem p = Problem::full(m);
  TieBreaker ties;
  genitor.map(p, ties);
  const auto& stats = genitor.last_run();
  EXPECT_LT(stats.final_best, stats.initial_best);
  EXPECT_GT(stats.improvements, 0u);
}

TEST(Genitor, EarlyStoppingCapsSteps) {
  GenitorConfig cfg;
  cfg.population_size = 20;
  cfg.total_steps = 100000;
  cfg.stop_after_stale = 50;
  const Genitor genitor(cfg);
  const EtcMatrix m = random_matrix(77, 10, 3);
  TieBreaker ties;
  genitor.map(Problem::full(m), ties);
  EXPECT_LT(genitor.last_run().steps_executed, 100000u);
}

TEST(Genitor, RejectsBadConfig) {
  GenitorConfig cfg;
  cfg.population_size = 1;
  EXPECT_THROW(Genitor{cfg}, std::invalid_argument);
}

}  // namespace
