// Cancellation contract (docs/ROBUSTNESS.md): CancelToken semantics, the
// thread-pool token install, and the anytime heuristics' guarantee that a
// cancelled budget degrades to a complete, valid best-so-far mapping —
// never a partial or invalid one.
#include "core/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/iterative.hpp"
#include "core/thread_annotations.hpp"
#include "etc/cvb_generator.hpp"
#include "ga/genitor.hpp"
#include "heuristics/astar.hpp"
#include "heuristics/gsa.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/sa.hpp"
#include "heuristics/tabu.hpp"
#include "sched/validate.hpp"
#include "sim/experiment.hpp"
#include "sim/thread_pool.hpp"

namespace {

using hcsched::core::CancelToken;
using hcsched::core::cancellation_requested;
using hcsched::core::current_cancel_token;
using hcsched::core::ScopedCancel;
using hcsched::etc::EtcMatrix;
using hcsched::sched::Problem;
using hcsched::sim::ThreadPool;

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks = 14,
                        std::size_t machines = 4) {
  hcsched::etc::CvbParams params;
  params.num_tasks = tasks;
  params.num_machines = machines;
  hcsched::rng::Rng rng(seed);
  return hcsched::etc::CvbEtcGenerator(params).generate(rng);
}

CancelToken cancelled_token() {
  CancelToken token;
  token.request_cancel();
  return token;
}

// try_lock is the only core::Mutex entry point the pool and sinks never
// exercise; pin its contract here (success on a free mutex, failure from
// another thread while held) so the capability wrapper stays honest.
TEST(CoreMutex, TryLockReflectsContention) {
  hcsched::core::Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  bool contended_acquired = true;
  std::thread prober(
      [&mutex, &contended_acquired] {
        contended_acquired = mutex.try_lock();
        if (contended_acquired) mutex.unlock();
      });
  prober.join();
  EXPECT_FALSE(contended_acquired);
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(CancelToken, FlagSemantics) {
  const CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // sticky
}

TEST(CancelToken, CopiesShareState) {
  const CancelToken token;
  const CancelToken copy = token;
  token.request_cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancelToken, DeadlineLatchesIntoFlag) {
  const CancelToken token;
  token.cancel_after(std::chrono::nanoseconds(0));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.cancelled());

  const CancelToken future;
  future.cancel_after(std::chrono::hours(24));
  EXPECT_TRUE(future.has_deadline());
  EXPECT_FALSE(future.cancelled());
}

TEST(CancelToken, ScopedInstallAndRestore) {
  EXPECT_EQ(current_cancel_token(), nullptr);
  EXPECT_FALSE(cancellation_requested());  // no token installed
  const CancelToken outer;
  {
    const ScopedCancel outer_scope(outer);
    EXPECT_EQ(current_cancel_token(), &outer);
    const CancelToken inner = cancelled_token();
    {
      const ScopedCancel inner_scope(inner);
      EXPECT_EQ(current_cancel_token(), &inner);
      EXPECT_TRUE(cancellation_requested());
    }
    EXPECT_EQ(current_cancel_token(), &outer);
    EXPECT_FALSE(cancellation_requested());
    {
      // Null install: the current token is left as-is.
      const ScopedCancel null_scope(nullptr);
      EXPECT_EQ(current_cancel_token(), &outer);
    }
    EXPECT_EQ(current_cancel_token(), &outer);
  }
  EXPECT_EQ(current_cancel_token(), nullptr);
}

TEST(CancelPool, PreCancelledTokenSkipsChunkBodies) {
  ThreadPool pool(4);
  const CancelToken token = cancelled_token();
  std::atomic<std::size_t> processed{0};
  pool.parallel_for_chunks(
      64,
      [&](std::size_t begin, std::size_t end) {
        processed.fetch_add(end - begin, std::memory_order_relaxed);
      },
      &token);
  EXPECT_EQ(processed.load(), 0u);
}

TEST(CancelPool, WorkersSeeInstalledToken) {
  ThreadPool pool(4);
  const CancelToken token;
  std::atomic<std::size_t> saw_token{0};
  pool.parallel_for_chunks(
      8,
      [&](std::size_t, std::size_t) {
        if (current_cancel_token() == &token) {
          saw_token.fetch_add(1, std::memory_order_relaxed);
        }
      },
      &token);
  EXPECT_GT(saw_token.load(), 0u);
  // The install is scoped to the chunk: this thread is clean afterwards.
  EXPECT_EQ(current_cancel_token(), nullptr);
}

TEST(CancelPool, CancelMidFlightStopsCooperativelyWithoutDeadlock) {
  // Exercised under TSan by the sanitizer matrix: a token cancelled while
  // chunks are running must wind the pool down without deadlock, dangling
  // body references, or lost chunks.
  ThreadPool pool(4);
  const CancelToken token;
  std::atomic<std::size_t> processed{0};
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.request_cancel();
  });
  pool.parallel_for_chunks(
      std::size_t{1} << 14,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (cancellation_requested()) return;  // cooperative poll
          processed.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(5));
        }
      },
      &token);
  canceller.join();
  EXPECT_TRUE(token.cancelled());
  // Progress was made, then stopped early (a 5us sleep per element makes
  // the full 16384-element range take ~80ms of pure sleep; the 2ms cancel
  // stops it well short).
  EXPECT_LT(processed.load(), std::size_t{1} << 14);
}

// -- anytime heuristics: cancelled budget -> valid best-so-far -------------

TEST(CancelHeuristics, SaReturnsSeedMappingWhenPreCancelled) {
  const EtcMatrix m = random_matrix(11);
  const Problem problem = Problem::full(m);
  hcsched::heuristics::MinMin minmin;
  hcsched::rng::TieBreaker det;
  const auto minmin_schedule = minmin.map(problem, det);

  const CancelToken token = cancelled_token();
  const ScopedCancel scope(token);
  const hcsched::heuristics::SimulatedAnnealing sa;
  hcsched::rng::TieBreaker ties;
  const auto schedule = sa.map(problem, ties);
  // Zero annealing steps ran, so the result is exactly the Min-Min seed.
  EXPECT_TRUE(hcsched::sched::is_valid(schedule));
  EXPECT_DOUBLE_EQ(schedule.makespan(), minmin_schedule.makespan());
  for (const auto task : problem.tasks()) {
    EXPECT_EQ(schedule.machine_of(task), minmin_schedule.machine_of(task));
  }
}

TEST(CancelHeuristics, TabuReturnsValidMappingWhenPreCancelled) {
  const EtcMatrix m = random_matrix(12);
  const Problem problem = Problem::full(m);
  const CancelToken token = cancelled_token();
  const ScopedCancel scope(token);
  const hcsched::heuristics::TabuSearch tabu;
  hcsched::rng::TieBreaker ties;
  const auto schedule = tabu.map(problem, ties);
  EXPECT_TRUE(hcsched::sched::is_valid(schedule));
  EXPECT_EQ(schedule.num_assigned(), problem.num_tasks());
}

TEST(CancelHeuristics, GenitorExecutesZeroStepsWhenPreCancelled) {
  const EtcMatrix m = random_matrix(13);
  const Problem problem = Problem::full(m);
  const CancelToken token = cancelled_token();
  const ScopedCancel scope(token);
  const hcsched::ga::Genitor genitor;
  hcsched::rng::TieBreaker ties;
  const auto schedule = genitor.map(problem, ties);
  EXPECT_TRUE(hcsched::sched::is_valid(schedule));
  EXPECT_EQ(genitor.last_run().steps_executed, 0u);
  // Elitism holds even under cancellation: the best initial member (the
  // Min-Min seed or better) is returned.
  hcsched::heuristics::MinMin minmin;
  hcsched::rng::TieBreaker det;
  EXPECT_LE(schedule.makespan(), minmin.map(problem, det).makespan() + 1e-9);
}

TEST(CancelHeuristics, GsaReturnsValidMappingWhenPreCancelled) {
  const EtcMatrix m = random_matrix(14);
  const Problem problem = Problem::full(m);
  const CancelToken token = cancelled_token();
  const ScopedCancel scope(token);
  const hcsched::heuristics::Gsa gsa;
  hcsched::rng::TieBreaker ties;
  const auto schedule = gsa.map(problem, ties);
  EXPECT_TRUE(hcsched::sched::is_valid(schedule));
}

TEST(CancelHeuristics, AStarFallsBackToCompleteGreedyMapping) {
  const EtcMatrix m = random_matrix(15);
  const Problem problem = Problem::full(m);
  const CancelToken token = cancelled_token();
  const ScopedCancel scope(token);
  const hcsched::heuristics::AStar astar;
  hcsched::rng::TieBreaker ties;
  const auto schedule = astar.map(problem, ties);
  EXPECT_TRUE(hcsched::sched::is_valid(schedule));
  EXPECT_EQ(schedule.num_assigned(), problem.num_tasks());
}

TEST(CancelHeuristics, DeadlineBudgetStopsLongSaRun) {
  // A wall-clock budget, not a pre-cancelled flag: configure SA for an
  // effectively unbounded walk, give it a tiny budget, and require a valid
  // result promptly. Generous bounds — this guards "terminates and stays
  // valid", not a latency target.
  const EtcMatrix m = random_matrix(3, 24, 5);
  const Problem problem = Problem::full(m);
  hcsched::heuristics::SaConfig config;
  config.steps = 500'000'000;  // hours, if not cancelled
  config.cooling = 0.999999999;
  const hcsched::heuristics::SimulatedAnnealing sa(config);
  const CancelToken token;
  token.cancel_after(std::chrono::milliseconds(50));
  const ScopedCancel scope(token);
  hcsched::rng::TieBreaker ties;
  const auto start = std::chrono::steady_clock::now();
  const auto schedule = sa.map(problem, ties);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(hcsched::sched::is_valid(schedule));
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

// -- iterative core and study-level cancellation ---------------------------

TEST(CancelIterative, CancellationIsTerminalIteration) {
  const EtcMatrix m = random_matrix(16);
  const Problem problem = Problem::full(m);
  const CancelToken token = cancelled_token();
  const ScopedCancel scope(token);
  const hcsched::core::IterativeMinimizer minimizer;
  hcsched::heuristics::MinMin minmin;
  hcsched::rng::TieBreaker ties;
  const auto result = minimizer.run(minmin, problem, ties);
  // The first mapping became terminal: one iteration, every machine frozen
  // at its completion time under that mapping.
  ASSERT_EQ(result.iterations.size(), 1u);
  for (const auto& [machine, finish] : result.final_finishing_times) {
    EXPECT_DOUBLE_EQ(finish,
                     result.original().schedule.completion_time(machine));
  }
  EXPECT_FALSE(result.makespan_increased());
}

TEST(CancelStudy, PreCancelledTokenYieldsEmptyCancelledReport) {
  hcsched::sim::StudyParams params;
  params.heuristics = {"MCT", "Min-Min"};
  params.cvb.num_tasks = 10;
  params.cvb.num_machines = 3;
  params.trials = 6;
  params.seed = 21;
  ThreadPool pool(2);
  const CancelToken token = cancelled_token();
  hcsched::sim::StudyHooks hooks;
  hooks.cancel = &token;
  const auto report =
      hcsched::sim::run_iterative_study_report(params, pool, hooks);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.trials_completed, 0u);
  EXPECT_EQ(report.trials_requested, params.trials);
  for (const auto& row : report.rows) EXPECT_EQ(row.trials, 0u);
}

TEST(CancelStudy, UncancelledTokenChangesNothing) {
  hcsched::sim::StudyParams params;
  params.heuristics = {"MCT", "Min-Min"};
  params.cvb.num_tasks = 10;
  params.cvb.num_machines = 3;
  params.trials = 6;
  params.seed = 21;
  ThreadPool pool(2);
  const auto clean = hcsched::sim::run_iterative_study_report(params, pool);
  const CancelToken token;
  hcsched::sim::StudyHooks hooks;
  hooks.cancel = &token;
  const auto report =
      hcsched::sim::run_iterative_study_report(params, pool, hooks);
  EXPECT_FALSE(report.cancelled);
  ASSERT_EQ(report.rows.size(), clean.rows.size());
  for (std::size_t h = 0; h < report.rows.size(); ++h) {
    EXPECT_EQ(report.rows[h].trials, clean.rows[h].trials);
    EXPECT_EQ(report.rows[h].finish_delta.mean(),
              clean.rows[h].finish_delta.mean());
  }
}

}  // namespace
