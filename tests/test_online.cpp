#include "sim/online.hpp"

#include <gtest/gtest.h>

#include "etc/cvb_generator.hpp"
#include "heuristics/mct.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sim::make_arrival_stream;
using hcsched::sim::OnlineConfig;
using hcsched::sim::OnlineDispatcher;
using hcsched::sim::OnlinePolicy;
using hcsched::sim::OnlineResult;
using hcsched::sim::OnlineTask;

EtcMatrix small_matrix() {
  return EtcMatrix::from_rows({{2, 5}, {4, 1}, {3, 3}});
}

TEST(Online, MctDispatchesToEarliestCompletion) {
  OnlineDispatcher dispatcher(OnlineConfig{.policy = OnlinePolicy::kMct});
  const EtcMatrix m = small_matrix();
  const std::vector<OnlineTask> stream = {
      {0, 0.0}, {1, 0.0}, {2, 0.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].machine, 0);  // t0: 2 vs 5
  EXPECT_EQ(r.records[1].machine, 1);  // t1: 2+4 vs 1
  EXPECT_EQ(r.records[2].machine, 1);  // t2: 2+3=5 vs 1+3=4
  EXPECT_DOUBLE_EQ(r.makespan(), 4.0);
}

TEST(Online, ArrivalGatesStartTime) {
  OnlineDispatcher dispatcher;
  const EtcMatrix m = small_matrix();
  const std::vector<OnlineTask> stream = {{0, 10.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  EXPECT_DOUBLE_EQ(r.records[0].start, 10.0);
  EXPECT_DOUBLE_EQ(r.records[0].finish, 12.0);
}

TEST(Online, InitialReadyVectorIsHonored) {
  OnlineDispatcher dispatcher;
  const EtcMatrix m = small_matrix();
  const std::vector<OnlineTask> stream = {{0, 0.0}};
  TieBreaker ties;
  // m0 busy until 100 -> MCT prefers m1 despite larger ETC.
  const OnlineResult r = dispatcher.run(m, stream, {100.0, 0.0}, ties);
  EXPECT_EQ(r.records[0].machine, 1);
  EXPECT_DOUBLE_EQ(r.records[0].finish, 5.0);
}

TEST(Online, MetIgnoresLoad) {
  OnlineDispatcher dispatcher(OnlineConfig{.policy = OnlinePolicy::kMet});
  const EtcMatrix m = EtcMatrix::from_rows({{1, 9}});
  const std::vector<OnlineTask> stream = {{0, 0.0}, {0, 0.0}, {0, 0.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  for (const auto& rec : r.records) EXPECT_EQ(rec.machine, 0);
  EXPECT_DOUBLE_EQ(r.makespan(), 3.0);
}

TEST(Online, OlbBalancesIgnoringEtc) {
  OnlineDispatcher dispatcher(OnlineConfig{.policy = OnlinePolicy::kOlb});
  const EtcMatrix m = EtcMatrix::from_rows({{1, 100}});
  const std::vector<OnlineTask> stream = {{0, 0.0}, {0, 0.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  EXPECT_EQ(r.records[0].machine, 0);
  EXPECT_EQ(r.records[1].machine, 1);  // m0 now busy; OLB ignores the 100
}

TEST(Online, KpbRestrictsToSubset) {
  OnlineDispatcher dispatcher(
      OnlineConfig{.policy = OnlinePolicy::kKpb, .kpb_percent = 70.0});
  // Best two of three machines by ETC are m0/m1; m2 is idle but excluded.
  const EtcMatrix m = EtcMatrix::from_rows({{5, 6, 7}});
  const std::vector<OnlineTask> stream = {{0, 0.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {10.0, 10.0, 0.0}, ties);
  EXPECT_NE(r.records[0].machine, 2);
}

TEST(Online, SwaSwitchesModes) {
  OnlineDispatcher dispatcher(OnlineConfig{.policy = OnlinePolicy::kSwa,
                                           .swa_low = 0.35,
                                           .swa_high = 0.49});
  // Balanced after two dispatches -> BI = 1 -> MET for the third.
  const EtcMatrix m = EtcMatrix::from_rows({
      {2, 9},
      {9, 2},
      {5, 9},
  });
  const std::vector<OnlineTask> stream = {{0, 0.0}, {1, 0.0}, {2, 0.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  EXPECT_EQ(r.records[2].machine, 0);  // MET choice (ETC 5 < 9)
}

TEST(Online, RejectsBadInput) {
  OnlineDispatcher dispatcher;
  const EtcMatrix m = small_matrix();
  TieBreaker ties;
  EXPECT_THROW((void)dispatcher.run(m, {{0, 0.0}}, {0.0}, ties),
               std::invalid_argument);  // ready size mismatch
  EXPECT_THROW((void)dispatcher.run(m, {{9, 0.0}}, {0.0, 0.0}, ties),
               std::out_of_range);  // task id outside matrix
  EXPECT_THROW(
      (void)dispatcher.run(m, {{0, 5.0}, {1, 1.0}}, {0.0, 0.0}, ties),
      std::invalid_argument);  // unordered arrivals
  EXPECT_THROW(OnlineDispatcher(OnlineConfig{.kpb_percent = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(
      OnlineDispatcher(OnlineConfig{.swa_low = 0.9, .swa_high = 0.1}),
      std::invalid_argument);
}

TEST(Online, FlowTimeMetric) {
  OnlineDispatcher dispatcher;
  const EtcMatrix m = EtcMatrix::from_rows({{2, 9}});
  const std::vector<OnlineTask> stream = {{0, 1.0}, {0, 1.0}};
  TieBreaker ties;
  const OnlineResult r = dispatcher.run(m, stream, {0.0, 0.0}, ties);
  // First: start 1, finish 3, flow 2. Second: m0 busy until 3 -> CT 5 vs
  // m1 at 1+9 = 10 -> m0, flow 4. Mean = 3.
  EXPECT_DOUBLE_EQ(r.mean_flow_time(), 3.0);
}

TEST(Online, ArrivalStreamIsOrderedAndSized) {
  Rng rng(5);
  const auto stream = make_arrival_stream(100, 2.0, 7, rng);
  ASSERT_EQ(stream.size(), 100u);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GE(stream[i].arrival, stream[i - 1].arrival);
  }
  for (const auto& t : stream) {
    EXPECT_GE(t.task, 0);
    EXPECT_LT(t.task, 7);
  }
  // Mean gap sanity (exponential with mean 2).
  const double total = stream.back().arrival;
  EXPECT_NEAR(total / 100.0, 2.0, 0.8);
}

TEST(Online, StreamRequiresNonEmptyMatrix) {
  Rng rng(6);
  EXPECT_THROW((void)make_arrival_stream(5, 1.0, 0, rng),
               std::invalid_argument);
}

TEST(Online, ZeroArrivalsMakeImmediateMctEqualBatchStaticMct) {
  // With every arrival at t = 0 and idle machines, immediate-mode MCT is
  // exactly the static MCT list heuristic.
  Rng rng(42);
  hcsched::etc::CvbParams params;
  params.num_tasks = 15;
  params.num_machines = 5;
  const EtcMatrix m = hcsched::etc::CvbEtcGenerator(params).generate(rng);
  std::vector<OnlineTask> stream;
  for (int t = 0; t < 15; ++t) stream.push_back({t, 0.0});
  OnlineDispatcher dispatcher(OnlineConfig{.policy = OnlinePolicy::kMct});
  TieBreaker t1;
  const OnlineResult online = dispatcher.run(m, stream, std::vector<double>(5, 0.0), t1);

  hcsched::heuristics::Mct mct;
  TieBreaker t2;
  const auto batch =
      mct.map(hcsched::sched::Problem::full(m), t2);
  for (const auto& rec : online.records) {
    EXPECT_EQ(rec.machine, *batch.machine_of(rec.task)) << rec.task;
  }
  EXPECT_DOUBLE_EQ(online.makespan(), batch.makespan());
}

TEST(Online, BetterInitialAvailabilityNeverHurtsMct) {
  // Lowering every machine's initial ready time can only improve MCT's
  // online completions (monotonicity of the dispatch recursion).
  Rng rng(7);
  hcsched::etc::CvbParams params;
  params.num_tasks = 10;
  params.num_machines = 4;
  const EtcMatrix m = hcsched::etc::CvbEtcGenerator(params).generate(rng);
  const auto stream = make_arrival_stream(40, 50.0, 10, rng);
  OnlineDispatcher dispatcher;
  TieBreaker t1;
  TieBreaker t2;
  const OnlineResult slow =
      dispatcher.run(m, stream, {500.0, 500.0, 500.0, 500.0}, t1);
  const OnlineResult fast =
      dispatcher.run(m, stream, {100.0, 100.0, 100.0, 100.0}, t2);
  EXPECT_LE(fast.mean_flow_time(), slow.mean_flow_time() + 1e-9);
  EXPECT_LE(fast.makespan(), slow.makespan() + 1e-9);
}

}  // namespace
