// Tests for the search-based baselines (SA, GSA, Tabu) and Segmented
// Min-Min (Wu & Shu, cited as [18] in the paper).
#include <gtest/gtest.h>

#include "etc/cvb_generator.hpp"
#include "heuristics/gsa.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/sa.hpp"
#include "heuristics/segmented.hpp"
#include "heuristics/tabu.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::etc::EtcMatrix;
using hcsched::ga::Chromosome;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

EtcMatrix random_matrix(std::uint64_t seed, std::size_t tasks = 20,
                        std::size_t machines = 5) {
  Rng rng(seed);
  CvbParams p;
  p.num_tasks = tasks;
  p.num_machines = machines;
  return CvbEtcGenerator(p).generate(rng);
}

TEST(SimulatedAnnealing, NeverWorseThanItsMinMinStart) {
  hcsched::heuristics::SimulatedAnnealing sa;
  hcsched::heuristics::MinMin minmin;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EtcMatrix m = random_matrix(seed);
    TieBreaker t1;
    TieBreaker t2;
    EXPECT_LE(sa.map(Problem::full(m), t1).makespan(),
              minmin.map(Problem::full(m), t2).makespan() + 1e-9)
        << "seed " << seed;
  }
}

TEST(SimulatedAnnealing, ImprovesARandomStart) {
  hcsched::heuristics::SaConfig cfg;
  cfg.seed_with_minmin = false;
  cfg.steps = 6000;
  const hcsched::heuristics::SimulatedAnnealing sa(cfg);
  const EtcMatrix m = random_matrix(9, 30, 6);
  const Problem p = Problem::full(m);
  TieBreaker ties;
  const double span = sa.map(p, ties).makespan();
  // A random mapping on 6 machines averages far above the balanced level;
  // SA must land well below the all-on-one-machine scale.
  Rng rng(123);
  const double random_span = Chromosome::random(p, rng).evaluate(p);
  EXPECT_LT(span, random_span);
}

TEST(SimulatedAnnealing, RejectsBadCooling) {
  hcsched::heuristics::SaConfig cfg;
  cfg.cooling = 1.0;
  EXPECT_THROW(hcsched::heuristics::SimulatedAnnealing{cfg},
               std::invalid_argument);
  cfg.cooling = 0.0;
  EXPECT_THROW(hcsched::heuristics::SimulatedAnnealing{cfg},
               std::invalid_argument);
}

TEST(Gsa, NeverWorseThanItsMinMinSeedAndValid) {
  hcsched::heuristics::Gsa gsa;
  hcsched::heuristics::MinMin minmin;
  const EtcMatrix m = random_matrix(3);
  TieBreaker t1;
  TieBreaker t2;
  const Schedule s = gsa.map(Problem::full(m), t1);
  EXPECT_LE(s.makespan(),
            minmin.map(Problem::full(m), t2).makespan() + 1e-9);
  EXPECT_TRUE(hcsched::sched::is_valid(s));
}

TEST(Gsa, RejectsBadConfig) {
  hcsched::heuristics::GsaConfig cfg;
  cfg.population_size = 1;
  EXPECT_THROW(hcsched::heuristics::Gsa{cfg}, std::invalid_argument);
  cfg.population_size = 10;
  cfg.cooling = 1.5;
  EXPECT_THROW(hcsched::heuristics::Gsa{cfg}, std::invalid_argument);
}

TEST(TabuSearch, HammingDistance) {
  const Chromosome a(std::vector<std::uint32_t>{0, 1, 2, 0});
  const Chromosome b(std::vector<std::uint32_t>{0, 2, 2, 1});
  EXPECT_EQ(hcsched::heuristics::hamming_distance(a, b), 2u);
  EXPECT_EQ(hcsched::heuristics::hamming_distance(a, a), 0u);
  const Chromosome c(std::vector<std::uint32_t>{0});
  EXPECT_THROW((void)hcsched::heuristics::hamming_distance(a, c),
               std::invalid_argument);
}

TEST(TabuSearch, DescendsToALocalMinimum) {
  // From a Min-Min start, tabu's short hops can only improve; the result
  // must have no improving single-task move (check a few moves by hand).
  hcsched::heuristics::TabuSearch tabu;
  hcsched::heuristics::MinMin minmin;
  const EtcMatrix m = random_matrix(11, 16, 4);
  const Problem p = Problem::full(m);
  TieBreaker t1;
  TieBreaker t2;
  const double tabu_span = tabu.map(p, t1).makespan();
  const double mm_span = minmin.map(p, t2).makespan();
  EXPECT_LE(tabu_span, mm_span + 1e-9);
}

TEST(TabuSearch, SingleMachineDegenerates) {
  const EtcMatrix m = EtcMatrix::from_rows({{2}, {3}});
  hcsched::heuristics::TabuSearch tabu;
  TieBreaker ties;
  const Schedule s = tabu.map(Problem::full(m), ties);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_TRUE(hcsched::sched::is_valid(s));
}

TEST(SegmentedMinMin, OneSegmentEqualsMinMinOnContinuousInput) {
  hcsched::heuristics::SegmentedMinMin smm(1);
  hcsched::heuristics::MinMin minmin;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EtcMatrix m = random_matrix(seed + 40);
    TieBreaker t1;
    TieBreaker t2;
    const Schedule a = smm.map(Problem::full(m), t1);
    const Schedule b = minmin.map(Problem::full(m), t2);
    EXPECT_TRUE(a.same_mapping(b)) << "seed " << seed;
  }
}

TEST(SegmentedMinMin, RejectsZeroSegments) {
  EXPECT_THROW(hcsched::heuristics::SegmentedMinMin(0),
               std::invalid_argument);
}

TEST(SegmentedMinMin, PlacesLongTasksFirst) {
  // One long task + fillers: segmented (by average, 2 segments) maps the
  // long task within the first segment — while the suite is still lightly
  // loaded — beating plain Min-Min's makespan (9 vs 12, hand-traced).
  const EtcMatrix m =
      EtcMatrix::from_rows({{8, 9}, {2, 3}, {2, 3}, {2, 3}});
  hcsched::heuristics::SegmentedMinMin smm(2);
  hcsched::heuristics::MinMin minmin;
  TieBreaker t1;
  TieBreaker t2;
  const Schedule a = smm.map(Problem::full(m), t1);
  const Schedule b = minmin.map(Problem::full(m), t2);
  // The long task t0 is in segment one (first two assignments).
  EXPECT_TRUE(a.assignment_order()[0].task == 0 ||
              a.assignment_order()[1].task == 0);
  EXPECT_DOUBLE_EQ(a.makespan(), 9.0);
  EXPECT_DOUBLE_EQ(b.makespan(), 12.0);
}

TEST(SegmentedMinMin, AllKeysProduceValidCompleteSchedules) {
  using hcsched::heuristics::SegmentKey;
  const EtcMatrix m = random_matrix(55, 23, 5);  // non-divisible segments
  for (SegmentKey key :
       {SegmentKey::kAverage, SegmentKey::kMin, SegmentKey::kMax}) {
    hcsched::heuristics::SegmentedMinMin smm(4, key);
    TieBreaker ties;
    const Schedule s = smm.map(Problem::full(m), ties);
    EXPECT_TRUE(s.complete());
    EXPECT_TRUE(hcsched::sched::is_valid(s));
  }
}

TEST(SegmentedMinMin, MoreSegmentsThanTasksClamps) {
  const EtcMatrix m = random_matrix(66, 3, 2);
  hcsched::heuristics::SegmentedMinMin smm(10);
  TieBreaker ties;
  const Schedule s = smm.map(Problem::full(m), ties);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(s));
}

TEST(SearchHeuristics, ReproducibleRunToRun) {
  const EtcMatrix m = random_matrix(77, 15, 4);
  const Problem p = Problem::full(m);
  for (const char* name : {"SA", "GSA", "Tabu"}) {
    const auto h1 = hcsched::heuristics::make_heuristic(name);
    const auto h2 = hcsched::heuristics::make_heuristic(name);
    TieBreaker t1;
    TieBreaker t2;
    EXPECT_TRUE(h1->map(p, t1).same_mapping(h2->map(p, t2))) << name;
  }
}

}  // namespace
