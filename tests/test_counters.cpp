// Operation counters and latency histograms: thread-local buffers must be
// additive across pool threads, the NVI wrapper must count heuristic
// invocations, and the log2 histograms must bound their quantiles.
//
// Counter tests reset global state, so they would race any concurrently
// counting test; gtest runs tests in one thread, and the pools joined here
// flush before assertions read the table.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/paper_examples.hpp"
#include "heuristics/registry.hpp"
#include "obs/counters.hpp"
#include "rng/tie_break.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace hcsched;

TEST(Counters, AdditiveAcrossPoolThreads) {
  obs::counters::reset();
  constexpr std::uint64_t kJobs = 64;
  constexpr std::uint64_t kPerJob = 3;
  {
    sim::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    futures.reserve(kJobs);
    for (std::uint64_t i = 0; i < kJobs; ++i) {
      futures.push_back(pool.submit(
          [] { obs::counters::add(obs::Counter::kGaSteps, kPerJob); }));
    }
    for (auto& f : futures) f.get();
  }  // joining the pool flushes every worker's buffer

  const auto snap = obs::counters::snapshot();
  EXPECT_EQ(snap[obs::Counter::kGaSteps], kJobs * kPerJob);
  if (obs::kTraceCompiledIn) {
    EXPECT_EQ(snap[obs::Counter::kPoolTasksSubmitted], kJobs);
    EXPECT_EQ(snap[obs::Counter::kPoolTasksCompleted], kJobs);
    EXPECT_GE(obs::pool_wait_histogram().count(), kJobs);
    EXPECT_GE(obs::pool_run_histogram().count(), kJobs);
  }
}

TEST(Counters, HeuristicInvocationsCountedThroughNvi) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  obs::counters::reset();
  const auto ex = core::minmin_example();
  const auto heuristic = heuristics::make_heuristic(ex.heuristic);
  const sched::Problem problem = sched::Problem::full(*ex.matrix);
  rng::TieBreaker ties;
  heuristic->map(problem, ties);
  heuristic->map(problem, ties);

  const auto snap = obs::counters::snapshot();
  EXPECT_EQ(snap[obs::Counter::kHeuristicInvocations], 2u);
  EXPECT_GT(snap[obs::Counter::kEtcCellEvaluations], 0u);
  EXPECT_GT(snap[obs::Counter::kTieDecisions], 0u);

  bool found = false;
  for (const auto& [name, timing] : obs::heuristic_timings()) {
    if (name == "Min-Min") {
      found = true;
      EXPECT_EQ(timing.calls, 2u);
      EXPECT_GT(timing.mean_ns(), 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Counters, IterativeRunCountsIterations) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "library built with HCSCHED_TRACE=0";
  }
  obs::counters::reset();
  const auto result = core::run_paper_example(core::minmin_example());
  const auto snap = obs::counters::snapshot();
  EXPECT_EQ(snap[obs::Counter::kIterativeRuns], 1u);
  EXPECT_EQ(snap[obs::Counter::kIterativeIterations],
            result.iterations.size());
}

TEST(Counters, SnapshotDeltaSaturatesAtZero) {
  obs::counters::reset();
  obs::counters::add(obs::Counter::kGaMutations, 5);
  const auto before = obs::counters::snapshot();
  obs::counters::add(obs::Counter::kGaMutations, 2);
  const auto after = obs::counters::snapshot();

  EXPECT_EQ(after.delta_since(before)[obs::Counter::kGaMutations], 2u);
  // Reversed order saturates instead of wrapping.
  EXPECT_EQ(before.delta_since(after)[obs::Counter::kGaMutations], 0u);
}

TEST(Counters, SnapshotSerializesEveryCounter) {
  obs::counters::reset();
  obs::counters::add(obs::Counter::kSearchNodesExpanded, 7);
  const auto json = obs::counters::snapshot().to_json();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.as_object().size(), obs::kNumCounters);
  EXPECT_DOUBLE_EQ(json.at("search_nodes_expanded").as_number(), 7.0);
}

TEST(LatencyHistogram, BucketsBoundQuantilesAndMax) {
  obs::LatencyHistogram hist;
  hist.record_ns(0);
  hist.record_ns(10);
  hist.record_ns(1000);
  hist.record_ns(1'000'000);

  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(hist.total_ns(), 1'001'010u);
  EXPECT_EQ(hist.max_ns(), 1'000'000u);
  EXPECT_DOUBLE_EQ(hist.mean_ns(), 1'001'010.0 / 4.0);
  // The p100 bucket upper bound must cover the max sample; p0 covers the min.
  EXPECT_GE(hist.quantile_upper_bound_ns(1.0), 1'000'000u);
  EXPECT_LE(hist.quantile_upper_bound_ns(0.0), 16u);

  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.quantile_upper_bound_ns(0.5), 0u);
}

TEST(LatencyHistogram, JsonSnapshotHasStableKeys) {
  obs::LatencyHistogram hist;
  hist.record_ns(128);
  const auto json = hist.to_json();
  for (const char* key :
       {"count", "total_ns", "mean_ns", "p50_ns", "p99_ns", "max_ns"}) {
    EXPECT_NE(json.find(key), nullptr) << key;
  }
  EXPECT_DOUBLE_EQ(json.at("count").as_number(), 1.0);
}

}  // namespace
