// The paper's §5 proposal: seeding makes the iterative technique monotone
// for ANY heuristic. Property-tested over every registered heuristic.
#include "heuristics/seeded.hpp"

#include <gtest/gtest.h>

#include <cctype>

#include "core/iterative.hpp"
#include "core/theorems.hpp"
#include "etc/cvb_generator.hpp"
#include "heuristics/registry.hpp"
#include "sched/validate.hpp"

namespace {

using hcsched::core::IterativeMinimizer;
using hcsched::core::IterativeOptions;
using hcsched::etc::EtcMatrix;
using hcsched::heuristics::make_seeded;
using hcsched::heuristics::Seeded;
using hcsched::rng::Rng;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

EtcMatrix tie_rich_matrix(std::uint64_t seed, std::size_t tasks,
                          std::size_t machines) {
  Rng rng(seed);
  EtcMatrix m(tasks, machines);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t j = 0; j < machines; ++j) {
      m.at(static_cast<int>(t), static_cast<int>(j)) =
          static_cast<double>(rng.between(1, 5));
    }
  }
  return m;
}

TEST(Seeded, NameAndConstruction) {
  const auto wrapped = make_seeded("KPB");
  EXPECT_EQ(wrapped->name(), "Seeded<KPB>");
  EXPECT_THROW(Seeded(nullptr), std::invalid_argument);
  EXPECT_THROW((void)make_seeded("nonsense"), std::invalid_argument);
}

TEST(Seeded, WithoutSeedDelegatesToInner) {
  const EtcMatrix m = tie_rich_matrix(1, 10, 3);
  const Problem p = Problem::full(m);
  const auto wrapped = make_seeded("MCT");
  const auto inner = hcsched::heuristics::make_heuristic("MCT");
  TieBreaker t1;
  TieBreaker t2;
  EXPECT_TRUE(wrapped->map(p, t1).same_mapping(inner->map(p, t2)));
}

TEST(Seeded, KeepsBetterSeed) {
  // Give the wrapper a seed that beats what the inner heuristic (MET, which
  // piles everything on one machine) would produce: it must keep the seed.
  const EtcMatrix m = EtcMatrix::from_rows({{1, 2}, {1, 2}, {1, 2}, {1, 2}});
  const Problem p = Problem::full(m);
  // MET piles all four tasks on m0: makespan 4. The seed splits them
  // (m0 = 2, m1 = 4): also makespan 4. On the tie the incumbent must win.
  Schedule best(p);
  best.assign(0, 0);
  best.assign(1, 0);
  best.assign(2, 1);
  best.assign(3, 1);
  const Seeded wrapped(hcsched::heuristics::make_heuristic("MET"));
  TieBreaker ties;
  const Schedule out = wrapped.map_seeded(p, ties, &best);
  EXPECT_TRUE(out.same_mapping(best));
}

TEST(Seeded, TakesStrictlyBetterFreshMapping) {
  const EtcMatrix m = EtcMatrix::from_rows({{1, 9}, {9, 1}});
  const Problem p = Problem::full(m);
  Schedule bad(p);
  bad.assign(0, 1);
  bad.assign(1, 0);  // makespan 9
  const Seeded wrapped(hcsched::heuristics::make_heuristic("MCT"));
  TieBreaker ties;
  const Schedule out = wrapped.map_seeded(p, ties, &bad);
  EXPECT_DOUBLE_EQ(out.makespan(), 1.0);
  EXPECT_FALSE(out.same_mapping(bad));
}

// The §5 claim, as a property over every registered heuristic: the seeded
// wrapper makes the iterative technique monotone (no iteration's makespan
// exceeds the original's) on tie-rich instances, even for the heuristics
// the paper shows can otherwise increase it.
class SeededMonotoneTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SeededMonotoneTest, IterativeTechniqueNeverIncreasesMakespan) {
  const auto wrapped = make_seeded(GetParam());
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const EtcMatrix m = tie_rich_matrix(seed * 31, 12, 4);
    TieBreaker ties;
    const auto result =
        IterativeMinimizer{IterativeOptions{.use_seeding = true}}.run(
            *wrapped, Problem::full(m), ties);
    const auto report = hcsched::core::check_monotone_makespan(result);
    EXPECT_TRUE(report.holds)
        << GetParam() << " seed " << seed << ": " << report.violation;
    EXPECT_FALSE(result.makespan_increased()) << GetParam();
    for (const auto& it : result.iterations) {
      EXPECT_TRUE(hcsched::sched::is_valid(it.schedule)) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllHeuristics, SeededMonotoneTest,
    ::testing::ValuesIn(hcsched::heuristics::known_heuristic_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Seeded, UnseededIterativeRunStillMatchesInner) {
  // With use_seeding disabled the wrapper is transparent.
  const EtcMatrix m = tie_rich_matrix(77, 10, 3);
  const auto wrapped = make_seeded("Sufferage");
  const auto inner = hcsched::heuristics::make_heuristic("Sufferage");
  TieBreaker t1;
  TieBreaker t2;
  const auto a =
      IterativeMinimizer{IterativeOptions{.use_seeding = false}}.run(
          *wrapped, Problem::full(m), t1);
  const auto b =
      IterativeMinimizer{IterativeOptions{.use_seeding = false}}.run(
          *inner, Problem::full(m), t2);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_TRUE(
        a.iterations[i].schedule.same_mapping(b.iterations[i].schedule));
  }
}

}  // namespace
