#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "etc/cvb_generator.hpp"
#include "etc/range_generator.hpp"
#include "rng/rng.hpp"

namespace {

using hcsched::etc::CvbEtcGenerator;
using hcsched::etc::CvbParams;
using hcsched::etc::EtcMatrix;
using hcsched::etc::Heterogeneity;
using hcsched::etc::RangeEtcGenerator;
using hcsched::etc::RangeParams;
using hcsched::rng::Rng;

TEST(RangeGenerator, Dimensions) {
  Rng rng(1);
  RangeEtcGenerator gen(RangeParams{.num_tasks = 12, .num_machines = 5});
  const EtcMatrix m = gen.generate(rng);
  EXPECT_EQ(m.num_tasks(), 12u);
  EXPECT_EQ(m.num_machines(), 5u);
}

TEST(RangeGenerator, ValuesWithinTheoreticalBounds) {
  Rng rng(2);
  RangeParams p{.num_tasks = 50,
                .num_machines = 8,
                .task_range = 100.0,
                .machine_range = 10.0};
  const EtcMatrix m = RangeEtcGenerator(p).generate(rng);
  EXPECT_GE(m.min_value(), 1.0);          // both factors >= 1
  EXPECT_LE(m.max_value(), 1000.0 + 1);   // < task_range * machine_range
}

TEST(RangeGenerator, RejectsDegenerateRanges) {
  Rng rng(3);
  RangeParams p{.num_tasks = 2, .num_machines = 2, .task_range = 0.5};
  EXPECT_THROW(RangeEtcGenerator(p).generate(rng), std::invalid_argument);
}

TEST(RangeGenerator, PresetsOrderHeterogeneity) {
  const auto hihi = hcsched::etc::range_preset(Heterogeneity::kHiHi, 4, 4);
  const auto lolo = hcsched::etc::range_preset(Heterogeneity::kLoLo, 4, 4);
  const auto hilo = hcsched::etc::range_preset(Heterogeneity::kHiLo, 4, 4);
  const auto lohi = hcsched::etc::range_preset(Heterogeneity::kLoHi, 4, 4);
  EXPECT_GT(hihi.task_range, lolo.task_range);
  EXPECT_GT(hihi.machine_range, lolo.machine_range);
  EXPECT_GT(hilo.task_range, hilo.machine_range);
  EXPECT_GT(lohi.machine_range, lohi.task_range);
  EXPECT_EQ(hihi.num_tasks, 4u);
  EXPECT_EQ(hihi.num_machines, 4u);
}

TEST(RangeGenerator, Reproducible) {
  RangeParams p{.num_tasks = 6, .num_machines = 3};
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(RangeEtcGenerator(p).generate(a),
            RangeEtcGenerator(p).generate(b));
}

TEST(CvbGenerator, Dimensions) {
  Rng rng(1);
  CvbEtcGenerator gen(CvbParams{.num_tasks = 7, .num_machines = 9});
  const EtcMatrix m = gen.generate(rng);
  EXPECT_EQ(m.num_tasks(), 7u);
  EXPECT_EQ(m.num_machines(), 9u);
  EXPECT_GT(m.min_value(), 0.0);
}

TEST(CvbGenerator, RejectsNonPositiveParams) {
  Rng rng(1);
  EXPECT_THROW(CvbEtcGenerator(CvbParams{.num_tasks = 2,
                                         .num_machines = 2,
                                         .v_task = 0.0})
                   .generate(rng),
               std::invalid_argument);
  EXPECT_THROW(CvbEtcGenerator(CvbParams{.num_tasks = 2,
                                         .num_machines = 2,
                                         .v_machine = -1.0})
                   .generate(rng),
               std::invalid_argument);
  EXPECT_THROW(CvbEtcGenerator(CvbParams{.num_tasks = 2,
                                         .num_machines = 2,
                                         .mean_task_time = 0.0})
                   .generate(rng),
               std::invalid_argument);
}

class CvbStatisticalTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CvbStatisticalTest, MeanAndMachineCovMatchRequest) {
  const auto [v_task, v_machine] = GetParam();
  CvbParams p;
  p.num_tasks = 600;
  p.num_machines = 24;
  p.mean_task_time = 500.0;
  p.v_task = v_task;
  p.v_machine = v_machine;
  Rng rng(static_cast<std::uint64_t>(v_task * 1000 + v_machine * 10));
  const EtcMatrix m = CvbEtcGenerator(p).generate(rng);

  // Overall mean should approach mean_task_time.
  const double mean =
      m.total() / static_cast<double>(m.num_tasks() * m.num_machines());
  EXPECT_NEAR(mean / p.mean_task_time, 1.0, 0.15);

  // Within-row coefficient of variation should approach v_machine.
  double cov_sum = 0.0;
  for (std::size_t t = 0; t < m.num_tasks(); ++t) {
    const auto row = m.row(static_cast<int>(t));
    double rm = 0.0;
    for (double v : row) rm += v;
    rm /= static_cast<double>(row.size());
    double var = 0.0;
    for (double v : row) var += (v - rm) * (v - rm);
    var /= static_cast<double>(row.size() - 1);
    cov_sum += std::sqrt(var) / rm;
  }
  const double mean_cov = cov_sum / static_cast<double>(m.num_tasks());
  EXPECT_NEAR(mean_cov, v_machine, 0.12 * v_machine + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    HeterogeneityGrid, CvbStatisticalTest,
    ::testing::Values(std::make_tuple(0.3, 0.3), std::make_tuple(0.3, 0.9),
                      std::make_tuple(0.9, 0.3), std::make_tuple(0.9, 0.9),
                      std::make_tuple(0.6, 0.6)));

TEST(CvbGenerator, TaskHeterogeneityShowsInRowMeans) {
  // High v_task should spread per-task means much more than low v_task.
  auto row_mean_cov = [](const EtcMatrix& m) {
    std::vector<double> means;
    for (std::size_t t = 0; t < m.num_tasks(); ++t) {
      const auto row = m.row(static_cast<int>(t));
      double s = 0.0;
      for (double v : row) s += v;
      means.push_back(s / static_cast<double>(row.size()));
    }
    double mean = 0.0;
    for (double v : means) mean += v;
    mean /= static_cast<double>(means.size());
    double var = 0.0;
    for (double v : means) var += (v - mean) * (v - mean);
    var /= static_cast<double>(means.size() - 1);
    return std::sqrt(var) / mean;
  };
  CvbParams hi;
  hi.num_tasks = 400;
  hi.num_machines = 16;
  hi.v_task = 1.0;
  hi.v_machine = 0.2;
  CvbParams lo = hi;
  lo.v_task = 0.1;
  Rng r1(11);
  Rng r2(12);
  const double cov_hi = row_mean_cov(CvbEtcGenerator(hi).generate(r1));
  const double cov_lo = row_mean_cov(CvbEtcGenerator(lo).generate(r2));
  EXPECT_GT(cov_hi, 3.0 * cov_lo);
}

}  // namespace
