#include "sched/validate.hpp"

#include <gtest/gtest.h>

#include "heuristics/mct.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::sched::is_valid;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;
using hcsched::sched::validate;

TEST(Validate, CompleteScheduleIsValid) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}});
  Schedule s(Problem::full(m));
  s.assign(0, 0);
  s.assign(1, 1);
  EXPECT_TRUE(is_valid(s));
  EXPECT_TRUE(validate(s).empty());
}

TEST(Validate, UnassignedTaskReported) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}, {3, 1}});
  Schedule s(Problem::full(m));
  s.assign(0, 0);
  const auto errors = validate(s);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("task 1 unassigned"), std::string::npos);
}

TEST(Validate, EmptyProblemIsValid) {
  const EtcMatrix m(0, 2);
  Schedule s(Problem::full(m));
  EXPECT_TRUE(is_valid(s));
}

TEST(Validate, InitialReadyTimesRespected) {
  const EtcMatrix m = EtcMatrix::from_rows({{2, 5}});
  const Problem p(m, {0}, {0, 1}, {7.0, 3.0});
  Schedule s(p);
  s.assign(0, 0);
  EXPECT_TRUE(is_valid(s));
  EXPECT_DOUBLE_EQ(s.completion_time(0), 9.0);
}

TEST(Validate, HeuristicOutputsAreAlwaysValid) {
  // A moderately sized instance mapped by a real heuristic must pass every
  // structural invariant.
  EtcMatrix m(40, 7);
  for (int t = 0; t < 40; ++t) {
    for (int j = 0; j < 7; ++j) {
      m.at(t, j) = 1.0 + (t * 7 + j) % 13;
    }
  }
  hcsched::heuristics::Mct mct;
  hcsched::rng::TieBreaker ties;
  const Schedule s = mct.map(Problem::full(m), ties);
  EXPECT_TRUE(s.complete());
  const auto errors = validate(s);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

}  // namespace
