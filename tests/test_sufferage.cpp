#include "heuristics/sufferage.hpp"

#include <gtest/gtest.h>

#include "sched/validate.hpp"

namespace {

using hcsched::etc::EtcMatrix;
using hcsched::heuristics::Sufferage;
using hcsched::heuristics::SufferageStep;
using hcsched::rng::TieBreaker;
using hcsched::sched::Problem;
using hcsched::sched::Schedule;

TEST(Sufferage, HighSufferageTaskWinsContestedMachine) {
  // Both tasks want m0. t0 suffers 1 if denied (4 - 3); t1 suffers 7
  // (9 - 2). t1 must get m0; t0 is pushed to the next pass.
  const EtcMatrix m = EtcMatrix::from_rows({
      {3, 4},
      {2, 9},
  });
  Sufferage sufferage;
  TieBreaker ties;
  std::vector<SufferageStep> trace;
  const Schedule s = sufferage.map_traced(Problem::full(m), ties, &trace);
  EXPECT_EQ(*s.machine_of(1), 0);
  // t0 lands on m1 in pass 2 (m0 now ready at 2: CT 5 vs 4 on m1).
  EXPECT_EQ(*s.machine_of(0), 1);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].pass, 1u);
  EXPECT_EQ(trace[0].task, 1);
  EXPECT_DOUBLE_EQ(trace[0].sufferage, 7.0);
  EXPECT_EQ(trace[1].pass, 2u);
  EXPECT_EQ(trace[1].task, 0);
}

TEST(Sufferage, TasksWantingDifferentMachinesCommitInOnePass) {
  const EtcMatrix m = EtcMatrix::from_rows({
      {1, 9},
      {9, 1},
  });
  Sufferage sufferage;
  TieBreaker ties;
  std::vector<SufferageStep> trace;
  const Schedule s = sufferage.map_traced(Problem::full(m), ties, &trace);
  EXPECT_EQ(*s.machine_of(0), 0);
  EXPECT_EQ(*s.machine_of(1), 1);
  for (const auto& step : trace) EXPECT_EQ(step.pass, 1u);
}

TEST(Sufferage, SufferageTieKeepsIncumbent) {
  // Equal sufferage values: Figure 17's strict "<" keeps the first task.
  const EtcMatrix m = EtcMatrix::from_rows({
      {2, 5},
      {2, 5},
  });
  Sufferage sufferage;
  TieBreaker ties;
  std::vector<SufferageStep> trace;
  const Schedule s = sufferage.map_traced(Problem::full(m), ties, &trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].task, 0);  // incumbent kept in pass 1
  EXPECT_EQ(trace[0].pass, 1u);
  EXPECT_EQ(trace[1].task, 1);
  EXPECT_EQ(trace[1].pass, 2u);
  EXPECT_TRUE(hcsched::sched::is_valid(s));
}

TEST(Sufferage, SingleMachineSufferageIsZero) {
  const EtcMatrix m = EtcMatrix::from_rows({{3}, {4}, {5}});
  Sufferage sufferage;
  TieBreaker ties;
  std::vector<SufferageStep> trace;
  const Schedule s = sufferage.map_traced(Problem::full(m), ties, &trace);
  EXPECT_DOUBLE_EQ(s.makespan(), 12.0);
  for (const auto& step : trace) EXPECT_DOUBLE_EQ(step.sufferage, 0.0);
  // One task commits per pass (the machine is claimed once per pass).
  EXPECT_EQ(trace.back().pass, 3u);
}

TEST(Sufferage, EvictedTaskReturnsInOriginalOrder) {
  // Three tasks contending for m0 with increasing sufferage; each pass the
  // strongest remaining claim wins, evicted tasks retry in task order.
  const EtcMatrix m = EtcMatrix::from_rows({
      {1, 3},   // sufferage 2
      {1, 5},   // sufferage 4
      {1, 9},   // sufferage 8 -> wins pass 1
  });
  Sufferage sufferage;
  TieBreaker ties;
  std::vector<SufferageStep> trace;
  sufferage.map_traced(Problem::full(m), ties, &trace);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].task, 2);
  EXPECT_EQ(trace[0].pass, 1u);
  // Pass 2: t0 and t1 re-evaluated in original order; ready(m0)=1 so CTs
  // are m0: 2, m1: 3/5 -> both still prefer m0; t1's sufferage (3) beats
  // t0's (1).
  EXPECT_EQ(trace[1].task, 1);
  EXPECT_EQ(trace[1].pass, 2u);
  EXPECT_EQ(trace[2].task, 0);
}

TEST(Sufferage, ReadyTimesOnlyUpdateBetweenPasses) {
  // Within one pass two tasks can claim two different machines at their
  // *pass-start* completion times, even when the first commit would have
  // changed the second task's preference.
  const EtcMatrix m = EtcMatrix::from_rows({
      {2, 3},
      {4, 5},
  });
  // Pass 1: t0 wants m0 (suff 1). t1 wants m0 too (CT 4 vs 5, suff 1); t0
  // holds m0, tie keeps incumbent, t1 retries. Pass 2: ready (2, 0), t1's
  // CTs are 6 and 5 -> m1.
  Sufferage sufferage;
  TieBreaker ties;
  std::vector<SufferageStep> trace;
  const Schedule s = sufferage.map_traced(Problem::full(m), ties, &trace);
  EXPECT_EQ(*s.machine_of(0), 0);
  EXPECT_EQ(*s.machine_of(1), 1);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
}

TEST(Sufferage, RequeueOrderKnob) {
  using hcsched::heuristics::SufferageRequeue;
  const Sufferage original;  // default
  EXPECT_EQ(original.requeue(), SufferageRequeue::kOriginalOrder);
  const Sufferage encounter(SufferageRequeue::kEncounterOrder);
  EXPECT_EQ(encounter.requeue(), SufferageRequeue::kEncounterOrder);
  // Both variants produce complete, valid schedules on a contested
  // instance; they may differ in mapping but not in validity.
  const EtcMatrix m = EtcMatrix::from_rows({
      {1, 3}, {1, 5}, {1, 9}, {2, 2}, {4, 1},
  });
  TieBreaker t1;
  TieBreaker t2;
  const Schedule a = original.map(Problem::full(m), t1);
  const Schedule b = encounter.map(Problem::full(m), t2);
  EXPECT_TRUE(a.complete());
  EXPECT_TRUE(b.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(a));
  EXPECT_TRUE(hcsched::sched::is_valid(b));
}

TEST(Sufferage, ValidOnWideInstances) {
  EtcMatrix m(30, 6);
  for (int t = 0; t < 30; ++t) {
    for (int j = 0; j < 6; ++j) {
      m.at(t, j) = 1.0 + ((t * 31 + j * 17) % 23);
    }
  }
  Sufferage sufferage;
  TieBreaker ties;
  const Schedule s = sufferage.map(Problem::full(m), ties);
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(hcsched::sched::is_valid(s));
}

}  // namespace
