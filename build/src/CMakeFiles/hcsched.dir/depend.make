# Empty dependencies file for hcsched.
# This may be replaced when dependencies are built.
