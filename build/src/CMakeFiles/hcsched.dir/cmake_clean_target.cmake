file(REMOVE_RECURSE
  "libhcsched.a"
)
