
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/iterative.cpp" "src/CMakeFiles/hcsched.dir/core/iterative.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/core/iterative.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/CMakeFiles/hcsched.dir/core/optimal.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/core/optimal.cpp.o.d"
  "/root/repo/src/core/paper_examples.cpp" "src/CMakeFiles/hcsched.dir/core/paper_examples.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/core/paper_examples.cpp.o.d"
  "/root/repo/src/core/theorems.cpp" "src/CMakeFiles/hcsched.dir/core/theorems.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/core/theorems.cpp.o.d"
  "/root/repo/src/core/witness.cpp" "src/CMakeFiles/hcsched.dir/core/witness.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/core/witness.cpp.o.d"
  "/root/repo/src/etc/consistency.cpp" "src/CMakeFiles/hcsched.dir/etc/consistency.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/etc/consistency.cpp.o.d"
  "/root/repo/src/etc/cvb_generator.cpp" "src/CMakeFiles/hcsched.dir/etc/cvb_generator.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/etc/cvb_generator.cpp.o.d"
  "/root/repo/src/etc/etc_io.cpp" "src/CMakeFiles/hcsched.dir/etc/etc_io.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/etc/etc_io.cpp.o.d"
  "/root/repo/src/etc/etc_matrix.cpp" "src/CMakeFiles/hcsched.dir/etc/etc_matrix.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/etc/etc_matrix.cpp.o.d"
  "/root/repo/src/etc/range_generator.cpp" "src/CMakeFiles/hcsched.dir/etc/range_generator.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/etc/range_generator.cpp.o.d"
  "/root/repo/src/ga/chromosome.cpp" "src/CMakeFiles/hcsched.dir/ga/chromosome.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/ga/chromosome.cpp.o.d"
  "/root/repo/src/ga/genitor.cpp" "src/CMakeFiles/hcsched.dir/ga/genitor.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/ga/genitor.cpp.o.d"
  "/root/repo/src/ga/operators.cpp" "src/CMakeFiles/hcsched.dir/ga/operators.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/ga/operators.cpp.o.d"
  "/root/repo/src/ga/population.cpp" "src/CMakeFiles/hcsched.dir/ga/population.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/ga/population.cpp.o.d"
  "/root/repo/src/heuristics/astar.cpp" "src/CMakeFiles/hcsched.dir/heuristics/astar.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/astar.cpp.o.d"
  "/root/repo/src/heuristics/duplex.cpp" "src/CMakeFiles/hcsched.dir/heuristics/duplex.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/duplex.cpp.o.d"
  "/root/repo/src/heuristics/gsa.cpp" "src/CMakeFiles/hcsched.dir/heuristics/gsa.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/gsa.cpp.o.d"
  "/root/repo/src/heuristics/heuristic.cpp" "src/CMakeFiles/hcsched.dir/heuristics/heuristic.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/heuristic.cpp.o.d"
  "/root/repo/src/heuristics/kpb.cpp" "src/CMakeFiles/hcsched.dir/heuristics/kpb.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/kpb.cpp.o.d"
  "/root/repo/src/heuristics/maxmin.cpp" "src/CMakeFiles/hcsched.dir/heuristics/maxmin.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/maxmin.cpp.o.d"
  "/root/repo/src/heuristics/mct.cpp" "src/CMakeFiles/hcsched.dir/heuristics/mct.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/mct.cpp.o.d"
  "/root/repo/src/heuristics/met.cpp" "src/CMakeFiles/hcsched.dir/heuristics/met.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/met.cpp.o.d"
  "/root/repo/src/heuristics/minmin.cpp" "src/CMakeFiles/hcsched.dir/heuristics/minmin.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/minmin.cpp.o.d"
  "/root/repo/src/heuristics/olb.cpp" "src/CMakeFiles/hcsched.dir/heuristics/olb.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/olb.cpp.o.d"
  "/root/repo/src/heuristics/registry.cpp" "src/CMakeFiles/hcsched.dir/heuristics/registry.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/registry.cpp.o.d"
  "/root/repo/src/heuristics/sa.cpp" "src/CMakeFiles/hcsched.dir/heuristics/sa.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/sa.cpp.o.d"
  "/root/repo/src/heuristics/seeded.cpp" "src/CMakeFiles/hcsched.dir/heuristics/seeded.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/seeded.cpp.o.d"
  "/root/repo/src/heuristics/segmented.cpp" "src/CMakeFiles/hcsched.dir/heuristics/segmented.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/segmented.cpp.o.d"
  "/root/repo/src/heuristics/sufferage.cpp" "src/CMakeFiles/hcsched.dir/heuristics/sufferage.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/sufferage.cpp.o.d"
  "/root/repo/src/heuristics/swa.cpp" "src/CMakeFiles/hcsched.dir/heuristics/swa.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/swa.cpp.o.d"
  "/root/repo/src/heuristics/tabu.cpp" "src/CMakeFiles/hcsched.dir/heuristics/tabu.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/heuristics/tabu.cpp.o.d"
  "/root/repo/src/report/csv.cpp" "src/CMakeFiles/hcsched.dir/report/csv.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/report/csv.cpp.o.d"
  "/root/repo/src/report/gantt.cpp" "src/CMakeFiles/hcsched.dir/report/gantt.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/report/gantt.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/hcsched.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/report/table.cpp.o.d"
  "/root/repo/src/rng/rng.cpp" "src/CMakeFiles/hcsched.dir/rng/rng.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/rng/rng.cpp.o.d"
  "/root/repo/src/rng/splitmix64.cpp" "src/CMakeFiles/hcsched.dir/rng/splitmix64.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/rng/splitmix64.cpp.o.d"
  "/root/repo/src/rng/tie_break.cpp" "src/CMakeFiles/hcsched.dir/rng/tie_break.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/rng/tie_break.cpp.o.d"
  "/root/repo/src/rng/xoshiro256ss.cpp" "src/CMakeFiles/hcsched.dir/rng/xoshiro256ss.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/rng/xoshiro256ss.cpp.o.d"
  "/root/repo/src/sched/metrics.cpp" "src/CMakeFiles/hcsched.dir/sched/metrics.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sched/metrics.cpp.o.d"
  "/root/repo/src/sched/problem.cpp" "src/CMakeFiles/hcsched.dir/sched/problem.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sched/problem.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/hcsched.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/CMakeFiles/hcsched.dir/sched/validate.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sched/validate.cpp.o.d"
  "/root/repo/src/sim/batch_online.cpp" "src/CMakeFiles/hcsched.dir/sim/batch_online.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sim/batch_online.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/hcsched.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/online.cpp" "src/CMakeFiles/hcsched.dir/sim/online.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sim/online.cpp.o.d"
  "/root/repo/src/sim/robustness.cpp" "src/CMakeFiles/hcsched.dir/sim/robustness.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sim/robustness.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/hcsched.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/hcsched.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/sim/thread_pool.cpp" "src/CMakeFiles/hcsched.dir/sim/thread_pool.cpp.o" "gcc" "src/CMakeFiles/hcsched.dir/sim/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
