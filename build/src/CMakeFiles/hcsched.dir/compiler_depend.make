# Empty compiler generated dependencies file for hcsched.
# This may be replaced when dependencies are built.
