# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/hcsched_cli" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate_map "sh" "-c" "/root/repo/build/tools/hcsched_cli generate --tasks 8 --machines 3 --seed 5 --out /root/repo/build/tools/cli_etc.csv && /root/repo/build/tools/hcsched_cli map --etc /root/repo/build/tools/cli_etc.csv --heuristic Min-Min")
set_tests_properties(cli_generate_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_iterate "sh" "-c" "/root/repo/build/tools/hcsched_cli generate --tasks 8 --machines 3 --seed 6 --out /root/repo/build/tools/cli_etc2.csv && /root/repo/build/tools/hcsched_cli iterate --etc /root/repo/build/tools/cli_etc2.csv --heuristic Sufferage")
set_tests_properties(cli_iterate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_witness "/root/repo/build/tools/hcsched_cli" "witness" "--heuristic" "KPB" "--tasks" "5" "--machines" "3" "--max-trials" "100000")
set_tests_properties(cli_witness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_study "/root/repo/build/tools/hcsched_cli" "study" "--trials" "4" "--tasks" "10" "--machines" "3")
set_tests_properties(cli_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_optimal_online "sh" "-c" "/root/repo/build/tools/hcsched_cli generate --tasks 8 --machines 3 --seed 9 --out /root/repo/build/tools/cli_etc3.csv && /root/repo/build/tools/hcsched_cli optimal --etc /root/repo/build/tools/cli_etc3.csv && /root/repo/build/tools/hcsched_cli online --etc /root/repo/build/tools/cli_etc3.csv --policy kpb --count 12")
set_tests_properties(cli_optimal_online PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_subcommand "/root/repo/build/tools/hcsched_cli" "frobnicate")
set_tests_properties(cli_bad_subcommand PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
