file(REMOVE_RECURSE
  "CMakeFiles/hcsched_cli.dir/hcsched_cli.cpp.o"
  "CMakeFiles/hcsched_cli.dir/hcsched_cli.cpp.o.d"
  "hcsched_cli"
  "hcsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
