# Empty dependencies file for hcsched_cli.
# This may be replaced when dependencies are built.
