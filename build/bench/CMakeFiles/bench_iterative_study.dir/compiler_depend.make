# Empty compiler generated dependencies file for bench_iterative_study.
# This may be replaced when dependencies are built.
