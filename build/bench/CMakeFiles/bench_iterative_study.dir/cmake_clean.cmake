file(REMOVE_RECURSE
  "CMakeFiles/bench_iterative_study.dir/bench_iterative_study.cpp.o"
  "CMakeFiles/bench_iterative_study.dir/bench_iterative_study.cpp.o.d"
  "bench_iterative_study"
  "bench_iterative_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterative_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
