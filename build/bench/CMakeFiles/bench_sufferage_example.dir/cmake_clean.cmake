file(REMOVE_RECURSE
  "CMakeFiles/bench_sufferage_example.dir/bench_sufferage_example.cpp.o"
  "CMakeFiles/bench_sufferage_example.dir/bench_sufferage_example.cpp.o.d"
  "bench_sufferage_example"
  "bench_sufferage_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sufferage_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
