# Empty compiler generated dependencies file for bench_sufferage_example.
# This may be replaced when dependencies are built.
