file(REMOVE_RECURSE
  "CMakeFiles/bench_swa_example.dir/bench_swa_example.cpp.o"
  "CMakeFiles/bench_swa_example.dir/bench_swa_example.cpp.o.d"
  "bench_swa_example"
  "bench_swa_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swa_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
