# Empty dependencies file for bench_swa_example.
# This may be replaced when dependencies are built.
