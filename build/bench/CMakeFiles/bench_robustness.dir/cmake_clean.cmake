file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness.dir/bench_robustness.cpp.o"
  "CMakeFiles/bench_robustness.dir/bench_robustness.cpp.o.d"
  "bench_robustness"
  "bench_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
