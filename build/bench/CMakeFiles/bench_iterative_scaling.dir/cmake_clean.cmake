file(REMOVE_RECURSE
  "CMakeFiles/bench_iterative_scaling.dir/bench_iterative_scaling.cpp.o"
  "CMakeFiles/bench_iterative_scaling.dir/bench_iterative_scaling.cpp.o.d"
  "bench_iterative_scaling"
  "bench_iterative_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterative_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
