# Empty dependencies file for bench_makespan_increase.
# This may be replaced when dependencies are built.
