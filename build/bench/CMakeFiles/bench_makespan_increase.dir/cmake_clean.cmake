file(REMOVE_RECURSE
  "CMakeFiles/bench_makespan_increase.dir/bench_makespan_increase.cpp.o"
  "CMakeFiles/bench_makespan_increase.dir/bench_makespan_increase.cpp.o.d"
  "bench_makespan_increase"
  "bench_makespan_increase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_makespan_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
