# Empty dependencies file for bench_theorem_sweep.
# This may be replaced when dependencies are built.
