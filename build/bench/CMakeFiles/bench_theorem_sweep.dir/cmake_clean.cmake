file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem_sweep.dir/bench_theorem_sweep.cpp.o"
  "CMakeFiles/bench_theorem_sweep.dir/bench_theorem_sweep.cpp.o.d"
  "bench_theorem_sweep"
  "bench_theorem_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
