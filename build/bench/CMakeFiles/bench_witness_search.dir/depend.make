# Empty dependencies file for bench_witness_search.
# This may be replaced when dependencies are built.
