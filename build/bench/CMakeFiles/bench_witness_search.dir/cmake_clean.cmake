file(REMOVE_RECURSE
  "CMakeFiles/bench_witness_search.dir/bench_witness_search.cpp.o"
  "CMakeFiles/bench_witness_search.dir/bench_witness_search.cpp.o.d"
  "bench_witness_search"
  "bench_witness_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_witness_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
