file(REMOVE_RECURSE
  "CMakeFiles/bench_online_dispatch.dir/bench_online_dispatch.cpp.o"
  "CMakeFiles/bench_online_dispatch.dir/bench_online_dispatch.cpp.o.d"
  "bench_online_dispatch"
  "bench_online_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
