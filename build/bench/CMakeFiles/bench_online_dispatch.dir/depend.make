# Empty dependencies file for bench_online_dispatch.
# This may be replaced when dependencies are built.
