# Empty dependencies file for bench_genitor_seeding.
# This may be replaced when dependencies are built.
