file(REMOVE_RECURSE
  "CMakeFiles/bench_genitor_seeding.dir/bench_genitor_seeding.cpp.o"
  "CMakeFiles/bench_genitor_seeding.dir/bench_genitor_seeding.cpp.o.d"
  "bench_genitor_seeding"
  "bench_genitor_seeding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_genitor_seeding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
