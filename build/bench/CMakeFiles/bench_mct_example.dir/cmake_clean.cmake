file(REMOVE_RECURSE
  "CMakeFiles/bench_mct_example.dir/bench_mct_example.cpp.o"
  "CMakeFiles/bench_mct_example.dir/bench_mct_example.cpp.o.d"
  "bench_mct_example"
  "bench_mct_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mct_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
