# Empty compiler generated dependencies file for bench_mct_example.
# This may be replaced when dependencies are built.
