# Empty dependencies file for bench_kpb_example.
# This may be replaced when dependencies are built.
