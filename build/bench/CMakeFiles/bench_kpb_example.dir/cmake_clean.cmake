file(REMOVE_RECURSE
  "CMakeFiles/bench_kpb_example.dir/bench_kpb_example.cpp.o"
  "CMakeFiles/bench_kpb_example.dir/bench_kpb_example.cpp.o.d"
  "bench_kpb_example"
  "bench_kpb_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kpb_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
