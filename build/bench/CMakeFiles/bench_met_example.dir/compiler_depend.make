# Empty compiler generated dependencies file for bench_met_example.
# This may be replaced when dependencies are built.
