file(REMOVE_RECURSE
  "CMakeFiles/bench_met_example.dir/bench_met_example.cpp.o"
  "CMakeFiles/bench_met_example.dir/bench_met_example.cpp.o.d"
  "bench_met_example"
  "bench_met_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_met_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
