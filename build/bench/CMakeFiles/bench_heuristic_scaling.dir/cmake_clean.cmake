file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristic_scaling.dir/bench_heuristic_scaling.cpp.o"
  "CMakeFiles/bench_heuristic_scaling.dir/bench_heuristic_scaling.cpp.o.d"
  "bench_heuristic_scaling"
  "bench_heuristic_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
