# Empty dependencies file for bench_heuristic_scaling.
# This may be replaced when dependencies are built.
