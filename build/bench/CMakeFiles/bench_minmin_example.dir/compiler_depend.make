# Empty compiler generated dependencies file for bench_minmin_example.
# This may be replaced when dependencies are built.
