file(REMOVE_RECURSE
  "CMakeFiles/bench_minmin_example.dir/bench_minmin_example.cpp.o"
  "CMakeFiles/bench_minmin_example.dir/bench_minmin_example.cpp.o.d"
  "bench_minmin_example"
  "bench_minmin_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minmin_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
