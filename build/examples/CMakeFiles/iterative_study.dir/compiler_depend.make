# Empty compiler generated dependencies file for iterative_study.
# This may be replaced when dependencies are built.
