file(REMOVE_RECURSE
  "CMakeFiles/iterative_study.dir/iterative_study.cpp.o"
  "CMakeFiles/iterative_study.dir/iterative_study.cpp.o.d"
  "iterative_study"
  "iterative_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
