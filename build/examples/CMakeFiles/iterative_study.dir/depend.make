# Empty dependencies file for iterative_study.
# This may be replaced when dependencies are built.
