# Empty dependencies file for witness_hunt.
# This may be replaced when dependencies are built.
