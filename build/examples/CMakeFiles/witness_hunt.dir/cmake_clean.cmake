file(REMOVE_RECURSE
  "CMakeFiles/witness_hunt.dir/witness_hunt.cpp.o"
  "CMakeFiles/witness_hunt.dir/witness_hunt.cpp.o.d"
  "witness_hunt"
  "witness_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
