# Empty compiler generated dependencies file for production_pipeline.
# This may be replaced when dependencies are built.
