file(REMOVE_RECURSE
  "CMakeFiles/production_pipeline.dir/production_pipeline.cpp.o"
  "CMakeFiles/production_pipeline.dir/production_pipeline.cpp.o.d"
  "production_pipeline"
  "production_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
