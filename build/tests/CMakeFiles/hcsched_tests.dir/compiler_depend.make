# Empty compiler generated dependencies file for hcsched_tests.
# This may be replaced when dependencies are built.
