
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_astar.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_astar.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_astar.cpp.o.d"
  "/root/repo/tests/test_batch_online.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_batch_online.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_batch_online.cpp.o.d"
  "/root/repo/tests/test_consistency.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_consistency.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_consistency.cpp.o.d"
  "/root/repo/tests/test_etc_io.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_etc_io.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_etc_io.cpp.o.d"
  "/root/repo/tests/test_etc_matrix.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_etc_matrix.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_etc_matrix.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_genitor.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_genitor.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_genitor.cpp.o.d"
  "/root/repo/tests/test_heuristics_basic.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_heuristics_basic.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_heuristics_basic.cpp.o.d"
  "/root/repo/tests/test_heuristics_property.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_heuristics_property.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_heuristics_property.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_iterative.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_iterative.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_iterative.cpp.o.d"
  "/root/repo/tests/test_kpb.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_kpb.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_kpb.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_online.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_online.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_online.cpp.o.d"
  "/root/repo/tests/test_optimal.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_optimal.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_optimal.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_problem.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_problem.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_problem.cpp.o.d"
  "/root/repo/tests/test_registry.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_registry.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_registry.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_search_heuristics.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_search_heuristics.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_search_heuristics.cpp.o.d"
  "/root/repo/tests/test_seeded.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_seeded.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_seeded.cpp.o.d"
  "/root/repo/tests/test_splitmix64.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_splitmix64.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_splitmix64.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_sufferage.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_sufferage.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_sufferage.cpp.o.d"
  "/root/repo/tests/test_swa.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_swa.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_swa.cpp.o.d"
  "/root/repo/tests/test_theorems.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_theorems.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_theorems.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_tie_break.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_tie_break.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_tie_break.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_validate.cpp.o.d"
  "/root/repo/tests/test_witness.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_witness.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_witness.cpp.o.d"
  "/root/repo/tests/test_xoshiro.cpp" "tests/CMakeFiles/hcsched_tests.dir/test_xoshiro.cpp.o" "gcc" "tests/CMakeFiles/hcsched_tests.dir/test_xoshiro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hcsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
