#include "sched/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/check.hpp"

namespace hcsched::sched {

namespace {
constexpr std::int32_t kUnmapped = -1;
constexpr std::int32_t kForeign = -2;
}  // namespace

Schedule::Schedule(const Problem& problem)
    : problem_(problem),
      ready_(problem.initial_ready_times()),
      queues_(problem.num_machines()),
      slot_by_machine_(problem.matrix().num_machines(), -1),
      machine_by_task_(problem.matrix().num_tasks(), kForeign) {
  order_.reserve(problem.num_tasks());
  for (std::size_t slot = 0; slot < problem.num_machines(); ++slot) {
    slot_by_machine_[static_cast<std::size_t>(problem.machines()[slot])] =
        static_cast<std::int32_t>(slot);
  }
  for (TaskId t : problem.tasks()) {
    machine_by_task_[static_cast<std::size_t>(t)] = kUnmapped;
  }
}

std::size_t Schedule::checked_slot(MachineId machine,
                                   const char* caller) const {
  if (machine < 0 ||
      static_cast<std::size_t>(machine) >= slot_by_machine_.size() ||
      slot_by_machine_[static_cast<std::size_t>(machine)] < 0) {
    throw std::invalid_argument(std::string(caller) + ": machine " +
                                std::to_string(machine) + " not in problem");
  }
  return static_cast<std::size_t>(
      slot_by_machine_[static_cast<std::size_t>(machine)]);
}

double Schedule::assign(TaskId task, MachineId machine) {
  if (task < 0 || static_cast<std::size_t>(task) >= machine_by_task_.size() ||
      machine_by_task_[static_cast<std::size_t>(task)] == kForeign) {
    throw std::invalid_argument("Schedule::assign: task " +
                                std::to_string(task) + " not in problem");
  }
  if (machine_by_task_[static_cast<std::size_t>(task)] != kUnmapped) {
    throw std::logic_error("Schedule::assign: task " + std::to_string(task) +
                           " already mapped");
  }
  const std::size_t slot = checked_slot(machine, "Schedule::assign");
  Assignment a;
  a.task = task;
  a.machine = machine;
  a.start = ready_[slot];
  a.finish = a.start + problem_.matrix().at(task, machine);
  // Machine completion times only ever grow as tasks are appended (ETC
  // entries are non-negative execution-time estimates).
  HCSCHED_INVARIANT(a.finish >= a.start, "task ", task, " on machine ",
                    machine, " has negative ETC ", a.finish - a.start);
  ready_[slot] = a.finish;
  queues_[slot].push_back(a);
  order_.push_back(a);
  machine_by_task_[static_cast<std::size_t>(task)] = machine;
  HCSCHED_INVARIANT(order_.size() <= problem_.num_tasks(),
                    "more assignments than problem tasks");
  return a.finish;
}

std::optional<MachineId> Schedule::machine_of(TaskId task) const {
  if (task < 0 || static_cast<std::size_t>(task) >= machine_by_task_.size()) {
    return std::nullopt;
  }
  const std::int32_t m = machine_by_task_[static_cast<std::size_t>(task)];
  if (m < 0) return std::nullopt;
  return static_cast<MachineId>(m);
}

double Schedule::completion_time(MachineId machine) const {
  return ready_[checked_slot(machine, "Schedule::completion_time")];
}

const std::vector<Assignment>& Schedule::queue_of(MachineId machine) const {
  return queues_[checked_slot(machine, "Schedule::queue_of")];
}

double Schedule::makespan() const {
  double best = 0.0;
  for (double r : ready_) best = std::max(best, r);
  return best;
}

MachineId Schedule::makespan_machine(double epsilon) const {
  if (ready_.empty()) {
    throw std::logic_error("Schedule::makespan_machine: no machines");
  }
  const double span = makespan();
  // Lowest machine id among those within epsilon of the makespan.
  MachineId best = -1;
  for (std::size_t slot = 0; slot < ready_.size(); ++slot) {
    if (span - ready_[slot] <= epsilon) {
      const MachineId id = problem_.machines()[slot];
      if (best < 0 || id < best) best = id;
    }
  }
  // The makespan machine itself is always within any epsilon >= 0 of the
  // makespan, so the scan must have selected someone.
  HCSCHED_INVARIANT(best >= 0, "no machine within ", epsilon,
                    " of makespan ", span);
  return best;
}

std::vector<TaskId> Schedule::tasks_on(MachineId machine) const {
  std::vector<TaskId> out;
  for (const Assignment& a : queue_of(machine)) out.push_back(a.task);
  return out;
}

bool Schedule::same_mapping(const Schedule& other) const {
  if (num_assigned() != other.num_assigned()) return false;
  for (const Assignment& a : order_) {
    const auto m = other.machine_of(a.task);
    if (!m.has_value() || *m != a.machine) return false;
  }
  return true;
}

}  // namespace hcsched::sched
