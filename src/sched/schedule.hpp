// Schedule: a mapping of a Problem's tasks onto its machines (paper Eq. 1).
//
// Machines execute one task at a time (no multitasking) and tasks are
// independent, so a machine's completion time is simply its initial ready
// time plus the sum of the ETCs assigned to it; per-task start/finish times
// follow from assignment order. CT(t, m) = ETC(t, m) + RT(m).
//
// Lookups (task membership, machine slot, task -> machine) are O(1) via
// dense indices over the underlying ETC matrix's id space, so building a
// schedule of n tasks costs O(n) beyond the heuristic's own work.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/problem.hpp"

namespace hcsched::sched {

struct Assignment {
  TaskId task = -1;
  MachineId machine = -1;
  double start = 0.0;
  double finish = 0.0;

  bool operator==(const Assignment&) const = default;
};

class Schedule {
 public:
  Schedule() = default;
  /// Copies the problem view (cheap: id vectors + a matrix pointer), so a
  /// Schedule stays valid independent of the caller's Problem lifetime; the
  /// underlying EtcMatrix must still outlive the schedule.
  explicit Schedule(const Problem& problem);

  const Problem& problem() const noexcept { return problem_; }

  /// Appends `task` to `machine`'s queue; returns the resulting completion
  /// time of the machine. Assigning a task twice or to a foreign task or
  /// machine throws.
  double assign(TaskId task, MachineId machine);

  /// Machine the task was mapped to, if mapped yet.
  std::optional<MachineId> machine_of(TaskId task) const;

  /// Current ready time (== completion time) of a machine.
  double completion_time(MachineId machine) const;

  /// Ready times indexed by machine slot (position in problem().machines()).
  const std::vector<double>& completion_times_by_slot() const noexcept {
    return ready_;
  }

  /// Ordered assignments of one machine.
  const std::vector<Assignment>& queue_of(MachineId machine) const;

  /// All assignments in the order they were made.
  const std::vector<Assignment>& assignment_order() const noexcept {
    return order_;
  }

  std::size_t num_assigned() const noexcept { return order_.size(); }
  bool complete() const noexcept {
    return order_.size() == problem_.num_tasks();
  }

  /// Largest completion time over the problem's machines.
  double makespan() const;

  /// The machine attaining the makespan; completion-time ties are broken
  /// toward the lowest machine id (deterministic, documented in DESIGN.md),
  /// optionally within `epsilon`.
  MachineId makespan_machine(double epsilon = 0.0) const;

  /// Tasks assigned to a machine (ids only).
  std::vector<TaskId> tasks_on(MachineId machine) const;

  /// True when both schedules assign every task to the same machine
  /// (queue order within a machine is ignored; completion times follow from
  /// the assignment multiset, not the order).
  bool same_mapping(const Schedule& other) const;

 private:
  std::size_t checked_slot(MachineId machine, const char* caller) const;

  Problem problem_{};
  std::vector<double> ready_{};                    // by machine slot
  std::vector<std::vector<Assignment>> queues_{};  // by machine slot
  std::vector<Assignment> order_{};
  // Dense indices over the ETC matrix's id spaces:
  std::vector<std::int32_t> slot_by_machine_{};  // -1 = not in problem
  std::vector<std::int32_t> machine_by_task_{};  // -1 = unmapped, -2 = foreign
};

}  // namespace hcsched::sched
