#include "sched/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcsched::sched {

std::vector<std::pair<MachineId, double>> finishing_times(const Schedule& s) {
  std::vector<std::pair<MachineId, double>> out;
  const auto& machines = s.problem().machines();
  const auto& ready = s.completion_times_by_slot();
  out.reserve(machines.size());
  for (std::size_t slot = 0; slot < machines.size(); ++slot) {
    out.emplace_back(machines[slot], ready[slot]);
  }
  return out;
}

double mean_completion(const Schedule& s) {
  const auto& ready = s.completion_times_by_slot();
  if (ready.empty()) return 0.0;
  double sum = 0.0;
  for (double r : ready) sum += r;
  return sum / static_cast<double>(ready.size());
}

double total_flow_time(const Schedule& s) {
  double sum = 0.0;
  for (const Assignment& a : s.assignment_order()) sum += a.finish;
  return sum;
}

std::vector<double> non_makespan_completions(const Schedule& s) {
  const MachineId span_machine = s.makespan_machine();
  std::vector<double> out;
  const auto& machines = s.problem().machines();
  const auto& ready = s.completion_times_by_slot();
  for (std::size_t slot = 0; slot < machines.size(); ++slot) {
    if (machines[slot] != span_machine) out.push_back(ready[slot]);
  }
  return out;
}

double max_non_makespan_completion(const Schedule& s) {
  const auto non = non_makespan_completions(s);
  double best = 0.0;
  for (double ct : non) best = std::max(best, ct);
  return best;
}

double completion_variance(const Schedule& s) {
  const auto& ready = s.completion_times_by_slot();
  if (ready.size() < 2) return 0.0;
  double mean = 0.0;
  for (double r : ready) mean += r;
  mean /= static_cast<double>(ready.size());
  double var = 0.0;
  for (double r : ready) var += (r - mean) * (r - mean);
  return var / static_cast<double>(ready.size() - 1);
}

double load_balance_index(const Schedule& s) {
  const auto& ready = s.completion_times_by_slot();
  if (ready.empty()) return 0.0;
  double lo = ready.front();
  double hi = ready.front();
  for (double r : ready) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  return hi > 0.0 ? lo / hi : 0.0;
}

ChangeSummary summarize_changes(const std::vector<double>& before,
                                const std::vector<double>& after,
                                double epsilon) {
  if (before.size() != after.size()) {
    throw std::invalid_argument("summarize_changes: size mismatch");
  }
  ChangeSummary summary;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const double delta = after[i] - before[i];
    summary.total_delta += delta;
    if (delta < -epsilon) {
      ++summary.improved;
    } else if (delta > epsilon) {
      ++summary.worsened;
    } else {
      ++summary.unchanged;
    }
  }
  return summary;
}

}  // namespace hcsched::sched
