#include "sched/problem.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hcsched::sched {

Problem::Problem(const EtcMatrix& matrix, std::vector<TaskId> tasks,
                 std::vector<MachineId> machines,
                 std::vector<double> initial_ready)
    : matrix_(&matrix),
      tasks_(std::move(tasks)),
      machines_(std::move(machines)),
      ready_(std::move(initial_ready)) {
  if (ready_.empty()) ready_.assign(machines_.size(), 0.0);
  if (ready_.size() != machines_.size()) {
    throw std::invalid_argument(
        "Problem: initial_ready must be empty or parallel to machines");
  }
  std::vector<char> seen_task(matrix.num_tasks(), 0);
  for (TaskId t : tasks_) {
    if (t < 0 || static_cast<std::size_t>(t) >= matrix.num_tasks()) {
      throw std::out_of_range("Problem: task id outside ETC matrix");
    }
    if (seen_task[static_cast<std::size_t>(t)]++ != 0) {
      throw std::invalid_argument("Problem: duplicate task id " +
                                  std::to_string(t));
    }
  }
  std::vector<char> seen_machine(matrix.num_machines(), 0);
  for (MachineId m : machines_) {
    if (m < 0 || static_cast<std::size_t>(m) >= matrix.num_machines()) {
      throw std::out_of_range("Problem: machine id outside ETC matrix");
    }
    if (seen_machine[static_cast<std::size_t>(m)]++ != 0) {
      throw std::invalid_argument("Problem: duplicate machine id " +
                                  std::to_string(m));
    }
  }
}

Problem Problem::full(const EtcMatrix& matrix) {
  std::vector<TaskId> tasks(matrix.num_tasks());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i] = static_cast<TaskId>(i);
  }
  std::vector<MachineId> machines(matrix.num_machines());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    machines[i] = static_cast<MachineId>(i);
  }
  return Problem(matrix, std::move(tasks), std::move(machines));
}

std::size_t Problem::slot_of(MachineId machine) const noexcept {
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (machines_[i] == machine) return i;
  }
  return npos;
}

bool Problem::has_task(TaskId task) const noexcept {
  return std::find(tasks_.begin(), tasks_.end(), task) != tasks_.end();
}

Problem Problem::without_machine(
    MachineId machine, const std::vector<TaskId>& tasks_to_drop) const {
  const std::size_t drop_slot = slot_of(machine);
  if (drop_slot == npos) {
    throw std::invalid_argument("Problem::without_machine: machine absent");
  }
  Problem next;
  next.matrix_ = matrix_;
  next.tasks_.reserve(tasks_.size());
  for (TaskId t : tasks_) {
    if (std::find(tasks_to_drop.begin(), tasks_to_drop.end(), t) ==
        tasks_to_drop.end()) {
      next.tasks_.push_back(t);
    }
  }
  next.machines_.reserve(machines_.size() - 1);
  next.ready_.reserve(machines_.size() - 1);
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (i == drop_slot) continue;
    next.machines_.push_back(machines_[i]);
    next.ready_.push_back(ready_[i]);
  }
  return next;
}

}  // namespace hcsched::sched
