// Schedule validation: the structural invariants every heuristic's output
// must satisfy (DESIGN.md §6, invariant 1). Returns human-readable
// violations instead of asserting so tests and the witness search can report
// precisely what broke.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace hcsched::sched {

/// All violated invariants of `s`; empty means valid. Checks:
///  * every problem task assigned exactly once, to a problem machine;
///  * per-machine queues are gap-free chains starting at the initial ready
///    time, with finish - start == ETC for every assignment;
///  * the recorded completion time of each machine matches its queue;
///  * makespan equals the maximum machine completion time.
std::vector<std::string> validate(const Schedule& s, double epsilon = 1e-9);

/// Convenience: true when validate(s) is empty.
bool is_valid(const Schedule& s, double epsilon = 1e-9);

}  // namespace hcsched::sched
