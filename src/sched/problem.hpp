// Problem: one resource-allocation instance (paper §2).
//
// A Problem is a *view* over an EtcMatrix: the subset of tasks still to be
// mapped, the subset of machines still considered, and the initial ready
// time of each considered machine. The iterative technique of the paper is
// expressed as a sequence of shrinking Problems over one shared EtcMatrix.
//
// Task order in `tasks` is significant: list-ordered heuristics (MCT, MET,
// OLB, KPB, SWA) map tasks in exactly this order, and the paper's theorems
// require the relative order to be preserved across iterations —
// Problem::without_machine preserves it.
#pragma once

#include <vector>

#include "etc/etc_matrix.hpp"

namespace hcsched::sched {

using etc::EtcMatrix;
using etc::MachineId;
using etc::TaskId;

class Problem {
 public:
  Problem() = default;

  /// Problem over a subset. `initial_ready` is parallel to `machines`;
  /// an empty vector means all zeros.
  Problem(const EtcMatrix& matrix, std::vector<TaskId> tasks,
          std::vector<MachineId> machines,
          std::vector<double> initial_ready = {});

  /// The full problem: all tasks, all machines, zero ready times.
  static Problem full(const EtcMatrix& matrix);

  const EtcMatrix& matrix() const noexcept { return *matrix_; }
  const std::vector<TaskId>& tasks() const noexcept { return tasks_; }
  const std::vector<MachineId>& machines() const noexcept { return machines_; }

  std::size_t num_tasks() const noexcept { return tasks_.size(); }
  std::size_t num_machines() const noexcept { return machines_.size(); }

  /// Initial ready time of the machine at position `slot` in machines().
  double initial_ready(std::size_t slot) const { return ready_.at(slot); }
  const std::vector<double>& initial_ready_times() const noexcept {
    return ready_;
  }

  /// ETC of `task` on the machine occupying `slot`.
  double etc_at(TaskId task, std::size_t slot) const {
    return matrix_->at(task, machines_[slot]);
  }

  /// Position of `machine` in machines(), or npos when absent.
  std::size_t slot_of(MachineId machine) const noexcept;

  /// True when `task` / `machine` belong to this problem.
  bool has_task(TaskId task) const noexcept;
  bool has_machine(MachineId machine) const noexcept {
    return slot_of(machine) != npos;
  }

  /// A new Problem with `machine` removed along with the tasks in
  /// `tasks_to_drop` (the tasks mapped to it), ready times reset to the
  /// initial ready times — one step of the paper's iterative technique.
  Problem without_machine(MachineId machine,
                          const std::vector<TaskId>& tasks_to_drop) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  const EtcMatrix* matrix_ = nullptr;
  std::vector<TaskId> tasks_{};
  std::vector<MachineId> machines_{};
  std::vector<double> ready_{};
};

}  // namespace hcsched::sched
