// Schedule quality metrics.
//
// Besides makespan (the heuristics' own objective), the paper's study needs
// per-machine finishing times and aggregate "non-makespan" statistics: the
// average finishing time across machines, the finishing-time vector sorted
// descending, and comparisons between an original mapping's finishing times
// and the final finishing times of the iterative technique.
#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace hcsched::sched {

/// Finishing time of every machine in the schedule's problem, as
/// (machine, completion time) pairs in machine-slot order.
std::vector<std::pair<MachineId, double>> finishing_times(const Schedule& s);

/// Mean completion time over machines.
double mean_completion(const Schedule& s);

/// Sum over tasks of their individual finish times ("total flow time").
double total_flow_time(const Schedule& s);

/// Completion times of all machines except the makespan machine, in
/// machine-slot order. Empty when only one machine exists.
std::vector<double> non_makespan_completions(const Schedule& s);

/// Largest completion time among the non-makespan machines (0 with a
/// single machine) — the "minimize the largest finishing time among the
/// other machines" objective the paper's §2 mentions.
double max_non_makespan_completion(const Schedule& s);

/// Sample variance of machine completion times (0 with < 2 machines).
double completion_variance(const Schedule& s);

/// Load balance index min(CT)/max(CT) in [0, 1]; 1 when perfectly
/// balanced, 0 when some machine is idle. Matches SWA's BI on final loads.
double load_balance_index(const Schedule& s);

/// Outcome of comparing one machine's finishing time before/after the
/// iterative technique.
enum class Change : std::uint8_t { kImproved, kUnchanged, kWorsened };

struct ChangeSummary {
  std::size_t improved = 0;
  std::size_t unchanged = 0;
  std::size_t worsened = 0;
  double total_delta = 0.0;  ///< sum of (after - before); negative is better

  std::size_t total() const noexcept {
    return improved + unchanged + worsened;
  }
};

/// Classifies per-machine deltas: after[i] vs before[i] (parallel vectors),
/// within epsilon.
ChangeSummary summarize_changes(const std::vector<double>& before,
                                const std::vector<double>& after,
                                double epsilon = 1e-9);

}  // namespace hcsched::sched
