#include "sched/validate.hpp"

#include <cmath>
#include <string>

#include "core/check.hpp"

namespace hcsched::sched {

namespace {

bool close(double a, double b, double eps) { return std::fabs(a - b) <= eps; }

}  // namespace

std::vector<std::string> validate(const Schedule& s, double epsilon) {
  HCSCHED_PRECONDITION(epsilon >= 0.0 && std::isfinite(epsilon),
                       "tolerance must be a non-negative finite value, got ",
                       epsilon);
  std::vector<std::string> errors;
  const Problem& p = s.problem();

  // Completeness: each task mapped exactly once to a problem machine.
  std::vector<int> seen(p.matrix().num_tasks(), 0);
  for (const Assignment& a : s.assignment_order()) {
    if (a.task < 0 ||
        static_cast<std::size_t>(a.task) >= p.matrix().num_tasks()) {
      errors.push_back("assignment with out-of-range task id " +
                       std::to_string(a.task));
      continue;
    }
    ++seen[static_cast<std::size_t>(a.task)];
    if (!p.has_task(a.task)) {
      errors.push_back("task " + std::to_string(a.task) +
                       " assigned but not in problem");
    }
    if (!p.has_machine(a.machine)) {
      errors.push_back("task " + std::to_string(a.task) +
                       " assigned to foreign machine " +
                       std::to_string(a.machine));
    }
  }
  for (TaskId t : p.tasks()) {
    const int count = seen[static_cast<std::size_t>(t)];
    if (count == 0) {
      errors.push_back("task " + std::to_string(t) + " unassigned");
    } else if (count > 1) {
      errors.push_back("task " + std::to_string(t) + " assigned " +
                       std::to_string(count) + " times");
    }
  }

  // Per-machine chains.
  double max_ct = 0.0;
  for (std::size_t slot = 0; slot < p.num_machines(); ++slot) {
    const MachineId m = p.machines()[slot];
    double cursor = p.initial_ready(slot);
    for (const Assignment& a : s.queue_of(m)) {
      if (!close(a.start, cursor, epsilon)) {
        errors.push_back("machine " + std::to_string(m) + ": task " +
                         std::to_string(a.task) + " starts at " +
                         std::to_string(a.start) + ", expected " +
                         std::to_string(cursor));
      }
      const double etc_value = p.matrix().at(a.task, a.machine);
      if (!close(a.finish - a.start, etc_value, epsilon)) {
        errors.push_back("machine " + std::to_string(m) + ": task " +
                         std::to_string(a.task) + " duration " +
                         std::to_string(a.finish - a.start) +
                         " != ETC " + std::to_string(etc_value));
      }
      cursor = a.finish;
    }
    if (!close(s.completion_time(m), cursor, epsilon)) {
      errors.push_back("machine " + std::to_string(m) +
                       ": recorded completion " +
                       std::to_string(s.completion_time(m)) +
                       " != queue end " + std::to_string(cursor));
    }
    max_ct = std::max(max_ct, cursor);
  }
  if (p.num_machines() > 0 && !close(s.makespan(), max_ct, epsilon)) {
    errors.push_back("makespan " + std::to_string(s.makespan()) +
                     " != max completion " + std::to_string(max_ct));
  }
  return errors;
}

bool is_valid(const Schedule& s, double epsilon) {
  return validate(s, epsilon).empty();
}

}  // namespace hcsched::sched
