// xoshiro256** 1.0 (Blackman & Vigna 2018): the repo's primary PRNG.
//
// 256 bits of state, period 2^256 - 1, passes BigCrush. All stochastic
// components (random tie-breaking, ETC generation, Genitor, Monte-Carlo
// sweeps) draw from this engine through the Rng facade so that every
// experiment in the repo is reproducible from a single 64-bit seed.
#pragma once

#include <array>
#include <cstdint>

namespace hcsched::rng {

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by expanding `seed` with SplitMix64, as
  /// recommended by the generator's authors.
  explicit Xoshiro256ss(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Equivalent to 2^128 calls to next(); used to derive statistically
  /// independent streams for worker threads.
  void jump() noexcept;

  const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace hcsched::rng
