// Tie-breaking policies (paper §2).
//
// A "tie" occurs when a heuristic must choose among candidates it scores as
// equally good. The paper studies two policies:
//   * Deterministic — always the same candidate (here: the first in the
//     canonical enumeration order, i.e. lowest task index then lowest
//     machine index), and
//   * Random — uniform over the tied set.
// A third policy, Scripted, replays a fixed sequence of choices; it is how
// the repo reproduces the paper's worked examples, where a *specific* random
// outcome is what makes the makespan increase.
//
// Scores are compared with an absolute epsilon so fractional ETC values
// (2.5, 6.5 in the paper's SWA example) tie exactly when intended.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/rng.hpp"

namespace hcsched::rng {

enum class TiePolicy : std::uint8_t { kDeterministic, kRandom, kScripted };

class TieBreaker {
 public:
  /// Deterministic tie-breaker.
  TieBreaker() noexcept : policy_(TiePolicy::kDeterministic) {}

  /// Random tie-breaker drawing from `rng` (not owned; must outlive this).
  explicit TieBreaker(Rng& rng, double epsilon = kDefaultEpsilon) noexcept
      : policy_(TiePolicy::kRandom), rng_(&rng), epsilon_(epsilon) {}

  /// Scripted tie-breaker: the i-th tie consumes script[i] as an index into
  /// the tied candidate list (clamped); once the script is exhausted the
  /// policy degrades to deterministic.
  explicit TieBreaker(std::vector<std::size_t> script,
                      double epsilon = kDefaultEpsilon) noexcept
      : policy_(TiePolicy::kScripted),
        script_(std::move(script)),
        epsilon_(epsilon) {}

  TiePolicy policy() const noexcept { return policy_; }
  double epsilon() const noexcept { return epsilon_; }

  /// Whether two scores are considered equal.
  bool tied(double a, double b) const noexcept {
    const double d = a - b;
    return (d < 0 ? -d : d) <= epsilon_;
  }

  /// Index of the chosen minimal element of `scores` (empty input is a
  /// precondition violation and returns npos).
  std::size_t choose_min(std::span<const double> scores);

  /// Index of the chosen maximal element of `scores`.
  std::size_t choose_max(std::span<const double> scores);

  /// Choose among an explicit tied set (indices into some caller structure).
  std::size_t choose_among(std::span<const std::size_t> tied);

  /// Number of genuine ties (|tied set| > 1) resolved so far.
  std::size_t tie_events() const noexcept { return tie_events_; }

  /// Number of choose_* calls made so far (tied or not).
  std::size_t decisions() const noexcept { return decisions_; }

  static constexpr double kDefaultEpsilon = 1e-9;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::size_t resolve(const std::vector<std::size_t>& tied);

  TiePolicy policy_;
  Rng* rng_ = nullptr;
  std::vector<std::size_t> script_{};
  std::size_t script_pos_ = 0;
  double epsilon_ = kDefaultEpsilon;
  std::size_t tie_events_ = 0;
  std::size_t decisions_ = 0;
};

}  // namespace hcsched::rng
