#include "rng/rng.hpp"

#include <cmath>

namespace hcsched::rng {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply a 64-bit draw by the bound and keep the high word;
  // reject the small biased fringe. __int128 is a GCC/Clang extension;
  // __extension__ silences -Wpedantic where it is available.
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = engine_.next();
  u128 m = static_cast<u128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = engine_.next();
      m = static_cast<u128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = uniform01();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform01();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

Rng Rng::split(std::size_t stream_index) const noexcept {
  Rng child = *this;
  child.has_spare_normal_ = false;
  for (std::size_t i = 0; i <= stream_index; ++i) child.engine_.jump();
  return child;
}

}  // namespace hcsched::rng
