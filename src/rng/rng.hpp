// Rng: the facade every stochastic component in hcsched draws from.
//
// Wraps xoshiro256** with the distribution helpers the library needs
// (uniform doubles, bounded integers without modulo bias, gamma variates for
// the CVB ETC generator, shuffles). A deliberate non-goal is std::<random>
// distribution compatibility: libstdc++/libc++ distributions are not
// reproducible across standard-library versions, and bitwise reproducibility
// of experiments from a seed is a core requirement here.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "rng/xoshiro256ss.hpp"

namespace hcsched::rng {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept
      : engine_(seed) {}

  /// Raw 64 bits.
  std::uint64_t next_u64() noexcept { return engine_.next(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>(engine_.next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method (no modulo bias). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Standard normal variate (polar Marsaglia method, cached spare).
  double normal() noexcept;

  /// Gamma(shape, scale) variate via Marsaglia & Tsang (2000); handles
  /// shape < 1 by boosting. Used by the CVB ETC generator.
  double gamma(double shape, double scale) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// A statistically independent child stream: jumps a copy of the engine
  /// `stream_index + 1` times (each jump is 2^128 steps).
  Rng split(std::size_t stream_index) const noexcept;

  Xoshiro256ss& engine() noexcept { return engine_; }

 private:
  Xoshiro256ss engine_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace hcsched::rng
