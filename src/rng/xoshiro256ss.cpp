#include "rng/xoshiro256ss.hpp"

#include "rng/splitmix64.hpp"

namespace hcsched::rng {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm{seed};
  for (auto& word : s_) word = sm.next();
  // An all-zero state is the one forbidden fixed point; SplitMix64 cannot
  // produce four consecutive zeros from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256ss::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256ss::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = acc;
}

}  // namespace hcsched::rng
