#include "rng/tie_break.hpp"

#include <algorithm>

#include "obs/counters.hpp"

namespace hcsched::rng {

std::size_t TieBreaker::choose_min(std::span<const double> scores) {
  if (scores.empty()) return npos;
  ++decisions_;
  double best = scores[0];
  for (double s : scores) best = std::min(best, s);
  std::vector<std::size_t> ties;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (tied(best, scores[i])) ties.push_back(i);
  }
  return resolve(ties);
}

std::size_t TieBreaker::choose_max(std::span<const double> scores) {
  if (scores.empty()) return npos;
  ++decisions_;
  double best = scores[0];
  for (double s : scores) best = std::max(best, s);
  std::vector<std::size_t> ties;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (tied(best, scores[i])) ties.push_back(i);
  }
  return resolve(ties);
}

std::size_t TieBreaker::choose_among(std::span<const std::size_t> tied_set) {
  if (tied_set.empty()) return npos;
  ++decisions_;
  std::vector<std::size_t> ties(tied_set.begin(), tied_set.end());
  return resolve(ties);
}

std::size_t TieBreaker::resolve(const std::vector<std::size_t>& ties) {
  HCSCHED_COUNT(obs::Counter::kTieDecisions);
  if (ties.empty()) return npos;
  if (ties.size() == 1) return ties.front();
  ++tie_events_;
  HCSCHED_COUNT(obs::Counter::kTieEvents);
  switch (policy_) {
    case TiePolicy::kDeterministic:
      return ties.front();
    case TiePolicy::kRandom:
      return ties[static_cast<std::size_t>(rng_->below(ties.size()))];
    case TiePolicy::kScripted: {
      std::size_t pick = 0;
      if (script_pos_ < script_.size()) pick = script_[script_pos_++];
      if (pick >= ties.size()) pick = ties.size() - 1;
      return ties[pick];
    }
  }
  return ties.front();
}

}  // namespace hcsched::rng
