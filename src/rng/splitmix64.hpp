// SplitMix64: a fast 64-bit mixing generator (Steele, Lea, Flood 2014).
//
// Used here primarily as a seed expander for xoshiro256** and as a
// lightweight stand-alone stream for non-critical randomness. The state is a
// single 64-bit counter advanced by the golden-gamma constant, so two
// SplitMix64 streams seeded differently never collide within 2^64 outputs.
#pragma once

#include <cstdint>

namespace hcsched::rng {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Advances the state and returns the next 64-bit output.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Current internal state (for serialization / tests).
  constexpr std::uint64_t state() const noexcept { return state_; }

 private:
  std::uint64_t state_;
};

}  // namespace hcsched::rng
