#include "rng/splitmix64.hpp"

// Header-only in practice; this translation unit pins the class's vtable-free
// ODR home and gives the build system a stable object for the module.
namespace hcsched::rng {

static_assert(SplitMix64::min() == 0);
static_assert(SplitMix64::max() == ~0ULL);

}  // namespace hcsched::rng
