#include "obs/profile.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/span.hpp"

namespace hcsched::obs {
namespace {

struct SpanIndex {
  // parent span_id -> indices of captured children, in arrival order.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children;
  std::vector<std::size_t> roots;
};

}  // namespace

void SpanCollector::consume(const TraceEvent& event) {
  if (event.name != "span") return;
  RawSpan raw;
  for (const auto& [key, value] : event.fields) {
    if (key == "name" && value.is_string()) {
      raw.name = value.as_string();
    } else if (key == "span_id" && value.is_string()) {
      raw.span_id = parse_span_id(value.as_string());
    } else if (key == "parent_span_id" && value.is_string()) {
      raw.parent_id = parse_span_id(value.as_string());
    } else if (key == "duration_ns" && value.is_number()) {
      raw.duration_ns = static_cast<std::uint64_t>(value.as_number());
    }
  }
  if (raw.span_id == 0) return;  // malformed; IDs are never zero
  const core::MutexLock lock(mutex_);
  spans_.push_back(std::move(raw));
}

std::size_t SpanCollector::size() const {
  const core::MutexLock lock(mutex_);
  return spans_.size();
}

std::vector<ProfileNode> SpanCollector::aggregate() const {
  std::vector<RawSpan> spans;
  {
    const core::MutexLock lock(mutex_);
    spans = spans_;
  }

  std::unordered_set<std::uint64_t> ids;
  ids.reserve(spans.size());
  for (const RawSpan& s : spans) ids.insert(s.span_id);

  SpanIndex index;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const RawSpan& s = spans[i];
    // A parent that was never captured (sink installed mid-run, ring
    // eviction) promotes the orphan to a root rather than dropping it.
    if (s.parent_id != 0 && ids.count(s.parent_id) != 0) {
      index.children[s.parent_id].push_back(i);
    } else {
      index.roots.push_back(i);
    }
  }

  // Merges sibling spans by name; std::map keys give a deterministic
  // grouping order before the final hot-first sort.
  auto merge = [&spans, &index](auto&& self,
                                const std::vector<std::size_t>& siblings)
      -> std::vector<ProfileNode> {
    std::map<std::string, std::vector<std::size_t>> by_name;
    for (std::size_t i : siblings) by_name[spans[i].name].push_back(i);

    std::vector<ProfileNode> nodes;
    nodes.reserve(by_name.size());
    for (auto& [name, group] : by_name) {
      ProfileNode node;
      node.name = name;
      node.count = group.size();
      std::vector<std::size_t> grandchildren;
      for (std::size_t i : group) {
        node.total_ns += spans[i].duration_ns;
        if (auto it = index.children.find(spans[i].span_id);
            it != index.children.end()) {
          grandchildren.insert(grandchildren.end(), it->second.begin(),
                               it->second.end());
        }
      }
      node.children = self(self, grandchildren);
      std::uint64_t child_total = 0;
      for (const ProfileNode& child : node.children) {
        child_total += child.total_ns;
      }
      // Clamp: a child's clock window can slightly overhang its parent's.
      node.self_ns =
          node.total_ns > child_total ? node.total_ns - child_total : 0;
      nodes.push_back(std::move(node));
    }
    std::sort(nodes.begin(), nodes.end(),
              [](const ProfileNode& a, const ProfileNode& b) {
                if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
                return a.name < b.name;
              });
    return nodes;
  };
  return merge(merge, index.roots);
}

JsonValue profile_node_to_json(const ProfileNode& node) {
  JsonValue::Object object;
  object.emplace_back("name", JsonValue(node.name));
  object.emplace_back("count", JsonValue(node.count));
  object.emplace_back("total_ns", JsonValue(node.total_ns));
  object.emplace_back("self_ns", JsonValue(node.self_ns));
  JsonValue::Array children;
  children.reserve(node.children.size());
  for (const ProfileNode& child : node.children) {
    children.emplace_back(profile_node_to_json(child));
  }
  object.emplace_back("children", JsonValue(std::move(children)));
  return JsonValue(std::move(object));
}

JsonValue SpanCollector::to_json() const {
  const std::vector<ProfileNode> roots = aggregate();
  std::size_t captured = size();
  JsonValue::Object object;
  object.emplace_back("profile", JsonValue("hcsched.profile.v1"));
  object.emplace_back("spans", JsonValue(captured));
  JsonValue::Array out;
  out.reserve(roots.size());
  for (const ProfileNode& root : roots) {
    out.emplace_back(profile_node_to_json(root));
  }
  object.emplace_back("roots", JsonValue(std::move(out)));
  return JsonValue(std::move(object));
}

}  // namespace hcsched::obs
