#include "obs/trace.hpp"

#include <atomic>
#include <stdexcept>

namespace hcsched::obs {

namespace {

// The active sink is read on every emit from any thread; the atomic flag
// keeps the inactive fast path lock-free while installs stay rare.
//
// Memory-order audit (PR 2/PR 5, verified under the TSan preset): g_active
// is a monotonically-published hint — emit() re-reads g_sink under the
// mutex before touching the sink, so a stale hint costs at most one missed
// (or one discarded) event around an install, never a dangling sink. The
// release store pairs with the mutex acquire inside emit(), not with the
// relaxed hint load. g_sequence is a pure ID allocator: no later read
// depends on its ordering, only on uniqueness, which fetch_add guarantees
// at any order.
core::Mutex g_sink_mutex;
std::shared_ptr<TraceSink> g_sink HCSCHED_GUARDED_BY(g_sink_mutex);
std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_sequence{0};

}  // namespace

JsonValue TraceEvent::to_json() const {
  JsonValue::Object object;
  object.reserve(fields.size() + 2);
  object.emplace_back("seq", JsonValue(sequence));
  object.emplace_back("event", JsonValue(name));
  for (const auto& field : fields) object.push_back(field);
  return JsonValue(std::move(object));
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RingBufferSink::consume(const TraceEvent& event) {
  const core::MutexLock lock(mutex_);
  if (buffer_.size() == capacity_) {
    buffer_.pop_front();
    ++dropped_;
  }
  buffer_.push_back(event);
}

std::vector<TraceEvent> RingBufferSink::events() const {
  const core::MutexLock lock(mutex_);
  return {buffer_.begin(), buffer_.end()};
}

std::vector<TraceEvent> RingBufferSink::events_named(
    std::string_view name) const {
  const core::MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : buffer_) {
    if (e.name == name) out.push_back(e);
  }
  return out;
}

std::size_t RingBufferSink::size() const {
  const core::MutexLock lock(mutex_);
  return buffer_.size();
}

std::uint64_t RingBufferSink::dropped() const {
  const core::MutexLock lock(mutex_);
  return dropped_;
}

void RingBufferSink::clear() {
  const core::MutexLock lock(mutex_);
  buffer_.clear();
  dropped_ = 0;
}

TeeSink::TeeSink(std::vector<std::shared_ptr<TraceSink>> sinks)
    : sinks_(std::move(sinks)) {}

void TeeSink::consume(const TraceEvent& event) {
  for (const auto& sink : sinks_) {
    if (sink) sink->consume(event);
  }
}

void TeeSink::flush() {
  for (const auto& sink : sinks_) {
    if (sink) sink->flush();
  }
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(path, std::ios::trunc), out_(&owned_) {
  if (!owned_) {
    throw std::invalid_argument("JsonlSink: cannot open '" + path + "'");
  }
}

void JsonlSink::consume(const TraceEvent& event) {
  const std::string line = event.to_json().dump();
  const core::MutexLock lock(mutex_);
  *out_ << line << '\n';
}

void JsonlSink::flush() {
  // Audited: the sink IS the serialization point for the stream — flushing
  // outside the lock would interleave with a concurrent consume().
  const core::MutexLock lock(mutex_);
  out_->flush();  // lint:allow(blocking-under-lock)
}

void Tracer::install(std::shared_ptr<TraceSink> sink) {
  const core::MutexLock lock(g_sink_mutex);
  g_sink = std::move(sink);
  g_active.store(g_sink != nullptr, std::memory_order_release);
}

std::shared_ptr<TraceSink> Tracer::sink() {
  const core::MutexLock lock(g_sink_mutex);
  return g_sink;
}

bool Tracer::active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

void Tracer::emit(std::string_view name, JsonValue::Object fields) {
  // Hold a reference so a concurrent install() cannot destroy the sink
  // mid-consume.
  std::shared_ptr<TraceSink> sink;
  {
    const core::MutexLock lock(g_sink_mutex);
    sink = g_sink;
  }
  if (!sink) return;
  TraceEvent event;
  event.sequence = g_sequence.fetch_add(1, std::memory_order_relaxed);
  event.name.assign(name);
  event.fields = std::move(fields);
  sink->consume(event);
}

void Tracer::flush() {
  if (const auto sink = Tracer::sink()) sink->flush();
}

}  // namespace hcsched::obs
