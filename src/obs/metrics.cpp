#include "obs/metrics.hpp"

#include <stdexcept>

namespace hcsched::obs {
namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        std::string_view help,
                                                        MetricKind kind) {
  if (auto it = entries_.find(name); it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered as " +
                                  std::string(to_string(it->second.kind)));
    }
    return it->second;
  }
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name '" + std::string(name) +
                                "'");
  }
  Entry entry{kind, std::string(help), nullptr, nullptr, nullptr};
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<MetricCounter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<MetricGauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<MetricHistogram>();
      break;
  }
  return entries_.emplace(std::string(name), std::move(entry)).first->second;
}

MetricCounter& MetricsRegistry::counter(std::string_view name,
                                        std::string_view help) {
  core::MutexLock lock(mutex_);
  return *find_or_create(name, help, MetricKind::kCounter).counter;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name,
                                    std::string_view help) {
  core::MutexLock lock(mutex_);
  return *find_or_create(name, help, MetricKind::kGauge).gauge;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name,
                                            std::string_view help) {
  core::MutexLock lock(mutex_);
  return *find_or_create(name, help, MetricKind::kHistogram).histogram;
}

std::size_t MetricsRegistry::size() const {
  core::MutexLock lock(mutex_);
  return entries_.size();
}

JsonValue MetricsRegistry::snapshot_json() const {
  core::MutexLock lock(mutex_);
  JsonValue::Array metrics;
  metrics.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    JsonValue::Object m;
    m.emplace_back("name", JsonValue(name));
    m.emplace_back("kind", JsonValue(to_string(entry.kind)));
    if (!entry.help.empty()) {
      m.emplace_back("help", JsonValue(entry.help));
    }
    switch (entry.kind) {
      case MetricKind::kCounter:
        m.emplace_back("value", JsonValue(entry.counter->value()));
        break;
      case MetricKind::kGauge:
        m.emplace_back("value", JsonValue(entry.gauge->value()));
        break;
      case MetricKind::kHistogram: {
        const MetricHistogram& h = *entry.histogram;
        m.emplace_back("count", JsonValue(h.count()));
        m.emplace_back("sum", JsonValue(h.sum()));
        JsonValue::Array buckets;
        for (std::size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
          const std::uint64_t n = h.bucket_count(i);
          if (n == 0 && i + 1 < MetricHistogram::kBuckets) continue;
          JsonValue::Object b;
          if (i + 1 < MetricHistogram::kBuckets) {
            b.emplace_back("le",
                           JsonValue(MetricHistogram::bucket_upper_bound(i)));
          } else {
            b.emplace_back("le", JsonValue("+Inf"));
          }
          b.emplace_back("count", JsonValue(n));
          buckets.emplace_back(std::move(b));
        }
        m.emplace_back("buckets", JsonValue(std::move(buckets)));
        break;
      }
    }
    metrics.emplace_back(JsonValue(std::move(m)));
  }
  JsonValue::Object root;
  root.emplace_back("metrics", JsonValue(std::move(metrics)));
  return JsonValue(std::move(root));
}

std::string MetricsRegistry::prometheus_text() const {
  core::MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      out += "# HELP ";
      out += name;
      out += ' ';
      out += entry.help;
      out += '\n';
    }
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += to_string(entry.kind);
    out += '\n';
    switch (entry.kind) {
      case MetricKind::kCounter:
        out += name;
        out += ' ';
        out += std::to_string(entry.counter->value());
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += name;
        out += ' ';
        out += std::to_string(entry.gauge->value());
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        const MetricHistogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
          cumulative += h.bucket_count(i);
          out += name;
          out += "_bucket{le=\"";
          if (i + 1 < MetricHistogram::kBuckets) {
            out += std::to_string(MetricHistogram::bucket_upper_bound(i));
          } else {
            out += "+Inf";
          }
          out += "\"} ";
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += name;
        out += "_sum ";
        out += std::to_string(h.sum());
        out += '\n';
        out += name;
        out += "_count ";
        out += std::to_string(h.count());
        out += '\n';
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  core::MutexLock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  // Function-local static: constructed on first use, never destroyed order
  // problems — instrument references cached by the macros stay valid for
  // the process lifetime.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace metrics {

MetricCounter& counter(std::string_view name, std::string_view help) {
  return MetricsRegistry::global().counter(name, help);
}

MetricGauge& gauge(std::string_view name, std::string_view help) {
  return MetricsRegistry::global().gauge(name, help);
}

MetricHistogram& histogram(std::string_view name, std::string_view help) {
  return MetricsRegistry::global().histogram(name, help);
}

JsonValue snapshot_json() { return MetricsRegistry::global().snapshot_json(); }

std::string prometheus_text() {
  return MetricsRegistry::global().prometheus_text();
}

void reset() { MetricsRegistry::global().reset(); }

}  // namespace metrics

}  // namespace hcsched::obs
