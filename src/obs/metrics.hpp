// Typed metrics registry (observability pillar 3 of 3 — aggregation).
//
// Where trace events answer "what happened" and spans answer "where did the
// time go", metrics answer "how much, in total": named counters, gauges,
// and fixed-bucket log-scaled histograms that accumulate for the lifetime
// of the process and snapshot to JSON or Prometheus text exposition. The
// ROADMAP's daemon arc serves exactly this surface from `/stats`; today the
// `hcsched stats` subcommand renders it after a run.
//
// Shape:
//   * MetricCounter   — monotonically increasing uint64 (relaxed atomic).
//   * MetricGauge     — int64 point-in-time value, set/add (relaxed atomic).
//   * MetricHistogram — 32 fixed log4-scaled buckets (upper bound of bucket
//     i is 4^(i+1), last bucket +Inf) plus count and sum. Lock-free.
//   * MetricsRegistry — name → instrument table. Registration is
//     mutex-guarded (GUARDED_BY-annotated per the lock-annotation lint
//     rule); instruments live behind stable heap pointers so call sites can
//     cache the returned reference and update with zero lock traffic.
//
// Instrumented code uses the HCSCHED_METRIC_* macros below, which compile
// to nothing under -DHCSCHED_TRACE=0 (the same kill switch as trace events
// and spans — bench_trace_overhead pins the zero-cost claim) and otherwise
// cache the registry lookup in a function-local static. The query side
// (snapshot_json / prometheus_text) stays compiled in every configuration,
// mirroring counters.hpp.
//
// Metric names follow Prometheus conventions ([a-zA-Z_:][a-zA-Z0-9_:]*,
// `hcsched_` prefix, `_total` suffix on counters, unit suffix like `_ns` on
// histograms) and every name registered from src/ must be documented in
// docs/OBSERVABILITY.md — the `metric-docs` lint rule enforces this.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/thread_annotations.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"  // HCSCHED_TRACE default

namespace hcsched::obs {

class MetricCounter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    // Memory-order audit: pure accumulator, read only by snapshots that
    // tolerate slight staleness — relaxed.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class MetricGauge {
 public:
  void set(std::int64_t v) noexcept {
    // Memory-order audit: last-writer-wins sample, no ordering — relaxed.
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log-scaled histogram: bucket i counts observed values v with
/// 4^i < v <= 4^(i+1) (bucket 0 additionally takes v in [0, 4]; the last
/// bucket is unbounded). 32 buckets cover [0, 4^31 ≈ 4.6e18], enough for
/// nanosecond latencies from single digits to ~146 years.
class MetricHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Upper bound of bucket i (inclusive, Prometheus `le` semantics). The
  /// last bucket is +Inf, reported here as the saturated uint64 max.
  static constexpr std::uint64_t bucket_upper_bound(std::size_t i) noexcept {
    if (i + 1 >= kBuckets) return ~std::uint64_t{0};
    return std::uint64_t{1} << (2 * (i + 1));
  }

  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v <= 1) return 0;
    const int width = 64 - countl_zero_u64(v - 1);
    const std::size_t i = static_cast<std::size_t>((width + 1) / 2) - 1;
    return i < kBuckets ? i : kBuckets - 1;
  }

  void observe(std::uint64_t v) noexcept {
    // Memory-order audit: independent accumulators; snapshots tolerate
    // torn-across-cells reads (count/sum/buckets may momentarily disagree
    // by in-flight observations) — relaxed.
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  // Portable bit_width helper (constexpr-friendly; <bit> needs no polyfill
  // on our toolchains but keeping it local makes bucket_index self-checked
  // in tests without pulling <bit> into every includer).
  static constexpr int countl_zero_u64(std::uint64_t v) noexcept {
    int n = 0;
    for (std::uint64_t probe = std::uint64_t{1} << 63; probe != 0;
         probe >>= 1, ++n) {
      if (v & probe) return n;
    }
    return 64;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Returns "counter" / "gauge" / "histogram".
std::string_view to_string(MetricKind kind) noexcept;

/// Name → instrument table. Thread-safe; instrument references returned by
/// the accessors stay valid for the registry's lifetime (instruments are
/// never erased — reset() zeroes values but keeps registrations).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the named instrument. The first registration's
  /// help string wins. Throws std::invalid_argument when `name` is not a
  /// valid Prometheus metric name or is already registered as another kind.
  MetricCounter& counter(std::string_view name, std::string_view help = {})
      HCSCHED_EXCLUDES(mutex_);
  MetricGauge& gauge(std::string_view name, std::string_view help = {})
      HCSCHED_EXCLUDES(mutex_);
  MetricHistogram& histogram(std::string_view name, std::string_view help = {})
      HCSCHED_EXCLUDES(mutex_);

  /// Number of registered instruments.
  std::size_t size() const HCSCHED_EXCLUDES(mutex_);

  /// {"metrics": [{name, kind, help, ...value fields}, ...]}, sorted by
  /// name. Histograms carry {count, sum, buckets: [{le, count}, ...]} with
  /// empty buckets elided and a final {"le": "+Inf"} entry.
  JsonValue snapshot_json() const HCSCHED_EXCLUDES(mutex_);

  /// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
  /// comments followed by sample lines, families sorted by name.
  std::string prometheus_text() const HCSCHED_EXCLUDES(mutex_);

  /// Zeroes every instrument, keeping registrations (and cached
  /// references) valid.
  void reset() HCSCHED_EXCLUDES(mutex_);

  /// The process-global registry the HCSCHED_METRIC_* macros feed.
  static MetricsRegistry& global();

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    // Exactly one is non-null, matching `kind`; unique_ptr keeps the
    // instrument address stable across map rehash-free but node-moving
    // operations and lets call sites cache references lock-free.
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };

  Entry& find_or_create(std::string_view name, std::string_view help,
                        MetricKind kind) HCSCHED_REQUIRES(mutex_);

  mutable core::Mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_
      HCSCHED_GUARDED_BY(mutex_){};
};

/// Convenience free functions over MetricsRegistry::global().
namespace metrics {

MetricCounter& counter(std::string_view name, std::string_view help = {});
MetricGauge& gauge(std::string_view name, std::string_view help = {});
MetricHistogram& histogram(std::string_view name, std::string_view help = {});

JsonValue snapshot_json();
std::string prometheus_text();
void reset();

}  // namespace metrics

}  // namespace hcsched::obs

#if HCSCHED_TRACE
/// Adds `n` to the named global counter (registered on first execution).
#define HCSCHED_METRIC_COUNT(name, help, n)                            \
  do {                                                                 \
    static ::hcsched::obs::MetricCounter& hcsched_metric_counter_ =    \
        ::hcsched::obs::metrics::counter((name), (help));              \
    hcsched_metric_counter_.add((n));                                  \
  } while (0)
/// Sets the named global gauge to `v`.
#define HCSCHED_METRIC_GAUGE_SET(name, help, v)                        \
  do {                                                                 \
    static ::hcsched::obs::MetricGauge& hcsched_metric_gauge_ =        \
        ::hcsched::obs::metrics::gauge((name), (help));                \
    hcsched_metric_gauge_.set(static_cast<std::int64_t>(v));           \
  } while (0)
/// Records `v` into the named global histogram.
#define HCSCHED_METRIC_OBSERVE(name, help, v)                          \
  do {                                                                 \
    static ::hcsched::obs::MetricHistogram& hcsched_metric_histogram_ = \
        ::hcsched::obs::metrics::histogram((name), (help));            \
    hcsched_metric_histogram_.observe(static_cast<std::uint64_t>(v));  \
  } while (0)
#else
#define HCSCHED_METRIC_COUNT(name, help, n) \
  do {                                      \
  } while (0)
#define HCSCHED_METRIC_GAUGE_SET(name, help, v) \
  do {                                          \
  } while (0)
#define HCSCHED_METRIC_OBSERVE(name, help, v) \
  do {                                        \
  } while (0)
#endif
