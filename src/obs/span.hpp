// Hierarchical scoped spans (observability pillar 2 of 3 — profiling).
//
// A span is a named, timed region of execution with a parent/child
// structure: every ScopedSpan opened while another span is live on the same
// thread becomes its child, so nested instrumentation (study → trial →
// iterative run → iteration → heuristic map) reconstructs as a tree. Spans
// are emitted through the existing TraceSink interface as a new `span`
// event kind when they *close*, carrying:
//
//   name, trace_id, span_id, parent_span_id (children only),
//   start_ns (monotonic, process-relative), duration_ns, plus any
//   attributes attached via HCSCHED_SPAN_ATTR.
//
// ID determinism: span/trace IDs are drawn from rng::SplitMix64 streams,
// never from entropy or the clock. A root span seeds its stream either from
// an explicit caller-provided seed (the study derives one per trial from the
// study seed, so resumed/re-run studies emit identical IDs) or from a
// process-local root counter; each child's ID is the next output of its
// parent's stream. Given the same seeds and call structure, the emitted ID
// graph is byte-identical across runs — only the timing fields vary.
//
// Call sites use the macros at the bottom of this header:
//
//   HCSCHED_SPAN(span, "iteration");            // child of current, or root
//   HCSCHED_SPAN_SEEDED(span, "trial", seed);   // deterministic trace root
//   HCSCHED_SPAN_ATTR(span, "makespan_machine", obs::JsonValue(m));
//
// which 1) compile to *nothing* under -DHCSCHED_TRACE=0 (the same
// kill switch as HCSCHED_TRACE_EVENT; bench_trace_overhead pins this), and
// 2) otherwise skip ID allocation, payload building, and clock reads unless
// a sink is installed, so an untraced run pays one branch per site.
//
// Durations use std::chrono::steady_clock (monotonic; system_clock is
// banned from core by the no-nondeterminism lint rule).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace hcsched::obs {

/// Formats a 64-bit span/trace ID the way span events carry it: 16
/// lowercase hex digits, zero-padded.
std::string format_span_id(std::uint64_t id);

/// Parses the 16-hex-digit form back to the integer ID. Returns 0 on
/// malformed input (0 is never allocated as a live ID).
std::uint64_t parse_span_id(std::string_view text);

/// RAII span. Construction captures the parent from the calling thread's
/// span stack (or starts a new trace) and reads the monotonic clock;
/// destruction emits one `span` trace event. When no sink is installed at
/// construction the span records nothing and allocates no IDs.
///
/// Prefer the HCSCHED_SPAN / HCSCHED_SPAN_SEEDED macros over naming this
/// type directly: the macros honour the HCSCHED_TRACE kill switch.
class ScopedSpan {
 public:
  /// Opens a span as a child of the calling thread's current span; with no
  /// span open it becomes the root of a new trace seeded from a
  /// process-local root counter.
  explicit ScopedSpan(std::string name);

  /// Opens the root of a new trace whose trace/span IDs derive from
  /// `trace_seed` via SplitMix64 — deterministic regardless of which thread
  /// runs it or what other spans are live.
  ScopedSpan(std::string name, std::uint64_t trace_seed);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Whether this span will emit on close (a sink was installed when it
  /// opened). Gate attribute construction on this — HCSCHED_SPAN_ATTR does.
  bool recording() const noexcept { return recording_; }

  /// Attaches an attribute to the emitted event (last write per key wins at
  /// the consumer; we append in call order). No-op unless recording.
  void attr(std::string_view key, JsonValue value);

  std::uint64_t trace_id() const noexcept { return trace_id_; }
  std::uint64_t span_id() const noexcept { return span_id_; }
  /// 0 for roots.
  std::uint64_t parent_span_id() const noexcept { return parent_id_; }

 private:
  void open(std::uint64_t trace_seed, bool seeded);

  std::string name_;
  JsonValue::Object attrs_{};
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  bool recording_ = false;
};

/// The no-op stand-in the macros expand to under -DHCSCHED_TRACE=0. All
/// members are empty inline functions, so span sites vanish entirely.
class NullSpan {
 public:
  constexpr bool recording() const noexcept { return false; }
  constexpr std::uint64_t trace_id() const noexcept { return 0; }
  constexpr std::uint64_t span_id() const noexcept { return 0; }
  constexpr std::uint64_t parent_span_id() const noexcept { return 0; }
};

namespace spans {

/// Depth of the calling thread's span stack (tests / assertions).
std::size_t thread_depth() noexcept;

}  // namespace spans

}  // namespace hcsched::obs

#if HCSCHED_TRACE
/// Opens a scoped span named `name` (child of the thread's current span).
#define HCSCHED_SPAN(var, name) ::hcsched::obs::ScopedSpan var { name }
/// Opens a scoped span rooting a new trace deterministically from `seed`.
#define HCSCHED_SPAN_SEEDED(var, name, seed) \
  ::hcsched::obs::ScopedSpan var { name, seed }
/// Attaches `key: value` to `var`; the value expression is only evaluated
/// while the span is recording.
#define HCSCHED_SPAN_ATTR(var, key, ...) \
  do {                                   \
    if ((var).recording()) {             \
      (var).attr((key), __VA_ARGS__);    \
    }                                    \
  } while (0)
#else
#define HCSCHED_SPAN(var, name) \
  ::hcsched::obs::NullSpan var {}
#define HCSCHED_SPAN_SEEDED(var, name, seed) \
  ::hcsched::obs::NullSpan var {}
#define HCSCHED_SPAN_ATTR(var, key, ...) \
  do {                                   \
    (void)(var);                         \
  } while (0)
#endif
