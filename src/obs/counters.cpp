#include "obs/counters.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "core/thread_annotations.hpp"

namespace hcsched::obs {

namespace {

// Memory-order audit (PR 2, verified by the TSan stress suite): every
// atomic here is a monotone statistical accumulator — no load establishes
// an ordering that later non-atomic reads depend on — so relaxed ordering
// is correct throughout. Cross-thread visibility of the *buffered* values
// is provided by thread join / CounterScope destruction, not by these
// atomics. Totals across {count_, total_ns_, buckets_} are only mutually
// consistent once writers are quiescent; snapshot() documents the same for
// unflushed buffers.

// Global table. Atomics receive whole thread-local buffers at flush time, so
// contention is proportional to flush frequency, not to add() frequency.
std::array<std::atomic<std::uint64_t>, kNumCounters>& global_table() {
  static std::array<std::atomic<std::uint64_t>, kNumCounters> table{};
  return table;
}

struct ThreadBuffer {
  std::array<std::uint64_t, kNumCounters> values{};
  bool dirty = false;

  ~ThreadBuffer() { flush(); }

  void flush() noexcept {
    if (!dirty) return;
    auto& table = global_table();
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      if (values[i] != 0) {
        table[i].fetch_add(values[i], std::memory_order_relaxed);
        values[i] = 0;
      }
    }
    dirty = false;
  }
};

ThreadBuffer& thread_buffer() noexcept {
  thread_local ThreadBuffer buffer;
  return buffer;
}

std::atomic<std::uint64_t> g_max_queue_depth{0};

/// Per-heuristic timing registry behind its own capability; function-local
/// static so the registry outlives every worker thread that feeds it.
struct TimingRegistry {
  core::Mutex mutex;
  std::map<std::string, HeuristicTiming, std::less<>> map
      HCSCHED_GUARDED_BY(mutex){};
};

TimingRegistry& timings() {
  static TimingRegistry registry;
  return registry;
}

constexpr std::array<std::string_view, kNumCounters> kCounterNames = {
    "heuristic_invocations", "etc_cell_evaluations",
    "tie_decisions",         "tie_events",
    "ga_steps",              "ga_crossovers",
    "ga_mutations",          "search_nodes_expanded",
    "iterative_runs",        "iterative_iterations",
    "pool_tasks_submitted",  "pool_tasks_completed",
    "fastpath_rescores",     "fastpath_replays",
    "faults_injected",       "trials_quarantined",
    "studies_cancelled",     "checkpoint_trials_written",
    "checkpoint_trials_replayed", "checkpoint_corrupt_lines",
};

void atomic_store_max(std::atomic<std::uint64_t>& slot,
                      std::uint64_t candidate) noexcept {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (candidate > current &&
         !slot.compare_exchange_weak(current, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string_view to_string(Counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

namespace counters {

void add(Counter c, std::uint64_t n) noexcept {
  ThreadBuffer& buffer = thread_buffer();
  buffer.values[static_cast<std::size_t>(c)] += n;
  buffer.dirty = true;
}

void flush_thread() noexcept { thread_buffer().flush(); }

Snapshot Snapshot::delta_since(const Snapshot& earlier) const noexcept {
  Snapshot out;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out.values[i] =
        values[i] >= earlier.values[i] ? values[i] - earlier.values[i] : 0;
  }
  return out;
}

JsonValue Snapshot::to_json() const {
  JsonValue::Object object;
  object.reserve(kNumCounters);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    object.emplace_back(std::string(kCounterNames[i]), JsonValue(values[i]));
  }
  return JsonValue(std::move(object));
}

Snapshot snapshot() {
  flush_thread();
  Snapshot out;
  auto& table = global_table();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out.values[i] = table[i].load(std::memory_order_relaxed);
  }
  return out;
}

void reset() {
  ThreadBuffer& buffer = thread_buffer();
  buffer.values.fill(0);
  buffer.dirty = false;
  for (auto& slot : global_table()) {
    slot.store(0, std::memory_order_relaxed);
  }
  pool_wait_histogram().reset();
  pool_run_histogram().reset();
  g_max_queue_depth.store(0, std::memory_order_relaxed);
  TimingRegistry& registry = timings();
  const core::MutexLock lock(registry.mutex);
  registry.map.clear();
}

}  // namespace counters

void LatencyHistogram::record_ns(std::uint64_t ns) noexcept {
  const std::size_t bucket =
      ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns) - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_store_max(max_ns_, ns);
}

std::uint64_t LatencyHistogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::total_ns() const noexcept {
  return total_ns_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::max_ns() const noexcept {
  return max_ns_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean_ns() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
                : static_cast<double>(total_ns()) / static_cast<double>(n);
}

std::uint64_t LatencyHistogram::quantile_upper_bound_ns(
    double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) {
      return i + 1 >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << (i + 1));
    }
  }
  return max_ns();
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::buckets() const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void LatencyHistogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

JsonValue LatencyHistogram::to_json() const {
  JsonValue::Object object;
  object.reserve(6);
  object.emplace_back("count", JsonValue(count()));
  object.emplace_back("total_ns", JsonValue(total_ns()));
  object.emplace_back("mean_ns", JsonValue(mean_ns()));
  object.emplace_back("p50_ns", JsonValue(quantile_upper_bound_ns(0.50)));
  object.emplace_back("p99_ns", JsonValue(quantile_upper_bound_ns(0.99)));
  object.emplace_back("max_ns", JsonValue(max_ns()));
  return JsonValue(std::move(object));
}

LatencyHistogram& pool_wait_histogram() noexcept {
  static LatencyHistogram histogram;
  return histogram;
}

LatencyHistogram& pool_run_histogram() noexcept {
  static LatencyHistogram histogram;
  return histogram;
}

void record_queue_depth(std::size_t depth) noexcept {
  atomic_store_max(g_max_queue_depth, depth);
}

std::size_t max_queue_depth() noexcept {
  return static_cast<std::size_t>(
      g_max_queue_depth.load(std::memory_order_relaxed));
}

void record_heuristic_call(std::string_view name, std::uint64_t ns) {
  TimingRegistry& registry = timings();
  const core::MutexLock lock(registry.mutex);
  const auto it = registry.map.find(name);
  if (it == registry.map.end()) {
    registry.map.emplace(std::string(name), HeuristicTiming{1, ns});
  } else {
    ++it->second.calls;
    it->second.total_ns += ns;
  }
}

std::vector<std::pair<std::string, HeuristicTiming>> heuristic_timings() {
  TimingRegistry& registry = timings();
  const core::MutexLock lock(registry.mutex);
  return {registry.map.begin(), registry.map.end()};
}

}  // namespace hcsched::obs
