#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hcsched::obs {

namespace {

void dump_value(const JsonValue& v, int indent, int depth, std::string& out);

void append_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

void dump_array(const JsonValue::Array& a, int indent, int depth,
                std::string& out) {
  if (a.empty()) {
    out += "[]";
    return;
  }
  out.push_back('[');
  bool first = true;
  for (const JsonValue& v : a) {
    if (!first) out.push_back(',');
    first = false;
    append_indent(out, indent, depth + 1);
    dump_value(v, indent, depth + 1, out);
  }
  append_indent(out, indent, depth);
  out.push_back(']');
}

void dump_object(const JsonValue::Object& o, int indent, int depth,
                 std::string& out) {
  if (o.empty()) {
    out += "{}";
    return;
  }
  out.push_back('{');
  bool first = true;
  for (const auto& [key, v] : o) {
    if (!first) out.push_back(',');
    first = false;
    append_indent(out, indent, depth + 1);
    out.push_back('"');
    out += json_escape(key);
    out += indent < 0 ? "\":" : "\": ";
    dump_value(v, indent, depth + 1, out);
  }
  append_indent(out, indent, depth);
  out.push_back('}');
}

void dump_value(const JsonValue& v, int indent, int depth, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    out += json_number(v.as_number());
  } else if (v.is_string()) {
    out.push_back('"');
    out += json_escape(v.as_string());
    out.push_back('"');
  } else if (v.is_array()) {
    dump_array(v.as_array(), indent, depth, out);
  } else {
    dump_object(v.as_object(), indent, depth, out);
  }
}

/// Strict recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JsonValue::parse: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue(nullptr);
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // produced by this repo's emitter and are rejected).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) fail("bad number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v) {
    throw std::out_of_range("JsonValue::at: no member '" + std::string(key) +
                            "'");
  }
  return *v;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<long long>(d));
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

}  // namespace hcsched::obs
