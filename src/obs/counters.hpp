// Counters, timers, and latency histograms (observability pillar 2 of 3).
//
// Wall-clock alone is a dishonest currency for comparing heuristics (fast
// local-search literature counts *evaluations*); this module gives the hot
// paths cheap operation counters:
//
//   * Counter        — a fixed catalog of u64 counters. add() writes a
//                      plain thread-local buffer (no atomics on the hot
//                      path); buffers are merged into the global table when
//                      a CounterScope exits, when the owning thread exits,
//                      or when the calling thread snapshots.
//   * LatencyHistogram — lock-free log2-bucketed nanosecond histograms for
//                      thread-pool queue wait / task run latency.
//   * per-heuristic timing registry — invocation count + total ns per
//                      heuristic name, fed by the Heuristic NVI wrapper.
//
// Instrument with HCSCHED_COUNT(...), which compiles away entirely under
// -DHCSCHED_TRACE=0 (the same kill switch as tracing). The query API is
// always compiled so tooling builds in every configuration.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"  // HCSCHED_TRACE

namespace hcsched::obs {

enum class Counter : std::size_t {
  kHeuristicInvocations = 0,  ///< Heuristic::map / map_seeded calls
  kEtcCellEvaluations,        ///< ready + ETC(task, machine) lookups scored
  kTieDecisions,              ///< TieBreaker choose_* calls
  kTieEvents,                 ///< genuine ties (candidate set > 1)
  kGaSteps,                   ///< Genitor steady-state steps
  kGaCrossovers,              ///< Genitor crossovers applied
  kGaMutations,               ///< Genitor mutation trials
  kSearchNodesExpanded,       ///< A* / branch-and-bound nodes expanded
  kIterativeRuns,             ///< IterativeMinimizer::run calls
  kIterativeIterations,       ///< iterations across all runs
  kPoolTasksSubmitted,        ///< ThreadPool::submit calls
  kPoolTasksCompleted,        ///< pool tasks finished
  kFastpathRescores,          ///< fast-path kernel full task rescores
  kFastpathReplays,           ///< fast-path kernel cached-decision replays
  kFaultsInjected,            ///< fault::maybe_inject decisions that fired
  kTrialsQuarantined,         ///< study trials captured instead of aborting
  kStudiesCancelled,          ///< studies stopped early by a CancelToken
  kCheckpointTrialsWritten,   ///< trial outcomes appended to a checkpoint
  kCheckpointTrialsReplayed,  ///< trials resumed from a checkpoint
  kCheckpointCorruptLines,    ///< checkpoint lines skipped as unreadable
  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name (JSON key) of a counter.
std::string_view to_string(Counter c) noexcept;

namespace counters {

/// Adds `n` to the calling thread's buffer for `c` (cheap, no atomics).
void add(Counter c, std::uint64_t n = 1) noexcept;

/// Merges the calling thread's buffer into the global table. Called
/// automatically at thread exit and by CounterScope / snapshot().
void flush_thread() noexcept;

struct Snapshot {
  std::array<std::uint64_t, kNumCounters> values{};

  std::uint64_t operator[](Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  /// Per-counter difference (saturating at 0) versus an earlier snapshot.
  Snapshot delta_since(const Snapshot& earlier) const noexcept;
  /// {"counter_name": value, ...} in catalog order.
  JsonValue to_json() const;
};

/// Flushes the calling thread, then reads the global table. Counts buffered
/// by *other* live threads that have not flushed yet are not included.
Snapshot snapshot();

/// Zeros the global table, the calling thread's buffer, the histograms and
/// the per-heuristic timing registry.
void reset();

/// RAII: flushes this thread's counter buffer on scope exit. Place one at
/// the top of a worker's chunk so its counts land in the global table as
/// soon as the chunk finishes.
class CounterScope {
 public:
  CounterScope() = default;
  ~CounterScope() { flush_thread(); }
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;
};

}  // namespace counters

/// Lock-free histogram over nanosecond durations with log2 buckets:
/// bucket i counts samples in [2^i, 2^(i+1)) ns (bucket 0 includes 0).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record_ns(std::uint64_t ns) noexcept;

  std::uint64_t count() const noexcept;
  std::uint64_t total_ns() const noexcept;
  std::uint64_t max_ns() const noexcept;
  double mean_ns() const noexcept;
  /// Upper bound (ns) of the bucket containing quantile q in [0, 1]
  /// (0 when empty). Coarse by design: log2 resolution.
  std::uint64_t quantile_upper_bound_ns(double q) const noexcept;
  std::array<std::uint64_t, kBuckets> buckets() const noexcept;
  void reset() noexcept;

  /// {"count":..., "total_ns":..., "mean_ns":..., "p50_ns":..., "p99_ns":...,
  ///  "max_ns":...}
  JsonValue to_json() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Queue wait (submit -> dequeue) latency of thread-pool tasks.
LatencyHistogram& pool_wait_histogram() noexcept;
/// Run (dequeue -> done) latency of thread-pool tasks.
LatencyHistogram& pool_run_histogram() noexcept;

/// Thread-pool queue-depth gauge (samples taken at submit time).
void record_queue_depth(std::size_t depth) noexcept;
std::size_t max_queue_depth() noexcept;

/// Per-heuristic timing registry, fed by the Heuristic NVI wrapper.
struct HeuristicTiming {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;

  double mean_ns() const noexcept {
    return calls == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(calls);
  }
};

void record_heuristic_call(std::string_view name, std::uint64_t ns);
/// (name, timing) pairs sorted by name.
std::vector<std::pair<std::string, HeuristicTiming>> heuristic_timings();

}  // namespace hcsched::obs

#if HCSCHED_TRACE
#define HCSCHED_COUNT(counter, ...) \
  ::hcsched::obs::counters::add((counter), ##__VA_ARGS__)
#else
#define HCSCHED_COUNT(counter, ...) \
  do {                              \
  } while (0)
#endif
