// Minimal JSON document model for the observability subsystem.
//
// Trace sinks and run reports need a dependency-free way to build, emit and
// re-read JSON (the container image has no third-party JSON library). The
// model is deliberately small: a JsonValue is null, bool, number (double),
// string, array, or object; objects preserve insertion order so emitted
// documents are deterministic and diffable. dump() writes compact or
// indented text; parse() is a strict recursive-descent reader used by tests
// to round-trip JSONL trace files.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace hcsched::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered object (duplicate keys are not rejected; at() finds
  /// the first occurrence).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() noexcept : value_(nullptr) {}
  JsonValue(std::nullptr_t) noexcept : value_(nullptr) {}
  JsonValue(bool b) noexcept : value_(b) {}
  JsonValue(double d) noexcept : value_(d) {}
  JsonValue(int i) noexcept : value_(static_cast<double>(i)) {}
  JsonValue(long i) noexcept : value_(static_cast<double>(i)) {}
  JsonValue(long long i) noexcept : value_(static_cast<double>(i)) {}
  JsonValue(unsigned i) noexcept : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long i) noexcept : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long long i) noexcept
      : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string_view s) : value_(std::string(s)) {}
  JsonValue(std::string s) noexcept : value_(std::move(s)) {}
  JsonValue(Array a) noexcept : value_(std::move(a)) {}
  JsonValue(Object o) noexcept : value_(std::move(o)) {}

  bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed accessors; throw std::bad_variant_access on kind mismatch.
  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// First member named `key`, or nullptr (requires an object).
  const JsonValue* find(std::string_view key) const;
  /// Like find(), but throws std::out_of_range when absent.
  const JsonValue& at(std::string_view key) const;

  /// Serializes the value. indent < 0 -> compact single line (the JSONL
  /// form); indent >= 0 -> pretty-printed with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document (throws std::invalid_argument
  /// on syntax errors or trailing garbage).
  static JsonValue parse(std::string_view text);

  bool operator==(const JsonValue&) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Formats a double the way dump() does: integers without a trailing ".0",
/// everything else with enough digits to round-trip.
std::string json_number(double d);

}  // namespace hcsched::obs
