// Run-report builder (observability pillar 3 of 3).
//
// Snapshots everything one run of the iterative technique produced into a
// single JSON-ready document: per-iteration scheduler state (machine
// removed, frozen completion time, completion-time vector, balance index —
// the paper's per-iteration trajectory), the final finishing times, the
// operation-counter snapshot, per-heuristic timings, and the thread-pool
// latency histograms. The CLI `report` subcommand pretty-prints it; the
// production_pipeline example and the sim layer attach it per trial.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/iterative.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace hcsched::obs {

/// One iteration of the technique, summarized for reporting.
struct IterationSummary {
  std::size_t index = 0;
  std::size_t num_tasks = 0;
  std::size_t num_machines = 0;
  double makespan = 0.0;
  /// Machine whose finishing time was frozen and removed after this
  /// iteration; -1 for the terminal iteration (nothing removed).
  sched::MachineId removed_machine = -1;
  /// The removed machine's frozen completion time (== makespan) for
  /// non-terminal iterations; 0 otherwise.
  double frozen_completion_time = 0.0;
  /// min(CT)/max(CT) over this iteration's machines (SWA's balance index).
  double balance_index = 0.0;
  /// (machine, completion time) for every machine alive this iteration.
  std::vector<std::pair<sched::MachineId, double>> completion_times{};
};

struct RunReport {
  std::string heuristic{};
  std::size_t num_tasks = 0;
  std::size_t num_machines = 0;
  double original_makespan = 0.0;
  double final_makespan = 0.0;
  bool makespan_increased = false;
  std::vector<IterationSummary> iterations{};
  /// (machine, final finishing time), initial machine order.
  std::vector<std::pair<sched::MachineId, double>> final_finishing_times{};
  /// Counter values at build time (whole-process; use
  /// counters::Snapshot::delta_since to scope to one run).
  counters::Snapshot counters{};
  std::vector<std::pair<std::string, HeuristicTiming>> heuristic_timings{};
};

/// Builds the report from a finished IterativeResult, snapshotting the
/// global counters and timing registry.
RunReport build_run_report(std::string_view heuristic,
                           const core::IterativeResult& result);

/// The full report as one JSON document.
JsonValue to_json(const RunReport& report);

/// Human-readable rendering (tables) for the CLI `report` subcommand.
std::string to_text(const RunReport& report);

}  // namespace hcsched::obs
