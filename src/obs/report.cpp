#include "obs/report.hpp"

#include "report/table.hpp"
#include "sched/metrics.hpp"

namespace hcsched::obs {

namespace {

std::string machine_label(sched::MachineId machine) {
  std::string label(1, 'm');
  label += std::to_string(machine);
  return label;
}

JsonValue machine_times_json(
    const std::vector<std::pair<sched::MachineId, double>>& times) {
  JsonValue::Object object;
  object.reserve(times.size());
  for (const auto& [machine, t] : times) {
    object.emplace_back(machine_label(machine), JsonValue(t));
  }
  return JsonValue(std::move(object));
}

}  // namespace

RunReport build_run_report(std::string_view heuristic,
                           const core::IterativeResult& result) {
  RunReport report;
  report.heuristic.assign(heuristic);
  report.final_finishing_times = result.final_finishing_times;
  report.original_makespan = result.original().makespan;
  report.final_makespan = result.final_makespan();
  report.makespan_increased = result.makespan_increased();
  const auto& original_problem = result.original().problem();
  report.num_tasks = original_problem.num_tasks();
  report.num_machines = original_problem.num_machines();

  report.iterations.reserve(result.iterations.size());
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const core::IterationRecord& record = result.iterations[i];
    IterationSummary summary;
    summary.index = record.index;
    summary.num_tasks = record.problem().num_tasks();
    summary.num_machines = record.problem().num_machines();
    summary.makespan = record.makespan;
    summary.balance_index = sched::load_balance_index(record.schedule);
    const bool terminal = i + 1 == result.iterations.size();
    if (!terminal) {
      summary.removed_machine = record.makespan_machine;
      summary.frozen_completion_time = record.makespan;
    }
    for (sched::MachineId m : record.problem().machines()) {
      summary.completion_times.emplace_back(
          m, record.schedule.completion_time(m));
    }
    report.iterations.push_back(std::move(summary));
  }

  report.counters = counters::snapshot();
  report.heuristic_timings = heuristic_timings();
  return report;
}

JsonValue to_json(const RunReport& report) {
  JsonValue::Array iterations;
  iterations.reserve(report.iterations.size());
  for (const IterationSummary& it : report.iterations) {
    JsonValue::Object object{
        {"index", JsonValue(it.index)},
        {"tasks", JsonValue(it.num_tasks)},
        {"machines", JsonValue(it.num_machines)},
        {"makespan", JsonValue(it.makespan)},
        {"balance_index", JsonValue(it.balance_index)},
        {"completion_times", machine_times_json(it.completion_times)},
    };
    if (it.removed_machine >= 0) {
      object.emplace_back("removed_machine",
                          JsonValue(machine_label(it.removed_machine)));
      object.emplace_back("frozen_completion_time",
                          JsonValue(it.frozen_completion_time));
    }
    iterations.emplace_back(std::move(object));
  }

  JsonValue::Object timings;
  timings.reserve(report.heuristic_timings.size());
  for (const auto& [name, timing] : report.heuristic_timings) {
    timings.emplace_back(name,
                         JsonValue(JsonValue::Object{
                             {"calls", JsonValue(timing.calls)},
                             {"total_ns", JsonValue(timing.total_ns)},
                             {"mean_ns", JsonValue(timing.mean_ns())},
                         }));
  }

  return JsonValue(JsonValue::Object{
      {"heuristic", JsonValue(report.heuristic)},
      {"tasks", JsonValue(report.num_tasks)},
      {"machines", JsonValue(report.num_machines)},
      {"original_makespan", JsonValue(report.original_makespan)},
      {"final_makespan", JsonValue(report.final_makespan)},
      {"makespan_increased", JsonValue(report.makespan_increased)},
      {"iterations", JsonValue(std::move(iterations))},
      {"final_finishing_times",
       machine_times_json(report.final_finishing_times)},
      {"counters", report.counters.to_json()},
      {"heuristic_timings", JsonValue(std::move(timings))},
      {"pool_wait", pool_wait_histogram().to_json()},
      {"pool_run", pool_run_histogram().to_json()},
      {"pool_max_queue_depth", JsonValue(max_queue_depth())},
  });
}

std::string to_text(const RunReport& report) {
  using hcsched::report::TextTable;
  std::string out = "run report: " + report.heuristic + " on " +
                    std::to_string(report.num_tasks) + " tasks x " +
                    std::to_string(report.num_machines) + " machines\n";

  TextTable iterations({"iter", "tasks", "machines", "makespan",
                        "balance index", "removed", "frozen CT"});
  for (const IterationSummary& it : report.iterations) {
    iterations.add_row(
        {std::to_string(it.index), std::to_string(it.num_tasks),
         std::to_string(it.num_machines), TextTable::num(it.makespan, 4),
         TextTable::num(it.balance_index, 4),
         it.removed_machine >= 0 ? machine_label(it.removed_machine)
                                 : "-",
         it.removed_machine >= 0
             ? TextTable::num(it.frozen_completion_time, 4)
             : "-"});
  }
  out += iterations.to_string();

  TextTable finals({"machine", "final CT"});
  for (const auto& [machine, t] : report.final_finishing_times) {
    finals.add_row({machine_label(machine), TextTable::num(t, 4)});
  }
  out += finals.to_string();
  out += "effective makespan " + TextTable::num(report.original_makespan, 4) +
         " -> " + TextTable::num(report.final_makespan, 4) +
         (report.makespan_increased ? " (INCREASED)\n" : "\n");

  TextTable counters({"counter", "value"});
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    counters.add_row({std::string(to_string(static_cast<Counter>(i))),
                      std::to_string(report.counters.values[i])});
  }
  out += counters.to_string();

  if (!report.heuristic_timings.empty()) {
    TextTable timings({"heuristic", "calls", "total ms", "mean us"});
    for (const auto& [name, timing] : report.heuristic_timings) {
      timings.add_row(
          {name, std::to_string(timing.calls),
           TextTable::num(static_cast<double>(timing.total_ns) / 1e6, 3),
           TextTable::num(timing.mean_ns() / 1e3, 3)});
    }
    out += timings.to_string();
  }
  return out;
}

}  // namespace hcsched::obs
