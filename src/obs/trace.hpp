// Structured event tracing (observability pillar 1 of 3).
//
// Instrumented code emits named events whose payload is an ordered set of
// JSON fields; a process-global Tracer forwards them to a pluggable sink:
//
//   * JsonlSink      — one compact JSON object per line (the JSONL format
//                      consumed by jq / pandas / the `report` subcommand),
//   * RingBufferSink — bounded in-memory capture for tests and examples,
//   * NullSink       — swallow everything (useful to measure emit cost).
//
// Call sites use HCSCHED_TRACE_EVENT(name, {fields...}) which
//   1. compiles to *nothing* when the library is built with
//      -DHCSCHED_TRACE=0 (the compile-time kill switch; bench_trace_overhead
//      guards this configuration), and
//   2. otherwise checks a relaxed atomic flag before building the payload,
//      so an uninstalled tracer costs one predictable branch per site.
//
// Events carry a process-wide sequence number so multi-threaded captures can
// be ordered after the fact. Sinks serialize their own access; Tracer::emit
// may be called from any thread.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/thread_annotations.hpp"
#include "obs/json.hpp"

#ifndef HCSCHED_TRACE
#define HCSCHED_TRACE 1
#endif

namespace hcsched::obs {

/// Whether trace call sites were compiled in.
inline constexpr bool kTraceCompiledIn = HCSCHED_TRACE != 0;

struct TraceEvent {
  std::uint64_t sequence = 0;  ///< process-wide, assigned by the Tracer
  std::string name{};          ///< dotted event type, e.g. "iterative.iteration"
  JsonValue::Object fields{};  ///< ordered payload

  /// The event as one JSON object: {"seq": ..., "event": ..., <fields>}.
  JsonValue to_json() const;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Discards every event (measures pure emit overhead).
class NullSink final : public TraceSink {
 public:
  void consume(const TraceEvent&) override {}
};

/// Bounded FIFO capture; oldest events are dropped past `capacity`.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void consume(const TraceEvent& event) override;

  /// Snapshot of the buffered events, oldest first.
  std::vector<TraceEvent> events() const;
  /// Buffered events with the given name, oldest first.
  std::vector<TraceEvent> events_named(std::string_view name) const;
  std::size_t size() const;
  /// Events evicted because the buffer was full.
  std::uint64_t dropped() const;
  void clear();

 private:
  mutable core::Mutex mutex_;
  std::deque<TraceEvent> buffer_ HCSCHED_GUARDED_BY(mutex_){};
  std::size_t capacity_;  // immutable after construction; no guard needed
  std::uint64_t dropped_ HCSCHED_GUARDED_BY(mutex_) = 0;
};

/// Writes one compact JSON line per event (JSON Lines).
class JsonlSink final : public TraceSink {
 public:
  /// Borrows `out`; the stream must outlive the sink.
  explicit JsonlSink(std::ostream& out);
  /// Opens (truncates) `path`; throws std::invalid_argument on failure.
  explicit JsonlSink(const std::string& path);

  void consume(const TraceEvent& event) override;
  void flush() override;

 private:
  core::Mutex mutex_;
  std::ofstream owned_{};
  /// Points at `owned_` or a borrowed stream; the pointer itself is set
  /// once in the constructor, but every *write through it* takes the lock.
  std::ostream* out_ HCSCHED_PT_GUARDED_BY(mutex_);
};

/// Fans every event out to two or more sinks in order (the CLI combines a
/// JSONL trace file with the in-memory span collector behind --profile).
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<std::shared_ptr<TraceSink>> sinks);

  void consume(const TraceEvent& event) override;
  void flush() override;

 private:
  // Immutable after construction; each downstream sink serializes itself.
  std::vector<std::shared_ptr<TraceSink>> sinks_;
};

/// Process-global event router. install() swaps the active sink (nullptr
/// deactivates tracing); active() is the cheap fast-path check used by the
/// HCSCHED_TRACE_EVENT macro.
class Tracer {
 public:
  static void install(std::shared_ptr<TraceSink> sink);
  static std::shared_ptr<TraceSink> sink();
  static bool active() noexcept;
  /// Stamps a sequence number and forwards to the installed sink (no-op when
  /// inactive). Prefer the macro over calling this directly.
  static void emit(std::string_view name, JsonValue::Object fields);
  /// Flushes the installed sink, if any.
  static void flush();

  Tracer() = delete;
};

/// RAII: installs `sink` for the current scope, restoring the previous sink
/// on exit. Used by tests and the CLI.
class ScopedSink {
 public:
  explicit ScopedSink(std::shared_ptr<TraceSink> sink)
      : previous_(Tracer::sink()) {
    Tracer::install(std::move(sink));
  }
  ~ScopedSink() {
    Tracer::flush();
    Tracer::install(std::move(previous_));
  }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  std::shared_ptr<TraceSink> previous_;
};

}  // namespace hcsched::obs

#if HCSCHED_TRACE
/// Emits a structured trace event when a sink is installed. The payload
/// expression is only evaluated on the active path.
#define HCSCHED_TRACE_EVENT(name, ...)                  \
  do {                                                  \
    if (::hcsched::obs::Tracer::active()) {             \
      ::hcsched::obs::Tracer::emit((name), __VA_ARGS__); \
    }                                                   \
  } while (0)
#else
#define HCSCHED_TRACE_EVENT(name, ...) \
  do {                                 \
  } while (0)
#endif
