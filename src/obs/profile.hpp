// Span aggregation: raw `span` events -> a merged profile tree.
//
// SpanCollector is a TraceSink that retains every `span` event it sees
// (other event kinds pass through untouched — tee it with a JsonlSink when
// both a trace file and a profile are wanted). aggregate() reconstructs the
// parent/child structure from span_id / parent_span_id and merges nodes
// with the same name under the same path, yielding, per node:
//
//   count     — how many spans merged into it,
//   total_ns  — summed wall time of those spans,
//   self_ns   — total_ns minus the children's total (time attributable to
//               the node itself, clamped at zero against clock jitter).
//
// Because spans emit on *close*, children always arrive before their
// parents, so the collector just stores raw rows and defers all tree work
// to aggregate(). Roots (no parent, or a parent that was never captured —
// e.g. evicted by sampling) sort siblings by descending total time, ties by
// name, so the hottest path reads top-down.
//
// The `--profile out.json` CLI flag writes to_json() of a collector that
// observed the run: {"profile": "hcsched.profile.v1", "spans": N,
// "roots": [...]} with each node {name, count, total_ns, self_ns,
// children}. tools/bench_check validates this shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace hcsched::obs {

/// One merged node of the aggregated span tree.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::vector<ProfileNode> children{};
};

class SpanCollector final : public TraceSink {
 public:
  void consume(const TraceEvent& event) override;

  /// Raw span events captured so far.
  std::size_t size() const HCSCHED_EXCLUDES(mutex_);

  /// Merges the captured spans into a forest (see file comment).
  std::vector<ProfileNode> aggregate() const HCSCHED_EXCLUDES(mutex_);

  /// The profile document: {"profile": "hcsched.profile.v1", "spans": N,
  /// "roots": [...]}.
  JsonValue to_json() const HCSCHED_EXCLUDES(mutex_);

 private:
  struct RawSpan {
    std::string name;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;  // 0 = root
    std::uint64_t duration_ns = 0;
  };

  mutable core::Mutex mutex_;
  std::vector<RawSpan> spans_ HCSCHED_GUARDED_BY(mutex_){};
};

/// Serializes one ProfileNode (recursive; used by to_json and tests).
JsonValue profile_node_to_json(const ProfileNode& node);

}  // namespace hcsched::obs
