#include "obs/span.hpp"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <vector>

#include "rng/splitmix64.hpp"

namespace hcsched::obs {
namespace {

// One live span on the calling thread. The child-ID stream is part of the
// frame so sibling spans draw consecutive SplitMix64 outputs — the ID graph
// depends only on the tree shape and the root seed, never on timing.
struct SpanFrame {
  std::uint64_t trace_id;
  std::uint64_t span_id;
  rng::SplitMix64 child_ids;
};

thread_local std::vector<SpanFrame> t_span_stack;

// Seeds traces whose root span was opened without an explicit seed (CLI
// one-shots, pool jobs before instrumentation reaches them). Deterministic
// for a fresh process with a deterministic span-open order; studies that
// need cross-run stable IDs pass an explicit seed instead.
// Memory-order audit: the counter only needs uniqueness, not ordering
// against other memory — relaxed fetch_add suffices.
std::atomic<std::uint64_t> g_root_sequence{0};

// Distinguishes counter-derived root seeds from caller-provided ones so the
// two families of traces never collide in ID space.
constexpr std::uint64_t kProcessRootSalt = 0x5ca1ab1e0b5e55edULL;

// start_ns is reported relative to the first span of the process, keeping
// the numbers small and file-diff friendly. The epoch itself is arbitrary
// (steady_clock has no defined zero).
std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

std::string format_span_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

std::uint64_t parse_span_id(std::string_view text) {
  if (text.size() != 16) return 0;
  std::uint64_t id = 0;
  for (char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return 0;
    }
    id = (id << 4) | digit;
  }
  return id;
}

ScopedSpan::ScopedSpan(std::string name) : name_(std::move(name)) {
  if (!Tracer::active()) return;
  if (t_span_stack.empty()) {
    const std::uint64_t seq =
        g_root_sequence.fetch_add(1, std::memory_order_relaxed);
    open(kProcessRootSalt ^ seq, /*seeded=*/false);
  } else {
    SpanFrame& parent = t_span_stack.back();
    trace_id_ = parent.trace_id;
    parent_id_ = parent.span_id;
    span_id_ = parent.child_ids.next();
    t_span_stack.push_back(
        SpanFrame{trace_id_, span_id_, rng::SplitMix64(span_id_)});
    recording_ = true;
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedSpan::ScopedSpan(std::string name, std::uint64_t trace_seed)
    : name_(std::move(name)) {
  if (!Tracer::active()) return;
  open(trace_seed, /*seeded=*/true);
}

void ScopedSpan::open(std::uint64_t trace_seed, bool seeded) {
  rng::SplitMix64 ids(trace_seed);
  trace_id_ = ids.next();
  span_id_ = ids.next();
  parent_id_ = 0;
  // A seeded root deliberately ignores any span already on the stack: the
  // study opens one deterministic trace per trial inside a (traced) pool
  // job, and the trial tree must not inherit the job's timing-dependent IDs.
  (void)seeded;
  t_span_stack.push_back(
      SpanFrame{trace_id_, span_id_, rng::SplitMix64(span_id_)});
  recording_ = true;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!recording_) return;
  const auto end = std::chrono::steady_clock::now();
  assert(!t_span_stack.empty() && t_span_stack.back().span_id == span_id_ &&
         "spans must close in LIFO order per thread");
  t_span_stack.pop_back();

  const auto ns = [](std::chrono::steady_clock::duration d) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  };
  JsonValue::Object fields;
  fields.reserve(attrs_.size() + 6);
  fields.emplace_back("name", JsonValue(name_));
  fields.emplace_back("trace_id", JsonValue(format_span_id(trace_id_)));
  fields.emplace_back("span_id", JsonValue(format_span_id(span_id_)));
  if (parent_id_ != 0) {
    fields.emplace_back("parent_span_id",
                        JsonValue(format_span_id(parent_id_)));
  }
  fields.emplace_back("start_ns", JsonValue(ns(start_ - process_epoch())));
  fields.emplace_back("duration_ns", JsonValue(ns(end - start_)));
  for (auto& [key, value] : attrs_) {
    fields.emplace_back(key, std::move(value));
  }
  Tracer::emit("span", std::move(fields));
}

void ScopedSpan::attr(std::string_view key, JsonValue value) {
  if (!recording_) return;
  attrs_.emplace_back(std::string(key), std::move(value));
}

namespace spans {

std::size_t thread_depth() noexcept { return t_span_stack.size(); }

}  // namespace spans

}  // namespace hcsched::obs
