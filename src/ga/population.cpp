#include "ga/population.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcsched::ga {

Population::Population(std::size_t capacity, double bias)
    : capacity_(capacity), bias_(bias) {
  if (capacity == 0) {
    throw std::invalid_argument("Population: capacity must be positive");
  }
  if (bias < 1.0 || bias > 2.0) {
    throw std::invalid_argument("Population: bias must be in [1, 2]");
  }
  members_.reserve(capacity + 1);
}

bool Population::insert(Member member) {
  const auto pos = std::lower_bound(
      members_.begin(), members_.end(), member,
      [](const Member& a, const Member& b) { return a.makespan < b.makespan; });
  const bool inserted_at_end = (pos == members_.end());
  members_.insert(pos, std::move(member));
  if (members_.size() > capacity_) {
    members_.pop_back();
    // The new member survived unless it itself was the overflow victim.
    return !inserted_at_end;
  }
  return true;
}

std::size_t Population::select_rank(rng::Rng& rng) const {
  if (members_.empty()) {
    throw std::logic_error("Population::select_rank: empty population");
  }
  const double u = rng.uniform01();
  double index = 0.0;
  if (bias_ > 1.0) {
    // Whitley (1989): rank = n * (bias - sqrt(bias^2 - 4(bias-1)u)) /
    //                        (2 (bias - 1))
    const double disc = bias_ * bias_ - 4.0 * (bias_ - 1.0) * u;
    index = static_cast<double>(members_.size()) *
            (bias_ - std::sqrt(disc)) / (2.0 * (bias_ - 1.0));
  } else {
    index = u * static_cast<double>(members_.size());
  }
  auto rank = static_cast<std::size_t>(index);
  if (rank >= members_.size()) rank = members_.size() - 1;
  return rank;
}

}  // namespace hcsched::ga
