// Chromosome: one candidate mapping for Genitor (paper §3.1, Figure 1).
//
// genes[i] is the machine *slot* (position in Problem::machines()) assigned
// to the i-th task of Problem::tasks(). Slots rather than machine ids keep
// chromosomes valid as the iterative technique shrinks the machine set: a
// fresh chromosome is always expressed against the current problem.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"
#include "sched/schedule.hpp"

namespace hcsched::ga {

using sched::Problem;
using sched::Schedule;

class Chromosome {
 public:
  Chromosome() = default;
  explicit Chromosome(std::vector<std::uint32_t> genes)
      : genes_(std::move(genes)) {}

  /// Uniformly random mapping.
  static Chromosome random(const Problem& problem, rng::Rng& rng);

  /// Chromosome encoding an existing schedule of the same problem.
  static Chromosome from_schedule(const Problem& problem, const Schedule& s);

  const std::vector<std::uint32_t>& genes() const noexcept { return genes_; }
  std::vector<std::uint32_t>& genes() noexcept { return genes_; }
  std::size_t size() const noexcept { return genes_.size(); }

  /// Makespan of the encoded mapping (no Schedule materialization).
  double evaluate(const Problem& problem) const;

  /// Materializes the mapping as a Schedule (tasks assigned in list order).
  Schedule decode(const Problem& problem) const;

  bool operator==(const Chromosome&) const = default;

 private:
  std::vector<std::uint32_t> genes_{};
};

}  // namespace hcsched::ga
