// Genitor — paper §3.1, Figure 1; Whitley [17].
//
// Steady-state genetic algorithm over mapping chromosomes, ranked by
// makespan. Each step performs one crossover (two rank-biased parents, two
// offspring inserted, worst members removed) and one mutation (a rank-biased
// chromosome is copied, point-mutated and inserted). The population is
// elitist: the best member can only ever be replaced by a better one, so the
// returned mapping's makespan never exceeds any seed's.
//
// In the iterative technique, `map_seeded` injects the previous iteration's
// mapping (restricted to the surviving machines) into the initial
// population — the paper's §3.1 argument that iterative Genitor either
// improves or keeps the mapping rests exactly on this seeding plus elitism.
#pragma once

#include "ga/population.hpp"
#include "heuristics/heuristic.hpp"

namespace hcsched::ga {

struct GenitorConfig {
  std::size_t population_size = 100;
  /// Total steady-state steps (each step = 1 crossover + 1 mutation trial).
  std::size_t total_steps = 2000;
  /// Stop early after this many consecutive steps without improving the
  /// best makespan (0 disables early stopping).
  std::size_t stop_after_stale = 0;
  double selection_bias = 1.5;
  /// Base RNG seed; map() derives its stream from this, so a Genitor
  /// instance is reproducible run-to-run.
  std::uint64_t seed = 0xC01055EEDULL;
  /// Also seed the initial population with a Min-Min mapping (standard
  /// practice in this literature; improves convergence dramatically).
  bool seed_with_minmin = true;
};

class Genitor final : public heuristics::Heuristic {
 public:
  explicit Genitor(GenitorConfig config = {});

  std::string_view name() const noexcept override { return "Genitor"; }
  Schedule do_map(const Problem& problem,
               heuristics::TieBreaker& ties) const override;
  Schedule do_map_seeded(const Problem& problem, heuristics::TieBreaker& ties,
                      const Schedule* seed) const override;

  bool deterministic_given_ties() const noexcept override { return false; }

  const GenitorConfig& config() const noexcept { return config_; }

  /// Statistics of the last map() call (best makespan trajectory length,
  /// improving steps) for the convergence benches.
  struct RunStats {
    std::size_t steps_executed = 0;
    std::size_t improvements = 0;
    double initial_best = 0.0;
    double final_best = 0.0;
  };
  const RunStats& last_run() const noexcept { return last_run_; }

 private:
  GenitorConfig config_;
  mutable RunStats last_run_{};
};

}  // namespace hcsched::ga
