// Ranked steady-state population (paper §3.1, Figure 1 steps 2-3).
//
// Members are kept sorted by makespan (best first). Insertion is by rank;
// whenever the population exceeds its fixed capacity the worst member is
// removed — Genitor's defining steady-state replacement. Parent selection
// uses Whitley's linear-rank bias: rank-based allocation of reproductive
// trials is the core idea of the Genitor paper [17].
#pragma once

#include <cstddef>
#include <vector>

#include "ga/chromosome.hpp"
#include "rng/rng.hpp"

namespace hcsched::ga {

struct Member {
  Chromosome chromosome{};
  double makespan = 0.0;
};

class Population {
 public:
  /// Fixed-capacity population; `bias` in [1, 2] controls selection pressure
  /// (1 = uniform, 2 = maximal preference for good ranks).
  explicit Population(std::size_t capacity, double bias = 1.5);

  /// Inserts by rank; drops the worst member when above capacity. Returns
  /// true when the member survived insertion (i.e. was not immediately the
  /// overflow victim).
  bool insert(Member member);

  /// Rank-biased parent index (0 = best).
  std::size_t select_rank(rng::Rng& rng) const;

  const Member& best() const { return members_.front(); }
  const Member& worst() const { return members_.back(); }
  const Member& at(std::size_t rank) const { return members_[rank]; }

  std::size_t size() const noexcept { return members_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  double bias() const noexcept { return bias_; }

 private:
  std::size_t capacity_;
  double bias_;
  std::vector<Member> members_{};  // sorted ascending by makespan
};

}  // namespace hcsched::ga
