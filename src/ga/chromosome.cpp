#include "ga/chromosome.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hcsched::ga {

Chromosome Chromosome::random(const Problem& problem, rng::Rng& rng) {
  std::vector<std::uint32_t> genes(problem.num_tasks());
  for (auto& g : genes) {
    g = static_cast<std::uint32_t>(rng.below(problem.num_machines()));
  }
  return Chromosome(std::move(genes));
}

Chromosome Chromosome::from_schedule(const Problem& problem,
                                     const Schedule& s) {
  std::vector<std::uint32_t> genes(problem.num_tasks());
  for (std::size_t i = 0; i < problem.num_tasks(); ++i) {
    const auto machine = s.machine_of(problem.tasks()[i]);
    if (!machine.has_value()) {
      throw std::invalid_argument(
          "Chromosome::from_schedule: schedule does not map task " +
          std::to_string(problem.tasks()[i]));
    }
    const std::size_t slot = problem.slot_of(*machine);
    if (slot == Problem::npos) {
      throw std::invalid_argument(
          "Chromosome::from_schedule: machine not in problem");
    }
    genes[i] = static_cast<std::uint32_t>(slot);
  }
  return Chromosome(std::move(genes));
}

double Chromosome::evaluate(const Problem& problem) const {
  if (genes_.size() != problem.num_tasks()) {
    throw std::invalid_argument("Chromosome::evaluate: gene count mismatch");
  }
  std::vector<double> ready = problem.initial_ready_times();
  for (std::size_t i = 0; i < genes_.size(); ++i) {
    ready[genes_[i]] += problem.etc_at(problem.tasks()[i], genes_[i]);
  }
  return ready.empty() ? 0.0 : *std::max_element(ready.begin(), ready.end());
}

Schedule Chromosome::decode(const Problem& problem) const {
  if (genes_.size() != problem.num_tasks()) {
    throw std::invalid_argument("Chromosome::decode: gene count mismatch");
  }
  Schedule s(problem);
  for (std::size_t i = 0; i < genes_.size(); ++i) {
    s.assign(problem.tasks()[i], problem.machines()[genes_[i]]);
  }
  return s;
}

}  // namespace hcsched::ga
