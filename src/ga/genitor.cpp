#include "ga/genitor.hpp"

#include <stdexcept>

#include "core/cancel.hpp"
#include "ga/operators.hpp"
#include "ga/population.hpp"
#include "heuristics/minmin.hpp"
#include "obs/counters.hpp"

namespace hcsched::ga {

Genitor::Genitor(GenitorConfig config) : config_(config) {
  if (config_.population_size < 2) {
    throw std::invalid_argument("Genitor: population_size must be >= 2");
  }
}

Schedule Genitor::do_map(const Problem& problem,
                      heuristics::TieBreaker& ties) const {
  return do_map_seeded(problem, ties, nullptr);
}

Schedule Genitor::do_map_seeded(const Problem& problem,
                             heuristics::TieBreaker& ties,
                             const Schedule* seed) const {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("Genitor: no machines");
  }
  rng::Rng rng(config_.seed);

  Population population(config_.population_size, config_.selection_bias);
  if (seed != nullptr) {
    Chromosome c = Chromosome::from_schedule(problem, *seed);
    const double fit = c.evaluate(problem);
    population.insert(Member{std::move(c), fit});
  }
  if (config_.seed_with_minmin) {
    heuristics::MinMin minmin;
    rng::TieBreaker det;  // deterministic ties for the seed mapping
    Chromosome c = Chromosome::from_schedule(problem, minmin.map(problem, det));
    const double fit = c.evaluate(problem);
    population.insert(Member{std::move(c), fit});
  }
  while (population.size() < config_.population_size) {
    Chromosome c = Chromosome::random(problem, rng);
    const double fit = c.evaluate(problem);
    population.insert(Member{std::move(c), fit});
  }

  last_run_ = RunStats{};
  last_run_.initial_best = population.best().makespan;

  double best = population.best().makespan;
  std::size_t stale = 0;
  for (std::size_t step = 0; step < config_.total_steps; ++step) {
    // Anytime contract: a cancelled budget stops evolution within one
    // steady-state step; the population's best is always a complete mapping.
    if (core::cancellation_requested()) break;
    ++last_run_.steps_executed;
    HCSCHED_COUNT(obs::Counter::kGaSteps);
    // Crossover trial (Figure 1, step 3a).
    HCSCHED_COUNT(obs::Counter::kGaCrossovers);
    const Member& pa = population.at(population.select_rank(rng));
    const Member& pb = population.at(population.select_rank(rng));
    auto [oa, ob] = crossover(pa.chromosome, pb.chromosome, rng);
    const double fa = oa.evaluate(problem);
    const double fb = ob.evaluate(problem);
    population.insert(Member{std::move(oa), fa});
    population.insert(Member{std::move(ob), fb});

    // Mutation trial (Figure 1, step 3b).
    HCSCHED_COUNT(obs::Counter::kGaMutations);
    Chromosome mutant = population.at(population.select_rank(rng)).chromosome;
    mutate(mutant, problem.num_machines(), rng);
    const double fm = mutant.evaluate(problem);
    population.insert(Member{std::move(mutant), fm});

    if (population.best().makespan < best) {
      best = population.best().makespan;
      ++last_run_.improvements;
      stale = 0;
    } else if (config_.stop_after_stale != 0 &&
               ++stale >= config_.stop_after_stale) {
      break;
    }
  }
  last_run_.final_best = population.best().makespan;

  (void)ties;  // Genitor's stochastic decisions come from its own stream.
  return population.best().chromosome.decode(problem);
}

}  // namespace hcsched::ga
