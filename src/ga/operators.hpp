// Genetic operators (paper Figure 1, steps 3a and 3b).
//
// Crossover: a random cut point is generated and the machine assignments of
// the tasks below the cut are exchanged between the two parents, producing
// two offspring. Mutation: a random task's machine assignment is replaced by
// a uniformly random machine slot.
#pragma once

#include <utility>

#include "ga/chromosome.hpp"
#include "rng/rng.hpp"

namespace hcsched::ga {

/// Single-point crossover. The cut is drawn from [1, n-1] so both offspring
/// mix genes from both parents (for n < 2 the parents are returned
/// unchanged).
std::pair<Chromosome, Chromosome> crossover(const Chromosome& a,
                                            const Chromosome& b,
                                            rng::Rng& rng);

/// In-place point mutation; returns the index of the mutated gene (or npos
/// for an empty chromosome).
std::size_t mutate(Chromosome& c, std::size_t num_machine_slots,
                   rng::Rng& rng);

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

}  // namespace hcsched::ga
