#include "ga/operators.hpp"

#include <stdexcept>

namespace hcsched::ga {

std::pair<Chromosome, Chromosome> crossover(const Chromosome& a,
                                            const Chromosome& b,
                                            rng::Rng& rng) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("crossover: parent size mismatch");
  }
  const std::size_t n = a.size();
  if (n < 2) return {a, b};
  const auto cut =
      1 + static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(n - 1)));
  Chromosome x = a;
  Chromosome y = b;
  for (std::size_t i = 0; i < cut; ++i) {
    std::swap(x.genes()[i], y.genes()[i]);
  }
  return {std::move(x), std::move(y)};
}

std::size_t mutate(Chromosome& c, std::size_t num_machine_slots,
                   rng::Rng& rng) {
  if (c.size() == 0 || num_machine_slots == 0) return kNpos;
  const auto gene = static_cast<std::size_t>(rng.below(c.size()));
  c.genes()[gene] = static_cast<std::uint32_t>(rng.below(num_machine_slots));
  return gene;
}

}  // namespace hcsched::ga
