// Heuristic: the interface every mapping heuristic implements (paper §3).
//
// A heuristic maps all tasks of a Problem onto its machines, minimizing
// makespan, consulting a TieBreaker whenever it must choose among equally
// good candidates. The public entry points map()/map_seeded() are
// *non-virtual* (NVI): they wrap the derived implementation (do_map /
// do_map_seeded) in the observability layer's timer + counter scope, so
// every heuristic invocation in the process — CLI, iterative core,
// Monte-Carlo studies, benches — is measured in one place (src/obs/). With
// the library built under -DHCSCHED_TRACE=0 the wrappers collapse to plain
// forwarding calls.
//
// do_map_seeded additionally receives the previous iteration's mapping
// (restricted to the surviving machines); only Genitor and the Seeded
// wrapper use it — Genitor seeds its initial population with that mapping,
// which is what makes iterative Genitor monotone (paper §3.1). The default
// implementation ignores the seed, matching the other heuristics' behavior
// in the paper.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "rng/tie_break.hpp"
#include "sched/schedule.hpp"

namespace hcsched::heuristics {

using rng::TieBreaker;
using sched::MachineId;
using sched::Problem;
using sched::Schedule;
using sched::TaskId;

class Heuristic {
 public:
  virtual ~Heuristic() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Produces a complete schedule for `problem`. Instrumented: counts the
  /// invocation, times it, and credits the per-heuristic timing registry.
  Schedule map(const Problem& problem, TieBreaker& ties) const;

  /// Like map(), but with an optional warm-start mapping from the previous
  /// iteration of the iterative technique. `seed` assigns exactly the tasks
  /// of `problem` to machines of `problem` (already restricted); it may be
  /// null. Instrumented like map().
  Schedule map_seeded(const Problem& problem, TieBreaker& ties,
                      const Schedule* seed) const;

  /// Whether the heuristic is deterministic given a deterministic
  /// tie-breaker (true for all list/greedy heuristics; false for Genitor,
  /// which draws from its own RNG).
  virtual bool deterministic_given_ties() const noexcept { return true; }

 protected:
  /// The actual mapping algorithm.
  virtual Schedule do_map(const Problem& problem, TieBreaker& ties) const = 0;

  /// Seed-aware variant; default ignores the seed.
  virtual Schedule do_map_seeded(const Problem& problem, TieBreaker& ties,
                                 const Schedule* seed) const {
    (void)seed;
    return do_map(problem, ties);
  }
};

/// Convenience: candidate completion times of `task` over every machine slot
/// of `problem` given current ready times `ready` (by slot). Scores vector
/// is filled (resized) by the call. Counts one ETC-cell evaluation per slot.
void completion_times(const Problem& problem, TaskId task,
                      const std::vector<double>& ready,
                      std::vector<double>& scores);

}  // namespace hcsched::heuristics
