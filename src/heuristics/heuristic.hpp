// Heuristic: the interface every mapping heuristic implements (paper §3).
//
// A heuristic maps all tasks of a Problem onto its machines, minimizing
// makespan, consulting a TieBreaker whenever it must choose among equally
// good candidates. `map_seeded` additionally receives the previous
// iteration's mapping (restricted to the surviving machines); only Genitor
// uses it — it seeds its initial population with that mapping, which is what
// makes iterative Genitor monotone (paper §3.1). The default implementation
// ignores the seed, matching the other heuristics' behavior in the paper.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "rng/tie_break.hpp"
#include "sched/schedule.hpp"

namespace hcsched::heuristics {

using rng::TieBreaker;
using sched::MachineId;
using sched::Problem;
using sched::Schedule;
using sched::TaskId;

class Heuristic {
 public:
  virtual ~Heuristic() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Produces a complete schedule for `problem`.
  virtual Schedule map(const Problem& problem, TieBreaker& ties) const = 0;

  /// Like map(), but with an optional warm-start mapping from the previous
  /// iteration of the iterative technique. `seed` assigns exactly the tasks
  /// of `problem` to machines of `problem` (already restricted); it may be
  /// null. Default: ignore the seed.
  virtual Schedule map_seeded(const Problem& problem, TieBreaker& ties,
                              const Schedule* seed) const {
    (void)seed;
    return map(problem, ties);
  }

  /// Whether the heuristic is deterministic given a deterministic
  /// tie-breaker (true for all list/greedy heuristics; false for Genitor,
  /// which draws from its own RNG).
  virtual bool deterministic_given_ties() const noexcept { return true; }
};

/// Convenience: candidate completion times of `task` over every machine slot
/// of `problem` given current ready times `ready` (by slot). Scores vector
/// is filled (resized) by the call.
void completion_times(const Problem& problem, TaskId task,
                      const std::vector<double>& ready,
                      std::vector<double>& scores);

}  // namespace hcsched::heuristics
