// Switching Algorithm (SWA) — paper §3.5, Figure 13; Maheswaran et al. [14].
//
// A hybrid of MCT and MET driven by the load balance index
// BI = min(ready) / max(ready). The first task is mapped with MCT; after
// every mapping BI is recomputed and the active heuristic switches to MET
// when BI rises above the high threshold (the suite is well balanced, so
// spend balance on fast machines) and back to MCT when BI falls below the
// low threshold. The paper's example (Tables 9-11) uses a high threshold of
// 0.49; its low threshold is OCR-damaged — the published BI traces require
// 4/13 < low < 0.49, and this implementation defaults to 0.35 (DESIGN.md §4).
//
// The paper shows SWA can increase its makespan under the iterative
// technique even with deterministic ties, because removing the makespan
// machine changes the BI trajectory and hence which sub-heuristic maps each
// task.
#pragma once

#include <optional>

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

/// Which sub-heuristic mapped a task (paper Tables 10/11 last column).
enum class SwaMode : std::uint8_t { kMct, kMet };

struct SwaStep {
  TaskId task = -1;
  MachineId machine = -1;
  double completion = 0.0;
  /// BI computed after the previous mapping ("x" — nullopt — for the first).
  std::optional<double> balance_index{};
  SwaMode mode = SwaMode::kMct;
};

class Swa final : public Heuristic {
 public:
  explicit Swa(double low_threshold = 0.35, double high_threshold = 0.49);

  std::string_view name() const noexcept override { return "SWA"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;

  Schedule map_traced(const Problem& problem, TieBreaker& ties,
                      std::vector<SwaStep>* trace) const;

  double low_threshold() const noexcept { return low_; }
  double high_threshold() const noexcept { return high_; }

 private:
  double low_;
  double high_;
};

namespace detail {
/// The reference loop: min/max ready-time scan plus a full score vector per
/// task. Always available — the oracle for fastpath::swa_fast and the
/// dispatch target when the fast path is disabled.
Schedule swa_reference(const Problem& problem, TieBreaker& ties, double low,
                       double high, std::vector<SwaStep>* trace);
}  // namespace detail

const char* to_string(SwaMode mode) noexcept;

}  // namespace hcsched::heuristics
