#include "heuristics/tabu.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/cancel.hpp"
#include "heuristics/minmin.hpp"

namespace hcsched::heuristics {

namespace {

/// Best single-task reassignment; returns false at a local minimum.
/// Evaluates moves incrementally: moving task i from slot a to slot b only
/// changes those two machines' loads, so each move is O(1) given the
/// per-slot load vector.
bool best_short_hop(const Problem& problem, ga::Chromosome& chromosome,
                    std::vector<double>& load, double& makespan) {
  const std::size_t machines = problem.num_machines();
  double best_span = makespan;
  std::size_t best_task = 0;
  std::size_t best_slot = 0;
  bool found = false;

  for (std::size_t i = 0; i < chromosome.size(); ++i) {
    const std::size_t from = chromosome.genes()[i];
    const double etc_from = problem.etc_at(problem.tasks()[i], from);
    for (std::size_t to = 0; to < machines; ++to) {
      if (to == from) continue;
      const double etc_to = problem.etc_at(problem.tasks()[i], to);
      const double new_from = load[from] - etc_from;
      const double new_to = load[to] + etc_to;
      // New makespan: max over unchanged machines and the two moved ones.
      double span = std::max(new_from, new_to);
      for (std::size_t m = 0; m < machines; ++m) {
        if (m != from && m != to && load[m] > span) span = load[m];
      }
      if (span < best_span - 1e-12) {
        best_span = span;
        best_task = i;
        best_slot = to;
        found = true;
      }
    }
  }
  if (!found) return false;
  const std::size_t from = chromosome.genes()[best_task];
  const auto task = problem.tasks()[best_task];
  load[from] -= problem.etc_at(task, from);
  load[best_slot] += problem.etc_at(task, best_slot);
  chromosome.genes()[best_task] = static_cast<std::uint32_t>(best_slot);
  makespan = best_span;
  return true;
}

std::vector<double> loads_of(const Problem& problem,
                             const ga::Chromosome& chromosome) {
  std::vector<double> load = problem.initial_ready_times();
  for (std::size_t i = 0; i < chromosome.size(); ++i) {
    load[chromosome.genes()[i]] +=
        problem.etc_at(problem.tasks()[i], chromosome.genes()[i]);
  }
  return load;
}

}  // namespace

std::size_t hamming_distance(const ga::Chromosome& a,
                             const ga::Chromosome& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: size mismatch");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.genes()[i] != b.genes()[i]) ++d;
  }
  return d;
}

TabuSearch::TabuSearch(TabuConfig config) : config_(config) {}

Schedule TabuSearch::do_map(const Problem& problem, TieBreaker& ties) const {
  return do_map_seeded(problem, ties, nullptr);
}

Schedule TabuSearch::do_map_seeded(const Problem& problem, TieBreaker& ties,
                                const Schedule* seed) const {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("Tabu: no machines");
  }
  rng::Rng rng(config_.seed);

  ga::Chromosome current = [&] {
    if (seed != nullptr) return ga::Chromosome::from_schedule(problem, *seed);
    if (config_.seed_with_minmin) {
      MinMin minmin;
      rng::TieBreaker det;
      return ga::Chromosome::from_schedule(problem, minmin.map(problem, det));
    }
    return ga::Chromosome::random(problem, rng);
  }();

  std::vector<ga::Chromosome> tabu;
  ga::Chromosome best = current;
  double best_span = current.evaluate(problem);

  const std::size_t min_distance = std::max<std::size_t>(1, current.size() / 2);
  for (std::size_t hop = 0; hop <= config_.max_long_hops; ++hop) {
    // Anytime contract: stop between hops (and between short-hop descents)
    // once a budget is cancelled; `best` stays a complete mapping.
    if (core::cancellation_requested()) break;
    // Short-hop descent to a local minimum.
    std::vector<double> load = loads_of(problem, current);
    double span = current.evaluate(problem);
    while (best_short_hop(problem, current, load, span)) {
      if (core::cancellation_requested()) break;
    }
    if (span < best_span) {
      best = current;
      best_span = span;
    }
    tabu.push_back(current);

    if (hop == config_.max_long_hops || problem.num_machines() < 2 ||
        current.size() == 0) {
      break;
    }
    // Long hop: a random mapping far from every tabu entry.
    bool hopped = false;
    for (std::size_t attempt = 0; attempt < config_.long_hop_attempts;
         ++attempt) {
      ga::Chromosome candidate = ga::Chromosome::random(problem, rng);
      bool far = true;
      for (const auto& t : tabu) {
        if (hamming_distance(candidate, t) < min_distance) {
          far = false;
          break;
        }
      }
      if (far) {
        current = std::move(candidate);
        hopped = true;
        break;
      }
    }
    if (!hopped) break;  // search space exhausted around the tabu regions
  }

  (void)ties;  // Tabu's stochastic decisions come from its own stream.
  return best.decode(problem);
}

}  // namespace hcsched::heuristics
