#include "heuristics/heuristic.hpp"

#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/fault/fault.hpp"  // dependency-light by design (see its header)

#if HCSCHED_TRACE
#include <chrono>
#endif

namespace hcsched::heuristics {

namespace {

#if HCSCHED_TRACE
/// Times one heuristic invocation and feeds the counter/timing registries
/// (and the tracer, when a sink is installed) on scope exit.
class CallScope {
 public:
  CallScope(const Heuristic& heuristic, const Problem& problem, bool seeded)
      : heuristic_(heuristic),
        problem_(problem),
        seeded_(seeded),
        span_("map:" + std::string(heuristic.name())),
        start_(std::chrono::steady_clock::now()) {
    // The span inherits the calling context (iteration span, trial span)
    // so per-heuristic time lands under the right profile path.
    if (span_.recording()) {
      span_.attr("heuristic", obs::JsonValue(heuristic.name()));
      span_.attr("seeded", obs::JsonValue(seeded));
    }
  }

  ~CallScope() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    obs::counters::add(obs::Counter::kHeuristicInvocations);
    obs::record_heuristic_call(heuristic_.name(), ns);
    HCSCHED_METRIC_COUNT("hcsched_heuristic_invocations_total",
                         "Heuristic map/map_seeded calls", 1);
    HCSCHED_METRIC_OBSERVE("hcsched_heuristic_map_ns",
                           "Latency of one heuristic mapping call", ns);
    HCSCHED_TRACE_EVENT(
        "heuristic.call",
        {{"heuristic", obs::JsonValue(heuristic_.name())},
         {"tasks", obs::JsonValue(problem_.num_tasks())},
         {"machines", obs::JsonValue(problem_.num_machines())},
         {"seeded", obs::JsonValue(seeded_)},
         {"duration_ns", obs::JsonValue(ns)}});
  }

 private:
  const Heuristic& heuristic_;
  const Problem& problem_;
  bool seeded_;
  // Declared before start_ so the span's window covers the whole call and
  // closes (emits) after the duration is taken.
  obs::ScopedSpan span_;
  std::chrono::steady_clock::time_point start_;
};
#endif

}  // namespace

Schedule Heuristic::map(const Problem& problem, TieBreaker& ties) const {
  // The heuristic-map fault site, keyed by the thread's current fault key
  // (the study installs its (trial, heuristic) key). One relaxed atomic
  // load when nothing is armed.
  sim::fault::maybe_inject_here(sim::fault::Site::kHeuristicMap);
#if HCSCHED_TRACE
  const CallScope scope(*this, problem, /*seeded=*/false);
#endif
  return do_map(problem, ties);
}

Schedule Heuristic::map_seeded(const Problem& problem, TieBreaker& ties,
                               const Schedule* seed) const {
  sim::fault::maybe_inject_here(sim::fault::Site::kHeuristicMap);
#if HCSCHED_TRACE
  const CallScope scope(*this, problem, /*seeded=*/seed != nullptr);
#endif
  return do_map_seeded(problem, ties, seed);
}

void completion_times(const Problem& problem, TaskId task,
                      const std::vector<double>& ready,
                      std::vector<double>& scores) {
  const std::size_t m = problem.num_machines();
  HCSCHED_COUNT(obs::Counter::kEtcCellEvaluations, m);
  scores.resize(m);
  for (std::size_t slot = 0; slot < m; ++slot) {
    scores[slot] = ready[slot] + problem.etc_at(task, slot);
  }
}

}  // namespace hcsched::heuristics
