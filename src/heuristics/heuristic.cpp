#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

void completion_times(const Problem& problem, TaskId task,
                      const std::vector<double>& ready,
                      std::vector<double>& scores) {
  const std::size_t m = problem.num_machines();
  scores.resize(m);
  for (std::size_t slot = 0; slot < m; ++slot) {
    scores[slot] = ready[slot] + problem.etc_at(task, slot);
  }
}

}  // namespace hcsched::heuristics
