#include "heuristics/astar.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/cancel.hpp"
#include "obs/counters.hpp"

namespace hcsched::heuristics {

namespace {

struct Node {
  std::shared_ptr<const Node> parent{};  // chain of assignments
  std::uint32_t slot = 0;                // machine slot chosen at `depth-1`
  std::size_t depth = 0;                 // tasks fixed so far
  std::vector<double> load{};            // machine loads after assignment
  double f = 0.0;
  std::uint64_t order = 0;               // tie-break: older node first
};

struct NodeCompare {
  bool operator()(const std::shared_ptr<const Node>& a,
                  const std::shared_ptr<const Node>& b) const {
    if (a->f != b->f) return a->f > b->f;  // min-heap on f
    return a->order > b->order;
  }
};

}  // namespace

AStar::AStar(AStarConfig config) : config_(config) {
  if (config_.beam_width == 0) {
    throw std::invalid_argument("AStar: beam_width must be positive");
  }
}

Schedule AStar::do_map(const Problem& problem, TieBreaker& ties) const {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("AStar: no machines");
  }
  const std::size_t n = problem.num_tasks();
  const std::size_t machines = problem.num_machines();

  // Task order: hardest (largest min-ETC) first.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> min_etc(n);
  for (std::size_t i = 0; i < n; ++i) {
    double lo = problem.etc_at(problem.tasks()[i], 0);
    for (std::size_t m = 1; m < machines; ++m) {
      lo = std::min(lo, problem.etc_at(problem.tasks()[i], m));
    }
    min_etc[i] = lo;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return min_etc[a] > min_etc[b];
  });
  // Suffix aggregates of the remaining work for the heuristic h(n).
  std::vector<double> suffix_sum(n + 1, 0.0);
  std::vector<double> suffix_max(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    suffix_sum[i] = suffix_sum[i + 1] + min_etc[order[i]];
    suffix_max[i] = std::max(suffix_max[i + 1], min_etc[order[i]]);
  }

  const auto f_value = [&](const std::vector<double>& load,
                           std::size_t depth) {
    double g = 0.0;
    double total = 0.0;
    double min_load = load.empty() ? 0.0 : load[0];
    for (double l : load) {
      g = std::max(g, l);
      total += l;
      min_load = std::min(min_load, l);
    }
    const double balanced =
        (total + suffix_sum[depth]) / static_cast<double>(machines);
    // The largest remaining task must run somewhere: at least min_load +
    // its min ETC.
    const double must_run = depth < n ? min_load + suffix_max[depth] : 0.0;
    return std::max({g, balanced, must_run});
  };

  std::priority_queue<std::shared_ptr<const Node>,
                      std::vector<std::shared_ptr<const Node>>, NodeCompare>
      open;
  std::uint64_t counter = 0;
  {
    auto root = std::make_shared<Node>();
    root->load = problem.initial_ready_times();
    root->f = f_value(root->load, 0);
    root->order = counter++;
    open.push(std::move(root));
  }

  std::shared_ptr<const Node> goal;
  std::size_t expansions = 0;
  // Overflow handling: rather than re-heapifying, prune lazily by tracking
  // how many live nodes we may still expand; when the open list grows past
  // the beam, rebuild keeping the best beam_width nodes.
  while (!open.empty()) {
    auto node = open.top();
    open.pop();
    if (node->depth == n) {
      goal = std::move(node);
      break;
    }
    if (++expansions > config_.max_expansions) break;
    // Anytime contract: a cancelled budget ends the search within one
    // expansion; the greedy fallback below still emits a complete mapping.
    if (core::cancellation_requested()) break;
    HCSCHED_COUNT(obs::Counter::kSearchNodesExpanded);
    for (std::size_t slot = 0; slot < machines; ++slot) {
      auto child = std::make_shared<Node>();
      child->parent = node;
      child->slot = static_cast<std::uint32_t>(slot);
      child->depth = node->depth + 1;
      child->load = node->load;
      child->load[slot] +=
          problem.etc_at(problem.tasks()[order[node->depth]], slot);
      child->f = f_value(child->load, child->depth);
      child->order = counter++;
      open.push(std::move(child));
    }
    if (open.size() > config_.beam_width) {
      // Keep the best beam_width nodes.
      std::vector<std::shared_ptr<const Node>> keep;
      keep.reserve(config_.beam_width);
      while (!open.empty() && keep.size() < config_.beam_width) {
        keep.push_back(open.top());
        open.pop();
      }
      while (!open.empty()) open.pop();
      for (auto& k : keep) open.push(std::move(k));
    }
  }

  Schedule schedule(problem);
  if (goal == nullptr) {
    // Expansion cap hit before any leaf (pathological beam settings):
    // fall back to greedy MCT order so the result is still complete.
    std::vector<double> ready = problem.initial_ready_times();
    for (std::size_t i = 0; i < n; ++i) {
      const auto task = problem.tasks()[order[i]];
      std::size_t best = 0;
      double best_ct = ready[0] + problem.etc_at(task, 0);
      for (std::size_t m = 1; m < machines; ++m) {
        const double ct = ready[m] + problem.etc_at(task, m);
        if (ct < best_ct) {
          best_ct = ct;
          best = m;
        }
      }
      ready[best] = schedule.assign(task, problem.machines()[best]);
    }
    (void)ties;
    return schedule;
  }

  // Reconstruct the assignment chain (slots recorded leaf -> root).
  std::vector<std::uint32_t> slots(n);
  for (const Node* cur = goal.get(); cur->depth > 0; cur = cur->parent.get()) {
    slots[cur->depth - 1] = cur->slot;
  }
  for (std::size_t i = 0; i < n; ++i) {
    schedule.assign(problem.tasks()[order[i]],
                    problem.machines()[slots[i]]);
  }
  (void)ties;  // deterministic: f-ties resolved by node age
  return schedule;
}

}  // namespace hcsched::heuristics
