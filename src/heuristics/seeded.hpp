// Seeded wrapper — the paper's §5 proposal, implemented.
//
// "Implementing a form of seeding similar to Genitor's seeding to other
//  heuristics would guarantee that a heuristic can never increase makespan
//  from one iteration to the next. This would cause the best solutions to
//  be preserved across iterations, thus changing the mapping only if a
//  better mapping is found." — paper §5.
//
// Seeded<H> runs the inner heuristic and, when the iterative technique
// supplies the previous iteration's mapping as a seed, returns whichever of
// {inner result, seed} has the smaller makespan (the seed wins ties,
// preserving the incumbent exactly as Genitor's rank insertion does). This
// makes the iterative technique monotone for ANY inner heuristic — verified
// as a property test over every registered heuristic in test_seeded.cpp and
// quantified by bench_seeding_ablation.
//
// Seeded is a wrapper combinator constructed around an inner heuristic, not
// a heuristic with its own name-based registry entry:
// hcsched-lint: allow(heuristic-registry)
#pragma once

#include <memory>
#include <string>

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

class Seeded final : public Heuristic {
 public:
  /// Takes ownership of the inner heuristic.
  explicit Seeded(std::unique_ptr<Heuristic> inner);

  /// Reported as "Seeded<inner-name>".
  std::string_view name() const noexcept override { return name_; }

  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
  Schedule do_map_seeded(const Problem& problem, TieBreaker& ties,
                      const Schedule* seed) const override;

  bool deterministic_given_ties() const noexcept override {
    return inner_->deterministic_given_ties();
  }

  const Heuristic& inner() const noexcept { return *inner_; }

 private:
  std::unique_ptr<Heuristic> inner_;
  std::string name_;
};

/// Convenience: wrap a registry heuristic by name.
std::unique_ptr<Heuristic> make_seeded(std::string_view inner_name);

}  // namespace hcsched::heuristics
