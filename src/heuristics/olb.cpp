#include "heuristics/olb.hpp"

namespace hcsched::heuristics {

Schedule Olb::do_map(const Problem& problem, TieBreaker& ties) const {
  Schedule schedule(problem);
  std::vector<double> ready = problem.initial_ready_times();
  for (TaskId task : problem.tasks()) {
    const std::size_t slot = ties.choose_min(ready);
    ready[slot] = schedule.assign(task, problem.machines()[slot]);
  }
  return schedule;
}

}  // namespace hcsched::heuristics
