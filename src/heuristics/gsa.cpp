#include "heuristics/gsa.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/cancel.hpp"
#include "ga/chromosome.hpp"
#include "ga/operators.hpp"
#include "heuristics/minmin.hpp"

namespace hcsched::heuristics {

Gsa::Gsa(GsaConfig config) : config_(config) {
  if (config_.population_size < 2) {
    throw std::invalid_argument("GSA: population_size must be >= 2");
  }
  if (config_.cooling <= 0.0 || config_.cooling >= 1.0) {
    throw std::invalid_argument("GSA: cooling must be in (0, 1)");
  }
}

Schedule Gsa::do_map(const Problem& problem, TieBreaker& ties) const {
  return do_map_seeded(problem, ties, nullptr);
}

Schedule Gsa::do_map_seeded(const Problem& problem, TieBreaker& ties,
                         const Schedule* seed) const {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("GSA: no machines");
  }
  rng::Rng rng(config_.seed);

  // Flat population (kept unsorted; GSA's acceptance is local, not ranked).
  struct Member {
    ga::Chromosome chromosome;
    double makespan;
  };
  std::vector<Member> population;
  population.reserve(config_.population_size);
  auto add = [&](ga::Chromosome c) {
    const double span = c.evaluate(problem);
    population.push_back(Member{std::move(c), span});
  };
  if (seed != nullptr) add(ga::Chromosome::from_schedule(problem, *seed));
  if (config_.seed_with_minmin) {
    MinMin minmin;
    rng::TieBreaker det;
    add(ga::Chromosome::from_schedule(problem, minmin.map(problem, det)));
  }
  while (population.size() < config_.population_size) {
    add(ga::Chromosome::random(problem, rng));
  }

  auto best_index = [&] {
    std::size_t best = 0;
    for (std::size_t i = 1; i < population.size(); ++i) {
      if (population[i].makespan < population[best].makespan) best = i;
    }
    return best;
  };

  double temperature = population[best_index()].makespan;
  for (std::size_t step = 0; step < config_.steps && temperature > 1e-9;
       ++step) {
    // Anytime contract: stop within one step once a budget is cancelled;
    // the population's best is always a complete mapping.
    if (core::cancellation_requested()) break;
    const std::size_t elite = best_index();
    // Two random parents -> crossover -> one mutated offspring.
    const std::size_t pa = static_cast<std::size_t>(
        rng.below(population.size()));
    const std::size_t pb = static_cast<std::size_t>(
        rng.below(population.size()));
    auto [oa, ob] = ga::crossover(population[pa].chromosome,
                                  population[pb].chromosome, rng);
    ga::Chromosome offspring = rng.chance(0.5) ? std::move(oa) : std::move(ob);
    ga::mutate(offspring, problem.num_machines(), rng);
    const double span = offspring.evaluate(problem);

    // SA acceptance against a random non-elite incumbent.
    std::size_t victim = static_cast<std::size_t>(
        rng.below(population.size()));
    if (victim == elite) victim = (victim + 1) % population.size();
    const double delta = span - population[victim].makespan;
    if (delta <= 0.0 || rng.uniform01() < std::exp(-delta / temperature)) {
      population[victim] = Member{std::move(offspring), span};
    }
    temperature *= config_.cooling;
  }

  (void)ties;  // GSA's stochastic decisions come from its own stream.
  return population[best_index()].chromosome.decode(problem);
}

}  // namespace hcsched::heuristics
