// K-Percent Best (KPB) — paper §3.6, Figure 14; Maheswaran et al. [14].
//
// A hybrid of MET and MCT: for each task (in list order) form the subset of
// the floor(|M| * k / 100) machines with the best (smallest) ETC for that
// task — never fewer than one — then assign the task to the machine of that
// subset giving the earliest completion time. k = 100% degenerates to MCT;
// a subset of size one degenerates to MET. The paper's k = 70% example
// (Tables 12-14) increases makespan under the iterative technique precisely
// because the subset size drops from two machines to one when the makespan
// machine is removed.
//
// Determinism note: ETC ties during subset formation are resolved toward the
// lower machine slot (stable sort), independent of the TieBreaker; the
// TieBreaker handles completion-time ties inside the subset.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

/// Per-task trace row (paper Table 13's "K-%" column: the machine subset
/// considered for the task).
struct KpbStep {
  TaskId task = -1;
  MachineId machine = -1;                ///< machine chosen
  double completion = 0.0;               ///< resulting completion time
  std::vector<MachineId> subset{};       ///< the k-percent-best machines
};

class Kpb final : public Heuristic {
 public:
  /// `k_percent` in (0, 100].
  explicit Kpb(double k_percent = 70.0);

  std::string_view name() const noexcept override { return "KPB"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;

  Schedule map_traced(const Problem& problem, TieBreaker& ties,
                      std::vector<KpbStep>* trace) const;

  double k_percent() const noexcept { return k_percent_; }

  /// Subset size for a suite of `machines` machines: max(1, floor(m*k/100)).
  std::size_t subset_size(std::size_t machines) const noexcept;

 private:
  double k_percent_;
};

namespace detail {
/// The reference loop: full stable sort of every machine slot by ETC per
/// task. `subset_size` is Kpb::subset_size(problem.num_machines()). Always
/// available — the oracle for fastpath::kpb_fast and the dispatch target
/// when the fast path is disabled.
Schedule kpb_reference(const Problem& problem, TieBreaker& ties,
                       std::size_t subset_size, std::vector<KpbStep>* trace);
}  // namespace detail

}  // namespace hcsched::heuristics
