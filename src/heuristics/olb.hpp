// Opportunistic Load Balancing (OLB) — Braun et al. [3] baseline.
//
// Each task (in list order) goes to the machine that becomes ready soonest,
// regardless of the task's ETC there. Not part of the paper's heuristic set
// but the standard naive baseline in the same literature; included for the
// extension studies.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

class Olb final : public Heuristic {
 public:
  std::string_view name() const noexcept override { return "OLB"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
};

}  // namespace hcsched::heuristics
