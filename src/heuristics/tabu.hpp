// Tabu Search — Braun et al. 2001 baseline (cited as [3]).
//
// Keeps one current mapping. A *short hop* is the best single-task
// reassignment found by scanning all (task, machine) moves; short hops
// repeat until no move improves the makespan (a local minimum). The local
// minimum is appended to the tabu list; a *long hop* then jumps to a random
// mapping whose Hamming distance to every tabu entry is at least half the
// task count, and the local search restarts. The search stops after the
// configured number of successful long hops (or when no sufficiently
// distant mapping can be sampled); the best local minimum seen is returned.
#pragma once

#include <vector>

#include "ga/chromosome.hpp"
#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

struct TabuConfig {
  std::size_t max_long_hops = 8;
  /// Attempts to sample a far-enough restart point per long hop.
  std::size_t long_hop_attempts = 200;
  bool seed_with_minmin = true;
  std::uint64_t seed = 0x7AB0ULL;
};

class TabuSearch final : public Heuristic {
 public:
  explicit TabuSearch(TabuConfig config = {});

  std::string_view name() const noexcept override { return "Tabu"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
  Schedule do_map_seeded(const Problem& problem, TieBreaker& ties,
                      const Schedule* seed) const override;

  bool deterministic_given_ties() const noexcept override { return false; }

  const TabuConfig& config() const noexcept { return config_; }

 private:
  TabuConfig config_;
};

/// Number of positions at which two equal-length chromosomes differ.
std::size_t hamming_distance(const ga::Chromosome& a, const ga::Chromosome& b);

}  // namespace hcsched::heuristics
