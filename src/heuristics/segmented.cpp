#include "heuristics/segmented.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hcsched::heuristics {

SegmentedMinMin::SegmentedMinMin(std::size_t segments, SegmentKey key)
    : segments_(segments), key_(key) {
  if (segments == 0) {
    throw std::invalid_argument("SegmentedMinMin: segments must be >= 1");
  }
}

double SegmentedMinMin::key_of(const Problem& problem, TaskId task) const {
  double acc = 0.0;
  switch (key_) {
    case SegmentKey::kAverage: {
      for (std::size_t slot = 0; slot < problem.num_machines(); ++slot) {
        acc += problem.etc_at(task, slot);
      }
      return acc / static_cast<double>(problem.num_machines());
    }
    case SegmentKey::kMin: {
      acc = problem.etc_at(task, 0);
      for (std::size_t slot = 1; slot < problem.num_machines(); ++slot) {
        acc = std::min(acc, problem.etc_at(task, slot));
      }
      return acc;
    }
    case SegmentKey::kMax: {
      acc = problem.etc_at(task, 0);
      for (std::size_t slot = 1; slot < problem.num_machines(); ++slot) {
        acc = std::max(acc, problem.etc_at(task, slot));
      }
      return acc;
    }
  }
  return acc;
}

Schedule SegmentedMinMin::do_map(const Problem& problem,
                              TieBreaker& ties) const {
  Schedule schedule(problem);
  if (problem.num_tasks() == 0) return schedule;
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("SegmentedMinMin: no machines");
  }

  // Sort tasks by key, descending; stable toward the problem's task order.
  std::vector<TaskId> sorted = problem.tasks();
  std::vector<double> keys(problem.matrix().num_tasks(), 0.0);
  for (TaskId t : sorted) {
    keys[static_cast<std::size_t>(t)] = key_of(problem, t);
  }
  std::stable_sort(sorted.begin(), sorted.end(), [&](TaskId a, TaskId b) {
    return keys[static_cast<std::size_t>(a)] >
           keys[static_cast<std::size_t>(b)];
  });

  // Segment boundaries: ceil-sized leading segments so all tasks covered.
  const std::size_t n = sorted.size();
  const std::size_t seg_count = std::min(segments_, n);
  std::vector<double> ready = problem.initial_ready_times();
  std::vector<double> scores;

  std::size_t begin = 0;
  for (std::size_t s = 0; s < seg_count; ++s) {
    const std::size_t len = n / seg_count + (s < n % seg_count ? 1 : 0);
    std::vector<TaskId> segment(sorted.begin() +
                                    static_cast<std::ptrdiff_t>(begin),
                                sorted.begin() +
                                    static_cast<std::ptrdiff_t>(begin + len));
    begin += len;

    // Min-Min over this segment, continuing from the accumulated loads.
    while (!segment.empty()) {
      std::size_t pick = 0;
      std::size_t pick_slot = 0;
      double pick_ct = 0.0;
      std::vector<double> best_ct(segment.size());
      std::vector<std::size_t> best_slot(segment.size());
      for (std::size_t i = 0; i < segment.size(); ++i) {
        completion_times(problem, segment[i], ready, scores);
        const std::size_t slot = ties.choose_min(scores);
        best_slot[i] = slot;
        best_ct[i] = scores[slot];
      }
      pick = ties.choose_min(best_ct);
      pick_slot = best_slot[pick];
      pick_ct = best_ct[pick];
      (void)pick_ct;
      ready[pick_slot] =
          schedule.assign(segment[pick], problem.machines()[pick_slot]);
      segment.erase(segment.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  return schedule;
}

}  // namespace hcsched::heuristics
