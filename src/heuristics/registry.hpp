// Heuristic registry: construction by name and the canonical study sets.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

/// Constructs a heuristic by its canonical name ("MET", "MCT", "OLB",
/// "Min-Min", "Max-Min", "Duplex", "Sufferage", "KPB", "SWA", "Genitor",
/// "SA", "GSA", "Tabu", "Segmented Min-Min"); matching is case-insensitive
/// and ignores '-', '_' and spaces. Throws on unknown names.
std::unique_ptr<Heuristic> make_heuristic(std::string_view name);

/// The seven heuristics studied in the paper, in the paper's order:
/// MET, MCT, Min-Min, Genitor, SWA, Sufferage, KPB.
std::vector<std::unique_ptr<Heuristic>> paper_heuristics();

/// The paper set plus the classic Braun et al. baselines (OLB, Max-Min,
/// Duplex) used by the extension studies.
std::vector<std::unique_ptr<Heuristic>> all_heuristics();

/// all_heuristics() plus the search-based Braun et al. baselines (SA, GSA,
/// Tabu) and Segmented Min-Min (Wu & Shu, cited as [18] in the paper).
std::vector<std::unique_ptr<Heuristic>> extended_heuristics();

/// Names accepted by make_heuristic, canonical spelling.
std::vector<std::string> known_heuristic_names();

}  // namespace hcsched::heuristics
