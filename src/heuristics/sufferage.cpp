#include "heuristics/sufferage.hpp"

#include <algorithm>
#include <limits>

#include "heuristics/fastpath/fastpath.hpp"

namespace hcsched::heuristics {

namespace {

/// Earliest and second-earliest completion times of `scores`; the earliest
/// slot is chosen through the tie-breaker (machine-slot order).
struct BestTwo {
  std::size_t best_slot = 0;
  double best_ct = 0.0;
  double second_ct = 0.0;
};

BestTwo best_two(const std::vector<double>& scores, TieBreaker& ties) {
  BestTwo out;
  out.best_slot = ties.choose_min(scores);
  out.best_ct = scores[out.best_slot];
  out.second_ct = std::numeric_limits<double>::infinity();
  for (std::size_t slot = 0; slot < scores.size(); ++slot) {
    if (slot == out.best_slot) continue;
    out.second_ct = std::min(out.second_ct, scores[slot]);
  }
  if (scores.size() == 1) out.second_ct = out.best_ct;  // sufferage := 0
  return out;
}

}  // namespace

namespace detail {

Schedule sufferage_reference(const Problem& problem, TieBreaker& ties,
                             SufferageRequeue requeue,
                             std::vector<SufferageStep>* trace) {
  Schedule schedule(problem);
  std::vector<double> ready = problem.initial_ready_times();
  std::vector<TaskId> pending = problem.tasks();

  // Original list position, for restoring canonical order between passes.
  std::vector<std::size_t> position(problem.matrix().num_tasks(), 0);
  for (std::size_t i = 0; i < problem.tasks().size(); ++i) {
    position[static_cast<std::size_t>(problem.tasks()[i])] = i;
  }

  std::vector<double> scores;
  std::size_t pass = 0;
  while (!pending.empty()) {
    ++pass;
    // Tentative claims for this pass, by machine slot.
    struct Claim {
      TaskId task = -1;
      double sufferage = 0.0;
      double min_ct = 0.0;
    };
    std::vector<Claim> claim(problem.num_machines());
    std::vector<TaskId> next_round;

    for (TaskId task : pending) {
      completion_times(problem, task, ready, scores);
      const BestTwo two = best_two(scores, ties);
      const double suff = two.second_ct - two.best_ct;
      Claim& c = claim[two.best_slot];
      if (c.task < 0) {
        c = Claim{task, suff, two.best_ct};
      } else if (c.sufferage < suff) {
        next_round.push_back(c.task);  // evicted, back to the list
        c = Claim{task, suff, two.best_ct};
      } else {
        next_round.push_back(task);
      }
    }

    // Commit this pass's claims and update ready times (Figure 17 step iii).
    for (std::size_t slot = 0; slot < claim.size(); ++slot) {
      const Claim& c = claim[slot];
      if (c.task < 0) continue;
      ready[slot] = schedule.assign(c.task, problem.machines()[slot]);
      if (trace != nullptr) {
        trace->push_back(SufferageStep{pass, c.task,
                                       problem.machines()[slot], c.min_ct,
                                       c.sufferage});
      }
    }

    if (requeue == SufferageRequeue::kOriginalOrder) {
      std::sort(next_round.begin(), next_round.end(),
                [&](TaskId a, TaskId b) {
                  return position[static_cast<std::size_t>(a)] <
                         position[static_cast<std::size_t>(b)];
                });
    }
    pending = std::move(next_round);
  }
  return schedule;
}

}  // namespace detail

Schedule Sufferage::do_map(const Problem& problem, TieBreaker& ties) const {
  return map_traced(problem, ties, nullptr);
}

Schedule Sufferage::map_traced(const Problem& problem, TieBreaker& ties,
                               std::vector<SufferageStep>* trace) const {
  if (fastpath::enabled()) {
    return fastpath::sufferage_fast(problem, ties, requeue_, trace);
  }
  return detail::sufferage_reference(problem, ties, requeue_, trace);
}

}  // namespace hcsched::heuristics
