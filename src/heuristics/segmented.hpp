// Segmented Min-Min — Wu & Shu, HCW 2000 (cited as [18] in the paper).
//
// Plain Min-Min maps short tasks first, which can strand long tasks on
// loaded machines. Segmented Min-Min sorts tasks by a per-task key
// (average, minimum or maximum ETC across machines), splits the sorted list
// into N equal segments, and runs Min-Min on each segment in order from
// largest key to smallest — forcing the long tasks to be placed while the
// suite is still lightly loaded. With one segment it degenerates to exactly
// Min-Min.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

enum class SegmentKey : std::uint8_t { kAverage, kMin, kMax };

class SegmentedMinMin final : public Heuristic {
 public:
  explicit SegmentedMinMin(std::size_t segments = 4,
                           SegmentKey key = SegmentKey::kAverage);

  std::string_view name() const noexcept override {
    return "Segmented Min-Min";
  }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;

  std::size_t segments() const noexcept { return segments_; }
  SegmentKey key() const noexcept { return key_; }

 private:
  double key_of(const Problem& problem, TaskId task) const;

  std::size_t segments_;
  SegmentKey key_;
};

}  // namespace hcsched::heuristics
