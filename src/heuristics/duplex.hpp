// Duplex — Braun et al. [3] baseline.
//
// Runs Min-Min and Max-Min on the same problem and keeps whichever mapping
// has the smaller makespan (Min-Min wins exact ties, matching the
// literature's description). By construction its makespan is
// min(Min-Min, Max-Min).
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

class Duplex final : public Heuristic {
 public:
  std::string_view name() const noexcept override { return "Duplex"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
};

}  // namespace hcsched::heuristics
