#include "heuristics/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "ga/genitor.hpp"
#include "heuristics/duplex.hpp"
#include "heuristics/gsa.hpp"
#include "heuristics/kpb.hpp"
#include "heuristics/localsearch/localsearch.hpp"
#include "heuristics/mct.hpp"
#include "heuristics/met.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/olb.hpp"
#include "heuristics/sa.hpp"
#include "heuristics/seeded.hpp"
#include "heuristics/segmented.hpp"
#include "heuristics/sufferage.hpp"
#include "heuristics/astar.hpp"
#include "heuristics/tabu.hpp"
#include "heuristics/swa.hpp"

namespace hcsched::heuristics {

namespace {

std::string canonical_key(std::string_view name) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ') continue;
    key.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return key;
}

}  // namespace

std::unique_ptr<Heuristic> make_heuristic(std::string_view name) {
  const std::string key = canonical_key(name);
  if (key == "met") return std::make_unique<Met>();
  if (key == "mct") return std::make_unique<Mct>();
  if (key == "olb") return std::make_unique<Olb>();
  if (key == "minmin") return std::make_unique<MinMin>();
  if (key == "maxmin") return std::make_unique<MaxMin>();
  if (key == "duplex") return std::make_unique<Duplex>();
  if (key == "sufferage") return std::make_unique<Sufferage>();
  if (key == "kpb" || key == "kpercentbest") return std::make_unique<Kpb>();
  if (key == "swa" || key == "switchingalgorithm") {
    return std::make_unique<Swa>();
  }
  if (key == "genitor") return std::make_unique<ga::Genitor>();
  if (key == "sa" || key == "simulatedannealing") {
    return std::make_unique<SimulatedAnnealing>();
  }
  if (key == "gsa" || key == "geneticsimulatedannealing") {
    return std::make_unique<Gsa>();
  }
  if (key == "tabu" || key == "tabusearch") {
    return std::make_unique<TabuSearch>();
  }
  if (key == "segmentedminmin" || key == "smm") {
    return std::make_unique<SegmentedMinMin>();
  }
  if (key == "localsearch" || key == "ls") {
    return std::make_unique<LocalSearch>();
  }
  if (key == "localsearchfi" || key == "lsfi") {
    LocalSearchConfig config;
    config.first_improvement = true;
    return std::make_unique<LocalSearch>(config);
  }
  if (key == "a*" || key == "astar") return std::make_unique<AStar>();
  throw std::invalid_argument("make_heuristic: unknown heuristic '" +
                              std::string(name) + "'");
}

std::vector<std::unique_ptr<Heuristic>> paper_heuristics() {
  std::vector<std::unique_ptr<Heuristic>> out;
  for (const char* name :
       {"MET", "MCT", "Min-Min", "Genitor", "SWA", "Sufferage", "KPB"}) {
    out.push_back(make_heuristic(name));
  }
  return out;
}

std::vector<std::unique_ptr<Heuristic>> all_heuristics() {
  std::vector<std::unique_ptr<Heuristic>> out = paper_heuristics();
  for (const char* name : {"OLB", "Max-Min", "Duplex"}) {
    out.push_back(make_heuristic(name));
  }
  return out;
}

std::vector<std::unique_ptr<Heuristic>> extended_heuristics() {
  std::vector<std::unique_ptr<Heuristic>> out = all_heuristics();
  for (const char* name : {"SA", "GSA", "Tabu", "Segmented Min-Min", "A*",
                           "Local-Search", "Local-Search-FI"}) {
    out.push_back(make_heuristic(name));
  }
  return out;
}

// Lives here rather than in seeded.cpp: the factory resolves the inner
// heuristic through the registry, and only the registry layer may depend
// back on concrete heuristics (the layering DAG forbids
// heuristics -> heuristics/registry edges).
std::unique_ptr<Heuristic> make_seeded(std::string_view inner_name) {
  return std::make_unique<Seeded>(make_heuristic(inner_name));
}

std::vector<std::string> known_heuristic_names() {
  return {"MET",     "MCT", "OLB",  "Min-Min", "Max-Min",
          "Duplex",  "Sufferage", "KPB", "SWA", "Genitor",
          "SA",      "GSA", "Tabu", "Segmented Min-Min", "A*",
          "Local-Search", "Local-Search-FI"};
}

}  // namespace hcsched::heuristics
