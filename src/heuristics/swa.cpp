#include "heuristics/swa.hpp"

#include <algorithm>
#include <stdexcept>

#include "heuristics/fastpath/fastpath.hpp"

namespace hcsched::heuristics {

Swa::Swa(double low_threshold, double high_threshold)
    : low_(low_threshold), high_(high_threshold) {
  if (!(0.0 <= low_ && low_ <= high_ && high_ <= 1.0)) {
    throw std::invalid_argument("Swa: need 0 <= low <= high <= 1");
  }
}

namespace detail {

Schedule swa_reference(const Problem& problem, TieBreaker& ties, double low,
                       double high, std::vector<SwaStep>* trace) {
  Schedule schedule(problem);
  std::vector<double> ready = problem.initial_ready_times();
  std::vector<double> scores(problem.num_machines());

  SwaMode mode = SwaMode::kMct;  // Figure 13 step 2: first task uses MCT.
  bool first = true;
  for (TaskId task : problem.tasks()) {
    std::optional<double> bi;
    if (!first) {
      const double lo = *std::min_element(ready.begin(), ready.end());
      const double hi = *std::max_element(ready.begin(), ready.end());
      // All-zero ready times only occur before any mapping; ETCs are
      // positive, so hi > 0 here. Guard anyway (zero-ETC degenerate input).
      bi = hi > 0.0 ? lo / hi : 0.0;
      if (*bi > high) {
        mode = SwaMode::kMet;
      } else if (*bi < low) {
        mode = SwaMode::kMct;
      }
    }
    if (mode == SwaMode::kMct) {
      completion_times(problem, task, ready, scores);
    } else {
      for (std::size_t slot = 0; slot < problem.num_machines(); ++slot) {
        scores[slot] = problem.etc_at(task, slot);
      }
    }
    const std::size_t slot = ties.choose_min(scores);
    const double finish = schedule.assign(task, problem.machines()[slot]);
    ready[slot] = finish;
    if (trace != nullptr) {
      trace->push_back(
          SwaStep{task, problem.machines()[slot], finish, bi, mode});
    }
    first = false;
  }
  return schedule;
}

}  // namespace detail

Schedule Swa::do_map(const Problem& problem, TieBreaker& ties) const {
  return map_traced(problem, ties, nullptr);
}

Schedule Swa::map_traced(const Problem& problem, TieBreaker& ties,
                         std::vector<SwaStep>* trace) const {
  if (fastpath::enabled()) {
    return fastpath::swa_fast(problem, ties, low_, high_, trace);
  }
  return detail::swa_reference(problem, ties, low_, high_, trace);
}

const char* to_string(SwaMode mode) noexcept {
  return mode == SwaMode::kMct ? "MCT" : "MET";
}

}  // namespace hcsched::heuristics
