// Simulated Annealing (SA) — Braun et al. 2001 baseline (cited as [3]).
//
// Iterative single-solution search over complete mappings: each step
// point-mutates the current mapping (one task to a random machine); an
// improving move is always accepted, a worsening move with probability
// exp(-delta / T). The temperature starts at the initial mapping's makespan
// and is multiplied by the cooling rate each step (Braun et al. use 90%
// per temperature level; the default here cools gently per step, which is
// equivalent in budget). The best mapping ever seen is returned.
//
// Like Genitor, SA draws from its own seeded stream, so a configured
// instance is deterministic run-to-run but not tie-breaker-driven.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

struct SaConfig {
  std::size_t steps = 4000;
  double cooling = 0.995;      ///< per-step multiplicative temperature decay
  double min_temperature = 1e-9;
  bool seed_with_minmin = true;  ///< else start from a random mapping
  std::uint64_t seed = 0x5AC0FFEEULL;
};

class SimulatedAnnealing final : public Heuristic {
 public:
  explicit SimulatedAnnealing(SaConfig config = {});

  std::string_view name() const noexcept override { return "SA"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
  Schedule do_map_seeded(const Problem& problem, TieBreaker& ties,
                      const Schedule* seed) const override;

  bool deterministic_given_ties() const noexcept override { return false; }

  const SaConfig& config() const noexcept { return config_; }

 private:
  SaConfig config_;
};

}  // namespace hcsched::heuristics
