// Sufferage — paper §3.7, Figure 17; Maheswaran et al. [14], Casanova et
// al. [4].
//
// Greedy with a limited local search. Each pass over the unmapped task list
// tentatively claims machines: a task wants its earliest-completion-time
// machine; its "sufferage" is how much it would suffer if denied that
// machine (second-earliest CT minus earliest CT). A task with strictly
// larger sufferage evicts the current tentative holder of a machine (the
// evicted task returns to the list). At the end of a pass all tentative
// claims are committed and ready times updated. The paper shows (Tables
// 15-17) that the iterative technique can increase Sufferage's makespan even
// with deterministic ties.
//
// Determinism notes (documented in DESIGN.md): the task list is processed in
// problem order; displaced/rejected tasks re-enter the next pass in original
// task order; an exact sufferage tie keeps the incumbent (Figure 17 uses
// strict "<"); with one machine the sufferage is defined as 0.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

/// One pass row of the Sufferage trace (paper Tables 16/17 report, per
/// mapped task: the pass number, its minimum CT, its sufferage value and the
/// machine it was committed to).
struct SufferageStep {
  std::size_t pass = 0;
  TaskId task = -1;
  MachineId machine = -1;
  double min_ct = 0.0;
  double sufferage = 0.0;
};

/// How displaced/rejected tasks re-enter the next pass. Figure 17 says
/// only "add t_i back to L"; kOriginalOrder (the default, documented in
/// DESIGN.md) restores the problem's task order, kEncounterOrder keeps the
/// order in which tasks were displaced/rejected within the pass. The
/// EXT-7d ablation shows the paper's phenomenon is insensitive to this.
enum class SufferageRequeue : std::uint8_t { kOriginalOrder, kEncounterOrder };

class Sufferage final : public Heuristic {
 public:
  explicit Sufferage(
      SufferageRequeue requeue = SufferageRequeue::kOriginalOrder)
      : requeue_(requeue) {}

  std::string_view name() const noexcept override { return "Sufferage"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;

  /// map() that also records the pass-by-pass commit trace.
  Schedule map_traced(const Problem& problem, TieBreaker& ties,
                      std::vector<SufferageStep>* trace) const;

  SufferageRequeue requeue() const noexcept { return requeue_; }

 private:
  SufferageRequeue requeue_;
};

namespace detail {
/// The reference pass loop: full best/second-best rescore of every pending
/// task each pass. Always available — the oracle the differential suite
/// compares fastpath::sufferage_fast against, and the path dispatched to
/// when the fast path is disabled.
Schedule sufferage_reference(const Problem& problem, TieBreaker& ties,
                             SufferageRequeue requeue,
                             std::vector<SufferageStep>* trace);
}  // namespace detail

}  // namespace hcsched::heuristics
