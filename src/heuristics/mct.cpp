#include "heuristics/mct.hpp"

namespace hcsched::heuristics {

Schedule Mct::do_map(const Problem& problem, TieBreaker& ties) const {
  Schedule schedule(problem);
  std::vector<double> ready = problem.initial_ready_times();
  std::vector<double> scores;
  for (TaskId task : problem.tasks()) {
    completion_times(problem, task, ready, scores);
    const std::size_t slot = ties.choose_min(scores);
    ready[slot] = schedule.assign(task, problem.machines()[slot]);
  }
  return schedule;
}

}  // namespace hcsched::heuristics
