// A* (beam-limited) — Braun et al. 2001's eleventh heuristic.
//
// Best-first search over partial mappings: tasks are assigned in a fixed
// order (descending minimum ETC, hardest first); a node at depth d fixes
// the first d tasks. f(n) = g(n) + h(n) with
//   g(n) = partial makespan (max machine load so far), and
//   h(n) = max( balanced-load bound on the remaining work,
//               largest remaining per-task minimum ETC completion ) - g(n),
// both admissible, so with an unbounded open list the search is exact. As
// in Braun et al. the open list is capped: when it exceeds `beam_width`,
// the worst-f nodes are dropped — bounding memory and time at the cost of
// optimality. Fully deterministic (no RNG; f-ties expand the older node).
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

struct AStarConfig {
  std::size_t beam_width = 1024;
  /// Hard cap on node expansions (safety valve; generous by default).
  std::size_t max_expansions = 200000;
};

class AStar final : public Heuristic {
 public:
  explicit AStar(AStarConfig config = {});

  std::string_view name() const noexcept override { return "A*"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;

  const AStarConfig& config() const noexcept { return config_; }

 private:
  AStarConfig config_;
};

}  // namespace hcsched::heuristics
