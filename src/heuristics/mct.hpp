// Minimum Completion Time (MCT) — paper §3.3, Figure 5; Braun et al. [3].
//
// Tasks are taken in the problem's (arbitrary but fixed) list order; each is
// mapped to the machine giving it the earliest completion time (machine
// ready time + ETC). The paper proves that with deterministic ties the
// iterative technique never changes an MCT mapping, and shows by example
// that random ties can increase the makespan.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

class Mct final : public Heuristic {
 public:
  std::string_view name() const noexcept override { return "MCT"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
};

}  // namespace hcsched::heuristics
