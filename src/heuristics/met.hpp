// Minimum Execution Time (MET) — paper §3.4, Figure 8; Braun et al. [3].
//
// Each task (in list order) goes to the machine with the smallest ETC for
// it, ignoring ready times entirely. MET therefore never balances load; it
// is included both as a baseline and as a component of SWA and KPB. The
// paper's trivial proof that MET mappings are invariant under the iterative
// technique (deterministic ties) holds because the ETC row of a task never
// changes between iterations.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

class Met final : public Heuristic {
 public:
  std::string_view name() const noexcept override { return "MET"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
};

}  // namespace hcsched::heuristics
