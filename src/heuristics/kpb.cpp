#include "heuristics/kpb.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "heuristics/fastpath/fastpath.hpp"

namespace hcsched::heuristics {

Kpb::Kpb(double k_percent) : k_percent_(k_percent) {
  if (k_percent <= 0.0 || k_percent > 100.0) {
    throw std::invalid_argument("Kpb: k_percent must be in (0, 100]");
  }
}

std::size_t Kpb::subset_size(std::size_t machines) const noexcept {
  const auto k = static_cast<std::size_t>(
      std::floor(static_cast<double>(machines) * k_percent_ / 100.0));
  return std::max<std::size_t>(1, k);
}

namespace detail {

Schedule kpb_reference(const Problem& problem, TieBreaker& ties,
                       std::size_t subset_size,
                       std::vector<KpbStep>* trace) {
  Schedule schedule(problem);
  std::vector<double> ready = problem.initial_ready_times();
  const std::size_t k = subset_size;

  std::vector<std::size_t> slots(problem.num_machines());
  std::vector<double> subset_ct(k);
  for (TaskId task : problem.tasks()) {
    // Rank machines by ETC for this task; stable toward lower slot.
    std::iota(slots.begin(), slots.end(), std::size_t{0});
    std::stable_sort(slots.begin(), slots.end(),
                     [&](std::size_t a, std::size_t b) {
                       return problem.etc_at(task, a) <
                              problem.etc_at(task, b);
                     });
    // Earliest completion within the k best.
    for (std::size_t i = 0; i < k; ++i) {
      subset_ct[i] = ready[slots[i]] + problem.etc_at(task, slots[i]);
    }
    const std::size_t pick = ties.choose_min(subset_ct);
    const std::size_t slot = slots[pick];
    const double finish = schedule.assign(task, problem.machines()[slot]);
    ready[slot] = finish;
    if (trace != nullptr) {
      KpbStep step;
      step.task = task;
      step.machine = problem.machines()[slot];
      step.completion = finish;
      step.subset.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        step.subset.push_back(problem.machines()[slots[i]]);
      }
      std::sort(step.subset.begin(), step.subset.end());
      trace->push_back(std::move(step));
    }
  }
  return schedule;
}

}  // namespace detail

Schedule Kpb::do_map(const Problem& problem, TieBreaker& ties) const {
  return map_traced(problem, ties, nullptr);
}

Schedule Kpb::map_traced(const Problem& problem, TieBreaker& ties,
                         std::vector<KpbStep>* trace) const {
  const std::size_t k = subset_size(problem.num_machines());
  if (fastpath::enabled()) {
    return fastpath::kpb_fast(problem, ties, k, trace);
  }
  return detail::kpb_reference(problem, ties, k, trace);
}

}  // namespace hcsched::heuristics
