#include "heuristics/duplex.hpp"

#include "heuristics/minmin.hpp"

namespace hcsched::heuristics {

Schedule Duplex::do_map(const Problem& problem, TieBreaker& ties) const {
  Schedule lo = detail::two_phase_greedy(problem, ties,
                                         /*prefer_largest=*/false);
  Schedule hi = detail::two_phase_greedy(problem, ties,
                                         /*prefer_largest=*/true);
  return hi.makespan() < lo.makespan() ? hi : lo;
}

}  // namespace hcsched::heuristics
