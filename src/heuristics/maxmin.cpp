// Max-Min lives in minmin.cpp (shared two-phase core). This translation
// unit exists so the build layout matches the documented one-heuristic-per-
// file convention and hosts Max-Min-specific static checks.
#include <type_traits>

#include "heuristics/minmin.hpp"

namespace hcsched::heuristics {

static_assert(!std::is_abstract_v<MaxMin>);

}  // namespace hcsched::heuristics
