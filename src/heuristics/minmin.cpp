#include "heuristics/minmin.hpp"

#include "heuristics/fastpath/fastpath.hpp"

namespace hcsched::heuristics {

namespace detail {

Schedule two_phase_greedy_reference(const Problem& problem, TieBreaker& ties,
                                    bool prefer_largest) {
  Schedule schedule(problem);
  std::vector<double> ready = problem.initial_ready_times();
  std::vector<TaskId> unmapped = problem.tasks();
  std::vector<double> scores;

  // Phase-one results for the current round, parallel to `unmapped`.
  std::vector<std::size_t> best_slot(unmapped.size());
  std::vector<double> best_ct(unmapped.size());

  while (!unmapped.empty()) {
    best_slot.resize(unmapped.size());
    best_ct.resize(unmapped.size());
    // Phase 1: each task's minimum-completion-time machine (ties broken by
    // the TieBreaker over machine slots, i.e. in machine-id order).
    for (std::size_t i = 0; i < unmapped.size(); ++i) {
      completion_times(problem, unmapped[i], ready, scores);
      const std::size_t slot = ties.choose_min(scores);
      best_slot[i] = slot;
      best_ct[i] = scores[slot];
    }
    // Phase 2: the task with the minimum (Min-Min) or maximum (Max-Min)
    // phase-one completion time; ties broken over tasks in list order.
    const std::size_t pick =
        prefer_largest ? ties.choose_max(best_ct) : ties.choose_min(best_ct);
    const TaskId task = unmapped[pick];
    const std::size_t slot = best_slot[pick];
    ready[slot] = schedule.assign(task, problem.machines()[slot]);
    // List order is load-bearing: phase-two ties resolve by *position* in
    // this list, and the positional order must stay the problem's original
    // task order (deterministic ties pick the earliest original task; a
    // random draw's index maps through ascending positions). A swap-and-pop
    // here would reorder survivors and change which task wins a later
    // phase-two tie — and thereby the final mapping, since the loser then
    // sees updated ready times (pinned by
    // FastpathDifferential.PhaseTwoTieBreaksInOriginalTaskOrder). The erase
    // is also not the bottleneck: its O(|T|) shift sits next to the
    // O(|T| x |M|) rescore above. The fast-path kernel avoids both via an
    // alive-mask over fixed positions, which preserves order for free.
    unmapped.erase(unmapped.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return schedule;
}

Schedule two_phase_greedy(const Problem& problem, TieBreaker& ties,
                          bool prefer_largest) {
  if (fastpath::enabled()) {
    return fastpath::two_phase_greedy_fast(problem, ties, prefer_largest);
  }
  return two_phase_greedy_reference(problem, ties, prefer_largest);
}

}  // namespace detail

Schedule MinMin::do_map(const Problem& problem, TieBreaker& ties) const {
  return detail::two_phase_greedy(problem, ties, /*prefer_largest=*/false);
}

Schedule MaxMin::do_map(const Problem& problem, TieBreaker& ties) const {
  return detail::two_phase_greedy(problem, ties, /*prefer_largest=*/true);
}

}  // namespace hcsched::heuristics
