// Min-Min — paper §3.2, Figure 2; Ibarra & Kim [8].
//
// Two-phase greedy: phase one finds, for every unmapped task, the machine
// giving its minimum completion time; phase two maps the task whose minimum
// completion time is smallest, updates that machine's ready time, and
// repeats. Ties arise in both phases; the paper's theorem (§3.2) proves the
// iterative technique cannot change a Min-Min mapping when both are broken
// deterministically, and its Table 1-3 example shows random ties can
// increase the makespan. Complexity O(|T|^2 |M|).
//
// Max-Min (paper-cited companion heuristic from the same literature) shares
// the phase-one scan but phase two picks the task whose minimum completion
// time is LARGEST — it front-loads long tasks. Both are thin wrappers over
// the shared two-phase core in this translation unit.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

class MinMin final : public Heuristic {
 public:
  std::string_view name() const noexcept override { return "Min-Min"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
};

class MaxMin final : public Heuristic {
 public:
  std::string_view name() const noexcept override { return "Max-Min"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
};

namespace detail {
/// Shared two-phase driver; `prefer_largest` selects Max-Min's phase two.
/// Dispatches to the incremental kernel (heuristics/fastpath/) when
/// fastpath::enabled(), otherwise to the reference loop below.
Schedule two_phase_greedy(const Problem& problem, TieBreaker& ties,
                          bool prefer_largest);

/// The reference implementation: full O(tasks x machines) rescore every
/// round. Always available — it is the oracle the differential suite
/// (tests/test_fastpath_differential.cpp, tools/fuzz/) compares the fast
/// path against, and the path every build dispatches to when the fast path
/// is disabled (-DHCSCHED_FASTPATH=OFF, HCSCHED_FASTPATH=0 in the
/// environment, or fastpath::set_mode(kForceOff)).
Schedule two_phase_greedy_reference(const Problem& problem, TieBreaker& ties,
                                    bool prefer_largest);
}  // namespace detail

}  // namespace hcsched::heuristics
