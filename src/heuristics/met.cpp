#include "heuristics/met.hpp"

namespace hcsched::heuristics {

Schedule Met::do_map(const Problem& problem, TieBreaker& ties) const {
  Schedule schedule(problem);
  std::vector<double> scores(problem.num_machines());
  for (TaskId task : problem.tasks()) {
    for (std::size_t slot = 0; slot < problem.num_machines(); ++slot) {
      scores[slot] = problem.etc_at(task, slot);
    }
    const std::size_t slot = ties.choose_min(scores);
    schedule.assign(task, problem.machines()[slot]);
  }
  return schedule;
}

}  // namespace hcsched::heuristics
