// Genetic Simulated Annealing (GSA) — Braun et al. 2001 baseline.
//
// A GA/SA hybrid: the population and operators are Genitor's, but offspring
// survival uses simulated-annealing acceptance instead of strict rank
// insertion — an offspring replaces a rank-selected incumbent when it is
// better OR when it is worse by delta with probability exp(-delta / T); the
// system temperature cools every step. Elitism is preserved (the best
// member is never the replacement victim), so GSA keeps Genitor's
// monotonicity property under seeding.
#pragma once

#include "heuristics/heuristic.hpp"

namespace hcsched::heuristics {

struct GsaConfig {
  std::size_t population_size = 50;
  std::size_t steps = 1500;
  double cooling = 0.997;
  double selection_bias = 1.4;
  bool seed_with_minmin = true;
  std::uint64_t seed = 0x65A0ULL;
};

class Gsa final : public Heuristic {
 public:
  explicit Gsa(GsaConfig config = {});

  std::string_view name() const noexcept override { return "GSA"; }
  Schedule do_map(const Problem& problem, TieBreaker& ties) const override;
  Schedule do_map_seeded(const Problem& problem, TieBreaker& ties,
                      const Schedule* seed) const override;

  bool deterministic_given_ties() const noexcept override { return false; }

  const GsaConfig& config() const noexcept { return config_; }

 private:
  GsaConfig config_;
};

}  // namespace hcsched::heuristics
