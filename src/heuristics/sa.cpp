#include "heuristics/sa.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cancel.hpp"
#include "ga/chromosome.hpp"
#include "ga/operators.hpp"
#include "heuristics/minmin.hpp"

namespace hcsched::heuristics {

SimulatedAnnealing::SimulatedAnnealing(SaConfig config) : config_(config) {
  if (config_.cooling <= 0.0 || config_.cooling >= 1.0) {
    throw std::invalid_argument("SA: cooling must be in (0, 1)");
  }
}

Schedule SimulatedAnnealing::do_map(const Problem& problem,
                                 TieBreaker& ties) const {
  return do_map_seeded(problem, ties, nullptr);
}

Schedule SimulatedAnnealing::do_map_seeded(const Problem& problem,
                                        TieBreaker& ties,
                                        const Schedule* seed) const {
  if (problem.num_machines() == 0) {
    throw std::invalid_argument("SA: no machines");
  }
  rng::Rng rng(config_.seed);

  ga::Chromosome current = [&] {
    if (seed != nullptr) return ga::Chromosome::from_schedule(problem, *seed);
    if (config_.seed_with_minmin) {
      MinMin minmin;
      rng::TieBreaker det;
      return ga::Chromosome::from_schedule(problem, minmin.map(problem, det));
    }
    return ga::Chromosome::random(problem, rng);
  }();
  double current_span = current.evaluate(problem);

  ga::Chromosome best = current;
  double best_span = current_span;

  double temperature = current_span;
  for (std::size_t step = 0;
       step < config_.steps && temperature > config_.min_temperature &&
       problem.num_tasks() > 0;
       ++step) {
    // Anytime contract: a cancelled budget stops the walk within one step;
    // `best` is always a complete, valid mapping.
    if (core::cancellation_requested()) break;
    ga::Chromosome candidate = current;
    ga::mutate(candidate, problem.num_machines(), rng);
    const double span = candidate.evaluate(problem);
    const double delta = span - current_span;
    if (delta <= 0.0 ||
        rng.uniform01() < std::exp(-delta / temperature)) {
      current = std::move(candidate);
      current_span = span;
      if (current_span < best_span) {
        best = current;
        best_span = current_span;
      }
    }
    temperature *= config_.cooling;
  }

  (void)ties;  // SA's stochastic decisions come from its own stream.
  return best.decode(problem);
}

}  // namespace hcsched::heuristics
